//! Property tests for the flow-script layer: the parser round-trips on
//! generated scripts, and every canned flow (plus randomized ones) is a
//! semantics-preserving transformation on a SplitMix64 netlist corpus,
//! bit-identically for any `--jobs` setting.

use mig_suite::benchgen::{layered_random, RandomLogicParams};
use mig_suite::mig::{Flow, FlowStep, Mig, OptContext, PassKind, Repeat};
use mig_suite::netlist::SplitMix64;

/// Number of 64-pattern blocks for the random half of equivalence checks.
const ROUNDS: usize = 8;

/// Draws a random flow of 1..=5 steps over all pass kinds and repeat
/// markers from the deterministic generator.
fn random_flow(rng: &mut SplitMix64) -> Flow {
    let n_steps = 1 + (rng.next_u64() % 5) as usize;
    let steps = (0..n_steps)
        .map(|_| {
            let pass = PassKind::ALL[(rng.next_u64() % PassKind::ALL.len() as u64) as usize];
            let repeat = match rng.next_u64() % 4 {
                0 => Repeat::Converge,
                r => Repeat::Times(r as usize),
            };
            FlowStep { pass, repeat }
        })
        .collect();
    Flow { steps }
}

/// Renders `flow` with randomized (but legal) whitespace and explicit
/// `*1` markers, exercising the lenient half of the grammar.
fn sloppy_script(flow: &Flow, rng: &mut SplitMix64) -> String {
    let mut s = String::new();
    for (i, step) in flow.steps.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        if rng.next_u64().is_multiple_of(2) {
            s.push_str("  ");
        }
        s.push_str(step.pass.name());
        match step.repeat {
            Repeat::Times(1) if rng.next_u64().is_multiple_of(2) => s.push_str(" * 1"),
            Repeat::Times(1) => {}
            Repeat::Times(n) => s.push_str(&format!(" *{n}")),
            Repeat::Converge => s.push_str(" *"),
        }
        if rng.next_u64().is_multiple_of(2) {
            s.push(' ');
        }
    }
    if rng.next_u64().is_multiple_of(3) {
        s.push(';');
    }
    s
}

#[test]
fn parser_round_trips_on_generated_scripts() {
    let mut rng = SplitMix64::seed_from_u64(0xF10E_5C21_77AB_CDEF);
    for case in 0..200 {
        let flow = random_flow(&mut rng);
        // Canonical rendering parses back to the same flow...
        let canonical = flow.to_string();
        let reparsed = Flow::parse(&canonical).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(reparsed, flow, "case {case}: `{canonical}`");
        // ...and so does a whitespace-mangled, `*1`-explicit rendering.
        let sloppy = sloppy_script(&flow, &mut rng);
        let reparsed = Flow::parse(&sloppy).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(reparsed, flow, "case {case}: `{sloppy}`");
        // Display is a fixpoint: render(parse(render(f))) == render(f).
        assert_eq!(reparsed.to_string(), canonical, "case {case}");
    }
}

/// The corpus: small layered reconvergent netlists in assorted shapes.
fn corpus() -> Vec<Mig> {
    let mut seeds = SplitMix64::seed_from_u64(0xC0FF_EE00_F10E_0001);
    (0..4)
        .map(|case| {
            let p = RandomLogicParams {
                inputs: 8 + (seeds.next_u64() % 10) as usize,
                outputs: 3 + (seeds.next_u64() % 5) as usize,
                gates: 80 + (seeds.next_u64() % 160) as usize,
                layers: 3 + (seeds.next_u64() % 5) as usize,
                seed: seeds.next_u64(),
            };
            Mig::from_network(&layered_random(&format!("flow_rnd{case}"), &p))
        })
        .collect()
}

/// Asserts two MIGs are structurally identical, node for node.
fn assert_bit_identical(a: &Mig, b: &Mig, what: &str) {
    assert_eq!(a.num_nodes(), b.num_nodes(), "{what}: arena sizes differ");
    for node in a.gate_ids() {
        assert_eq!(
            a.children(node),
            b.children(node),
            "{what}: children of {node} differ"
        );
    }
    assert_eq!(a.outputs(), b.outputs(), "{what}: outputs differ");
}

#[test]
fn canned_and_random_flows_preserve_semantics_at_any_job_count() {
    // Every canned flow `run_opt` compiles legacy targets to, plus 3
    // randomized flows: on the whole corpus the result must stay
    // equivalent to the input and be bit-identical between jobs=1 and
    // jobs=4.
    let mut scripts: Vec<String> = Vec::new();
    for target in ["size", "depth", "activity", "all"] {
        let t = mig_mighty::OptTarget::parse(target).unwrap();
        for rewrite in [false, true] {
            scripts.push(mig_mighty::flow_for_target(t, rewrite).to_string());
        }
    }
    let mut rng = SplitMix64::seed_from_u64(0x5EED_F10E_5EED_F10E);
    for _ in 0..3 {
        scripts.push(random_flow(&mut rng).to_string());
    }

    let corpus = corpus();
    for script in &scripts {
        let flow = Flow::parse(script).expect(script);
        for (ci, mig) in corpus.iter().enumerate() {
            let base = flow.run(mig.clone(), 1, &mut OptContext::with_jobs(1));
            assert!(
                base.equiv(mig, ROUNDS),
                "`{script}` broke equivalence on corpus circuit {ci}"
            );
            let par = flow.run(mig.clone(), 1, &mut OptContext::with_jobs(4));
            assert_bit_identical(
                &base,
                &par,
                &format!("`{script}` on circuit {ci}, jobs 1 vs 4"),
            );
        }
    }
}

#[test]
fn flow_script_drives_the_cli_pipeline() {
    // End to end through the mighty library (the exact `--flow` path):
    // a flow with repetition and convergence markers verifies on a
    // generated benchmark.
    let net = mig_suite::benchgen::generate("my_adder").unwrap();
    let flow = Flow::parse("rewrite*; size*2; depth_rewrite").unwrap();
    let o = mig_mighty::run_flow(&net, &flow, 1, ROUNDS, 1);
    assert!(o.mig_equiv && o.net_equiv, "flow must verify");
    assert!(o.after.size <= o.before.size);
    assert!(!o.stages.is_empty());
}
