//! Axiom-soundness harness for the equality-saturation rule set.
//!
//! Every rewrite rule the e-graph applies ([`EsatRule::ALL`]) is checked
//! two ways, over a deterministic SplitMix64 corpus:
//!
//! * **Simulation**: both sides of each rule instance are built over
//!   environments drawn from random MIGs (internal signals, complemented
//!   edges, constants) and verified equal on 512 batched random patterns
//!   via `mig_sim::simulate_batch`. A rule that is sound for *every*
//!   environment is sound as a rewrite in *both* directions — each side
//!   may replace the other.
//! * **Saturation**: the engine itself must discover each equality —
//!   both sides enter the e-graph as distinct classes and saturation
//!   must merge them. This is the bidirectional check at the engine
//!   level: the union makes the rewrite available in both directions,
//!   and the test fails if the matcher cannot connect the two shapes.

use mig_suite::benchgen::generate;
use mig_suite::mig::{EGraph, ELit, EsatConfig, EsatRule, Mig, Signal};
use mig_suite::netlist::SplitMix64;
use mig_suite::sim::simulate_batch;

/// 512 patterns = 8 words of 64 — one equivalence-checker batch.
const WORDS: usize = 8;

/// Builds a random MIG over `inputs` inputs with `gates` random majority
/// gates (random fanins, random complement edges). Returns the MIG and
/// the signal pool the gates were drawn from.
fn random_mig(rng: &mut SplitMix64, inputs: usize, gates: usize) -> (Mig, Vec<Signal>) {
    let mut mig = Mig::new("corpus");
    let mut pool: Vec<Signal> = (0..inputs)
        .map(|i| mig.add_input(format!("i{i}")))
        .collect();
    for _ in 0..gates {
        let pick = |rng: &mut SplitMix64, pool: &[Signal]| {
            let s = pool[(rng.next_u64() as usize) % pool.len()];
            s.complement_if(rng.next_u64() & 1 == 1)
        };
        let a = pick(rng, &pool);
        let b = pick(rng, &pool);
        let c = pick(rng, &pool);
        let s = mig.maj(a, b, c);
        pool.push(s);
    }
    (mig, pool)
}

/// Checks every rule instance over `env` inside `mig` by batched
/// simulation on 512 SplitMix64 patterns.
fn assert_instances_sound(mig: Mig, env: [Signal; 5], rng: &mut SplitMix64, what: &str) {
    let mut mig = mig;
    let skip = mig.num_outputs();
    let mut pairs = 0;
    for rule in EsatRule::ALL {
        for (lhs, rhs) in rule.instances(&mut mig, env) {
            mig.add_output(format!("l{pairs}"), lhs);
            mig.add_output(format!("r{pairs}"), rhs);
            pairs += 1;
        }
    }
    let net = mig.to_network();
    let words: Vec<u64> = (0..net.num_inputs() * WORDS)
        .map(|_| rng.next_u64())
        .collect();
    let outs = simulate_batch(&net, &words, WORDS);
    // The MIG may carry pre-existing outputs (benchmark circuits);
    // rule pairs start after them.
    let mut o = outs.chunks_exact(WORDS).skip(skip);
    let mut named = 0;
    for rule in EsatRule::ALL {
        // `instances` is deterministic: re-count pairs per rule so a
        // failure names the axiom it violated.
        let count = match rule {
            EsatRule::OmegaM => 2,
            _ => 1,
        };
        for _ in 0..count {
            let l = o.next().expect("lhs words");
            let r = o.next().expect("rhs words");
            assert_eq!(
                l,
                r,
                "{} is unsound over {what} environment (512-pattern simulation mismatch)",
                rule.name()
            );
            named += 1;
        }
    }
    assert_eq!(named, pairs, "every emitted pair was checked");
}

/// Simulation soundness over environments drawn from random MIGs: the
/// five metavariables bind to arbitrary internal signals, inverted
/// edges included.
#[test]
fn rules_are_sound_over_random_mig_environments() {
    let mut rng = SplitMix64::seed_from_u64(0xE5A7_0001);
    for round in 0..24 {
        let inputs = 4 + (rng.next_u64() % 5) as usize;
        let gates = 8 + (rng.next_u64() % 40) as usize;
        let (mig, pool) = random_mig(&mut rng, inputs, gates);
        let mut env = [Signal::FALSE; 5];
        for slot in &mut env {
            let s = pool[(rng.next_u64() as usize) % pool.len()];
            *slot = s.complement_if(rng.next_u64() & 1 == 1);
        }
        assert_instances_sound(mig, env, &mut rng, &format!("random-MIG #{round}"));
    }
}

/// Simulation soundness on the complement/constant edge cases: every
/// metavariable additionally ranges over constants and complemented
/// inputs, including aliased slots (x = u, x = u', z = 0, …) that often
/// break complement-normalization bookkeeping.
#[test]
fn rules_are_sound_on_complement_and_constant_edges() {
    let mut rng = SplitMix64::seed_from_u64(0xE5A7_0002);
    for round in 0..48 {
        let mut mig = Mig::new("edges");
        let ins: Vec<Signal> = (0..3).map(|i| mig.add_input(format!("i{i}"))).collect();
        // Candidate bindings: constants, inputs, complemented inputs.
        let mut cands = vec![Signal::FALSE, !Signal::FALSE];
        for &i in &ins {
            cands.push(i);
            cands.push(!i);
        }
        let mut env = [Signal::FALSE; 5];
        for slot in &mut env {
            *slot = cands[(rng.next_u64() as usize) % cands.len()];
        }
        assert_instances_sound(mig, env, &mut rng, &format!("edge-case #{round}"));
    }
}

/// Soundness of the rules as *applied by the engine* on a real circuit:
/// saturating an MCNC benchmark and checking node classes is covered by
/// the integration suite; here the corpus shrinks to one benchmark as a
/// smoke check that `instances` and the arena strash agree.
#[test]
fn rule_sides_strash_to_equal_functions_on_a_benchmark() {
    let net = generate("count").expect("known benchmark");
    let mig = Mig::from_network(&net);
    let mut rng = SplitMix64::seed_from_u64(0xE5A7_0003);
    let pool: Vec<Signal> = (0..mig.num_inputs()).map(|i| mig.input(i)).collect();
    let mut env = [Signal::FALSE; 5];
    for slot in &mut env {
        let s = pool[(rng.next_u64() as usize) % pool.len()];
        *slot = s.complement_if(rng.next_u64() & 1 == 1);
    }
    assert_instances_sound(mig, env, &mut rng, "benchmark");
}

/// Engine-level bidirectionality: both sides of every rule are inserted
/// as *separate* structures (the strash only folds literal Ω.C/Ω.M/Ω.I
/// duplicates, so non-trivial sides start in distinct classes) and
/// saturation must merge them — whichever side the matcher pattern
/// actually fires on, the union covers the rewrite in both directions.
/// Environments include complemented bindings.
#[test]
fn saturation_merges_both_sides_of_every_rule() {
    let mut rng = SplitMix64::seed_from_u64(0xE5A7_0004);
    let config = EsatConfig {
        iters: 6,
        enode_cap: 4096,
        time_ms: None,
        scan_cap: 16,
    };
    for rule in EsatRule::ALL {
        for trial in 0..16 {
            let mut g = EGraph::with_inputs(5);
            let base: Vec<ELit> = (0..5).map(|i| g.input(i)).collect();
            let mut env = [ELit::FALSE; 5];
            for slot in &mut env {
                let l = base[(rng.next_u64() as usize) % base.len()];
                *slot = l.complement_if(rng.next_u64() & 1 == 1);
            }
            let pairs = rule.elit_instances(&mut g, env);
            g.saturate(&config);
            for (lhs, rhs) in pairs {
                assert_eq!(
                    g.find(lhs),
                    g.find(rhs),
                    "{} did not saturate to a merge (trial {trial})",
                    rule.name()
                );
            }
        }
    }
}
