//! Resilience tests for the pass manager: checkpoint/rollback on pass
//! panics, budget enforcement (deadline, per-pass timeout, node cap),
//! post-pass simulation spot checks, and cache coherence after a
//! rollback (a subsequent clean pass must match a from-scratch run
//! bit-for-bit).
//!
//! The `fault_injection` module at the bottom additionally drives canned
//! flows under the deterministic fault-injection harness; it only exists
//! when the `faultpoints` feature is armed:
//!
//! ```text
//! cargo test -p mig-suite --features faultpoints --test resilience
//! ```

use std::sync::Mutex;

use mig_suite::benchgen::{generate, layered_random, RandomLogicParams};
use mig_suite::mig::{Budget, Flow, Mig, OptContext, Pass, PassOutcome, RewritePass, SimSpotCheck};
use mig_suite::netlist::SplitMix64;

/// Number of 64-pattern blocks for the random half of equivalence checks.
const ROUNDS: usize = 8;

/// Serializes every test in this binary. Needed because the
/// fault-injection plan (under `--features faultpoints`) is process
/// global: a wildcard panic plan configured by one test must never leak
/// into a concurrently running rollback test.
static GATE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicking test poisons the mutex; later tests only need mutual
    // exclusion, not the poison signal.
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Asserts `a` and `b` are structurally identical arenas: same node
/// count, same fanins on every gate, same outputs.
fn assert_same_mig(a: &Mig, b: &Mig) {
    assert_eq!(a.num_nodes(), b.num_nodes(), "node counts differ");
    assert_eq!(a.num_inputs(), b.num_inputs());
    assert_eq!(a.outputs(), b.outputs(), "outputs differ");
    for id in a.gate_ids() {
        assert_eq!(a.children(id), b.children(id), "fanins of {id:?} differ");
    }
}

fn count_mig() -> Mig {
    Mig::from_network(&generate("count").expect("known benchmark")).cleanup()
}

/// A pass that always panics mid-flight.
#[derive(Debug)]
struct PanicPass;

impl Pass for PanicPass {
    fn name(&self) -> &'static str {
        "panic_test"
    }

    fn run(&self, _ctx: &mut OptContext, _mig: Mig) -> Mig {
        panic!("synthetic pass failure");
    }
}

/// A pass that returns a well-formed but functionally wrong MIG (it
/// complements the first primary output).
#[derive(Debug)]
struct CorruptPass;

impl Pass for CorruptPass {
    fn name(&self) -> &'static str {
        "corrupt_test"
    }

    fn run(&self, _ctx: &mut OptContext, mut mig: Mig) -> Mig {
        let flipped = mig.outputs()[0].1.complement_if(true);
        mig.set_output(0, flipped);
        mig
    }
}

/// A pass that burns wall-clock time and returns its input unchanged.
#[derive(Debug)]
struct SlowPass;

impl Pass for SlowPass {
    fn name(&self) -> &'static str {
        "slow_test"
    }

    fn run(&self, _ctx: &mut OptContext, mig: Mig) -> Mig {
        std::thread::sleep(std::time::Duration::from_millis(30));
        mig
    }
}

#[test]
fn panicking_pass_rolls_back_bit_identically() {
    let _g = lock();
    let mig = count_mig();
    let snapshot = mig.clone();
    let mut ctx = OptContext::with_jobs(1);
    let out = ctx.run_pass(&PanicPass, mig);
    assert_same_mig(&out, &snapshot);
    let ledger = ctx.take_ledger();
    assert_eq!(ledger.len(), 1);
    assert_eq!(ledger[0].outcome, PassOutcome::RolledBack);
    let note = ledger[0].note.as_deref().expect("rollback carries a note");
    assert!(note.contains("panicked"), "{note}");
    assert!(note.contains("synthetic pass failure"), "{note}");
}

#[test]
fn node_cap_rolls_back_a_growing_pass() {
    let _g = lock();
    // The depth pass trades size for depth on `count` (it grows the
    // graph), so a cap at the input size must roll it back.
    let mig = count_mig();
    let snapshot = mig.clone();
    let mut ctx = OptContext::with_jobs(1);
    ctx.set_budget(Budget {
        max_nodes: Some(mig.size()),
        ..Budget::unlimited()
    });
    let out = ctx.run_pass(&mig_suite::mig::DepthPass::default(), mig);
    assert_same_mig(&out, &snapshot);
    let ledger = ctx.take_ledger();
    assert_eq!(ledger[0].outcome, PassOutcome::RolledBack);
    assert!(
        ledger[0].note.as_deref().unwrap_or("").contains("node cap"),
        "{:?}",
        ledger[0].note
    );
}

#[test]
fn exhausted_deadline_skips_every_pass() {
    let _g = lock();
    let mig = count_mig();
    let snapshot = mig.clone();
    let mut ctx = OptContext::with_jobs(1);
    ctx.set_budget(Budget {
        total_ms: Some(0),
        ..Budget::unlimited()
    });
    let flow = Flow::parse("size; rewrite; depth").unwrap();
    let out = flow.run(mig, 2, &mut ctx);
    assert_same_mig(&out, &snapshot);
    let ledger = ctx.take_ledger();
    assert_eq!(ledger.len(), 3);
    for report in &ledger {
        assert_eq!(report.outcome, PassOutcome::Skipped, "{}", report.pass);
        assert_eq!(report.before.size, report.after.size);
    }
}

#[test]
fn per_pass_timeout_rolls_back_slow_passes() {
    let _g = lock();
    let mig = count_mig();
    let snapshot = mig.clone();
    let mut ctx = OptContext::with_jobs(1);
    ctx.set_budget(Budget {
        pass_ms: Some(1),
        ..Budget::unlimited()
    });
    let out = ctx.run_pass(&SlowPass, mig);
    assert_same_mig(&out, &snapshot);
    let ledger = ctx.take_ledger();
    assert_eq!(ledger[0].outcome, PassOutcome::TimedOut);
}

#[test]
fn spot_check_rejects_a_corrupting_pass() {
    let _g = lock();
    let mig = count_mig();
    let snapshot = mig.clone();
    let mut ctx = OptContext::with_jobs(1);
    ctx.set_spot_check(Box::new(SimSpotCheck::new(ROUNDS)));
    let out = ctx.run_pass(&CorruptPass, mig);
    assert_same_mig(&out, &snapshot);
    let ledger = ctx.take_ledger();
    assert_eq!(ledger[0].outcome, PassOutcome::RolledBack);
    assert!(
        ledger[0]
            .note
            .as_deref()
            .unwrap_or("")
            .contains("spot check"),
        "{:?}",
        ledger[0].note
    );
    // An honest pass under the same spot check sails through.
    let out2 = ctx.run_pass(&mig_suite::mig::SizePass::default(), out);
    assert_eq!(ctx.take_ledger()[0].outcome, PassOutcome::Completed);
    assert!(out2.equiv(&snapshot, ROUNDS));
}

/// Cache-coherence property: warming the rewrite cache, suffering a
/// rolled-back pass, then rewriting again must produce bit-identical
/// results to the same flow without the failed pass — over a SplitMix64
/// corpus of random netlists.
#[test]
fn clean_pass_after_rollback_matches_from_scratch() {
    let _g = lock();
    let mut rng = SplitMix64::seed_from_u64(0x0DD5_EED5_0F57_A7E5);
    let rewrite = RewritePass::default();
    for case in 0..6 {
        let params = RandomLogicParams {
            inputs: 6 + (rng.next_u64() % 4) as usize,
            outputs: 2 + (rng.next_u64() % 3) as usize,
            gates: 40 + (rng.next_u64() % 80) as usize,
            layers: 3 + (rng.next_u64() % 3) as usize,
            seed: rng.next_u64(),
        };
        let name = format!("rnd{case}");
        let mig = Mig::from_network(&layered_random(&name, &params)).cleanup();

        // Faulty trajectory: rewrite, panicking pass (rolled back),
        // corrupting pass (rolled back by the spot check), rewrite.
        let mut faulty = OptContext::with_jobs(1);
        faulty.set_spot_check(Box::new(SimSpotCheck::new(ROUNDS)));
        let mut cur = faulty.run_pass(&rewrite, mig.clone());
        cur = faulty.run_pass(&PanicPass, cur);
        cur = faulty.run_pass(&CorruptPass, cur);
        let from_faulty = faulty.run_pass(&rewrite, cur);
        let outcomes: Vec<PassOutcome> = faulty.take_ledger().iter().map(|r| r.outcome).collect();
        assert_eq!(
            outcomes,
            [
                PassOutcome::Completed,
                PassOutcome::RolledBack,
                PassOutcome::RolledBack,
                PassOutcome::Completed
            ],
            "case {case}"
        );

        // Clean trajectory: the same two rewrites, nothing in between.
        let mut clean = OptContext::with_jobs(1);
        let cur = clean.run_pass(&rewrite, mig.clone());
        let from_clean = clean.run_pass(&rewrite, cur);

        assert_same_mig(&from_faulty, &from_clean);
        assert!(from_faulty.equiv(&mig, ROUNDS), "case {case}");
    }
}

/// Saturation never panics and always terminates on hostile inputs:
/// random netlists with constant bindings, aliased/complemented
/// outputs, and truncated (mostly-unreachable) variants, driven under
/// adversarially tiny budgets. The guard must additionally keep every
/// run equivalent — a budget that stops saturation mid-rebuild must
/// hand back the input, never a half-merged graph.
#[test]
fn esat_survives_mutated_and_truncated_netlists_under_tiny_budgets() {
    let _g = lock();
    let mut rng = SplitMix64::seed_from_u64(0xE5A7_F022);
    for case in 0..18 {
        let params = RandomLogicParams {
            inputs: 4 + (rng.next_u64() % 5) as usize,
            outputs: 1 + (rng.next_u64() % 4) as usize,
            gates: 10 + (rng.next_u64() % 120) as usize,
            layers: 2 + (rng.next_u64() % 4) as usize,
            seed: rng.next_u64(),
        };
        let name = format!("esat_fuzz{case}");
        let mut mig = Mig::from_network(&layered_random(&name, &params)).cleanup();

        // Mutate: rebind outputs to hostile signals — constants,
        // complements, aliases of output 0 — and truncate by pointing
        // the last output at an input, stranding most of the cone.
        let n_out = mig.outputs().len();
        for o in 0..n_out {
            match rng.next_u64() % 5 {
                0 => {
                    let s = mig.outputs()[o].1;
                    mig.set_output(o, !s);
                }
                1 => mig.set_output(o, mig_suite::mig::Signal::FALSE),
                2 => mig.set_output(o, mig.outputs()[0].1),
                3 if o + 1 == n_out => {
                    let s = mig.input((rng.next_u64() % params.inputs as u64) as usize);
                    mig.set_output(o, s);
                }
                _ => {}
            }
        }

        let config = mig_suite::mig::EsatConfig {
            iters: 1 + (rng.next_u64() % 6) as usize,
            enode_cap: 1 + (rng.next_u64() % 600) as usize,
            time_ms: match rng.next_u64() % 3 {
                0 => Some(0),
                1 => Some(1 + rng.next_u64() % 5),
                _ => None,
            },
            scan_cap: (rng.next_u64() % 20) as usize,
        };
        for goal in [
            mig_suite::mig::Objective::SizeThenDepth,
            mig_suite::mig::Objective::DepthThenSize,
        ] {
            let pass = mig_suite::mig::EsatPass {
                goal,
                effort: 1,
                config: Some(config.clone()),
            };
            let mut ctx = OptContext::with_jobs(1);
            let out = ctx.run_pass(&pass, mig.clone());
            assert!(
                out.equiv(&mig, ROUNDS),
                "case {case} under {goal:?}/{config:?} lost equivalence"
            );
            let ledger = ctx.take_ledger();
            assert_eq!(
                ledger[0].outcome,
                PassOutcome::Completed,
                "case {case} under {goal:?}/{config:?}: {:?}",
                ledger[0].note
            );
        }
    }
}

#[cfg(feature = "faultpoints")]
mod fault_injection {
    use super::*;
    use mig_suite::mig::faultpoint;

    /// Runs `flow` on `name` with faults per `plan`, asserting the run
    /// terminates and the result is equivalent to the import. Returns
    /// the ledger outcomes.
    fn run_under_faults(
        name: &str,
        script: &str,
        plan: &str,
        selfcheck: bool,
    ) -> (Vec<PassOutcome>, u64) {
        faultpoint::configure(plan).expect("valid plan");
        let mig = Mig::from_network(&generate(name).expect("known benchmark")).cleanup();
        let mut ctx = OptContext::with_jobs(2);
        if selfcheck {
            ctx.set_spot_check(Box::new(SimSpotCheck::new(ROUNDS)));
        }
        let flow = Flow::parse(script).unwrap();
        let out = flow.run(mig.clone(), 2, &mut ctx);
        let trips = faultpoint::total_trips();
        faultpoint::clear();
        assert!(
            out.equiv(&mig, ROUNDS),
            "{name} under `{plan}` lost equivalence"
        );
        (ctx.take_ledger().iter().map(|r| r.outcome).collect(), trips)
    }

    #[test]
    fn injected_commit_panic_degrades_gracefully() {
        let _g = lock();
        let (outcomes, trips) = run_under_faults(
            "count",
            "size; rewrite; depth",
            "rewrite.commit:panic:1:3",
            false,
        );
        assert!(trips > 0, "plan never tripped");
        assert!(outcomes.contains(&PassOutcome::RolledBack), "{outcomes:?}");
    }

    #[test]
    fn injected_enumeration_panic_degrades_gracefully() {
        let _g = lock();
        let (_outcomes, trips) = run_under_faults(
            "my_adder",
            "size; rewrite; depth; activity",
            "rewrite.enumerate:panic:2:11",
            false,
        );
        assert!(trips > 0, "plan never tripped");
    }

    #[test]
    fn injected_npn_worker_panic_forfeits_only_candidates() {
        let _g = lock();
        // Worker panics in the parallel evaluate phase are contained per
        // worker: the pass still completes (or rolls back) and the flow
        // ends equivalent.
        let (_outcomes, trips) =
            run_under_faults("count", "rewrite*2", "rewrite.npn:panic:40:7", true);
        assert!(trips > 0, "plan never tripped");
    }

    #[test]
    fn injected_truthtable_corruption_is_caught_by_the_selfcheck() {
        let _g = lock();
        let (outcomes, trips) =
            run_under_faults("count", "rewrite", "rewrite.commit.tt:corrupt:2:13", true);
        assert!(trips > 0, "plan never tripped");
        // Consistent corruption commits a functionally wrong candidate;
        // the simulation spot check must reject the pass.
        assert_eq!(outcomes, [PassOutcome::RolledBack], "{outcomes:?}");
    }

    #[test]
    fn wildcard_panics_never_abort_a_canned_flow() {
        let _g = lock();
        for (name, one_in) in [("my_adder", 17), ("count", 29)] {
            let plan = format!("*:panic:{one_in}:99");
            let (outcomes, _trips) =
                run_under_faults(name, "size; rewrite; depth; activity", &plan, true);
            assert!(!outcomes.is_empty());
        }
    }

    #[test]
    fn injected_egraph_merge_panic_degrades_gracefully() {
        let _g = lock();
        // The `esat.merge` site sits inside the e-graph's union loop —
        // a panic there unwinds with the arena in a half-merged state,
        // so the only acceptable recovery is the pass manager's
        // checkpoint rollback (verified by run_under_faults' terminal
        // equivalence assertion).
        let (outcomes, trips) = run_under_faults(
            "count",
            "size; esat; rewrite",
            "esat.merge:panic:1:3",
            false,
        );
        assert!(trips > 0, "plan never tripped");
        assert!(outcomes.contains(&PassOutcome::RolledBack), "{outcomes:?}");
    }

    #[test]
    fn probabilistic_egraph_merge_panics_keep_esat_flows_equivalent() {
        let _g = lock();
        // Rarer faults let saturation make real progress before the
        // unwind; whatever mix of completions and rollbacks results,
        // the flow must terminate equivalent (asserted inside).
        let (outcomes, trips) = run_under_faults(
            "my_adder",
            "size; esat*2; rewrite",
            "esat.merge:panic:200:7",
            true,
        );
        assert!(trips > 0, "plan never tripped");
        assert!(!outcomes.is_empty());
    }

    #[test]
    fn zero_fault_runs_are_bit_identical() {
        let _g = lock();
        faultpoint::clear();
        let mig = count_mig();
        let flow = Flow::parse("size; rewrite; depth").unwrap();
        let mut ctx1 = OptContext::with_jobs(2);
        let out1 = flow.run(mig.clone(), 2, &mut ctx1);
        let outcomes1: Vec<PassOutcome> = ctx1.take_ledger().iter().map(|r| r.outcome).collect();
        let mut ctx2 = OptContext::with_jobs(2);
        let out2 = flow.run(mig, 2, &mut ctx2);
        assert_same_mig(&out1, &out2);
        assert!(outcomes1.iter().all(|o| *o == PassOutcome::Completed));
        assert_eq!(faultpoint::total_trips(), 0);
    }
}
