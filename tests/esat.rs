//! Integration: the equality-saturation pass over the generated MCNC
//! suite. Every benchmark must stay functionally equivalent through an
//! esat-containing flow, and the pass's extraction guard must be
//! monotone — the output never exceeds the input under the pass
//! objective, whatever the saturation budget managed to explore.

use mig_suite::benchgen::generate;
use mig_suite::mig::{Budget, EsatConfig, EsatPass, Flow, Mig, Objective, OptContext, Pass};

/// Number of 64-pattern blocks for the random half of equivalence checks.
const ROUNDS: usize = 16;

/// All fourteen MCNC benchmarks of the committed suite.
const SUITE: [&str; 14] = [
    "C1355", "C1908", "C6288", "bigkey", "my_adder", "cla", "dalu", "b9", "count", "alu4", "clma",
    "mm30a", "s38417", "misex3",
];

/// A debug-friendly saturation budget: the release defaults explore
/// 128× the seed, which is measurement-grade but slow without
/// optimizations; node-capped runs exercise exactly the same code
/// paths (seed → saturate → extract → guard).
fn test_budget() -> Budget {
    Budget {
        max_nodes: Some(20_000),
        ..Budget::default()
    }
}

/// Runs the esat flow step over every MCNC benchmark and checks
/// equivalence plus size monotonicity of the full flow.
#[test]
fn esat_flow_is_equivalent_and_monotone_on_the_suite() {
    let flow = Flow::parse("size; rewrite; esat").expect("valid flow");
    for bench in SUITE {
        let net = generate(bench).expect("known benchmark");
        let mig = Mig::from_network(&net);
        let mut ctx = OptContext::with_jobs(1);
        ctx.set_budget(test_budget());
        let out = flow.run(mig.clone(), 2, &mut ctx);
        assert!(
            out.equiv(&mig, ROUNDS),
            "{bench}: esat flow broke equivalence"
        );
        assert!(
            out.size() <= mig.size(),
            "{bench}: esat flow grew the MIG ({} > {})",
            out.size(),
            mig.size()
        );
    }
}

/// The monotone guard proper: the pass output never exceeds the pass
/// input under the chosen objective, even when saturation stops early
/// on a tiny budget (where extraction rarely finds anything and the
/// guard must hand the input back untouched).
#[test]
fn esat_extraction_never_exceeds_the_prepass_cost() {
    for (bench, cap) in [("alu4", 50_000), ("count", 8_000), ("b9", 500), ("cla", 64)] {
        let net = generate(bench).expect("known benchmark");
        let mig = Mig::from_network(&net);
        for goal in [Objective::SizeThenDepth, Objective::DepthThenSize] {
            let pass = EsatPass {
                goal,
                effort: 2,
                config: Some(EsatConfig {
                    iters: 4,
                    enode_cap: cap,
                    time_ms: None,
                    scan_cap: 8,
                }),
            };
            let mut ctx = OptContext::with_jobs(1);
            let out = pass.run(&mut ctx, mig.clone());
            let (before, after) = (goal.of(&mig), goal.of(&out));
            assert!(
                after <= before,
                "{bench}: esat under {goal:?} worsened the objective ({after:?} > {before:?})"
            );
            assert!(
                out.equiv(&mig, ROUNDS),
                "{bench}: esat under {goal:?} broke equivalence"
            );
        }
    }
}

/// The measured size win: on the most functionally redundant circuits
/// of the suite the saturation pass must strictly improve on the
/// rewrite fixpoint (this locks in the benchmark result the docs
/// advertise; see `EXPERIMENTS.md`).
#[test]
fn esat_beats_the_rewrite_fixpoint_on_redundant_circuits() {
    let pre = Flow::parse("size; rewrite*; size").expect("valid flow");
    let post = Flow::parse("esat*; rewrite*; size").expect("valid flow");
    let bench = "alu4";
    let net = generate(bench).expect("known benchmark");
    let mig = Mig::from_network(&net);
    let mut ctx = OptContext::with_jobs(1);
    let fixpoint = pre.run(mig.clone(), 4, &mut ctx);
    let improved = post.run(fixpoint.clone(), 4, &mut ctx);
    assert!(
        improved.equiv(&mig, ROUNDS),
        "{bench}: esat improvement broke equivalence"
    );
    assert!(
        improved.size() < fixpoint.size(),
        "{bench}: esat failed to beat the rewrite fixpoint ({} >= {})",
        improved.size(),
        fixpoint.size()
    );
}
