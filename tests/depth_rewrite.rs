//! Acceptance gate for the depth-aware rewrite mode: across the full
//! 14-benchmark MCNC suite, prefixing the algebraic depth pass with
//! `depth_rewrite` must strictly reduce the final depth on at least half
//! of the circuits — and never break equivalence on any. (The measured
//! per-circuit numbers live in `EXPERIMENTS.md`; at effort 1 and 4 alike
//! the flow wins on 9 of 14.)

use mig_suite::benchgen::MCNC_NAMES;
use mig_suite::mig::{Flow, Mig, OptContext};

#[test]
fn depth_rewrite_beats_algebraic_depth_on_at_least_half_the_suite() {
    // Effort 1 keeps the debug-mode runtime in check; the release-mode
    // CI flow-matrix job exercises the same comparison at full effort.
    let algebraic = Flow::parse("depth").unwrap();
    let flowed = Flow::parse("depth_rewrite; depth").unwrap();
    let mut ctx = OptContext::with_jobs(1);
    let mut wins = Vec::new();
    let mut losses = Vec::new();
    for name in MCNC_NAMES {
        let net = mig_suite::benchgen::generate(name).expect("known benchmark");
        let mig = Mig::from_network(&net);
        let a = algebraic.run(mig.cleanup(), 1, &mut ctx);
        let d = flowed.run(mig.cleanup(), 1, &mut ctx);
        assert!(
            d.equiv(&mig, 4),
            "{name}: depth_rewrite flow broke equivalence"
        );
        // (No size gate here: the trailing algebraic depth pass may
        // trade area for depth by design. depth_rewrite alone never
        // grows — covered by the pipeline unit tests.)
        if d.depth() < a.depth() {
            wins.push(name);
        } else {
            losses.push(format!("{name} ({} vs {})", d.depth(), a.depth()));
        }
    }
    assert!(
        2 * wins.len() >= MCNC_NAMES.len(),
        "depth_rewrite must strictly reduce depth on at least half the \
         suite; wins: {wins:?}, rest: {losses:?}"
    );
}
