//! Integration tests for `mighty serve` — the concurrent optimization
//! service (`DESIGN.md` §15).
//!
//! Everything here drives an in-process [`Server`] over real TCP
//! sockets, exactly as an external client would; the signal-driven
//! shutdown test (which needs a separate process to receive SIGTERM)
//! lives in `crates/mighty/tests/serve_signal.rs`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use mig_core::Flow;
use mig_mighty::json::Json;
use mig_mighty::serve::{LoadConfig, ServeConfig, Server};
use mig_mighty::{run_flow_with, RunOptions};
use mig_netlist::write_verilog;

fn start(workers: usize, cache: usize) -> Server {
    Server::start(&ServeConfig {
        listen: "127.0.0.1:0".to_string(),
        workers,
        cache_capacity: cache,
        drain_ms: 30_000,
    })
    .expect("server starts")
}

/// A tiny line-oriented client.
struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            writer: BufWriter::new(stream.try_clone().expect("clone")),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        Json::parse(&line).expect("response parses")
    }

    /// Receives until a non-progress line arrives.
    fn recv_final(&mut self) -> Json {
        loop {
            let v = self.recv();
            if v.get_str("type") != Some("progress") {
                return v;
            }
        }
    }
}

/// The local reference: what `mighty opt` emits for the same job.
fn reference_verilog(name: &str, flow: &str, effort: usize) -> String {
    let net = mig_benchgen::generate(name).expect("known benchmark");
    let flow = Flow::parse(flow).expect("flow parses");
    let out = run_flow_with(&net, &flow, effort, 16, 1, &RunOptions::default());
    assert!(out.mig_equiv && out.net_equiv, "reference run verifies");
    write_verilog(&out.optimized)
}

#[test]
fn served_results_are_bit_identical_to_cli_across_concurrent_clients() {
    let jobs = [
        ("my_adder", "size; rewrite"),
        ("count", "size"),
        ("b9", "size; rewrite"),
        ("cla", "depth"),
    ];
    let reference: HashMap<&str, String> = jobs
        .iter()
        .map(|(name, flow)| (*name, reference_verilog(name, flow, 1)))
        .collect();

    let server = start(2, 16);
    let addr = server.addr();
    let mut handles = Vec::new();
    for (name, flow) in jobs {
        let expected = reference[name].clone();
        handles.push(thread::spawn(move || {
            let mut client = Client::connect(addr);
            client.send(&format!(
                "{{\"id\": 1, \"netlist\": \"{name}\", \"flow\": \"{flow}\", \"effort\": 1}}"
            ));
            let v = client.recv_final();
            assert_eq!(v.get_str("type"), Some("result"), "{name}");
            assert_eq!(v.get_num("exit_code"), Some(0.0), "{name}");
            assert_eq!(v.get_bool("mig_equiv"), Some(true), "{name}");
            assert_eq!(v.get_bool("net_equiv"), Some(true), "{name}");
            assert_eq!(
                v.get_str("verilog"),
                Some(expected.as_str()),
                "{name}: served result differs from `mighty opt`"
            );
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown();
    assert!(server.wait(), "drain");
}

#[test]
fn cache_hit_replays_bit_identical_result() {
    let server = start(1, 16);
    let mut client = Client::connect(server.addr());
    let job = "{\"id\": 1, \"netlist\": \"count\", \"flow\": \"size\", \"effort\": 1}";
    client.send(job);
    let first = client.recv_final();
    assert_eq!(first.get_bool("cached"), Some(false));
    assert_eq!(first.get_num("exit_code"), Some(0.0));
    client.send(job);
    let second = client.recv_final();
    assert_eq!(second.get_bool("cached"), Some(true), "second run hits");
    assert_eq!(second.get_num("exit_code"), Some(0.0));
    assert_eq!(
        first.get_str("verilog"),
        second.get_str("verilog"),
        "cache replay must be bit-identical"
    );
    assert_eq!(second.get_bool("net_equiv"), Some(true), "hits re-verify");
    server.shutdown();
    assert!(server.wait());
}

#[test]
fn progress_lines_stream_per_pass() {
    let server = start(1, 0);
    let mut client = Client::connect(server.addr());
    client.send(
        "{\"id\": 9, \"netlist\": \"my_adder\", \"flow\": \"size; rewrite\", \
         \"effort\": 1, \"progress\": true}",
    );
    let mut passes = Vec::new();
    let result = loop {
        let v = client.recv();
        if v.get_str("type") == Some("progress") {
            passes.push(v.get_str("pass").expect("pass name").to_string());
            continue;
        }
        break v;
    };
    assert_eq!(result.get_str("type"), Some("result"));
    assert!(
        passes.iter().any(|p| p == "size") && passes.iter().any(|p| p == "rewrite"),
        "streamed passes {passes:?} should cover the flow"
    );
    server.shutdown();
    assert!(server.wait());
}

#[test]
fn malformed_requests_get_errors_and_the_connection_survives() {
    let server = start(1, 0);
    let mut client = Client::connect(server.addr());
    // Unparseable JSON.
    client.send("{nope");
    let v = client.recv();
    assert_eq!(v.get_str("type"), Some("error"));
    assert_eq!(v.get_num("exit_code"), Some(2.0));
    // Missing netlist.
    client.send("{\"id\": 1, \"flow\": \"size\"}");
    let v = client.recv();
    assert_eq!(v.get_num("exit_code"), Some(2.0));
    // Unknown benchmark.
    client.send("{\"id\": 2, \"netlist\": \"no_such_bench\"}");
    let v = client.recv();
    assert_eq!(v.get_num("exit_code"), Some(3.0));
    // Bad Verilog.
    client.send("{\"id\": 3, \"netlist\": \"module broken\"}");
    let v = client.recv();
    assert_eq!(v.get_num("exit_code"), Some(3.0));
    // Bad flow script.
    client.send("{\"id\": 4, \"netlist\": \"count\", \"flow\": \"warpdrive\"}");
    let v = client.recv();
    assert_eq!(v.get_num("exit_code"), Some(2.0));
    // Unknown op.
    client.send("{\"op\": \"dance\"}");
    let v = client.recv();
    assert_eq!(v.get_num("exit_code"), Some(2.0));
    // The same connection still serves real work afterwards.
    client.send("{\"id\": 5, \"netlist\": \"count\", \"flow\": \"size\", \"effort\": 1}");
    let v = client.recv_final();
    assert_eq!(v.get_str("type"), Some("result"));
    assert_eq!(v.get_num("exit_code"), Some(0.0));
    server.shutdown();
    assert!(server.wait());
}

#[test]
fn mid_job_disconnect_does_not_kill_the_server() {
    let server = start(1, 0);
    let addr = server.addr();
    {
        // Submit a job and slam the connection shut before the result
        // can be written.
        let stream = TcpStream::connect(addr).expect("connect");
        let mut w = BufWriter::new(stream.try_clone().expect("clone"));
        writeln!(
            w,
            "{{\"id\": 1, \"netlist\": \"alu4\", \"flow\": \"size; rewrite\", \"effort\": 2}}"
        )
        .expect("send");
        w.flush().expect("flush");
        stream
            .shutdown(std::net::Shutdown::Both)
            .expect("shutdown socket");
    }
    // The orphaned job must still run (and its result be dropped)
    // without poisoning the worker: a fresh client gets served.
    let mut client = Client::connect(addr);
    client.send("{\"id\": 2, \"netlist\": \"count\", \"flow\": \"size\", \"effort\": 1}");
    let v = client.recv_final();
    assert_eq!(v.get_str("type"), Some("result"));
    assert_eq!(v.get_num("exit_code"), Some(0.0));
    server.shutdown();
    assert!(server.wait(), "drain includes the orphaned job");
}

#[test]
fn ping_stats_and_wire_shutdown() {
    let server = start(1, 4);
    let addr = server.addr();
    let mut client = Client::connect(addr);
    client.send("{\"op\": \"ping\"}");
    assert_eq!(client.recv().get_str("type"), Some("pong"));
    client.send("{\"id\": 1, \"netlist\": \"count\", \"flow\": \"size\", \"effort\": 1}");
    let v = client.recv_final();
    assert_eq!(v.get_num("exit_code"), Some(0.0));
    let mut client2 = Client::connect(addr);
    client2.send("{\"op\": \"stats\"}");
    let st = client2.recv();
    assert_eq!(st.get_str("type"), Some("stats"));
    assert!(st.get_num("jobs_done") >= Some(1.0));
    assert!(st.get_num("connections") >= Some(2.0));
    client2.send("{\"op\": \"shutdown\"}");
    assert_eq!(client2.recv().get_str("type"), Some("shutting_down"));
    assert!(server.wait(), "wire shutdown drains and exits");
    // New connections are refused after shutdown.
    thread::sleep(Duration::from_millis(50));
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after shutdown"
    );
}

#[test]
fn quick_load_sweep_verifies_and_matches_cli() {
    // One worker count and a small corpus keep this test in CI-seconds;
    // the full sweep runs behind `mighty serve --bench`.
    let cfg = LoadConfig {
        workers_sweep: vec![2],
        clients: 3,
        jobs_per_client: 2,
        flow: "size".to_string(),
        effort: 1,
        corpus: vec!["my_adder".to_string(), "count".to_string()],
    };
    let sweeps = mig_mighty::serve::run_load(&cfg).expect("load sweep runs");
    assert_eq!(sweeps.len(), 1);
    let s = &sweeps[0];
    assert_eq!(s.jobs, 6);
    assert!(s.verified, "all responses verified");
    assert!(s.bit_identical, "all responses bit-identical to the CLI");
    assert!(s.jobs_per_sec > 0.0 && s.p50_ms > 0.0 && s.p95_ms >= s.p50_ms);
}

/// MIG_FAULTS-armed: a job whose passes panic degrades (the pass
/// manager rolls the pass back) while the server keeps serving.
#[cfg(feature = "faultpoints")]
mod fault_injection {
    use super::*;
    use mig_suite::mig::faultpoint;

    #[test]
    fn injected_panic_job_degrades_without_killing_the_server() {
        // Every rewrite commit panics: the pass manager rolls each one
        // back, so the job completes degraded but verified.
        faultpoint::configure("rewrite.commit:panic:1:1").expect("valid plan");
        let server = start(1, 0);
        let mut client = Client::connect(server.addr());
        client.send(
            "{\"id\": 1, \"netlist\": \"count\", \"flow\": \"size; rewrite\", \"effort\": 1}",
        );
        let v = client.recv_final();
        faultpoint::clear();
        assert_eq!(v.get_str("type"), Some("result"));
        assert_eq!(v.get_num("exit_code"), Some(5.0), "degraded completion");
        assert_eq!(v.get_bool("degraded"), Some(true));
        assert_eq!(v.get_bool("mig_equiv"), Some(true), "rollback preserved");
        assert_eq!(v.get_bool("net_equiv"), Some(true));
        // The worker survived: an un-faulted job still runs clean.
        client.send("{\"id\": 2, \"netlist\": \"count\", \"flow\": \"size\", \"effort\": 1}");
        let v = client.recv_final();
        assert_eq!(v.get_num("exit_code"), Some(0.0), "server recovered");
        server.shutdown();
        assert!(server.wait());
    }
}
