//! Cross-crate integration: generated benchmark → Verilog text → parse →
//! MIG import → optimize → Verilog write → re-parse, asserting simulation
//! equivalence at every hand-off. This is the full pipeline every
//! experiment in `EXPERIMENTS.md` flows through.

use mig_suite::mig::{optimize_size, Mig, SizeOptConfig};
use mig_suite::netlist::{parse_verilog, write_verilog};
use mig_suite::sim::equivalent;

/// Number of 64-pattern blocks for the random half of equivalence checks.
const ROUNDS: usize = 32;

fn roundtrip(bench: &str) {
    let generated = mig_suite::benchgen::generate(bench).expect("known benchmark");

    // Front end: serialize to structural Verilog and parse it back.
    let text = write_verilog(&generated);
    let parsed = parse_verilog(&text).unwrap_or_else(|e| panic!("{bench}: re-parse failed: {e}"));
    assert_eq!(parsed.name(), generated.name());
    assert!(
        equivalent(&generated, &parsed, ROUNDS),
        "{bench}: Verilog round-trip changed the function"
    );

    // Import into a MIG and optimize for size (Algorithm 1).
    let mig = Mig::from_network(&parsed);
    let opt = optimize_size(&mig, &SizeOptConfig::default());
    assert!(
        opt.size() <= mig.size(),
        "{bench}: optimizer must never grow the MIG"
    );

    // Back end: export, write, re-parse, and verify against the original.
    let out_text = write_verilog(&opt.to_network());
    let reparsed =
        parse_verilog(&out_text).unwrap_or_else(|e| panic!("{bench}: output re-parse: {e}"));
    assert!(
        equivalent(&generated, &reparsed, ROUNDS),
        "{bench}: optimized circuit is not equivalent to the generated one"
    );
}

#[test]
fn roundtrip_ripple_adder() {
    roundtrip("my_adder");
}

#[test]
fn roundtrip_alu4() {
    roundtrip("alu4");
}

#[test]
fn roundtrip_xor_heavy_ecc() {
    roundtrip("C1355");
}

#[test]
fn roundtrip_pla_b9() {
    roundtrip("b9");
}

#[test]
fn mighty_pipeline_matches_facade_pipeline() {
    // The CLI driver must agree with the facade-level pipeline.
    let net = mig_suite::benchgen::generate("my_adder").unwrap();
    let outcome = mig_mighty::run_opt(&net, mig_mighty::OptTarget::Size, 1, ROUNDS, false, 1);
    assert!(outcome.mig_equiv && outcome.net_equiv);
    assert!(equivalent(&net, &outcome.optimized, ROUNDS));
}
