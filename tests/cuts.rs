//! Direct invariant tests for the priority-cut enumerator
//! (`mig_core::enumerate_cuts`) — the shared substrate under Boolean
//! rewriting and technology mapping. Checked here: the k-bound and
//! per-node cut-count bound, leaf ordering/uniqueness, the unit-cut and
//! constant/input conventions, reachability gating, and the packed
//! truth table of every cut against 64-pattern simulation.

use mig_suite::mig::{enumerate_cuts, Mig, NodeId, Signal};
use mig_suite::netlist::SplitMix64;
use mig_suite::sim::simulate_batch;

/// Builds a random MIG over `inputs` inputs with `gates` random majority
/// gates (random fanins, random complement edges) and outputs on the
/// last few gates so most of the graph is reachable.
fn random_mig(rng: &mut SplitMix64, inputs: usize, gates: usize) -> Mig {
    let mut mig = Mig::new("corpus");
    let mut pool: Vec<Signal> = (0..inputs)
        .map(|i| mig.add_input(format!("i{i}")))
        .collect();
    for _ in 0..gates {
        let pick = |rng: &mut SplitMix64, pool: &[Signal]| {
            let s = pool[(rng.next_u64() as usize) % pool.len()];
            s.complement_if(rng.next_u64() & 1 == 1)
        };
        let a = pick(rng, &pool);
        let b = pick(rng, &pool);
        let c = pick(rng, &pool);
        let s = mig.maj(a, b, c);
        pool.push(s);
    }
    for (o, s) in pool.iter().rev().take(3).enumerate() {
        mig.add_output(format!("o{o}"), *s);
    }
    mig
}

/// One 64-pattern simulation word per arena node: a probe copy of the
/// MIG gets one output per node (regular edge), so every node's value
/// is observable — including nodes the original outputs cannot reach.
fn node_words(mig: &Mig, rng: &mut SplitMix64) -> Vec<u64> {
    let mut probe = mig.clone();
    let skip = probe.num_outputs();
    for n in 0..mig.num_nodes() {
        probe.add_output(format!("p{n}"), Signal::new(NodeId::from_index(n), false));
    }
    let net = probe.to_network();
    let words: Vec<u64> = (0..net.num_inputs()).map(|_| rng.next_u64()).collect();
    let outs = simulate_batch(&net, &words, 1);
    outs[skip..].to_vec()
}

/// Structural invariants of one enumeration, for a given `k` and
/// `max_cuts` request.
fn assert_cut_invariants(mig: &Mig, k: usize, max_cuts: usize) {
    let cuts = enumerate_cuts(mig, k, max_cuts);
    let k = k.clamp(2, 4);
    let max_cuts = max_cuts.clamp(1, 8);
    let reach = mig.reachable();
    assert_eq!(cuts.num_nodes(), mig.num_nodes(), "one slot per arena node");

    // Constant node: exactly one empty cut.
    let c = cuts.cuts_of(NodeId::CONST0.index());
    assert_eq!(c.len(), 1, "constant node carries exactly one cut");
    assert_eq!(c[0].len, 0, "the constant node's cut is empty");

    // Inputs: exactly the unit cut, computing the identity projection.
    for i in 0..mig.num_inputs() {
        let n = mig.input(i).node().index();
        let c = cuts.cuts_of(n);
        assert_eq!(c.len(), 1, "input {i} carries exactly its unit cut");
        assert_eq!(c[0].leaves(), &[n as u32], "input unit cut is self");
        assert_eq!(c[0].tt & 0b11, 0b10, "unit cut computes the identity");
    }

    for node in mig.gate_ids() {
        let n = node.index();
        let c = cuts.cuts_of(n);
        if !reach[n] {
            assert!(c.is_empty(), "unreachable gate n{n} must carry no cuts");
            continue;
        }
        assert!(!c.is_empty(), "reachable gate n{n} must carry cuts");
        assert!(
            c.len() <= max_cuts + 1,
            "n{n}: {} cuts exceed the {max_cuts} priority slots + unit cut",
            c.len()
        );
        let unit = c.last().unwrap();
        assert_eq!(unit.leaves(), &[n as u32], "unit cut comes last");
        for (pos, cut) in c.iter().enumerate() {
            assert!(
                (cut.len as usize) <= k,
                "n{n}: cut with {} leaves breaks the k = {k} bound",
                cut.len
            );
            assert!(cut.len >= 1, "only the constant node has an empty cut");
            let leaves = cut.leaves();
            for w in leaves.windows(2) {
                assert!(w[0] < w[1], "n{n}: leaves must be ascending and unique");
            }
            for &leaf in leaves {
                assert!(
                    (leaf as usize) < mig.num_nodes(),
                    "n{n}: leaf out of the arena"
                );
                if pos + 1 < c.len() {
                    assert!(
                        (leaf as usize) < n,
                        "n{n}: non-unit cut leaves must sit strictly below the root"
                    );
                }
            }
            if cut.len < 4 {
                assert_eq!(
                    cut.tt >> (1u32 << cut.len),
                    0,
                    "n{n}: truth-table bits above 2^len must be zero"
                );
            }
        }
    }
}

/// Every cut's packed truth table matches 64-pattern simulation: the
/// root's simulated word equals the cut function applied bitwise to the
/// leaves' simulated words.
fn assert_cut_functions(mig: &Mig, rng: &mut SplitMix64, k: usize, max_cuts: usize) {
    let cuts = enumerate_cuts(mig, k, max_cuts);
    let vals = node_words(mig, rng);
    for node in 0..cuts.num_nodes() {
        for cut in cuts.cuts_of(node) {
            let mut expect = 0u64;
            for t in 0..64 {
                let mut idx = 0usize;
                for (j, &leaf) in cut.leaves().iter().enumerate() {
                    idx |= (((vals[leaf as usize] >> t) & 1) as usize) << j;
                }
                expect |= ((cut.tt >> idx) as u64 & 1) << t;
            }
            assert_eq!(
                vals[node],
                expect,
                "n{node}: cut over {:?} computes tt {:#06x} wrongly",
                cut.leaves(),
                cut.tt
            );
        }
    }
}

/// Structural invariants over a random corpus, across the whole (k,
/// max_cuts) parameter grid including out-of-range requests (which must
/// clamp, not break).
#[test]
fn enumeration_invariants_hold_over_random_migs() {
    let mut rng = SplitMix64::seed_from_u64(0xC075_0001);
    for _ in 0..12 {
        let inputs = 3 + (rng.next_u64() % 4) as usize;
        let gates = 6 + (rng.next_u64() % 30) as usize;
        let mig = random_mig(&mut rng, inputs, gates);
        for (k, max_cuts) in [(2, 4), (3, 6), (4, 8), (0, 0), (9, 100)] {
            assert_cut_invariants(&mig, k, max_cuts);
        }
    }
}

/// Truth-table correctness over a random corpus.
#[test]
fn cut_truth_tables_match_simulation() {
    let mut rng = SplitMix64::seed_from_u64(0xC075_0002);
    for _ in 0..12 {
        let inputs = 3 + (rng.next_u64() % 4) as usize;
        let gates = 6 + (rng.next_u64() % 30) as usize;
        let mig = random_mig(&mut rng, inputs, gates);
        assert_cut_functions(&mig, &mut rng, 4, 8);
    }
}

/// The same invariants on a real benchmark (deep reconvergent logic,
/// where priority-slot eviction and dominance pruning actually fire).
#[test]
fn enumeration_invariants_hold_on_a_benchmark() {
    let net = mig_suite::benchgen::generate("count").expect("known benchmark");
    let mig = Mig::from_network(&net);
    let mut rng = SplitMix64::seed_from_u64(0xC075_0003);
    assert_cut_invariants(&mig, 4, 8);
    assert_cut_functions(&mig, &mut rng, 4, 8);
}
