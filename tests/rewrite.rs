//! Integration: cut-based Boolean rewriting over the generated MCNC
//! suite. Every benchmark must stay functionally equivalent and never
//! grow, and on the circuits where the algebraic pipeline plateaus the
//! database match must deliver a strict improvement (the measured deltas
//! live in `EXPERIMENTS.md`).

use mig_suite::mig::{optimize_rewrite, optimize_size, Mig, RewriteConfig, SizeOptConfig};

/// Number of 64-pattern blocks for the random half of equivalence checks.
const ROUNDS: usize = 16;

/// Runs `optimize_size` then `optimize_rewrite` on one benchmark and
/// returns `(import, after_size, after_rewrite)` sizes, asserting
/// equivalence and monotonicity at each stage.
fn sizes_through_pipeline(bench: &str) -> (usize, usize, usize) {
    let net = mig_suite::benchgen::generate(bench).expect("known benchmark");
    let mig = Mig::from_network(&net);
    let import = mig.size();

    let sized = optimize_size(&mig, &SizeOptConfig::default());
    assert!(
        sized.equiv(&mig, ROUNDS),
        "{bench}: size pass broke equivalence"
    );
    assert!(sized.size() <= import, "{bench}: size pass grew the MIG");

    let rewritten = optimize_rewrite(&sized, &RewriteConfig::default());
    assert!(
        rewritten.equiv(&mig, ROUNDS),
        "{bench}: rewrite pass broke equivalence"
    );
    assert!(
        rewritten.size() <= sized.size(),
        "{bench}: rewrite pass grew the MIG ({} > {})",
        rewritten.size(),
        sized.size()
    );
    (import, sized.size(), rewritten.size())
}

#[test]
fn rewrite_is_equivalent_and_monotone_on_the_suite() {
    // A representative slice of the MCNC suite: carry chains, XOR-heavy
    // ECC, PLA control logic, and ALU datapaths (the full 14-benchmark
    // sweep runs in release mode via `mighty bench`).
    for bench in ["my_adder", "count", "alu4", "b9", "cla", "C1355", "dalu"] {
        sizes_through_pipeline(bench);
    }
}

#[test]
fn rewrite_beats_the_algebraic_pipeline_where_it_plateaus() {
    // These circuits are where Algorithm 1 alone gets stuck (0 % or
    // near-0 % size delta, see EXPERIMENTS.md) and Boolean matching
    // against the database finds what algebraic reshaping cannot.
    for bench in ["my_adder", "cla", "alu4", "C1355"] {
        let (_, after_size, after_rewrite) = sizes_through_pipeline(bench);
        assert!(
            after_rewrite < after_size,
            "{bench}: expected a strict gain over the algebraic pipeline \
             ({after_rewrite} !< {after_size})"
        );
    }
}

#[test]
fn rewrite_alone_handles_an_unoptimized_import() {
    // Straight from import (no algebraic pre-pass): still equivalent,
    // still monotone, and the XOR-dominated adder collapses hard.
    let net = mig_suite::benchgen::generate("my_adder").unwrap();
    let mig = Mig::from_network(&net);
    let rewritten = optimize_rewrite(&mig, &RewriteConfig::default());
    assert!(rewritten.equiv(&mig, ROUNDS));
    assert!(rewritten.size() < mig.size());
}
