//! Determinism contract of the parallel-evaluate / serial-commit
//! rewriting engine: `optimize_rewrite` must produce **bit-identical**
//! MIGs — same arena, node for node — whatever the `jobs` setting,
//! because candidate preparation is read-only over an immutable
//! snapshot and commits are serialized deterministically.

use mig_suite::benchgen::{layered_random, RandomLogicParams};
use mig_suite::mig::{optimize_rewrite, Mig, RewriteConfig};
use mig_suite::netlist::SplitMix64;

/// Asserts two MIGs are structurally identical: node counts, per-node
/// children arrays (complement bits included), levels, and outputs.
fn assert_bit_identical(a: &Mig, b: &Mig, what: &str) {
    assert_eq!(a.num_nodes(), b.num_nodes(), "{what}: arena sizes differ");
    assert_eq!(a.num_inputs(), b.num_inputs(), "{what}: inputs differ");
    for node in a.gate_ids() {
        assert_eq!(
            a.children(node),
            b.children(node),
            "{what}: children of {node} differ"
        );
        assert_eq!(
            a.level_of(node),
            b.level_of(node),
            "{what}: level of {node} differs"
        );
    }
    assert_eq!(a.outputs(), b.outputs(), "{what}: outputs differ");
    assert_eq!(a.size(), b.size(), "{what}: sizes differ");
    assert_eq!(a.depth(), b.depth(), "{what}: depths differ");
}

fn rewrite_with_jobs(mig: &Mig, jobs: usize) -> Mig {
    optimize_rewrite(
        mig,
        &RewriteConfig {
            jobs,
            ..RewriteConfig::default()
        },
    )
}

#[test]
fn jobs_1_and_4_are_bit_identical_on_the_random_corpus() {
    // A SplitMix64-seeded corpus of layered reconvergent netlists at
    // assorted shapes; every one must optimize to the same graph at any
    // worker count, and the result must stay functionally equivalent.
    let mut seeds = SplitMix64::seed_from_u64(0xDE7E_2217_15E0_C0DE);
    for case in 0..6 {
        let p = RandomLogicParams {
            inputs: 12 + (seeds.next_u64() % 20) as usize,
            outputs: 4 + (seeds.next_u64() % 8) as usize,
            gates: 150 + (seeds.next_u64() % 350) as usize,
            layers: 4 + (seeds.next_u64() % 6) as usize,
            seed: seeds.next_u64(),
        };
        let net = layered_random(&format!("rnd{case}"), &p);
        let mig = Mig::from_network(&net);
        let base = rewrite_with_jobs(&mig, 1);
        assert!(
            base.equiv(&mig, 8),
            "case {case}: rewrite broke equivalence"
        );
        assert!(base.size() <= mig.size(), "case {case}: rewrite grew");
        for jobs in [2, 4] {
            let other = rewrite_with_jobs(&mig, jobs);
            assert_bit_identical(&base, &other, &format!("case {case}, jobs {jobs}"));
        }
    }
}

#[test]
fn jobs_1_and_4_are_bit_identical_on_mcnc_circuits() {
    // Real benchmark structure (XOR trees, carry chains, PLA control)
    // exercises the wavefront chunking harder than random logic.
    for bench in ["my_adder", "cla", "alu4", "C1908"] {
        let net = mig_suite::benchgen::generate(bench).expect("known benchmark");
        let mig = Mig::from_network(&net);
        let base = rewrite_with_jobs(&mig, 1);
        let par = rewrite_with_jobs(&mig, 4);
        assert_bit_identical(&base, &par, bench);
        assert!(base.equiv(&mig, 8), "{bench}: equivalence");
    }
}
