//! Acceptance gate for the cut-based technology mapper: every MCNC
//! benchmark maps onto both stock libraries, the mapped cell netlist
//! round-trips through `MappedDesign::to_network()` equivalent to the
//! unmapped MIG, and the MAJ-capable library never loses to the
//! majority-free control on suite mapped area.

use mig_suite::benchgen::MCNC_NAMES;
use mig_suite::mig::Mig;
use mig_suite::techmap::{map_mig, CellLibrary, MapConfig};

#[test]
fn every_benchmark_maps_and_verifies_on_both_libraries() {
    let libs = [CellLibrary::cmos22(), CellLibrary::cmos22_no_maj()];
    let mut area = [0.0f64; 2];
    for name in MCNC_NAMES {
        let net = mig_suite::benchgen::generate(name).expect("known benchmark");
        let mig = Mig::from_network(&net).cleanup();
        let reference = mig.to_network();
        for (i, lib) in libs.iter().enumerate() {
            let design = map_mig(&mig, lib, &MapConfig::default());
            assert!(design.num_cells() > 0, "{name}/{}: empty mapping", lib.name);
            assert!(
                mig_suite::sim::equivalent(&reference, &design.to_network(), 4),
                "{name}/{}: mapped netlist is not equivalent",
                lib.name
            );
            area[i] += design.area();
        }
    }
    assert!(
        area[0] < area[1],
        "cmos22 must beat cmos22-nomaj on suite mapped area ({:.3} vs {:.3} µm²)",
        area[0],
        area[1]
    );
}

#[test]
fn delay_mapping_verifies_and_is_no_slower_per_benchmark() {
    let lib = CellLibrary::cmos22();
    for name in ["my_adder", "alu4", "count", "b9"] {
        let net = mig_suite::benchgen::generate(name).expect("known benchmark");
        let mig = Mig::from_network(&net).cleanup();
        let reference = mig.to_network();
        let by_area = map_mig(&mig, &lib, &MapConfig::default());
        let by_delay = map_mig(&mig, &lib, &MapConfig::delay());
        assert!(
            mig_suite::sim::equivalent(&reference, &by_delay.to_network(), 4),
            "{name}: delay-mapped netlist is not equivalent"
        );
        assert!(
            by_delay.delay() <= by_area.delay() + 1e-9,
            "{name}: delay mapping slower than area mapping ({} vs {})",
            by_delay.delay(),
            by_area.delay()
        );
    }
}
