//! BDD-based combinational equivalence checking.

use crate::decompose::build_network_bdds;
use crate::Bdd;
use mig_netlist::Network;

/// Checks two networks for functional equivalence by building both in one
/// BDD manager and comparing canonical references.
///
/// Returns `None` when the construction exceeds `node_limit` BDD nodes
/// (the caller should fall back to simulation). Inputs are matched
/// positionally; output order must agree.
///
/// # Panics
///
/// Panics if input or output counts differ.
pub fn check_equivalence(a: &Network, b: &Network, node_limit: usize) -> Option<bool> {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let order = crate::reorder::affinity_order(a);
    let mut bdd = Bdd::with_order(a.num_inputs(), order);
    let fa = build_network_bdds(&mut bdd, a);
    if bdd.num_nodes() > node_limit {
        return None;
    }
    let fb = build_network_bdds(&mut bdd, b);
    if bdd.num_nodes() > node_limit {
        return None;
    }
    Some(fa == fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig_netlist::parse_verilog;

    #[test]
    fn equivalent_rewritings_agree() {
        let n1 = parse_verilog(
            "module t(a,b,c,y); input a,b,c; output y;\n\
             assign y = (a & b) | (a & c); endmodule",
        )
        .expect("parses");
        let n2 = parse_verilog(
            "module t(a,b,c,y); input a,b,c; output y;\n\
             assign y = a & (b | c); endmodule",
        )
        .expect("parses");
        assert_eq!(check_equivalence(&n1, &n2, 1 << 20), Some(true));
    }

    #[test]
    fn different_functions_rejected() {
        let n1 = parse_verilog("module t(a,b,y); input a,b; output y; assign y = a & b; endmodule")
            .expect("parses");
        let n2 = parse_verilog("module t(a,b,y); input a,b; output y; assign y = a | b; endmodule")
            .expect("parses");
        assert_eq!(check_equivalence(&n1, &n2, 1 << 20), Some(false));
    }

    #[test]
    fn node_limit_triggers_fallback() {
        let n1 = parse_verilog("module t(a,b,y); input a,b; output y; assign y = a ^ b; endmodule")
            .expect("parses");
        assert_eq!(check_equivalence(&n1, &n1, 1), None);
    }

    #[test]
    fn multi_output_checked_positionally() {
        let n1 = parse_verilog(
            "module t(a,b,y,z); input a,b; output y,z;\n\
             assign y = a ^ b; assign z = a & b; endmodule",
        )
        .expect("parses");
        let n2 = parse_verilog(
            "module t(a,b,y,z); input a,b; output y,z;\n\
             assign y = (a & ~b) | (~a & b); assign z = ~(~a | ~b); endmodule",
        )
        .expect("parses");
        assert_eq!(check_equivalence(&n1, &n2, 1 << 20), Some(true));
        // Swapped outputs are not equivalent positionally.
        let n3 = parse_verilog(
            "module t(a,b,y,z); input a,b; output y,z;\n\
             assign z = a ^ b; assign y = a & b; endmodule",
        )
        .expect("parses");
        assert_eq!(check_equivalence(&n1, &n3, 1 << 20), Some(false));
    }
}
