//! # Reduced Ordered Binary Decision Diagrams
//!
//! The BDD substrate of the MIG suite: a complement-edge ROBDD manager
//! ([`Bdd`]), static variable-ordering heuristics ([`reorder`]), a
//! BDS-style decomposition flow ([`bds_optimize`]) reproducing the
//! paper's "BDD Decomposition" baseline, and BDD-based combinational
//! equivalence checking ([`check_equivalence`]) used to verify every
//! optimization engine in the workspace.
//!
//! # Example
//!
//! ```
//! use mig_bdd::{Bdd, BddRef};
//!
//! let mut bdd = Bdd::new(2);
//! let a = bdd.var(0);
//! let b = bdd.var(1);
//! let f = bdd.xor(a, b);
//! assert_eq!(bdd.sat_count(f), 2);
//! ```

mod bdd;
pub mod decompose;
mod equiv;
pub mod reorder;

pub use crate::bdd::{Bdd, BddRef};
pub use decompose::{bds_optimize, build_network_bdds, decompose_to_network};
pub use equiv::check_equivalence;
