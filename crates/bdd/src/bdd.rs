//! A reduced ordered BDD manager with complement edges.

use std::collections::HashMap;
use std::fmt;

/// A reference to a BDD function: node index plus complement attribute.
///
/// The single terminal node (index 0) represents constant 1;
/// [`BddRef::FALSE`] is its complement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// Constant true (regular edge to the terminal).
    pub const TRUE: BddRef = BddRef(0);
    /// Constant false (complemented edge to the terminal).
    pub const FALSE: BddRef = BddRef(1);

    fn new(node: u32, complemented: bool) -> Self {
        BddRef(node << 1 | complemented as u32)
    }

    /// The node index this reference points at.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the reference carries the complement attribute.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// True for the two constant references.
    pub fn is_constant(self) -> bool {
        self.node() == 0
    }

    fn complement_if(self, c: bool) -> BddRef {
        BddRef(self.0 ^ c as u32)
    }

    /// Raw packed encoding (useful as a map key).
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::ops::Not for BddRef {
    type Output = BddRef;

    fn not(self) -> BddRef {
        BddRef(self.0 ^ 1)
    }
}

impl fmt::Debug for BddRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == BddRef::TRUE {
            write!(f, "⊤")
        } else if *self == BddRef::FALSE {
            write!(f, "⊥")
        } else if self.is_complemented() {
            write!(f, "!b{}", self.node())
        } else {
            write!(f, "b{}", self.node())
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BddNode {
    var: u32,
    high: BddRef,
    low: BddRef,
}

/// A reduced ordered binary decision diagram manager (paper reference
/// \[6\]), with complement edges and the canonical-form invariant that
/// every stored node's high edge is regular.
///
/// # Example
///
/// ```
/// use mig_bdd::{Bdd, BddRef};
///
/// let mut bdd = Bdd::new(3);
/// let a = bdd.var(0);
/// let b = bdd.var(1);
/// let c = bdd.var(2);
/// let ab = bdd.and(a, b);
/// let f = bdd.or(ab, c);
/// assert_eq!(bdd.eval(f, &[true, true, false]), true);
/// assert_eq!(bdd.eval(f, &[true, false, false]), false);
/// ```
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<BddNode>,
    unique: HashMap<(u32, u32, u32), u32>,
    ite_cache: HashMap<(u32, u32, u32), BddRef>,
    /// `level_of_var[v]` = position of variable `v` in the order.
    level_of_var: Vec<u32>,
    /// `var_at_level[l]` = variable at order position `l`.
    var_at_level: Vec<u32>,
}

impl Bdd {
    /// Creates a manager over `num_vars` variables in natural order.
    pub fn new(num_vars: usize) -> Self {
        Self::with_order(num_vars, (0..num_vars).collect())
    }

    /// Creates a manager with an explicit variable order (a permutation
    /// of `0..num_vars`; earlier = closer to the root).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..num_vars`.
    pub fn with_order(num_vars: usize, order: Vec<usize>) -> Self {
        assert_eq!(order.len(), num_vars);
        let mut level_of_var = vec![u32::MAX; num_vars];
        for (lvl, &v) in order.iter().enumerate() {
            assert!(
                v < num_vars && level_of_var[v] == u32::MAX,
                "not a permutation"
            );
            level_of_var[v] = lvl as u32;
        }
        Bdd {
            nodes: vec![BddNode {
                var: u32::MAX,
                high: BddRef::TRUE,
                low: BddRef::TRUE,
            }],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            level_of_var,
            var_at_level: order.iter().map(|&v| v as u32).collect(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.level_of_var.len()
    }

    /// The current variable order (root to leaves).
    pub fn order(&self) -> Vec<usize> {
        self.var_at_level.iter().map(|&v| v as usize).collect()
    }

    /// Total allocated nodes (including dead ones).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The projection function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vars()`.
    pub fn var(&mut self, v: usize) -> BddRef {
        assert!(v < self.num_vars());
        self.mk(v as u32, BddRef::TRUE, BddRef::FALSE)
    }

    fn level(&self, r: BddRef) -> u32 {
        if r.is_constant() {
            u32::MAX
        } else {
            self.level_of_var[self.nodes[r.node() as usize].var as usize]
        }
    }

    fn mk(&mut self, var: u32, high: BddRef, low: BddRef) -> BddRef {
        if high == low {
            return high;
        }
        // Canonical form: the high edge is regular.
        if high.is_complemented() {
            return !self.mk(var, !high, !low);
        }
        let key = (var, high.raw(), low.raw());
        if let Some(&n) = self.unique.get(&key) {
            return BddRef::new(n, false);
        }
        let n = self.nodes.len() as u32;
        self.nodes.push(BddNode { var, high, low });
        self.unique.insert(key, n);
        BddRef::new(n, false)
    }

    /// Cofactor of `r` with respect to the variable at the root level
    /// `lvl` (identity if `r`'s top variable is below).
    fn cofactors(&self, r: BddRef, lvl: u32) -> (BddRef, BddRef) {
        if self.level(r) != lvl {
            return (r, r);
        }
        let n = self.nodes[r.node() as usize];
        let c = r.is_complemented();
        (n.high.complement_if(c), n.low.complement_if(c))
    }

    /// If-then-else: `ite(f, g, h) = f·g + f'·h` — the universal BDD
    /// operation all others derive from.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::TRUE {
            return g;
        }
        if f == BddRef::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return f;
        }
        if g == BddRef::FALSE && h == BddRef::TRUE {
            return !f;
        }
        let key = (f.raw(), g.raw(), h.raw());
        if let Some(&r) = self.ite_cache.get(&key) {
            return r;
        }
        let lvl = self.level(f).min(self.level(g)).min(self.level(h));
        let var = self.var_at_level[lvl as usize];
        let (f1, f0) = self.cofactors(f, lvl);
        let (g1, g0) = self.cofactors(g, lvl);
        let (h1, h0) = self.cofactors(h, lvl);
        let hi = self.ite(f1, g1, h1);
        let lo = self.ite(f0, g0, h0);
        let r = self.mk(var, hi, lo);
        self.ite_cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, g, BddRef::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, BddRef::TRUE, g)
    }

    /// Exclusive-or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, !g, g)
    }

    /// Three-input majority.
    pub fn maj(&mut self, a: BddRef, b: BddRef, c: BddRef) -> BddRef {
        let bc_or = self.or(b, c);
        let bc_and = self.and(b, c);
        self.ite(a, bc_or, bc_and)
    }

    /// Evaluates `r` under a boolean assignment (indexed by variable).
    pub fn eval(&self, r: BddRef, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars());
        let mut cur = r;
        loop {
            if cur.is_constant() {
                return cur == BddRef::TRUE;
            }
            let n = self.nodes[cur.node() as usize];
            let next = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
            cur = next.complement_if(cur.is_complemented());
        }
    }

    /// Number of distinct internal nodes reachable from `r`.
    pub fn size(&self, r: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![r.node()];
        while let Some(n) = stack.pop() {
            if n == 0 || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n as usize];
            stack.push(node.high.node());
            stack.push(node.low.node());
        }
        seen.len()
    }

    /// The set of variables `r` depends on.
    pub fn support(&self, r: BddRef) -> Vec<usize> {
        let mut vars = std::collections::HashSet::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![r.node()];
        while let Some(n) = stack.pop() {
            if n == 0 || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n as usize];
            vars.insert(node.var as usize);
            stack.push(node.high.node());
            stack.push(node.low.node());
        }
        let mut v: Vec<usize> = vars.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Fraction of input assignments satisfying `r` (its signal
    /// probability under the uniform input model).
    pub fn sat_fraction(&self, r: BddRef) -> f64 {
        fn rec(bdd: &Bdd, node: u32, memo: &mut HashMap<u32, f64>) -> f64 {
            if node == 0 {
                return 1.0; // the terminal is constant 1
            }
            if let Some(&c) = memo.get(&node) {
                return c;
            }
            let n = bdd.nodes[node as usize];
            let frac_of = |bdd: &Bdd, r: BddRef, memo: &mut HashMap<u32, f64>| {
                let f = rec(bdd, r.node(), memo);
                if r.is_complemented() {
                    1.0 - f
                } else {
                    f
                }
            };
            let hi = frac_of(bdd, n.high, memo);
            let lo = frac_of(bdd, n.low, memo);
            let f = 0.5 * hi + 0.5 * lo;
            memo.insert(node, f);
            f
        }
        let mut memo = HashMap::new();
        let f = rec(self, r.node(), &mut memo);
        if r.is_complemented() {
            1.0 - f
        } else {
            f
        }
    }

    /// Number of satisfying assignments of `r` over all variables.
    ///
    /// Exact for up to 52 variables (computed in `f64`).
    pub fn sat_count(&self, r: BddRef) -> u64 {
        (self.sat_fraction(r) * (2f64).powi(self.num_vars() as i32)).round() as u64
    }

    /// Raw structural access for decomposition: `(var, high, low)` of a
    /// non-constant reference, with the complement pushed into the
    /// children (functional view).
    pub fn node_view(&self, r: BddRef) -> Option<(usize, BddRef, BddRef)> {
        if r.is_constant() {
            return None;
        }
        let n = self.nodes[r.node() as usize];
        let c = r.is_complemented();
        Some((
            n.var as usize,
            n.high.complement_if(c),
            n.low.complement_if(c),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_vars() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        assert!(bdd.eval(a, &[true, false]));
        assert!(!bdd.eval(a, &[false, true]));
        assert!(bdd.eval(BddRef::TRUE, &[false, false]));
        assert!(!bdd.eval(BddRef::FALSE, &[true, true]));
    }

    #[test]
    fn canonical_complement_edges() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        let na = !a;
        // a and !a share the same node.
        assert_eq!(a.node(), na.node());
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let g = bdd.or(!a, !b); // De Morgan: g = !f
        assert_eq!(g, !f, "complement canonical form");
    }

    #[test]
    fn all_two_var_functions() {
        for bits in 0u32..16 {
            let mut bdd = Bdd::new(2);
            let a = bdd.var(0);
            let b = bdd.var(1);
            // Build the function from its minterms.
            let mut f = BddRef::FALSE;
            for m in 0..4 {
                if (bits >> m) & 1 == 1 {
                    let la = if m & 1 == 1 { a } else { !a };
                    let lb = if m & 2 == 2 { b } else { !b };
                    let minterm = bdd.and(la, lb);
                    f = bdd.or(f, minterm);
                }
            }
            for m in 0..4usize {
                let assign = [m & 1 == 1, m & 2 == 2];
                assert_eq!(
                    bdd.eval(f, &assign),
                    (bits >> m) & 1 == 1,
                    "bits {bits} m {m}"
                );
            }
        }
    }

    #[test]
    fn xor_chain_is_linear_size() {
        let mut bdd = Bdd::new(16);
        let mut f = BddRef::FALSE;
        for v in 0..16 {
            let x = bdd.var(v);
            f = bdd.xor(f, x);
        }
        assert_eq!(bdd.size(f), 16, "XOR is linear in a BDD");
    }

    #[test]
    fn order_matters_for_multiplexed_functions() {
        // f = a0·b0 + a1·b1 + a2·b2 : interleaved order is linear,
        // separated order is exponential (classic example).
        let build = |order: Vec<usize>| {
            let mut bdd = Bdd::with_order(6, order);
            let mut f = BddRef::FALSE;
            for i in 0..3 {
                let a = bdd.var(i);
                let b = bdd.var(3 + i);
                let t = bdd.and(a, b);
                f = bdd.or(f, t);
            }
            bdd.size(f)
        };
        let interleaved = build(vec![0, 3, 1, 4, 2, 5]);
        let separated = build(vec![0, 1, 2, 3, 4, 5]);
        assert!(interleaved < separated, "{interleaved} !< {separated}");
    }

    #[test]
    fn support_and_size() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0);
        let c = bdd.var(2);
        let f = bdd.and(a, c);
        assert_eq!(bdd.support(f), vec![0, 2]);
        assert_eq!(bdd.size(f), 2);
    }

    #[test]
    fn sat_count_simple() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        assert_eq!(bdd.sat_count(f), 2, "ab over 3 vars has 2 minterms");
        let g = bdd.or(a, b);
        assert_eq!(bdd.sat_count(g), 6);
        assert_eq!(bdd.sat_count(BddRef::TRUE), 8);
        assert_eq!(bdd.sat_count(BddRef::FALSE), 0);
    }

    #[test]
    fn maj_function() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let m = bdd.maj(a, b, c);
        for bits in 0..8usize {
            let assign = [bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
            let ones = assign.iter().filter(|&&v| v).count();
            assert_eq!(bdd.eval(m, &assign), ones >= 2);
        }
    }

    #[test]
    fn node_view_pushes_complement() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let (var, hi, lo) = bdd.node_view(!f).expect("non-constant");
        assert_eq!(var, 0);
        assert_eq!(lo, BddRef::TRUE, "(ab)' with a=0 is 1");
        // hi = b' as a function.
        assert!(bdd.eval(hi, &[true, false]));
        assert!(!bdd.eval(hi, &[true, true]));
    }
}
