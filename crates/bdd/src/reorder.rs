//! Variable-ordering heuristics.
//!
//! Good variable orders keep BDDs small. Two static heuristics are
//! provided: a depth-first fanin order (variables in the order the
//! outputs' cones first reach them) and a trial-based selection that
//! builds with several candidate orders and keeps the smallest.

use crate::{Bdd, BddRef};
use mig_netlist::{GateKind, Network};

/// Depth-first fanin affinity order: inputs are listed in the order a
/// DFS from the outputs first touches them. Related inputs end up close
/// together, which keeps multiplexed/arithmetic structures compact.
pub fn affinity_order(net: &Network) -> Vec<usize> {
    let mut pos_of_input = vec![usize::MAX; net.num_inputs()];
    let input_index: std::collections::HashMap<_, _> = net
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, &g)| (g, i))
        .collect();
    let mut order = Vec::new();
    let mut visited = vec![false; net.num_gates()];
    let mut stack: Vec<_> = net.outputs().iter().rev().map(|&(_, g)| g).collect();
    while let Some(id) = stack.pop() {
        if visited[id.index()] {
            continue;
        }
        visited[id.index()] = true;
        let gate = net.gate(id);
        if gate.kind() == GateKind::Input {
            let i = input_index[&id];
            if pos_of_input[i] == usize::MAX {
                pos_of_input[i] = order.len();
                order.push(i);
            }
        }
        for &f in gate.fanins().iter().rev() {
            stack.push(f);
        }
    }
    // Unreached inputs go last, in declaration order.
    for (i, &pos) in pos_of_input.iter().enumerate() {
        if pos == usize::MAX {
            order.push(i);
        }
    }
    order
}

/// Builds the network's BDDs under several candidate orders and returns
/// `(bdd, outputs, order)` for the smallest total size.
pub fn build_best_order(net: &Network) -> (Bdd, Vec<BddRef>, Vec<usize>) {
    let natural: Vec<usize> = (0..net.num_inputs()).collect();
    let affinity = affinity_order(net);
    let mut reversed = affinity.clone();
    reversed.reverse();
    let mut best: Option<(usize, Bdd, Vec<BddRef>, Vec<usize>)> = None;
    for order in [affinity, natural, reversed] {
        let mut bdd = Bdd::with_order(net.num_inputs(), order.clone());
        let outs = crate::decompose::build_network_bdds(&mut bdd, net);
        let total: usize = outs.iter().map(|&r| bdd.size(r)).sum();
        match &best {
            Some((t, _, _, _)) if *t <= total => {}
            _ => best = Some((total, bdd, outs, order)),
        }
    }
    let (_, bdd, outs, order) = best.expect("at least one order tried");
    (bdd, outs, order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_groups_related_inputs() {
        // y = (a0&b0) | (a1&b1): DFS order interleaves a_i with b_i.
        let mut net = Network::new("t");
        let a0 = net.add_input("a0");
        let a1 = net.add_input("a1");
        let b0 = net.add_input("b0");
        let b1 = net.add_input("b1");
        let t0 = net.and(a0, b0);
        let t1 = net.and(a1, b1);
        let y = net.or(t0, t1);
        net.set_output("y", y);
        let order = affinity_order(&net);
        // a0 (index 0) and b0 (index 2) must be adjacent in the order.
        let pos = |i: usize| order.iter().position(|&x| x == i).expect("present");
        assert_eq!(pos(0).abs_diff(pos(2)), 1, "order {order:?}");
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn unreached_inputs_are_kept() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let _unused = net.add_input("unused");
        let g = net.not(a);
        net.set_output("y", g);
        let order = affinity_order(&net);
        assert_eq!(order.len(), 2);
        assert!(order.contains(&1));
    }

    #[test]
    fn best_order_beats_or_matches_natural() {
        let mut net = Network::new("t");
        let ins: Vec<_> = (0..6).map(|i| net.add_input(format!("x{i}"))).collect();
        // Multiplexed structure sensitive to ordering.
        let mut acc = None;
        for i in 0..3 {
            let t = net.and(ins[i], ins[3 + i]);
            acc = Some(match acc {
                None => t,
                Some(p) => net.or(p, t),
            });
        }
        net.set_output("y", acc.expect("built"));
        let (bdd, outs, _order) = build_best_order(&net);
        let best_total: usize = outs.iter().map(|&r| bdd.size(r)).sum();

        let mut nat = Bdd::new(6);
        let nat_outs = crate::decompose::build_network_bdds(&mut nat, &net);
        let nat_total: usize = nat_outs.iter().map(|&r| nat.size(r)).sum();
        assert!(best_total <= nat_total);
    }
}
