//! BDS-style decomposition of BDDs into multi-level logic networks
//! (the paper's "BDD Decomposition" baseline, after Yang & Ciesielski's
//! BDS tool — reference \[7\]).
//!
//! Every output BDD is decomposed recursively: terminal-cofactor cases
//! become AND/OR gates, complemented-cofactor pairs become XNOR, and the
//! general case a Shannon MUX. Decomposition results are memoized per BDD
//! node, so sharing in the diagram becomes sharing in the network.

use crate::{Bdd, BddRef};
use mig_netlist::{GateId, GateKind, Network};
use std::collections::HashMap;

/// Builds the BDDs of every output of `net` in the given manager.
///
/// Inputs are mapped positionally to BDD variables `0..num_inputs`.
///
/// # Panics
///
/// Panics if the manager has fewer variables than the network inputs.
pub fn build_network_bdds(bdd: &mut Bdd, net: &Network) -> Vec<BddRef> {
    assert!(bdd.num_vars() >= net.num_inputs());
    let mut map: HashMap<GateId, BddRef> = HashMap::new();
    for (i, &id) in net.inputs().iter().enumerate() {
        let v = bdd.var(i);
        map.insert(id, v);
    }
    for (id, gate) in net.iter() {
        if gate.kind() == GateKind::Input {
            continue;
        }
        let f: Vec<BddRef> = gate.fanins().iter().map(|g| map[g]).collect();
        let r = match gate.kind() {
            GateKind::Const0 => BddRef::FALSE,
            GateKind::Const1 => BddRef::TRUE,
            GateKind::Input => unreachable!("filtered above"),
            GateKind::Buf => f[0],
            GateKind::Not => !f[0],
            GateKind::And => f[1..].iter().fold(f[0], |acc, &x| bdd.and(acc, x)),
            GateKind::Or => f[1..].iter().fold(f[0], |acc, &x| bdd.or(acc, x)),
            GateKind::Xor => f[1..].iter().fold(f[0], |acc, &x| bdd.xor(acc, x)),
            GateKind::Xnor => {
                let x = bdd.xor(f[0], f[1]);
                !x
            }
            GateKind::Nand => {
                let x = bdd.and(f[0], f[1]);
                !x
            }
            GateKind::Nor => {
                let x = bdd.or(f[0], f[1]);
                !x
            }
            GateKind::Mux => bdd.ite(f[0], f[1], f[2]),
            GateKind::Maj => bdd.maj(f[0], f[1], f[2]),
        };
        map.insert(id, r);
    }
    net.outputs().iter().map(|(_, g)| map[g]).collect()
}

struct Decomposer<'a> {
    bdd: &'a Bdd,
    net: Network,
    inputs: Vec<GateId>,
    memo: HashMap<u32, GateId>,
    inverters: HashMap<GateId, GateId>,
}

impl<'a> Decomposer<'a> {
    fn gate_of(&mut self, r: BddRef) -> GateId {
        if r == BddRef::TRUE {
            return self.net.constant(true);
        }
        if r == BddRef::FALSE {
            return self.net.constant(false);
        }
        if let Some(&g) = self.memo.get(&r.raw()) {
            return g;
        }
        // Decompose the regular reference; complement via an inverter.
        if r.is_complemented() {
            let base = self.gate_of(!r);
            let inv = *self
                .inverters
                .entry(base)
                .or_insert_with(|| self.net.add_gate(GateKind::Not, vec![base]));
            self.memo.insert(r.raw(), inv);
            return inv;
        }
        let (var, hi, lo) = self.bdd.node_view(r).expect("non-constant");
        let x = self.inputs[var];
        let gate = if hi == BddRef::TRUE {
            // f = x + f0
            let l = self.gate_of(lo);
            self.net.add_gate(GateKind::Or, vec![x, l])
        } else if hi == BddRef::FALSE {
            // f = x'·f0
            let l = self.gate_of(lo);
            let nx = self.not_of(x);
            self.net.add_gate(GateKind::And, vec![nx, l])
        } else if lo == BddRef::FALSE {
            // f = x·f1
            let h = self.gate_of(hi);
            self.net.add_gate(GateKind::And, vec![x, h])
        } else if lo == BddRef::TRUE {
            // f = x' + f1
            let h = self.gate_of(hi);
            let nx = self.not_of(x);
            self.net.add_gate(GateKind::Or, vec![nx, h])
        } else if lo == !hi {
            // f = x·f1 + x'·f1' = XNOR(x, f1)
            let h = self.gate_of(hi);
            self.net.add_gate(GateKind::Xnor, vec![x, h])
        } else {
            let h = self.gate_of(hi);
            let l = self.gate_of(lo);
            self.net.add_gate(GateKind::Mux, vec![x, h, l])
        };
        self.memo.insert(r.raw(), gate);
        gate
    }

    fn not_of(&mut self, g: GateId) -> GateId {
        *self
            .inverters
            .entry(g)
            .or_insert_with(|| self.net.add_gate(GateKind::Not, vec![g]))
    }
}

/// Decomposes per-output BDDs into a multi-level logic network.
///
/// `input_names` and `output_names` label the interface; input `i`
/// corresponds to BDD variable `i`.
///
/// # Panics
///
/// Panics if `outputs.len() != output_names.len()`.
pub fn decompose_to_network(
    bdd: &Bdd,
    outputs: &[BddRef],
    input_names: &[String],
    output_names: &[String],
    name: &str,
) -> Network {
    assert_eq!(outputs.len(), output_names.len());
    let mut net = Network::new(name.to_string());
    let inputs: Vec<GateId> = input_names
        .iter()
        .map(|n| net.add_input(n.clone()))
        .collect();
    let mut d = Decomposer {
        bdd,
        net,
        inputs,
        memo: HashMap::new(),
        inverters: HashMap::new(),
    };
    let gates: Vec<GateId> = outputs.iter().map(|&r| d.gate_of(r)).collect();
    let mut net = d.net;
    for (name, gate) in output_names.iter().zip(gates) {
        net.set_output(name.clone(), gate);
    }
    net
}

/// End-to-end BDS-style flow: network → BDDs (with a fanin-affinity
/// variable order) → decomposed network. This is the paper's "BDD
/// decomposition" optimization baseline.
pub fn bds_optimize(net: &Network) -> Network {
    let order = crate::reorder::affinity_order(net);
    let mut bdd = Bdd::with_order(net.num_inputs(), order);
    let outputs = build_network_bdds(&mut bdd, net);
    let output_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    let input_names: Vec<String> = net.input_names().to_vec();
    decompose_to_network(&bdd, &outputs, &input_names, &output_names, net.name()).sweep()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig_netlist::parse_verilog;

    fn check_equal(a: &Network, b: &Network) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        let n = a.num_inputs();
        assert!(n <= 12);
        for bits in 0..(1u32 << n) {
            let assign: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(a.eval(&assign), b.eval(&assign), "assign {bits:b}");
        }
    }

    #[test]
    fn decompose_round_trip_small() {
        let src = "module t(a,b,c,d,y,z); input a,b,c,d; output y,z;\n\
            assign y = (a & b) | (c ^ d);\n\
            assign z = maj(a, c, d) & ~b;\nendmodule";
        let net = parse_verilog(src).expect("parses");
        let opt = bds_optimize(&net);
        check_equal(&net, &opt);
    }

    #[test]
    fn decompose_xor_uses_xnor_gates() {
        let src = "module t(a,b,c,y); input a,b,c; output y;\n\
            assign y = a ^ b ^ c;\nendmodule";
        let net = parse_verilog(src).expect("parses");
        let opt = bds_optimize(&net);
        check_equal(&net, &opt);
        let has_xnor = opt.iter().any(|(_, g)| g.kind() == GateKind::Xnor);
        assert!(has_xnor, "parity decomposes through the XNOR rule");
    }

    #[test]
    fn decompose_shares_common_subfunctions() {
        // Two outputs with a shared subfunction: memoization must share.
        let src = "module t(a,b,c,y,z); input a,b,c; output y,z;\n\
            assign y = a & b & c;\n\
            assign z = (a & b & c) | ~a;\nendmodule";
        let net = parse_verilog(src).expect("parses");
        let opt = bds_optimize(&net);
        check_equal(&net, &opt);
    }

    #[test]
    fn adder_decomposition_is_correct() {
        // 3-bit ripple adder: deep reconvergence exercises MUX cases.
        let src = "module add(a0,a1,a2,b0,b1,b2,s0,s1,s2,c);\n\
            input a0,a1,a2,b0,b1,b2; output s0,s1,s2,c;\n\
            wire c0, c1;\n\
            assign s0 = a0 ^ b0;\n\
            assign c0 = a0 & b0;\n\
            assign s1 = a1 ^ b1 ^ c0;\n\
            assign c1 = maj(a1, b1, c0);\n\
            assign s2 = a2 ^ b2 ^ c1;\n\
            assign c  = maj(a2, b2, c1);\nendmodule";
        let net = parse_verilog(src).expect("parses");
        let opt = bds_optimize(&net);
        check_equal(&net, &opt);
    }
}
