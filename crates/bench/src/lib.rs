//! # Benchmark harness for the MIG suite
//!
//! Runs the four optimizer passes (size, Boolean rewriting, depth,
//! activity) over the generated MCNC suite, timing every pass, and
//! serializes the result as `BENCH_opt.json` in a stable schema so
//! successive PRs accumulate a performance trajectory (compare the
//! committed file against a fresh run to spot regressions).
//!
//! The schema (`mig-bench/v3`, documented in `DESIGN.md` §7; v2 added
//! the cut-based Boolean `rewrite` pass between `size` and `depth`; v3
//! added the top-level `threads` field recording the rewrite engine's
//! resolved evaluate-phase worker count — wall times are per pass as
//! before, and every size/depth/activity/equiv field is identical for
//! any thread count):
//!
//! ```json
//! {
//!   "schema": "mig-bench/v3",
//!   "suite": "mcnc14",
//!   "mode": "full",
//!   "effort": 4,
//!   "threads": 1,
//!   "benchmarks": [
//!     {
//!       "name": "alu4", "inputs": 14, "outputs": 8,
//!       "import": {"size": 151, "depth": 16, "activity": 29.03},
//!       "passes": [
//!         {"pass": "size", "size": 83, "depth": 14,
//!          "activity": 18.1, "millis": 12.3},
//!         {"pass": "rewrite", "size": 79, "depth": 14,
//!          "activity": 17.8, "millis": 9.0}
//!       ],
//!       "equiv": true, "size_ok": true, "total_millis": 40.1
//!     }
//!   ],
//!   "totals": {"benchmarks": 14, "millis": 400.0,
//!              "size_before": 1000, "size_after": 800, "all_ok": true}
//! }
//! ```
//!
//! Numbers are written with enough precision to diff; wall times are
//! machine-dependent and meant for *relative* comparison on one machine.
//!
//! ```
//! use mig_bench::{run_suite, BenchConfig};
//!
//! let cfg = BenchConfig { names: vec!["my_adder".into()], ..BenchConfig::quick() };
//! let report = run_suite(&cfg);
//! assert!(report.all_ok());
//! assert_eq!(report.benchmarks.len(), 1);
//! assert!(mig_bench::to_json(&report).contains("\"schema\": \"mig-bench/v3\""));
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use mig_core::{
    optimize_activity, optimize_depth, optimize_rewrite, optimize_size, ActivityOptConfig,
    DepthOptConfig, Mig, RewriteConfig, SizeOptConfig,
};

/// Which optimizers the harness runs, in order.
pub const PASSES: [&str; 4] = ["size", "rewrite", "depth", "activity"];

/// Benchmarks skipped in `--quick` mode (the largest generators — they
/// dominate wall time without adding CI signal).
pub const QUICK_SKIP: [&str; 3] = ["clma", "s38417", "bigkey"];

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Benchmark names to run; empty means the full MCNC suite (minus
    /// [`QUICK_SKIP`] when `quick`).
    pub names: Vec<String>,
    /// Quick mode: lower effort, fewer equivalence rounds, big
    /// benchmarks skipped. Intended for CI.
    pub quick: bool,
    /// Optimizer effort (the paper's reshape/eliminate cycle budget).
    pub effort: usize,
    /// 64-pattern blocks for the random half of equivalence checking.
    pub rounds: usize,
    /// Rewrite-engine evaluate-phase worker threads (0 = available
    /// parallelism). Affects wall time only: every reported
    /// size/depth/activity/equiv value is identical for any setting.
    pub jobs: usize,
}

impl BenchConfig {
    /// Full-suite defaults: every benchmark with Algorithm 1's default
    /// effort (4) applied uniformly to all four passes, so a single
    /// number describes the run (the configuration the perf trajectory
    /// tracks; note `mighty opt` instead uses each optimizer's own
    /// default).
    pub fn full() -> Self {
        BenchConfig {
            names: Vec::new(),
            quick: false,
            effort: SizeOptConfig::default().effort,
            rounds: 8,
            jobs: 0,
        }
    }

    /// CI defaults: effort 1, biggest circuits skipped.
    pub fn quick() -> Self {
        BenchConfig {
            names: Vec::new(),
            quick: true,
            effort: 1,
            rounds: 4,
            jobs: 0,
        }
    }
}

/// Size/depth/activity of one MIG at one pipeline point.
#[derive(Debug, Clone, Copy)]
pub struct Metrics {
    pub size: usize,
    pub depth: u32,
    pub activity: f64,
}

impl Metrics {
    fn of(mig: &Mig) -> Self {
        Metrics {
            size: mig.size(),
            depth: mig.depth(),
            activity: mig.switching_activity_uniform(),
        }
    }
}

/// One timed optimizer pass.
#[derive(Debug, Clone)]
pub struct PassResult {
    /// Pass name, one of [`PASSES`].
    pub pass: &'static str,
    /// Metrics after the pass.
    pub after: Metrics,
    /// Wall-clock time of the pass alone.
    pub millis: f64,
}

/// Full record for one benchmark circuit.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    pub name: String,
    pub inputs: usize,
    pub outputs: usize,
    /// Metrics of the imported (unoptimized) MIG.
    pub import: Metrics,
    pub passes: Vec<PassResult>,
    /// MIG-level equivalence of the final result against the import.
    pub equiv: bool,
    /// True when the size-oriented passes honored their contracts: the
    /// size pass is no larger than the import and the rewrite pass is no
    /// larger than the size pass. (Later passes may trade size for
    /// depth/activity by design, so they are not gated on size.)
    pub size_ok: bool,
    /// Wall-clock time over all passes (excludes verify).
    pub total_millis: f64,
}

/// The whole suite run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub mode: &'static str,
    pub effort: usize,
    /// Resolved rewrite-engine worker count the run used (the `jobs`
    /// knob with 0 replaced by the machine's available parallelism).
    pub threads: usize,
    pub benchmarks: Vec<BenchRecord>,
}

impl BenchReport {
    /// True when every benchmark verified equivalent and none grew.
    pub fn all_ok(&self) -> bool {
        self.benchmarks.iter().all(|b| b.equiv && b.size_ok)
    }

    /// Total optimization wall time over all benchmarks.
    pub fn total_millis(&self) -> f64 {
        self.benchmarks.iter().map(|b| b.total_millis).sum()
    }
}

fn millis_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Runs the configured benchmarks through size → rewrite → depth →
/// activity optimization, timing each pass and verifying the final
/// result.
///
/// # Panics
///
/// Panics if `config.names` contains an unknown benchmark name.
pub fn run_suite(config: &BenchConfig) -> BenchReport {
    let names: Vec<String> = if config.names.is_empty() {
        mig_benchgen::MCNC_NAMES
            .iter()
            .filter(|n| !(config.quick && QUICK_SKIP.contains(n)))
            .map(|n| n.to_string())
            .collect()
    } else {
        config.names.clone()
    };
    let effort = config.effort.max(1);
    let rounds = config.rounds.max(1);
    let rewrite_config = RewriteConfig {
        effort,
        jobs: config.jobs,
        ..RewriteConfig::default()
    };
    let threads = rewrite_config.resolved_jobs();
    let mut benchmarks = Vec::new();
    for name in &names {
        let net = mig_benchgen::generate(name)
            .unwrap_or_else(|| panic!("unknown benchmark `{name}` (see `mighty list`)"));
        let mig = Mig::from_network(&net);
        let import = Metrics::of(&mig);
        let mut cur = mig.cleanup();
        let mut passes = Vec::new();

        let t = Instant::now();
        cur = optimize_size(
            &cur,
            &SizeOptConfig {
                effort,
                ..SizeOptConfig::default()
            },
        );
        // Stop the clock before measuring metrics: Metrics::of walks the
        // graph and must not count toward the pass's wall time.
        let millis = millis_since(t);
        passes.push(PassResult {
            pass: "size",
            after: Metrics::of(&cur),
            millis,
        });

        let t = Instant::now();
        cur = optimize_rewrite(&cur, &rewrite_config);
        let millis = millis_since(t);
        passes.push(PassResult {
            pass: "rewrite",
            after: Metrics::of(&cur),
            millis,
        });

        let t = Instant::now();
        cur = optimize_depth(
            &cur,
            &DepthOptConfig {
                effort,
                ..DepthOptConfig::default()
            },
        );
        let millis = millis_since(t);
        passes.push(PassResult {
            pass: "depth",
            after: Metrics::of(&cur),
            millis,
        });

        let uniform = vec![0.5; cur.num_inputs()];
        let t = Instant::now();
        cur = optimize_activity(
            &cur,
            &uniform,
            &ActivityOptConfig {
                effort,
                ..ActivityOptConfig::default()
            },
        );
        let millis = millis_since(t);
        passes.push(PassResult {
            pass: "activity",
            after: Metrics::of(&cur),
            millis,
        });

        let total_millis = passes.iter().map(|p| p.millis).sum();
        let size_pass = passes[0].after;
        let rewrite_pass = passes[1].after;
        benchmarks.push(BenchRecord {
            name: name.clone(),
            inputs: mig.num_inputs(),
            outputs: mig.num_outputs(),
            import,
            passes,
            equiv: cur.equiv(&mig, rounds),
            size_ok: size_pass.size <= import.size && rewrite_pass.size <= size_pass.size,
            total_millis,
        });
    }
    BenchReport {
        mode: if config.quick { "quick" } else { "full" },
        effort,
        threads,
        benchmarks,
    }
}

/// Serializes a report in the stable `mig-bench/v3` schema.
///
/// Hand-rolled (the workspace has zero third-party dependencies); all
/// strings in the schema are benchmark names and pass labels, which never
/// need escaping.
pub fn to_json(report: &BenchReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"mig-bench/v3\",");
    let _ = writeln!(s, "  \"suite\": \"mcnc14\",");
    let _ = writeln!(s, "  \"mode\": \"{}\",", report.mode);
    let _ = writeln!(s, "  \"effort\": {},", report.effort);
    let _ = writeln!(s, "  \"threads\": {},", report.threads);
    s.push_str("  \"benchmarks\": [\n");
    for (i, b) in report.benchmarks.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", b.name);
        let _ = writeln!(s, "      \"inputs\": {},", b.inputs);
        let _ = writeln!(s, "      \"outputs\": {},", b.outputs);
        let _ = writeln!(
            s,
            "      \"import\": {{\"size\": {}, \"depth\": {}, \"activity\": {:.3}}},",
            b.import.size, b.import.depth, b.import.activity
        );
        s.push_str("      \"passes\": [\n");
        for (j, p) in b.passes.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"pass\": \"{}\", \"size\": {}, \"depth\": {}, \
                 \"activity\": {:.3}, \"millis\": {:.2}}}",
                p.pass, p.after.size, p.after.depth, p.after.activity, p.millis
            );
            s.push_str(if j + 1 < b.passes.len() { ",\n" } else { "\n" });
        }
        s.push_str("      ],\n");
        let _ = writeln!(s, "      \"equiv\": {},", b.equiv);
        let _ = writeln!(s, "      \"size_ok\": {},", b.size_ok);
        let _ = writeln!(s, "      \"total_millis\": {:.2}", b.total_millis);
        s.push_str("    }");
        s.push_str(if i + 1 < report.benchmarks.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    let size_before: usize = report.benchmarks.iter().map(|b| b.import.size).sum();
    let size_after: usize = report
        .benchmarks
        .iter()
        .map(|b| b.passes.last().map_or(b.import.size, |p| p.after.size))
        .sum();
    let _ = writeln!(s, "  \"totals\": {{");
    let _ = writeln!(s, "    \"benchmarks\": {},", report.benchmarks.len());
    let _ = writeln!(s, "    \"millis\": {:.2},", report.total_millis());
    let _ = writeln!(s, "    \"size_before\": {size_before},");
    let _ = writeln!(s, "    \"size_after\": {size_after},");
    let _ = writeln!(s, "    \"all_ok\": {}", report.all_ok());
    s.push_str("  }\n}\n");
    s
}

/// Human-readable per-pass table for the CLI.
pub fn render_table(report: &BenchReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "mighty bench · mode={} · effort={} · threads={}",
        report.mode, report.effort, report.threads
    );
    let _ = writeln!(
        s,
        "{:<10} {:>7} {:>6} | {:^23} | {:^23} | {:^23} | {:^23} |",
        "", "import", "", "size pass", "rewrite pass", "depth pass", "activity pass"
    );
    let _ = write!(s, "{:<10} {:>7} {:>6} |", "bench", "size", "depth");
    for _ in PASSES {
        let _ = write!(s, " {:>7} {:>6} {:>8} |", "size", "depth", "ms");
    }
    let _ = writeln!(s, " {:>6}", "equiv");
    for b in &report.benchmarks {
        let _ = write!(
            s,
            "{:<10} {:>7} {:>6} |",
            b.name, b.import.size, b.import.depth
        );
        for p in &b.passes {
            let _ = write!(
                s,
                " {:>7} {:>6} {:>8.1} |",
                p.after.size, p.after.depth, p.millis
            );
        }
        let _ = writeln!(
            s,
            " {:>6}",
            if b.equiv && b.size_ok { "PASS" } else { "FAIL" }
        );
    }
    let _ = writeln!(
        s,
        "total: {} benchmarks · {:.1} ms optimization · {}",
        report.benchmarks.len(),
        report.total_millis(),
        if report.all_ok() {
            "all PASS"
        } else {
            "FAILURES PRESENT"
        }
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BenchConfig {
        BenchConfig {
            names: vec!["my_adder".into(), "count".into()],
            ..BenchConfig::quick()
        }
    }

    #[test]
    fn suite_runs_and_verifies() {
        let report = run_suite(&tiny_config());
        assert_eq!(report.benchmarks.len(), 2);
        assert!(report.all_ok(), "equivalence and size must hold");
        for b in &report.benchmarks {
            assert_eq!(b.passes.len(), 4);
            let names: Vec<&str> = b.passes.iter().map(|p| p.pass).collect();
            assert_eq!(names, PASSES);
            let size_pass = b.passes[0].after.size;
            assert!(size_pass <= b.import.size, "Algorithm 1 must not grow");
            let rewrite_pass = b.passes[1].after.size;
            assert!(rewrite_pass <= size_pass, "rewriting must not grow");
        }
    }

    #[test]
    fn json_has_stable_schema_fields() {
        let report = run_suite(&tiny_config());
        let json = to_json(&report);
        for field in [
            "\"schema\": \"mig-bench/v3\"",
            "\"suite\": \"mcnc14\"",
            "\"mode\": \"quick\"",
            "\"threads\": ",
            "\"benchmarks\": [",
            "\"import\":",
            "\"passes\": [",
            "\"pass\": \"size\"",
            "\"pass\": \"rewrite\"",
            "\"pass\": \"depth\"",
            "\"pass\": \"activity\"",
            "\"equiv\": true",
            "\"size_ok\": true",
            "\"totals\": {",
            "\"all_ok\": true",
        ] {
            assert!(json.contains(field), "missing {field} in:\n{json}");
        }
        // Must be balanced-brace JSON (cheap structural sanity check).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON");
    }

    #[test]
    fn quick_mode_skips_the_giants() {
        let names: Vec<String> = mig_benchgen::MCNC_NAMES
            .iter()
            .filter(|n| !QUICK_SKIP.contains(n))
            .map(|n| n.to_string())
            .collect();
        // The quick-mode name resolution run_suite performs, checked
        // without paying for a full run.
        assert_eq!(names.len(), 11);
        assert!(BenchConfig::quick().names.is_empty());
        for skip in QUICK_SKIP {
            assert!(!names.contains(&skip.to_string()));
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let mut c1 = tiny_config();
        c1.jobs = 1;
        let mut c4 = tiny_config();
        c4.jobs = 4;
        let r1 = run_suite(&c1);
        let r4 = run_suite(&c4);
        assert_eq!(r1.threads, 1);
        assert_eq!(r4.threads, 4);
        for (a, b) in r1.benchmarks.iter().zip(&r4.benchmarks) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.equiv, b.equiv);
            for (pa, pb) in a.passes.iter().zip(&b.passes) {
                assert_eq!(pa.after.size, pb.after.size, "{} {}", a.name, pa.pass);
                assert_eq!(pa.after.depth, pb.after.depth, "{} {}", a.name, pa.pass);
            }
        }
    }

    #[test]
    fn table_mentions_every_benchmark() {
        let report = run_suite(&tiny_config());
        let table = render_table(&report);
        assert!(table.contains("my_adder"));
        assert!(table.contains("count"));
        assert!(table.contains("PASS"));
    }
}
