//! # Benchmark harness for the MIG suite
//!
//! Runs an optimization flow (default: the size → rewrite → depth →
//! activity pipeline) over the generated MCNC suite through the
//! composable pass manager ([`mig_core::Flow`] / [`mig_core::OptContext`]),
//! timing every executed pass via the context's wall-time ledger, and
//! serializes the result as `BENCH_opt.json` in a stable schema so
//! successive PRs accumulate a performance trajectory (compare the
//! committed file against a fresh run to spot regressions).
//!
//! The schema (`mig-bench/v8`, documented in `DESIGN.md` §7/§10; v2
//! added the cut-based Boolean `rewrite` pass between `size` and
//! `depth`; v3 added the top-level `threads` field recording the rewrite
//! engine's resolved evaluate-phase worker count; v4 added the top-level
//! `flow` field with the canonical flow script and derives the `passes`
//! array from the pass-manager ledger, so arbitrary flows — repeated
//! passes included — serialize naturally; v5 technology-maps every
//! optimized result onto both stock libraries and adds the per-benchmark
//! `mapped`/`mapped_nomaj` objects plus the totals' mapped-area sums;
//! v6 additionally runs the equality-saturation head-to-head — the
//! committed [`ESAT_FLOW`] against the strongest esat-free reference
//! [`ESAT_REF_FLOW`] — and records the per-benchmark `esat` object plus
//! the totals' `esat_size`/`esat_ref_size` sums; v7 adds suite
//! selection — the 100k–1M-node large tier ([`LARGE_FLOW`], skipping
//! the mapping/esat stages that exist for MCNC-scale comparison) — and
//! serializes its records in a top-level `large` array with wall time
//! per pass, a memory footprint (arena/strash/cut-cache bytes plus peak
//! RSS), and the [`mig_core::LevelStats`] counters evidencing bounded
//! level maintenance. The `suite` field names what ran (`mcnc14`,
//! `large4` or `mcnc14+large4`); every MCNC-tier field of v6
//! serializes byte-identically, so the committed trajectory's MCNC
//! records never regenerate. A pass entry additionally carries an
//! `"outcome"` key when — and only when — the pass manager degraded it
//! (`rolled_back` / `timed_out` / `skipped`), so a healthy run's JSON
//! carries no outcome noise; v8 adds the optional top-level `serve`
//! block — the `mighty serve --bench` load sweep with jobs/sec and
//! p50/p95/p99 latency per worker count — placed, like `large`,
//! immediately before `totals` so volatile timings strip with a
//! line-range delete):
//!
//! ```json
//! {
//!   "schema": "mig-bench/v8",
//!   "suite": "mcnc14",
//!   "mode": "full",
//!   "flow": "size; rewrite; depth; activity",
//!   "esat_flow": "size; rewrite*; depth_rewrite; rewrite*; size; esat*; rewrite*; size",
//!   "esat_ref_flow": "size; rewrite*; depth_rewrite; rewrite*; size",
//!   "effort": 4,
//!   "threads": 1,
//!   "benchmarks": [
//!     {
//!       "name": "alu4", "inputs": 14, "outputs": 8,
//!       "import": {"size": 151, "depth": 16, "activity": 29.03},
//!       "passes": [
//!         {"pass": "size", "size": 83, "depth": 14,
//!          "activity": 18.1, "millis": 12.3},
//!         {"pass": "rewrite", "size": 79, "depth": 14,
//!          "activity": 17.8, "millis": 9.0}
//!       ],
//!       "equiv": true, "size_ok": true,
//!       "mapped": {"library": "cmos22", "cells": 117, "area": 50.715,
//!                  "delay": 0.2795, "power": 57.30, "equiv": true},
//!       "mapped_nomaj": {"library": "cmos22-nomaj", "cells": 173,
//!                        "area": 57.232, "delay": 0.3620,
//!                        "power": 63.80, "equiv": true},
//!       "esat": {"size": 97, "depth": 12, "ref_size": 99, "ref_depth": 12,
//!                "millis": 120.0, "ref_millis": 80.0, "equiv": true},
//!       "total_millis": 40.1
//!     }
//!   ],
//!   "large": [
//!     {
//!       "name": "mul_100k", "inputs": 224, "outputs": 224,
//!       "import": {"size": 99457, "depth": 662},
//!       "passes": [
//!         {"pass": "size", "size": 99457, "depth": 662, "millis": 301.0}
//!       ],
//!       "equiv": true, "size_ok": true,
//!       "mem": {"arena_bytes": 1597440, "strash_slots": 262144,
//!               "strash_bytes": 4194304, "cache_entries": 795656,
//!               "peak_rss_bytes": 734003200},
//!       "levels": {"incremental_repairs": 291808,
//!                  "repaired_nodes": 340756, "nodes_per_repair": 1.17,
//!                  "global_rebuilds": 11},
//!       "total_millis": 1060.0
//!     }
//!   ],
//!   "totals": {"benchmarks": 14, "millis": 400.0,
//!              "size_before": 1000, "size_after": 800,
//!              "mapped_area": 700.0, "mapped_nomaj_area": 800.0,
//!              "esat_size": 790, "esat_ref_size": 805,
//!              "all_ok": true}
//! }
//! ```
//!
//! The `large` array (and the constant `large_flow` line) appear only
//! when the large tier ran, so an MCNC-only run's JSON stays free of
//! machine-volatile fields (`peak_rss_bytes` varies run to run even on
//! one machine; the CI bit-identity gates strip the `large` block).
//!
//! Numbers are written with enough precision to diff; wall times are
//! machine-dependent and meant for *relative* comparison on one machine.
//!
//! ```
//! use mig_bench::{run_suite, BenchConfig};
//!
//! let cfg = BenchConfig { names: vec!["my_adder".into()], ..BenchConfig::quick() };
//! let report = run_suite(&cfg);
//! assert!(report.all_ok());
//! assert_eq!(report.benchmarks.len(), 1);
//! assert!(mig_bench::to_json(&report).contains("\"schema\": \"mig-bench/v8\""));
//! ```

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use mig_core::{Budget, Flow, LevelStats, Mig, OptContext, RewriteConfig, SimSpotCheck};
use mig_techmap::{map_mig, CellLibrary, MapConfig};

/// The canonical default flow: the v3 harness's fixed size → rewrite →
/// depth → activity pipeline as a flow script.
pub const DEFAULT_FLOW: &str = "size; rewrite; depth; activity";

/// The pass sequence of [`DEFAULT_FLOW`] (kept for schema tests and
/// downstream tooling that expects the classic four passes).
pub const PASSES: [&str; 4] = ["size", "rewrite", "depth", "activity"];

/// Benchmarks skipped in `--quick` mode (the largest generators — they
/// dominate wall time without adding CI signal).
pub const QUICK_SKIP: [&str; 3] = ["clma", "s38417", "bigkey"];

/// The large tier's default flow: the million-node scaling target
/// (`DESIGN.md` §14). Mapping and the esat head-to-head are MCNC-scale
/// comparisons and are skipped for this tier.
pub const LARGE_FLOW: &str = "size*2; rewrite; depth_rewrite; depth";

/// The single large-tier circuit `--quick` mode keeps (the ~100k-node
/// generator: enough to exercise every million-node code path with CI
/// wall time in seconds).
pub const LARGE_QUICK: [&str; 1] = ["mul_100k"];

/// The recognized `--suite` selections.
pub const SUITES: [&str; 3] = ["mcnc", "large", "all"];

/// The equality-saturation flow of the v6 head-to-head: the reference
/// backbone with an `esat*; rewrite*; size` tail, so the comparison
/// isolates exactly what saturation adds on top of the strongest
/// rewrite-only pipeline.
pub const ESAT_FLOW: &str = "size; rewrite*; depth_rewrite; rewrite*; size; esat*; rewrite*; size";

/// The strongest esat-free size flow found for the MCNC suite (the
/// rewrite fixpoint with one depth-rewrite perturbation), used as the
/// honest reference side of the v6 head-to-head.
pub const ESAT_REF_FLOW: &str = "size; rewrite*; depth_rewrite; rewrite*; size";

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Benchmark names to run; empty means the full MCNC suite (minus
    /// [`QUICK_SKIP`] when `quick`).
    pub names: Vec<String>,
    /// Quick mode: lower effort, fewer equivalence rounds, big
    /// benchmarks skipped. Intended for CI.
    pub quick: bool,
    /// Optimizer effort (the paper's reshape/eliminate cycle budget),
    /// applied uniformly to every pass of the flow.
    pub effort: usize,
    /// 64-pattern blocks for the random half of equivalence checking.
    pub rounds: usize,
    /// Rewrite-engine evaluate-phase worker threads (0 = available
    /// parallelism). Affects wall time only: every reported
    /// size/depth/activity/equiv value is identical for any setting.
    pub jobs: usize,
    /// Flow script to run (`None` = [`DEFAULT_FLOW`]).
    pub flow: Option<String>,
    /// Per-benchmark wall-clock deadline in milliseconds (`None` =
    /// unlimited): once exhausted, remaining passes of that circuit's
    /// flow are skipped and recorded as such.
    pub timeout_ms: Option<u64>,
    /// Per-pass wall-clock limit in milliseconds (`None` = unlimited):
    /// a pass running longer is rolled back and recorded as timed out.
    pub pass_timeout_ms: Option<u64>,
    /// Node-count growth cap (`None` = unlimited): a pass growing the
    /// graph beyond the cap is rolled back.
    pub max_nodes: Option<usize>,
    /// Simulation spot check after every pass: a pass whose result
    /// fails a randomized equivalence probe against its own input is
    /// rolled back instead of poisoning the rest of the flow.
    pub selfcheck: bool,
    /// Run the v6 equality-saturation head-to-head ([`ESAT_FLOW`] vs
    /// [`ESAT_REF_FLOW`]) per benchmark. On by default; turning it off
    /// drops the `esat` objects from the JSON (the schema tag stays v7).
    pub esat: bool,
    /// Which tier(s) to run: `"mcnc"` (default), `"large"` or `"all"`.
    /// Explicit `names` go to the selected tier (`"all"` partitions
    /// them by [`mig_benchgen::LARGE_NAMES`] membership).
    pub suite: String,
}

impl BenchConfig {
    /// Full-suite defaults: every benchmark with Algorithm 1's default
    /// effort (4) applied uniformly to all passes, so a single number
    /// describes the run (the configuration the perf trajectory tracks;
    /// note `mighty opt` instead defaults to effort 2).
    pub fn full() -> Self {
        BenchConfig {
            names: Vec::new(),
            quick: false,
            effort: mig_core::SizeOptConfig::default().effort,
            rounds: 8,
            jobs: 0,
            flow: None,
            timeout_ms: None,
            pass_timeout_ms: None,
            max_nodes: None,
            selfcheck: false,
            esat: true,
            suite: "mcnc".into(),
        }
    }

    /// CI defaults: effort 1, biggest circuits skipped.
    pub fn quick() -> Self {
        BenchConfig {
            names: Vec::new(),
            quick: true,
            effort: 1,
            rounds: 4,
            jobs: 0,
            flow: None,
            timeout_ms: None,
            pass_timeout_ms: None,
            max_nodes: None,
            selfcheck: false,
            esat: true,
            suite: "mcnc".into(),
        }
    }

    /// The [`Budget`] this configuration asks the pass manager to
    /// enforce per benchmark.
    fn budget(&self) -> Budget {
        Budget {
            total_ms: self.timeout_ms,
            pass_ms: self.pass_timeout_ms,
            max_nodes: self.max_nodes,
        }
    }
}

/// Size/depth/activity of one MIG at one pipeline point (the pass
/// manager's ledger metrics, re-exported under the harness's historic
/// name).
pub use mig_core::PassMetrics as Metrics;

/// One timed pass execution — exactly the pass manager's ledger entry
/// (name, wall time, metrics on both sides), re-exported under the
/// harness's historic name.
pub use mig_core::PassReport as PassResult;

/// Mapped-cost record for one benchmark on one cell library: the
/// optimized MIG technology-mapped by `mig_techmap` and verified at the
/// cell-netlist level.
#[derive(Debug, Clone)]
pub struct MappedRecord {
    /// Display name of the library mapped onto.
    pub library: String,
    /// Cell-instance count of the mapped netlist.
    pub cells: usize,
    /// Total cell area in µm².
    pub area: f64,
    /// Critical-path delay in ns.
    pub delay: f64,
    /// Estimated power in µW.
    pub power: f64,
    /// Equivalence of the mapped netlist against the import.
    pub equiv: bool,
}

/// Result of the v6 equality-saturation head-to-head on one benchmark:
/// [`ESAT_FLOW`] against [`ESAT_REF_FLOW`], both from the same import.
#[derive(Debug, Clone)]
pub struct EsatRecord {
    /// Final size of the esat flow.
    pub size: usize,
    /// Final depth of the esat flow.
    pub depth: u32,
    /// Final size of the esat-free reference flow.
    pub ref_size: usize,
    /// Final depth of the esat-free reference flow.
    pub ref_depth: u32,
    /// Optimization wall time of the esat flow (ledger sum, ms).
    pub millis: f64,
    /// Optimization wall time of the reference flow (ledger sum, ms).
    pub ref_millis: f64,
    /// Equivalence of **both** finals against the import.
    pub equiv: bool,
}

/// Memory footprint of one large-tier run, sampled after the flow.
#[derive(Debug, Clone, Copy)]
pub struct MemRecord {
    /// Bytes of the final MIG's node arena (children + levels).
    pub arena_bytes: usize,
    /// Allocated structural-hash slots of the final MIG.
    pub strash_slots: usize,
    /// Bytes of the structural-hash slot array.
    pub strash_bytes: usize,
    /// Cut-cache entries held by the shared rewrite cache.
    pub cache_entries: usize,
    /// Peak resident set size of the process (`VmHWM`), in bytes; 0
    /// where `/proc/self/status` is unavailable. Machine- and
    /// run-volatile: excluded from every bit-identity comparison.
    pub peak_rss_bytes: u64,
}

/// Full record for one large-tier circuit: the flow ledger plus the
/// scaling evidence (memory footprint and level-maintenance counters).
/// Mapping and the esat head-to-head — MCNC-scale comparisons — are
/// deliberately absent.
#[derive(Debug, Clone)]
pub struct LargeRecord {
    /// Circuit name (see `mig_benchgen::LARGE_NAMES`).
    pub name: String,
    /// Primary-input count of the imported circuit.
    pub inputs: usize,
    /// Primary-output count of the imported circuit.
    pub outputs: usize,
    /// Size/depth of the imported (unoptimized) MIG.
    pub import: Metrics,
    /// One entry per executed pass, in flow order.
    pub passes: Vec<PassResult>,
    /// Sampled-simulation equivalence of the final result against the
    /// import.
    pub equiv: bool,
    /// Size-monotonicity of the size/rewrite/depth_rewrite passes (same
    /// contract as the MCNC tier).
    pub size_ok: bool,
    /// Memory footprint after the flow.
    pub mem: MemRecord,
    /// Level-maintenance counters accumulated over the flow (the
    /// sub-O(n) evidence; see [`LevelStats::nodes_per_repair`]).
    pub levels: LevelStats,
    /// Number of degraded (rolled-back / timed-out / skipped) passes.
    pub degraded: usize,
    /// Wall-clock time over all passes (excludes verify).
    pub total_millis: f64,
}

/// Full record for one benchmark circuit.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark name (see `mig_benchgen::MCNC_NAMES`).
    pub name: String,
    /// Primary-input count of the imported circuit.
    pub inputs: usize,
    /// Primary-output count of the imported circuit.
    pub outputs: usize,
    /// Metrics of the imported (unoptimized) MIG.
    pub import: Metrics,
    /// One entry per executed pass, in flow order.
    pub passes: Vec<PassResult>,
    /// MIG-level equivalence of the final result against the import.
    pub equiv: bool,
    /// True when the size-monotone passes honored their contracts:
    /// every `size`, `rewrite` and `depth_rewrite` execution produced a
    /// graph no larger than its input. (The algebraic depth pass and
    /// the activity pass may trade size for their own metric by design,
    /// so they are not gated on size.)
    pub size_ok: bool,
    /// Mapped cost of the optimized result on the paper's MAJ-capable
    /// `cmos22` library.
    pub mapped: MappedRecord,
    /// Mapped cost on the majority-free control library.
    pub mapped_nomaj: MappedRecord,
    /// The equality-saturation head-to-head (`None` when the run was
    /// configured without it).
    pub esat: Option<EsatRecord>,
    /// Number of passes that did not contribute — rolled back, timed
    /// out, or skipped by the budget (0 on a healthy run).
    pub degraded: usize,
    /// Wall-clock time over all passes (excludes verify and mapping).
    pub total_millis: f64,
}

/// The whole suite run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"full"` or `"quick"`.
    pub mode: &'static str,
    /// Which tiers ran: `"mcnc14"`, `"large4"` or `"mcnc14+large4"`.
    pub suite: String,
    /// The canonical flow script the MCNC tier executed.
    pub flow: String,
    /// The flow script the large tier executed.
    pub large_flow: String,
    /// The uniform per-pass effort.
    pub effort: usize,
    /// Resolved rewrite-engine worker count the run used (the `jobs`
    /// knob with 0 replaced by the machine's available parallelism).
    pub threads: usize,
    /// One record per benchmark, in run order.
    pub benchmarks: Vec<BenchRecord>,
    /// One record per large-tier circuit, in run order (empty unless
    /// the `large` or `all` suite was selected).
    pub large: Vec<LargeRecord>,
    /// Service-throughput sweep (`mighty serve --bench`), when one ran.
    pub serve: Option<ServeReport>,
}

/// One worker-count point of a `mighty serve --bench` load sweep.
#[derive(Debug, Clone)]
pub struct ServeSweep {
    /// Worker threads the server ran.
    pub workers: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Jobs completed in the sweep.
    pub jobs: usize,
    /// Completed jobs per second.
    pub jobs_per_sec: f64,
    /// Median client-observed per-job latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Every response passed both equivalence checks.
    pub verified: bool,
    /// Every response was bit-identical to a local `mighty opt` run.
    pub bit_identical: bool,
}

/// The serve-bench block of the v8 schema: the flow/effort every job
/// ran, plus one [`ServeSweep`] per worker count.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Flow script every job executed.
    pub flow: String,
    /// Per-pass effort every job used.
    pub effort: usize,
    /// One entry per worker count, in sweep order.
    pub sweeps: Vec<ServeSweep>,
}

impl BenchReport {
    /// True when every benchmark (both tiers) verified equivalent — at
    /// MIG level and, for the MCNC tier, for both mapped netlists — and
    /// none grew.
    pub fn all_ok(&self) -> bool {
        self.benchmarks.iter().all(|b| {
            b.equiv
                && b.size_ok
                && b.mapped.equiv
                && b.mapped_nomaj.equiv
                && b.esat.as_ref().is_none_or(|e| e.equiv)
        }) && self.large.iter().all(|l| l.equiv && l.size_ok)
    }

    /// Total optimization wall time over the MCNC benchmarks (the
    /// `totals.millis` field; large-tier wall times live in their own
    /// records so the MCNC totals stay comparable across suite
    /// selections).
    pub fn total_millis(&self) -> f64 {
        self.benchmarks.iter().map(|b| b.total_millis).sum()
    }

    /// Suite mapped area on the MAJ-capable library, in µm².
    pub fn mapped_area(&self) -> f64 {
        self.benchmarks.iter().map(|b| b.mapped.area).sum()
    }

    /// Suite mapped area on the majority-free control library, in µm².
    pub fn mapped_nomaj_area(&self) -> f64 {
        self.benchmarks.iter().map(|b| b.mapped_nomaj.area).sum()
    }

    /// Total number of degraded (rolled-back / timed-out / skipped)
    /// pass executions across both tiers.
    pub fn degraded_passes(&self) -> usize {
        self.benchmarks.iter().map(|b| b.degraded).sum::<usize>()
            + self.large.iter().map(|l| l.degraded).sum::<usize>()
    }

    /// True when any pass anywhere in the suite was degraded — the run
    /// still completed and verified, but not every pass contributed.
    pub fn any_degraded(&self) -> bool {
        self.degraded_passes() > 0
    }

    /// Suite node count of the esat flow's finals (benchmarks that ran
    /// the head-to-head only).
    pub fn esat_size(&self) -> usize {
        self.benchmarks
            .iter()
            .filter_map(|b| b.esat.as_ref())
            .map(|e| e.size)
            .sum()
    }

    /// Suite node count of the reference flow's finals.
    pub fn esat_ref_size(&self) -> usize {
        self.benchmarks
            .iter()
            .filter_map(|b| b.esat.as_ref())
            .map(|e| e.ref_size)
            .sum()
    }

    /// `(wins, ties, losses)` of the esat flow against the reference on
    /// final size, over the benchmarks that ran the head-to-head.
    pub fn esat_score(&self) -> (usize, usize, usize) {
        let mut score = (0, 0, 0);
        for e in self.benchmarks.iter().filter_map(|b| b.esat.as_ref()) {
            match e.size.cmp(&e.ref_size) {
                std::cmp::Ordering::Less => score.0 += 1,
                std::cmp::Ordering::Equal => score.1 += 1,
                std::cmp::Ordering::Greater => score.2 += 1,
            }
        }
        score
    }
}

/// Maps one optimized MIG onto `lib` and verifies the cell netlist
/// against the import network. A panicking mapper forfeits only this
/// record (reported as a zero-cell non-equivalent mapping) instead of
/// aborting the whole suite.
fn map_record(
    cur: &Mig,
    net: &mig_netlist::Network,
    lib: &CellLibrary,
    rounds: usize,
) -> MappedRecord {
    match catch_unwind(AssertUnwindSafe(|| {
        map_mig(cur, lib, &MapConfig::default())
    })) {
        Ok(design) => MappedRecord {
            library: lib.name.to_string(),
            cells: design.num_cells(),
            area: design.area(),
            delay: design.delay(),
            power: design.power(),
            equiv: mig_sim::equivalent(net, &design.to_network(), rounds),
        },
        Err(_) => MappedRecord {
            library: lib.name.to_string(),
            cells: 0,
            area: 0.0,
            delay: 0.0,
            power: 0.0,
            equiv: false,
        },
    }
}

/// Peak resident set size of this process (`VmHWM`) in bytes; 0 where
/// `/proc/self/status` is unavailable (non-Linux).
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1)?.parse::<u64>().ok())
        })
        .map_or(0, |kb| kb * 1024)
}

/// The tier name lists a configuration resolves to: `(mcnc, large)`.
fn resolve_names(config: &BenchConfig) -> (Vec<String>, Vec<String>) {
    let want_mcnc = matches!(config.suite.as_str(), "mcnc" | "all");
    let want_large = matches!(config.suite.as_str(), "large" | "all");
    assert!(
        want_mcnc || want_large,
        "unknown suite `{}` (known: {})",
        config.suite,
        SUITES.join(", ")
    );
    if !config.names.is_empty() {
        // Explicit names go to the selected tier; `all` partitions by
        // large-tier membership (the tiers' name sets are disjoint).
        let is_large = |n: &String| mig_benchgen::LARGE_NAMES.contains(&n.as_str());
        return match config.suite.as_str() {
            "mcnc" => (config.names.clone(), Vec::new()),
            "large" => (Vec::new(), config.names.clone()),
            _ => (
                config
                    .names
                    .iter()
                    .filter(|n| !is_large(n))
                    .cloned()
                    .collect(),
                config
                    .names
                    .iter()
                    .filter(|n| is_large(n))
                    .cloned()
                    .collect(),
            ),
        };
    }
    let mcnc = if want_mcnc {
        mig_benchgen::MCNC_NAMES
            .iter()
            .filter(|n| !(config.quick && QUICK_SKIP.contains(n)))
            .map(|n| n.to_string())
            .collect()
    } else {
        Vec::new()
    };
    let large = if want_large {
        let pool: &[&str] = if config.quick {
            &LARGE_QUICK
        } else {
            &mig_benchgen::LARGE_NAMES
        };
        pool.iter().map(|n| n.to_string()).collect()
    } else {
        Vec::new()
    };
    (mcnc, large)
}

/// Runs one large-tier circuit through `flow`, collecting the ledger,
/// the level-maintenance counters and the memory footprint.
fn run_large(
    name: &str,
    flow: &Flow,
    effort: usize,
    rounds: usize,
    ctx: &mut OptContext,
) -> LargeRecord {
    let net = mig_benchgen::generate(name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}` (see `mighty list`)"));
    let mig = Mig::from_network(&net);
    let import = Metrics::of(&mig);
    ctx.take_level_stats(); // drain counters left by earlier circuits
    let cur = flow.run(mig.cleanup(), effort, ctx);
    let passes = ctx.take_ledger();
    let levels = ctx.take_level_stats();
    let size_ok = passes
        .iter()
        .filter(|r| {
            matches!(
                r.pass.as_str(),
                "size" | "rewrite" | "depth_rewrite" | "esat"
            )
        })
        .all(|r| r.after.size <= r.before.size);
    let total_millis = passes.iter().map(|p| p.millis).sum();
    let degraded = passes.iter().filter(|r| r.outcome.degraded()).count();
    let mem = MemRecord {
        arena_bytes: cur.arena_bytes(),
        strash_slots: cur.strash_slots(),
        strash_bytes: cur.strash_bytes(),
        cache_entries: ctx.rewrite_cache_entries(),
        peak_rss_bytes: peak_rss_bytes(),
    };
    LargeRecord {
        name: name.to_string(),
        inputs: mig.num_inputs(),
        outputs: mig.num_outputs(),
        import,
        passes,
        equiv: cur.equiv(&mig, rounds),
        size_ok,
        mem,
        levels,
        degraded,
        total_millis,
    }
}

/// Runs the configured benchmarks through the flow, timing each pass
/// via the shared [`OptContext`] ledger and verifying the final result.
/// One context serves the whole suite, so arenas and rewrite caches are
/// recycled across circuits (wall time only — results are identical to
/// fresh per-circuit contexts).
///
/// # Panics
///
/// Panics if `config.names` contains an unknown benchmark name,
/// `config.suite` is not one of [`SUITES`], or `config.flow` does not
/// parse (the CLI validates all three up front).
pub fn run_suite(config: &BenchConfig) -> BenchReport {
    let (names, large_names) = resolve_names(config);
    let effort = config.effort.max(1);
    let rounds = config.rounds.max(1);
    let script = config.flow.as_deref().unwrap_or(DEFAULT_FLOW);
    let flow = Flow::parse(script).unwrap_or_else(|e| panic!("bad flow script: {e}"));
    // An explicit --flow drives both tiers; the tiers differ only in
    // their defaults (the large tier's skips the mapping-oriented
    // activity pass and adds the depth-rewrite perturbation).
    let large_script = config.flow.as_deref().unwrap_or(LARGE_FLOW);
    let large_flow = Flow::parse(large_script).unwrap_or_else(|e| panic!("bad flow script: {e}"));
    let esat_flow = Flow::parse(ESAT_FLOW).expect("canonical esat flow parses");
    let esat_ref_flow = Flow::parse(ESAT_REF_FLOW).expect("canonical reference flow parses");
    let threads = RewriteConfig {
        jobs: config.jobs,
        ..RewriteConfig::default()
    }
    .resolved_jobs();
    let mut ctx = OptContext::with_jobs(config.jobs);
    ctx.set_budget(config.budget());
    if config.selfcheck {
        ctx.set_spot_check(Box::new(SimSpotCheck::new(rounds)));
    }
    let mut benchmarks = Vec::new();
    for name in &names {
        let net = mig_benchgen::generate(name)
            .unwrap_or_else(|| panic!("unknown benchmark `{name}` (see `mighty list`)"));
        let mig = Mig::from_network(&net);
        let import = Metrics::of(&mig);
        let cur = flow.run(mig.cleanup(), effort, &mut ctx);
        let passes = ctx.take_ledger();
        let size_ok = passes
            .iter()
            .filter(|r| {
                matches!(
                    r.pass.as_str(),
                    "size" | "rewrite" | "depth_rewrite" | "esat"
                )
            })
            .all(|r| r.after.size <= r.before.size);
        let total_millis = passes.iter().map(|p| p.millis).sum();
        let degraded = passes.iter().filter(|r| r.outcome.degraded()).count();
        let mapped = map_record(&cur, &net, &CellLibrary::cmos22(), rounds);
        let mapped_nomaj = map_record(&cur, &net, &CellLibrary::cmos22_no_maj(), rounds);
        let esat = config.esat.then(|| {
            let run_one = |ctx: &mut OptContext, f: &Flow| {
                let out = f.run(mig.clone().cleanup(), effort, ctx);
                let millis: f64 = ctx.take_ledger().iter().map(|p| p.millis).sum();
                (out, millis)
            };
            let (esat_out, millis) = run_one(&mut ctx, &esat_flow);
            let (ref_out, ref_millis) = run_one(&mut ctx, &esat_ref_flow);
            EsatRecord {
                size: esat_out.size(),
                depth: esat_out.depth(),
                ref_size: ref_out.size(),
                ref_depth: ref_out.depth(),
                millis,
                ref_millis,
                equiv: esat_out.equiv(&mig, rounds) && ref_out.equiv(&mig, rounds),
            }
        });
        benchmarks.push(BenchRecord {
            name: name.clone(),
            inputs: mig.num_inputs(),
            outputs: mig.num_outputs(),
            import,
            passes,
            equiv: cur.equiv(&mig, rounds),
            size_ok,
            mapped,
            mapped_nomaj,
            esat,
            degraded,
            total_millis,
        });
    }
    let large: Vec<LargeRecord> = large_names
        .iter()
        .map(|name| run_large(name, &large_flow, effort, rounds, &mut ctx))
        .collect();
    let suite = match (benchmarks.is_empty(), large.is_empty()) {
        (false, false) => "mcnc14+large4",
        (true, false) => "large4",
        _ => "mcnc14",
    };
    BenchReport {
        mode: if config.quick { "quick" } else { "full" },
        suite: suite.to_string(),
        flow: flow.to_string(),
        large_flow: large_flow.to_string(),
        effort,
        threads,
        benchmarks,
        large,
        serve: None,
    }
}

/// Serializes a report in the stable `mig-bench/v8` schema.
///
/// Hand-rolled (the workspace has zero third-party dependencies); all
/// strings in the schema are benchmark names, pass labels and canonical
/// flow scripts, which never need escaping.
pub fn to_json(report: &BenchReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"mig-bench/v8\",");
    let _ = writeln!(s, "  \"suite\": \"{}\",", report.suite);
    let _ = writeln!(s, "  \"mode\": \"{}\",", report.mode);
    let _ = writeln!(s, "  \"flow\": \"{}\",", report.flow);
    let _ = writeln!(s, "  \"esat_flow\": \"{ESAT_FLOW}\",");
    let _ = writeln!(s, "  \"esat_ref_flow\": \"{ESAT_REF_FLOW}\",");
    let _ = writeln!(s, "  \"effort\": {},", report.effort);
    let _ = writeln!(s, "  \"threads\": {},", report.threads);
    s.push_str("  \"benchmarks\": [\n");
    for (i, b) in report.benchmarks.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", b.name);
        let _ = writeln!(s, "      \"inputs\": {},", b.inputs);
        let _ = writeln!(s, "      \"outputs\": {},", b.outputs);
        let _ = writeln!(
            s,
            "      \"import\": {{\"size\": {}, \"depth\": {}, \"activity\": {:.3}}},",
            b.import.size, b.import.depth, b.import.activity
        );
        s.push_str("      \"passes\": [\n");
        for (j, p) in b.passes.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"pass\": \"{}\", \"size\": {}, \"depth\": {}, \
                 \"activity\": {:.3}, \"millis\": {:.2}",
                p.pass, p.after.size, p.after.depth, p.after.activity, p.millis
            );
            // Emitted only for degraded passes, so a healthy run's JSON
            // is byte-identical to the pre-resilience v5 schema (the
            // committed trajectory never needs regenerating).
            if p.outcome.degraded() {
                let _ = write!(s, ", \"outcome\": \"{}\"", p.outcome.name());
            }
            s.push('}');
            s.push_str(if j + 1 < b.passes.len() { ",\n" } else { "\n" });
        }
        s.push_str("      ],\n");
        let _ = writeln!(s, "      \"equiv\": {},", b.equiv);
        let _ = writeln!(s, "      \"size_ok\": {},", b.size_ok);
        for (key, m) in [("mapped", &b.mapped), ("mapped_nomaj", &b.mapped_nomaj)] {
            let _ = writeln!(
                s,
                "      \"{key}\": {{\"library\": \"{}\", \"cells\": {}, \
                 \"area\": {:.3}, \"delay\": {:.4}, \"power\": {:.2}, \
                 \"equiv\": {}}},",
                m.library, m.cells, m.area, m.delay, m.power, m.equiv
            );
        }
        if let Some(e) = &b.esat {
            let _ = writeln!(
                s,
                "      \"esat\": {{\"size\": {}, \"depth\": {}, \
                 \"ref_size\": {}, \"ref_depth\": {}, \"millis\": {:.2}, \
                 \"ref_millis\": {:.2}, \"equiv\": {}}},",
                e.size, e.depth, e.ref_size, e.ref_depth, e.millis, e.ref_millis, e.equiv
            );
        }
        let _ = writeln!(s, "      \"total_millis\": {:.2}", b.total_millis);
        s.push_str("    }");
        s.push_str(if i + 1 < report.benchmarks.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    // The large tier serializes as its own top-level block so the CI
    // bit-identity gates can strip it with a line-range delete (its
    // `peak_rss_bytes` and wall times are machine-volatile).
    if !report.large.is_empty() {
        let _ = writeln!(s, "  \"large_flow\": \"{}\",", report.large_flow);
        s.push_str("  \"large\": [\n");
        for (i, l) in report.large.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"name\": \"{}\",", l.name);
            let _ = writeln!(s, "      \"inputs\": {},", l.inputs);
            let _ = writeln!(s, "      \"outputs\": {},", l.outputs);
            let _ = writeln!(
                s,
                "      \"import\": {{\"size\": {}, \"depth\": {}}},",
                l.import.size, l.import.depth
            );
            s.push_str("      \"passes\": [\n");
            for (j, p) in l.passes.iter().enumerate() {
                let _ = write!(
                    s,
                    "        {{\"pass\": \"{}\", \"size\": {}, \"depth\": {}, \
                     \"millis\": {:.2}",
                    p.pass, p.after.size, p.after.depth, p.millis
                );
                if p.outcome.degraded() {
                    let _ = write!(s, ", \"outcome\": \"{}\"", p.outcome.name());
                }
                s.push('}');
                s.push_str(if j + 1 < l.passes.len() { ",\n" } else { "\n" });
            }
            s.push_str("      ],\n");
            let _ = writeln!(s, "      \"equiv\": {},", l.equiv);
            let _ = writeln!(s, "      \"size_ok\": {},", l.size_ok);
            let _ = writeln!(
                s,
                "      \"mem\": {{\"arena_bytes\": {}, \"strash_slots\": {}, \
                 \"strash_bytes\": {}, \"cache_entries\": {}, \
                 \"peak_rss_bytes\": {}}},",
                l.mem.arena_bytes,
                l.mem.strash_slots,
                l.mem.strash_bytes,
                l.mem.cache_entries,
                l.mem.peak_rss_bytes
            );
            let _ = writeln!(
                s,
                "      \"levels\": {{\"incremental_repairs\": {}, \
                 \"repaired_nodes\": {}, \"nodes_per_repair\": {:.2}, \
                 \"global_rebuilds\": {}}},",
                l.levels.incremental_repairs,
                l.levels.repaired_nodes,
                l.levels.nodes_per_repair(),
                l.levels.global_rebuilds
            );
            let _ = writeln!(s, "      \"total_millis\": {:.2}", l.total_millis);
            s.push_str("    }");
            s.push_str(if i + 1 < report.large.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
    }
    // Like `large`, the serve sweep is a self-contained top-level block
    // immediately before `totals`, so the CI bit-identity gates can
    // strip it with a line-range delete (throughput and latency are
    // machine-volatile).
    if let Some(serve) = &report.serve {
        s.push_str(&serve_block_json(serve));
    }
    let size_before: usize = report.benchmarks.iter().map(|b| b.import.size).sum();
    let size_after: usize = report
        .benchmarks
        .iter()
        .map(|b| b.passes.last().map_or(b.import.size, |p| p.after.size))
        .sum();
    let _ = writeln!(s, "  \"totals\": {{");
    let _ = writeln!(s, "    \"benchmarks\": {},", report.benchmarks.len());
    let _ = writeln!(s, "    \"millis\": {:.2},", report.total_millis());
    let _ = writeln!(s, "    \"size_before\": {size_before},");
    let _ = writeln!(s, "    \"size_after\": {size_after},");
    let _ = writeln!(s, "    \"mapped_area\": {:.3},", report.mapped_area());
    let _ = writeln!(
        s,
        "    \"mapped_nomaj_area\": {:.3},",
        report.mapped_nomaj_area()
    );
    if report.benchmarks.iter().any(|b| b.esat.is_some()) {
        let _ = writeln!(s, "    \"esat_size\": {},", report.esat_size());
        let _ = writeln!(s, "    \"esat_ref_size\": {},", report.esat_ref_size());
    }
    let _ = writeln!(s, "    \"all_ok\": {}", report.all_ok());
    s.push_str("  }\n}\n");
    s
}

/// Renders the `"serve"` block of the v8 schema (the lines between the
/// benchmark/large arrays and `"totals"`), trailing comma included.
///
/// Public so `mighty serve --bench` can splice a fresh sweep into an
/// existing `BENCH_opt.json` textually — replacing the old block in
/// place keeps every other byte of the committed trajectory intact.
pub fn serve_block_json(serve: &ServeReport) -> String {
    let mut s = String::new();
    s.push_str("  \"serve\": {\n");
    let _ = writeln!(s, "    \"flow\": \"{}\",", serve.flow);
    let _ = writeln!(s, "    \"effort\": {},", serve.effort);
    s.push_str("    \"sweeps\": [\n");
    for (i, r) in serve.sweeps.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"workers\": {}, \"clients\": {}, \"jobs\": {}, \
             \"jobs_per_sec\": {:.2}, \"p50_ms\": {:.2}, \"p95_ms\": {:.2}, \
             \"p99_ms\": {:.2}, \"verified\": {}, \"bit_identical\": {}}}",
            r.workers,
            r.clients,
            r.jobs,
            r.jobs_per_sec,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.verified,
            r.bit_identical
        );
        s.push_str(if i + 1 < serve.sweeps.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s
}

fn render_large_lines(s: &mut String, report: &BenchReport) {
    for l in &report.large {
        let _ = writeln!(
            s,
            "large {:<9} {:>8} nodes → {:>8} · depth {:>5} → {:>5} · {:>8.0} ms · \
             {:.2} nodes/repair · peak RSS {:.0} MiB · {}",
            l.name,
            l.import.size,
            l.passes.last().map_or(l.import.size, |p| p.after.size),
            l.import.depth,
            l.passes.last().map_or(l.import.depth, |p| p.after.depth),
            l.total_millis,
            l.levels.nodes_per_repair(),
            l.mem.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            if l.equiv && l.size_ok { "PASS" } else { "FAIL" }
        );
    }
}

/// Human-readable per-pass table for the CLI.
pub fn render_table(report: &BenchReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "mighty bench · mode={} · flow \"{}\" · effort={} · threads={}",
        report.mode, report.flow, report.effort, report.threads
    );
    // A large-only run has no MCNC rows, mapped areas or esat lines —
    // skip the per-pass column grid entirely instead of printing empty
    // headers and a zero-benchmark totals line.
    if report.benchmarks.is_empty() {
        render_large_lines(&mut s, report);
        let _ = writeln!(
            s,
            "total: {} large benchmark(s) · {}",
            report.large.len(),
            if report.all_ok() {
                "all PASS"
            } else {
                "FAILURES PRESENT"
            }
        );
        if report.any_degraded() {
            let _ = writeln!(
                s,
                "degraded: {} pass execution(s) rolled back, timed out or skipped",
                report.degraded_passes()
            );
        }
        return s;
    }
    // Column headers come from the longest pass list: flows execute the
    // same steps everywhere, but a converge marker can stop earlier on
    // some circuits, so shorter rows are aligned below by matching pass
    // names against these headers.
    let widest = report
        .benchmarks
        .iter()
        .max_by_key(|b| b.passes.len())
        .map(|b| b.passes.as_slice())
        .unwrap_or(&[]);
    let _ = write!(s, "{:<10} {:>7} {:>6} |", "", "import", "");
    for p in widest {
        let _ = write!(s, " {:^23} |", format!("{} pass", p.pass));
    }
    let _ = writeln!(s, " {:^19} |", "mapped µm²");
    let _ = write!(s, "{:<10} {:>7} {:>6} |", "bench", "size", "depth");
    for _ in widest {
        let _ = write!(s, " {:>7} {:>6} {:>8} |", "size", "depth", "ms");
    }
    let _ = writeln!(s, " {:>9} {:>9} | {:>6}", "cmos22", "nomaj", "equiv");
    for b in &report.benchmarks {
        let _ = write!(
            s,
            "{:<10} {:>7} {:>6} |",
            b.name, b.import.size, b.import.depth
        );
        // Walk the header slots, consuming this circuit's passes
        // greedily by name: a circuit whose converge marker stopped
        // earlier leaves the rest of that step's slots blank instead of
        // shifting later passes under the wrong header.
        let mut next = b.passes.iter().peekable();
        for header in widest {
            match next.peek() {
                Some(p) if p.pass == header.pass => {
                    let p = next.next().expect("peeked");
                    let _ = write!(
                        s,
                        " {:>7} {:>6} {:>8.1} |",
                        p.after.size, p.after.depth, p.millis
                    );
                }
                _ => {
                    let _ = write!(s, " {:>7} {:>6} {:>8} |", "", "", "");
                }
            }
        }
        let _ = writeln!(
            s,
            " {:>9.3} {:>9.3} | {:>6}",
            b.mapped.area,
            b.mapped_nomaj.area,
            if b.equiv && b.size_ok && b.mapped.equiv && b.mapped_nomaj.equiv {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }
    render_large_lines(&mut s, report);
    let _ = writeln!(
        s,
        "total: {} benchmarks · {:.1} ms optimization · mapped {:.1}/{:.1} µm² (cmos22/nomaj) · {}",
        report.benchmarks.len(),
        report.total_millis(),
        report.mapped_area(),
        report.mapped_nomaj_area(),
        if report.all_ok() {
            "all PASS"
        } else {
            "FAILURES PRESENT"
        }
    );
    if report.benchmarks.iter().any(|b| b.esat.is_some()) {
        let (wins, ties, losses) = report.esat_score();
        let _ = writeln!(
            s,
            "esat head-to-head: suite size {} vs reference {} · {wins} win(s), \
             {ties} tie(s), {losses} loss(es) on final size",
            report.esat_size(),
            report.esat_ref_size(),
        );
    }
    if report.any_degraded() {
        let _ = writeln!(
            s,
            "degraded: {} pass execution(s) rolled back, timed out or skipped",
            report.degraded_passes()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BenchConfig {
        // The head-to-head doubles the per-benchmark work, so the tests
        // that don't assert on it turn it off (one dedicated test keeps
        // it on).
        BenchConfig {
            names: vec!["my_adder".into(), "count".into()],
            jobs: 1,
            esat: false,
            ..BenchConfig::quick()
        }
    }

    #[test]
    fn suite_runs_and_verifies() {
        let report = run_suite(&tiny_config());
        assert_eq!(report.benchmarks.len(), 2);
        assert_eq!(report.flow, DEFAULT_FLOW);
        assert!(report.all_ok(), "equivalence and size must hold");
        for b in &report.benchmarks {
            assert_eq!(b.passes.len(), 4);
            let names: Vec<&str> = b.passes.iter().map(|p| p.pass.as_str()).collect();
            assert_eq!(names, PASSES);
            let size_pass = b.passes[0].after.size;
            assert!(size_pass <= b.import.size, "Algorithm 1 must not grow");
            let rewrite_pass = b.passes[1].after.size;
            assert!(rewrite_pass <= size_pass, "rewriting must not grow");
        }
    }

    #[test]
    fn custom_flows_drive_the_pass_list() {
        let config = BenchConfig {
            flow: Some("rewrite; size*2".into()),
            ..tiny_config()
        };
        let report = run_suite(&config);
        assert_eq!(report.flow, "rewrite; size*2");
        assert!(report.all_ok());
        for b in &report.benchmarks {
            let names: Vec<&str> = b.passes.iter().map(|p| p.pass.as_str()).collect();
            assert_eq!(names, ["rewrite", "size", "size"]);
        }
    }

    #[test]
    fn json_has_stable_schema_fields() {
        let report = run_suite(&tiny_config());
        let json = to_json(&report);
        for field in [
            "\"schema\": \"mig-bench/v8\"",
            "\"suite\": \"mcnc14\"",
            "\"mode\": \"quick\"",
            "\"flow\": \"size; rewrite; depth; activity\"",
            "\"esat_flow\": ",
            "\"esat_ref_flow\": ",
            "\"threads\": ",
            "\"benchmarks\": [",
            "\"import\":",
            "\"passes\": [",
            "\"pass\": \"size\"",
            "\"pass\": \"rewrite\"",
            "\"pass\": \"depth\"",
            "\"pass\": \"activity\"",
            "\"equiv\": true",
            "\"size_ok\": true",
            "\"mapped\": {\"library\": \"cmos22\"",
            "\"mapped_nomaj\": {\"library\": \"cmos22-nomaj\"",
            "\"totals\": {",
            "\"mapped_area\": ",
            "\"mapped_nomaj_area\": ",
            "\"all_ok\": true",
        ] {
            assert!(json.contains(field), "missing {field} in:\n{json}");
        }
        // An MCNC-only run must carry no machine-volatile large block.
        assert!(!json.contains("\"large\""), "unexpected large block");
        // Must be balanced-brace JSON (cheap structural sanity check).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON");
    }

    #[test]
    fn large_tier_records_scaling_evidence() {
        // `suite: large` routes explicit names through the large-tier
        // runner, so a small circuit exercises the whole path (flow,
        // ledger, level counters, memory footprint, JSON block) at unit
        // -test cost; the real 100k–1M circuits run in `mighty bench`.
        let config = BenchConfig {
            names: vec!["my_adder".into()],
            suite: "large".into(),
            jobs: 1,
            esat: false,
            ..BenchConfig::quick()
        };
        let report = run_suite(&config);
        assert!(report.benchmarks.is_empty());
        assert_eq!(report.suite, "large4");
        assert_eq!(report.large_flow, LARGE_FLOW);
        assert_eq!(report.large.len(), 1);
        assert!(report.all_ok());
        let l = &report.large[0];
        assert!(l.equiv && l.size_ok, "large record must verify");
        assert!(l.mem.arena_bytes > 0, "arena footprint sampled");
        assert!(l.mem.strash_slots > 0, "strash footprint sampled");
        let names: Vec<&str> = l.passes.iter().map(|p| p.pass.as_str()).collect();
        assert_eq!(names, ["size", "size", "rewrite", "depth_rewrite", "depth"]);
        let json = to_json(&report);
        for field in [
            "\"suite\": \"large4\"",
            "\"large_flow\": \"size*2; rewrite; depth_rewrite; depth\"",
            "\"large\": [",
            "\"mem\": {\"arena_bytes\": ",
            "\"peak_rss_bytes\": ",
            "\"levels\": {\"incremental_repairs\": ",
            "\"nodes_per_repair\": ",
        ] {
            assert!(json.contains(field), "missing {field} in:\n{json}");
        }
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes, "unbalanced JSON");
        assert!(render_table(&report).contains("large my_adder"));
    }

    #[test]
    fn all_suite_partitions_explicit_names() {
        let config = BenchConfig {
            names: vec!["my_adder".into(), "count".into()],
            suite: "all".into(),
            jobs: 1,
            esat: false,
            ..BenchConfig::quick()
        };
        // Neither name is in the large tier: both route to MCNC.
        let report = run_suite(&config);
        assert_eq!(report.benchmarks.len(), 2);
        assert!(report.large.is_empty());
        assert_eq!(report.suite, "mcnc14");
    }

    #[test]
    fn esat_head_to_head_verifies_and_never_loses() {
        let config = BenchConfig {
            names: vec!["my_adder".into()],
            jobs: 1,
            esat: true,
            ..BenchConfig::quick()
        };
        let report = run_suite(&config);
        let e = report.benchmarks[0]
            .esat
            .as_ref()
            .expect("head-to-head ran");
        assert!(e.equiv, "both finals must verify against the import");
        assert!(
            e.size <= e.ref_size,
            "the esat flow extends the reference backbone with monotone \
             passes, so it can never end larger ({} > {})",
            e.size,
            e.ref_size
        );
        let json = to_json(&report);
        for field in [
            "\"esat\": {\"size\": ",
            "\"ref_size\": ",
            "\"ref_millis\": ",
            "\"esat_size\": ",
            "\"esat_ref_size\": ",
        ] {
            assert!(json.contains(field), "missing {field} in:\n{json}");
        }
        let (wins, ties, losses) = report.esat_score();
        assert_eq!(losses, 0);
        assert_eq!(wins + ties, 1);
        assert!(render_table(&report).contains("esat head-to-head"));
    }

    #[test]
    fn maj_library_maps_smaller_than_the_control() {
        // The paper's headline mapping claim in miniature: first-class
        // majority cells beat the majority-free control library.
        let report = run_suite(&tiny_config());
        for b in &report.benchmarks {
            assert!(b.mapped.equiv && b.mapped_nomaj.equiv, "{}", b.name);
        }
        assert!(report.mapped_area() < report.mapped_nomaj_area());
    }

    #[test]
    fn quick_mode_skips_the_giants() {
        let names: Vec<String> = mig_benchgen::MCNC_NAMES
            .iter()
            .filter(|n| !QUICK_SKIP.contains(n))
            .map(|n| n.to_string())
            .collect();
        // The quick-mode name resolution run_suite performs, checked
        // without paying for a full run.
        assert_eq!(names.len(), 11);
        assert!(BenchConfig::quick().names.is_empty());
        for skip in QUICK_SKIP {
            assert!(!names.contains(&skip.to_string()));
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let mut c1 = tiny_config();
        c1.jobs = 1;
        let mut c4 = tiny_config();
        c4.jobs = 4;
        let r1 = run_suite(&c1);
        let r4 = run_suite(&c4);
        assert_eq!(r1.threads, 1);
        assert_eq!(r4.threads, 4);
        for (a, b) in r1.benchmarks.iter().zip(&r4.benchmarks) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.equiv, b.equiv);
            for (pa, pb) in a.passes.iter().zip(&b.passes) {
                assert_eq!(pa.after.size, pb.after.size, "{} {}", a.name, pa.pass);
                assert_eq!(pa.after.depth, pb.after.depth, "{} {}", a.name, pa.pass);
            }
        }
    }

    #[test]
    fn table_mentions_every_benchmark() {
        let report = run_suite(&tiny_config());
        let table = render_table(&report);
        assert!(table.contains("my_adder"));
        assert!(table.contains("count"));
        assert!(table.contains("PASS"));
    }
}
