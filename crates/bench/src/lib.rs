//! (under construction)
