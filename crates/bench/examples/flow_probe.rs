//! Hot-path profiling probe: run one generator through one flow with
//! per-pass wall times, `LevelMap` repair counters and a final
//! equivalence check — the manual loupe behind the `--suite large`
//! numbers in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p mig_bench --example flow_probe -- \
//!     mul_1m "size*2; rewrite; depth_rewrite; depth" 4
//! ```

use mig_core::{Flow, OptContext};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(|s| s.as_str()).unwrap_or("mul_100k");
    let net = mig_benchgen::generate(name).unwrap();
    let t_import = std::time::Instant::now();
    let mig = mig_core::Mig::from_network(&net);
    eprintln!(
        "{name}: mig_nodes={} depth={} import={:.2}s",
        mig.num_nodes(),
        mig.depth(),
        t_import.elapsed().as_secs_f64()
    );
    let flow = Flow::parse(
        args.get(2)
            .map(|s| s.as_str())
            .unwrap_or("size*2; rewrite; depth_rewrite; depth"),
    )
    .unwrap();
    let effort: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2);
    let mut ctx = OptContext::with_jobs(1);
    let t0 = std::time::Instant::now();
    let out = flow.run(mig.clone(), effort, &mut ctx);
    eprintln!(
        "flow done in {:.2}s: size {} -> {}, depth {} -> {}",
        t0.elapsed().as_secs_f64(),
        mig.size(),
        out.size(),
        mig.depth(),
        out.depth()
    );
    for r in ctx.ledger() {
        eprintln!("  pass {:14} {:>9.1}ms", r.pass, r.millis);
    }
    let ls = ctx.level_stats();
    eprintln!("level stats: {ls:?}");
    let t1 = std::time::Instant::now();
    let ok = out.equiv(&mig, 16);
    eprintln!(
        "equiv(16 rounds)={ok} in {:.2}s",
        t1.elapsed().as_secs_f64()
    );
}
