//! Technology mapping onto a 22nm-style standard-cell library (paper §V).
//!
//! The DAC'14 MIG paper judges its optimizers by *mapped* metrics: area,
//! critical-path delay and power of a standard-cell netlist on a 22nm
//! library containing first-class majority cells. This crate supplies
//! that measurement layer:
//!
//! * [`library`] — the [`CellLibrary`] model with the paper's
//!   {INV, NAND2, NOR2, XOR2, XNOR2, MAJ3, MIN3} characterization
//!   ([`CellLibrary::cmos22`]) and a majority-free control library
//!   ([`CellLibrary::cmos22_no_maj`]) for the MAJ-vs-NAND/NOR
//!   comparison.
//! * [`mapper`] — the cut-based technology mapper: NPN Boolean matching
//!   of k≤4 priority cuts against the library, phase-aware area-flow
//!   covering, exact-area refinement and required-time delay recovery
//!   ([`map_mig`]); plus [`TechMapper`], which packages a library behind
//!   `mig_core`'s `TechModel` trait so optimization flows can use
//!   mapped cost as their objective.
//! * [`design`] — the [`MappedDesign`] cell netlist with its
//!   area/delay/power estimators and a [`MappedDesign::to_network`]
//!   export for equivalence checking against the unmapped graph.
//!
//! # Example
//!
//! ```
//! use mig_core::Mig;
//! use mig_techmap::{map_mig, CellLibrary, MapConfig};
//!
//! // Full adder carry = MAJ(a, b, cin): one cell on the MAJ library.
//! let mut mig = Mig::new("carry");
//! let a = mig.add_input("a");
//! let b = mig.add_input("b");
//! let cin = mig.add_input("cin");
//! let carry = mig.maj(a, b, cin);
//! mig.add_output("cout", carry);
//!
//! let lib = CellLibrary::cmos22();
//! let design = map_mig(&mig, &lib, &MapConfig::default());
//! assert_eq!(design.num_cells(), 1);
//! assert!(design.area() > 0.0 && design.delay() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod design;
pub mod library;
pub mod mapper;

pub use design::{Instance, MappedDesign, NetId};
pub use library::{Cell, CellLibrary, KNOWN_LIBRARIES};
pub use mapper::{map_mig, MapConfig, MapGoal, TechMapper};
