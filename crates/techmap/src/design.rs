//! Mapped (cell-level) designs and their {area, delay, power} estimators.

use crate::library::CellLibrary;
use mig_netlist::{GateId, GateKind, Network};
use mig_sim::signal_probabilities;
use mig_tt::{factor_sop, isop, FactoredForm, TruthTable};

/// A net in a [`MappedDesign`]: primary-input nets come first, then the
/// two constant nets, then one net per instance output.
pub type NetId = u32;

/// One placed cell.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Index into the library's cell list.
    pub cell: usize,
    /// Input nets, in cell-pin order.
    pub inputs: Vec<NetId>,
    /// Output net.
    pub output: NetId,
}

/// A technology-mapped netlist over a [`CellLibrary`].
#[derive(Debug, Clone)]
pub struct MappedDesign {
    /// The library the design is mapped onto.
    pub library: CellLibrary,
    /// Design name.
    pub name: String,
    /// Primary-input names (nets `0..input_names.len()`).
    pub input_names: Vec<String>,
    /// Cell instances in topological order.
    pub instances: Vec<Instance>,
    /// Primary outputs as `(name, net)`.
    pub outputs: Vec<(String, NetId)>,
}

impl MappedDesign {
    /// Net id of primary input `i`.
    pub fn input_net(&self, i: usize) -> NetId {
        i as NetId
    }

    /// Net id of constant `false` / `true`.
    pub fn const_net(&self, value: bool) -> NetId {
        (self.input_names.len() + value as usize) as NetId
    }

    /// Net id of instance `i`'s output.
    pub fn instance_net(&self, i: usize) -> NetId {
        (self.input_names.len() + 2 + i) as NetId
    }

    /// Total number of nets.
    pub fn num_nets(&self) -> usize {
        self.input_names.len() + 2 + self.instances.len()
    }

    /// Number of cell instances.
    pub fn num_cells(&self) -> usize {
        self.instances.len()
    }

    /// Total cell area in µm².
    pub fn area(&self) -> f64 {
        self.instances
            .iter()
            .map(|inst| self.library.cells[inst.cell].area)
            .sum()
    }

    /// Fanout count per net.
    fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_nets()];
        for inst in &self.instances {
            for &i in &inst.inputs {
                counts[i as usize] += 1;
            }
        }
        for &(_, n) in &self.outputs {
            counts[n as usize] += 1;
        }
        counts
    }

    /// Critical-path delay in ns: cell intrinsic delays plus a per-fanout
    /// wire/pin load term.
    pub fn delay(&self) -> f64 {
        let fanout = self.fanout_counts();
        let mut arrival = vec![0.0f64; self.num_nets()];
        for (i, inst) in self.instances.iter().enumerate() {
            let cell = &self.library.cells[inst.cell];
            let input_arr = inst
                .inputs
                .iter()
                .map(|&n| arrival[n as usize])
                .fold(0.0f64, f64::max);
            let out = self.instance_net(i) as usize;
            arrival[out] = input_arr + cell.delay + self.library.fanout_delay * fanout[out] as f64;
        }
        self.outputs
            .iter()
            .map(|&(_, n)| arrival[n as usize])
            .fold(0.0f64, f64::max)
    }

    /// Estimated power in µW: dynamic switching power
    /// `Σ p(1−p)·C_load·V²·f` over nets plus cell leakage.
    pub fn power(&self) -> f64 {
        let net = self.to_network();
        let probs = signal_probabilities(&net, &vec![0.5; net.num_inputs()]);
        // net-id → probability via the network gate mapping (identical
        // ordering by construction of to_network).
        let gate_of_net = self.net_to_gate_map(&net);
        let mut cap = vec![0.0f64; self.num_nets()];
        for inst in &self.instances {
            let cell = &self.library.cells[inst.cell];
            for &i in &inst.inputs {
                cap[i as usize] += cell.input_cap;
            }
        }
        let mut dynamic = 0.0;
        for n in 0..self.num_nets() {
            let Some(gate) = gate_of_net[n] else { continue };
            let p = probs[gate.index()];
            let act = p * (1.0 - p);
            // fF · V² · GHz = µW
            dynamic += act * cap[n] * self.library.vdd * self.library.vdd * self.library.freq_ghz;
        }
        let leakage: f64 = self
            .instances
            .iter()
            .map(|inst| self.library.cells[inst.cell].leakage)
            .sum::<f64>()
            / 1000.0; // nW → µW
        dynamic + leakage
    }

    /// Converts the mapped design back into a primitive-gate network
    /// (used for verification and probability estimation).
    pub fn to_network(&self) -> Network {
        let mut net = Network::new(self.name.clone());
        let mut gate_of: Vec<Option<GateId>> = vec![None; self.num_nets()];
        for (i, name) in self.input_names.iter().enumerate() {
            gate_of[i] = Some(net.add_input(name.clone()));
        }
        let c0 = net.constant(false);
        let c1 = net.constant(true);
        gate_of[self.const_net(false) as usize] = Some(c0);
        gate_of[self.const_net(true) as usize] = Some(c1);
        for (i, inst) in self.instances.iter().enumerate() {
            let cell = &self.library.cells[inst.cell];
            let fanins: Vec<GateId> = inst
                .inputs
                .iter()
                .map(|&n| gate_of[n as usize].expect("topological order"))
                .collect();
            let g = build_cell_function(&mut net, &cell.function, &fanins);
            gate_of[self.instance_net(i) as usize] = Some(g);
        }
        for (name, n) in &self.outputs {
            net.set_output(name.clone(), gate_of[*n as usize].expect("driven net"));
        }
        net
    }

    fn net_to_gate_map(&self, net: &Network) -> Vec<Option<GateId>> {
        // Reconstruct the same correspondence as `to_network` (the build
        // is deterministic, so replaying it yields identical ids).
        let mut replay = Network::new(self.name.clone());
        let mut gate_of: Vec<Option<GateId>> = vec![None; self.num_nets()];
        for (i, name) in self.input_names.iter().enumerate() {
            gate_of[i] = Some(replay.add_input(name.clone()));
        }
        let c0 = replay.constant(false);
        let c1 = replay.constant(true);
        gate_of[self.const_net(false) as usize] = Some(c0);
        gate_of[self.const_net(true) as usize] = Some(c1);
        for (i, inst) in self.instances.iter().enumerate() {
            let cell = &self.library.cells[inst.cell];
            let fanins: Vec<GateId> = inst
                .inputs
                .iter()
                .map(|&n| gate_of[n as usize].expect("topological order"))
                .collect();
            let g = build_cell_function(&mut replay, &cell.function, &fanins);
            gate_of[self.instance_net(i) as usize] = Some(g);
        }
        debug_assert_eq!(replay.num_gates(), net.num_gates());
        gate_of
    }
}

/// Builds a cell's function as primitive gates over the given fanins.
/// Known cell functions map to single primitives; anything else is built
/// from its factored cover.
fn build_cell_function(net: &mut Network, f: &TruthTable, fanins: &[GateId]) -> GateId {
    let nv = f.num_vars();
    let single = |tt_bits: u64| f.num_vars() <= 3 && f.as_u64() == tt_bits;
    match nv {
        1 if single(0b01) => net.add_gate(GateKind::Not, vec![fanins[0]]),
        1 if single(0b10) => net.add_gate(GateKind::Buf, vec![fanins[0]]),
        2 if single(0b1000) => net.add_gate(GateKind::And, fanins.to_vec()),
        2 if single(0b1110) => net.add_gate(GateKind::Or, fanins.to_vec()),
        2 if single(0b0111) => net.add_gate(GateKind::Nand, fanins.to_vec()),
        2 if single(0b0001) => net.add_gate(GateKind::Nor, fanins.to_vec()),
        2 if single(0b0110) => net.add_gate(GateKind::Xor, fanins.to_vec()),
        2 if single(0b1001) => net.add_gate(GateKind::Xnor, fanins.to_vec()),
        3 if single(0xE8) => net.add_gate(GateKind::Maj, fanins.to_vec()),
        3 if single(0x17) => {
            let m = net.add_gate(GateKind::Maj, fanins.to_vec());
            net.add_gate(GateKind::Not, vec![m])
        }
        _ => {
            // Generic fallback: factored-cover construction.
            let ff = factor_sop(&isop(f));
            build_factored(net, &ff, fanins)
        }
    }
}

fn build_factored(net: &mut Network, ff: &FactoredForm, fanins: &[GateId]) -> GateId {
    match ff {
        FactoredForm::Const(v) => net.constant(*v),
        FactoredForm::Literal { var, positive } => {
            if *positive {
                fanins[*var]
            } else {
                net.add_gate(GateKind::Not, vec![fanins[*var]])
            }
        }
        FactoredForm::And(parts) => {
            let gates: Vec<GateId> = parts
                .iter()
                .map(|p| build_factored(net, p, fanins))
                .collect();
            net.add_gate(GateKind::And, gates)
        }
        FactoredForm::Or(parts) => {
            let gates: Vec<GateId> = parts
                .iter()
                .map(|p| build_factored(net, p, fanins))
                .collect();
            net.add_gate(GateKind::Or, gates)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_design() -> MappedDesign {
        // y = MAJ3(a, b, INV(c))
        let lib = CellLibrary::cmos22();
        let inv = lib.inverter();
        let maj = lib
            .cells
            .iter()
            .position(|c| c.name == "MAJ3")
            .expect("cell exists");
        let mut d = MappedDesign {
            library: lib,
            name: "tiny".into(),
            input_names: vec!["a".into(), "b".into(), "c".into()],
            instances: vec![],
            outputs: vec![],
        };
        let c = d.input_net(2);
        d.instances.push(Instance {
            cell: inv,
            inputs: vec![c],
            output: d.instance_net(0),
        });
        let inv_net = d.instance_net(0);
        d.instances.push(Instance {
            cell: maj,
            inputs: vec![d.input_net(0), d.input_net(1), inv_net],
            output: d.instance_net(1),
        });
        let out = d.instance_net(1);
        d.outputs.push(("y".into(), out));
        d
    }

    #[test]
    fn metrics_are_positive_and_consistent() {
        let d = tiny_design();
        assert_eq!(d.num_cells(), 2);
        let expected_area =
            d.library.cells[d.instances[0].cell].area + d.library.cells[d.instances[1].cell].area;
        assert!((d.area() - expected_area).abs() < 1e-12);
        // Critical path: INV then MAJ3 with unit fanouts.
        let inv = &d.library.cells[d.instances[0].cell];
        let maj = &d.library.cells[d.instances[1].cell];
        let expect = inv.delay + d.library.fanout_delay + maj.delay + d.library.fanout_delay;
        assert!(
            (d.delay() - expect).abs() < 1e-9,
            "{} vs {expect}",
            d.delay()
        );
        assert!(d.power() > 0.0);
    }

    #[test]
    fn to_network_computes_the_function() {
        let d = tiny_design();
        let net = d.to_network();
        for bits in 0..8u32 {
            let assign = [(bits & 1) == 1, bits & 2 == 2, bits & 4 == 4];
            #[allow(clippy::nonminimal_bool)] // MAJ(a, b, !c) spelled as a sum of pairs
            let expect =
                (assign[0] && assign[1]) || (assign[0] && !assign[2]) || (assign[1] && !assign[2]);
            assert_eq!(net.eval(&assign), vec![expect], "bits {bits:03b}");
        }
    }

    #[test]
    fn generic_cell_fallback() {
        // A 3-input AND-OR cell not named in the primitive table.
        let mut net = Network::new("g");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let f = {
            let x = TruthTable::var(0, 3);
            let y = TruthTable::var(1, 3);
            let z = TruthTable::var(2, 3);
            x.and(&y).or(&z)
        };
        let g = build_cell_function(&mut net, &f, &[a, b, c]);
        net.set_output("y", g);
        for bits in 0..8u32 {
            let assign = [(bits & 1) == 1, bits & 2 == 2, bits & 4 == 4];
            let expect = (assign[0] && assign[1]) || assign[2];
            assert_eq!(net.eval(&assign)[0], expect);
        }
    }
}
