//! Cut-based technology mapping: MIG → standard-cell netlist (paper §V).
//!
//! The paper evaluates MIG optimization by *mapped* area/delay/power on
//! a 22nm library; this module supplies the mapper that turns an
//! optimized [`Mig`] into a [`MappedDesign`] over a [`CellLibrary`].
//! The algorithm is the classic cut-based Boolean-matching flow:
//!
//! 1. **Cut enumeration** — the rewrite engine's k≤4 priority-cut
//!    enumerator ([`mig_core::enumerate_cuts`]) runs once over the
//!    graph; every cut carries the exact function of its root over its
//!    leaves as a packed `u16` truth table.
//! 2. **Boolean matching** — each cut function is support-compressed
//!    and NPN-canonized with the same `u16` canonizer the rewrite
//!    database uses; a hash of canonical forms maps it to the library
//!    cells that implement it (up to input permutation, input
//!    complementation, and output complementation — the recovered
//!    transform tells which cut leaf, in which phase, feeds which cell
//!    pin). Functions no single cell implements get a memoized
//!    Shannon-decomposition *program* (a small tree of library cells),
//!    so any cut maps on any library with an inverter and a NAND —
//!    in particular, majority cuts map onto `cmos22_no_maj`.
//! 3. **Phase-aware covering** — both polarities of every node are
//!    first-class *literals* with their own candidate implementations
//!    (a NAND cell produces the complemented phase of an AND node
//!    directly; an explicit inverter bridges phases when cheaper).
//!    A forward area-flow pass (or an arrival-time pass under the
//!    delay goal) picks an initial cover; exact-area refinement then
//!    re-chooses each covered literal by measuring the true area
//!    freed/added through reference counting, which is monotone
//!    non-increasing. Under the delay goal the refinement is gated by
//!    required times computed from the achieved critical path, so area
//!    recovery only spends real slack.
//! 4. **Emission** — chosen implementations are written out as
//!    [`Instance`]s in topological order.
//!
//! [`TechMapper`] packages a library + configuration behind the
//! [`TechModel`] trait from `mig_core`, so an optimization pipeline can
//! carry the mapper as its cost oracle (`"rewrite; map_area"` flows)
//! without a crate cycle.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::{Arc, Mutex, OnceLock};

use crate::design::{Instance, MappedDesign, NetId};
use crate::library::CellLibrary;
use mig_core::{enumerate_cuts, CutSet, MappedMetrics, Mig, TechModel};
use mig_tt::{npn4_apply, npn4_canonize, Npn4Transform};

/// Slack tolerance for floating-point cost/arrival comparisons.
const EPS: f64 = 1e-9;

/// Projections of the four variables as packed 16-bit truth tables.
const VAR_MASK: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];

/// What the mapper minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapGoal {
    /// Minimize total cell area; delay is incidental.
    Area,
    /// Minimize critical-path arrival, then recover area in the slack.
    Delay,
}

/// Tuning knobs for [`map_mig`].
#[derive(Debug, Clone)]
pub struct MapConfig {
    /// The optimization goal (default [`MapGoal::Area`]).
    pub goal: MapGoal,
    /// Cut width handed to the enumerator (clamped to 2..=4).
    pub cut_size: usize,
    /// Priority cuts kept per node (clamped to 1..=8).
    pub max_cuts: usize,
    /// Run exact-area refinement after the forward pass (default on;
    /// off is only useful for measuring the refinement itself).
    pub refine: bool,
    /// Number of refinement sweeps (each is monotone, so more sweeps
    /// only help; returns diminish quickly).
    pub refine_passes: usize,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig {
            goal: MapGoal::Area,
            cut_size: 4,
            max_cuts: 8,
            refine: true,
            refine_passes: 3,
        }
    }
}

impl MapConfig {
    /// The delay-oriented configuration: arrival-time covering plus
    /// required-time-gated area recovery.
    pub fn delay() -> Self {
        MapConfig {
            goal: MapGoal::Delay,
            ..Self::default()
        }
    }
}

/// All-ones mask for the low `2^len` bits of a packed truth table.
fn tt_mask(len: usize) -> u16 {
    if len >= 4 {
        0xFFFF
    } else {
        ((1u32 << (1 << len)) - 1) as u16
    }
}

/// Extends a `len`-variable table to 4 variables by replication (the
/// added variables are don't-cares).
fn extend4(tt: u16, len: usize) -> u16 {
    let mut t = tt & tt_mask(len);
    for k in len..4 {
        t |= t << (1u32 << k);
    }
    t
}

/// Negative and positive cofactors of an extended table with respect to
/// variable `v`, each again extended (independent of `v`).
fn cofactors(f: u16, v: usize) -> (u16, u16) {
    let m = VAR_MASK[v];
    let s = 1u32 << v;
    let hi = f & m;
    let lo = f & !m;
    (lo | (lo << s), hi | (hi >> s))
}

/// Compresses an extended table onto its support among the first `len`
/// variables: returns `(ctt, clen, vars)` where `ctt` is the function
/// over `clen` variables and compressed variable `k` is original
/// variable `vars[k]`.
fn compress(f: u16, len: usize) -> (u16, usize, [u8; 4]) {
    let mut vars = [0u8; 4];
    let mut clen = 0;
    for v in 0..len {
        let (n, p) = cofactors(f, v);
        if n != p {
            vars[clen] = v as u8;
            clen += 1;
        }
    }
    let mut out = 0u16;
    for y in 0..(1u32 << clen) {
        let mut x = 0u32;
        for (k, &vk) in vars.iter().enumerate().take(clen) {
            if (y >> k) & 1 == 1 {
                x |= 1 << vk;
            }
        }
        if (f >> x) & 1 == 1 {
            out |= 1 << y;
        }
    }
    (out, clen, vars)
}

// ---------------------------------------------------------------------------
// Boolean matching: cut function → library cells / cell programs
// ---------------------------------------------------------------------------

/// One way a single cell implements a cut function: cell pin `p` reads
/// cut leaf slot `pins[p].0`, complemented iff `pins[p].1`; the cell
/// output is the function itself when `out_compl` is false, its
/// complement when true.
#[derive(Debug, Clone)]
struct CellMatch {
    cell: usize,
    pins: Vec<(u8, bool)>,
    out_compl: bool,
}

/// An input of a program step.
#[derive(Debug, Clone, Copy)]
enum ProgSrc {
    /// Cut leaf slot `.0`, complemented iff `.1`.
    Pin(u8, bool),
    /// Output of an earlier step.
    Step(u8),
    /// A constant net.
    Const(bool),
}

/// One cell instantiation inside a program.
#[derive(Debug)]
struct ProgStep {
    cell: usize,
    inputs: Vec<ProgSrc>,
}

/// A multi-cell implementation of a cut function, shared (memoized) per
/// `(tt, len)` — the Shannon-decomposition fallback that guarantees
/// coverage when no single cell matches.
#[derive(Debug)]
struct ProgramShape {
    steps: Vec<ProgStep>,
    /// Index of the step producing the function.
    out: u8,
    /// Total cell area of the steps.
    area: f64,
    /// Critical path through the steps (pins at time 0).
    delay: f64,
}

/// The immutable, library-derived half of the matching engine: the
/// NPN-canonical index of the cells plus the positions of the special
/// cells the Shannon fallback needs. Pure characterization data — built
/// once per library by [`MatchIndex::shared`] and reused by every
/// mapping run (and every `mighty serve` worker) instead of being
/// recomputed per `map_mig` call.
pub(crate) struct MatchIndex {
    /// canonical form → (cell, its canonizing transform, extended tt).
    index: HashMap<u16, Vec<(usize, Npn4Transform, u16)>>,
    inv: usize,
    nand: Option<usize>,
    xor: Option<usize>,
}

impl MatchIndex {
    fn build(lib: &CellLibrary) -> Self {
        let mut index: HashMap<u16, Vec<(usize, Npn4Transform, u16)>> = HashMap::new();
        for (ci, cell) in lib.cells.iter().enumerate() {
            let k = cell.num_inputs;
            if k == 0 || k > 4 {
                continue;
            }
            let tt = (cell.function.as_u64() as u16) & tt_mask(k);
            let g4 = extend4(tt, k);
            // Pin recovery assumes the cell depends on every pin.
            let (_, support, _) = compress(g4, k);
            if support != k {
                continue;
            }
            let (canon, tg) = npn4_canonize(g4);
            index.entry(canon).or_default().push((ci, tg, g4));
        }
        let find2 = |bits: u64| {
            lib.cells
                .iter()
                .position(|c| c.num_inputs == 2 && c.function.as_u64() & 0xF == bits)
        };
        MatchIndex {
            index,
            inv: lib.inverter(),
            nand: find2(0b0111),
            xor: find2(0b0110),
        }
    }

    /// A content fingerprint of everything the index depends on, so the
    /// shared registry can key on *library contents* rather than trust
    /// the name (a caller-modified library must never reuse a stale
    /// stock index).
    fn library_fingerprint(lib: &CellLibrary) -> u64 {
        use mig_netlist::content_hash::{hash_str, mix64};
        let mut h = mix64(hash_str(lib.name) ^ lib.cells.len() as u64);
        for cell in &lib.cells {
            h = mix64(h ^ hash_str(cell.name));
            h = mix64(h ^ (cell.num_inputs as u64) ^ cell.function.as_u64().rotate_left(8));
        }
        h
    }

    /// The shared index for `lib`: one build per distinct library
    /// content, process-wide. Concurrent mapping runs (the serve worker
    /// pool) all probe one registry guarded by a mutex held only for
    /// the lookup; the build itself is cheap enough that a rare
    /// duplicate build on a race would also have been acceptable.
    pub(crate) fn shared(lib: &CellLibrary) -> Arc<MatchIndex> {
        static REGISTRY: OnceLock<Mutex<HashMap<u64, Arc<MatchIndex>>>> = OnceLock::new();
        let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        let key = Self::library_fingerprint(lib);
        let mut map = registry.lock().expect("match-index registry poisoned");
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(Self::build(lib))))
    }
}

/// The Boolean-matching engine for one library: the shared NPN index
/// plus per-run memo tables for cut-function matches and decomposition
/// programs.
struct Matcher<'a> {
    lib: &'a CellLibrary,
    shared: Arc<MatchIndex>,
    match_memo: HashMap<(u16, u8), Rc<Vec<CellMatch>>>,
    prog_memo: HashMap<(u16, u8), Option<Rc<ProgramShape>>>,
}

impl<'a> Matcher<'a> {
    fn new(lib: &'a CellLibrary) -> Self {
        Matcher {
            lib,
            shared: MatchIndex::shared(lib),
            match_memo: HashMap::new(),
            prog_memo: HashMap::new(),
        }
    }

    /// Every single-cell implementation of the `len`-variable function
    /// `tt` (memoized). Degenerate variables are compressed away first,
    /// so a 4-leaf cut whose function only uses 2 leaves still matches
    /// 2-input cells.
    fn matches(&mut self, tt: u16, len: usize) -> Rc<Vec<CellMatch>> {
        let key = (tt & tt_mask(len), len as u8);
        if let Some(m) = self.match_memo.get(&key) {
            return Rc::clone(m);
        }
        let f4 = extend4(tt, len);
        let (ctt, clen, vars) = compress(f4, len);
        let mut out = Vec::new();
        if clen > 0 {
            let c4 = extend4(ctt, clen);
            let (canon, tf) = npn4_canonize(c4);
            if let Some(cells) = self.shared.index.get(&canon) {
                let tf_inv = tf.invert();
                for &(ci, ref tg, g4) in cells {
                    let cell_k = self.lib.cells[ci].num_inputs;
                    if cell_k != clen {
                        continue;
                    }
                    // S satisfies apply(G4, S) = F4: the cut function
                    // is the cell seen through S, which tells us the
                    // pin assignment directly.
                    let s = tg.then(&tf_inv);
                    debug_assert_eq!(npn4_apply(g4, &s), c4);
                    let mut pins = Vec::with_capacity(cell_k);
                    let mut ok = true;
                    for p in 0..cell_k {
                        // Cell pin p = perm[j] reads compressed var j.
                        let j = s
                            .perm
                            .iter()
                            .position(|&q| q as usize == p)
                            .expect("perm is a permutation");
                        if j >= clen {
                            ok = false;
                            break;
                        }
                        pins.push((vars[j], (s.input_flips >> p) & 1 == 1));
                    }
                    if !ok {
                        continue;
                    }
                    let m = CellMatch {
                        cell: ci,
                        pins,
                        out_compl: s.output_flip,
                    };
                    debug_assert!(self.check_match(f4, len, &m));
                    out.push(m);
                }
            }
        }
        let rc = Rc::new(out);
        self.match_memo.insert(key, Rc::clone(&rc));
        rc
    }

    /// Verifies a match by brute-force evaluation (debug builds only).
    fn check_match(&self, f4: u16, len: usize, m: &CellMatch) -> bool {
        let cell_f4 = extend4(
            self.lib.cells[m.cell].function.as_u64() as u16,
            self.lib.cells[m.cell].num_inputs,
        );
        for y in 0..(1u32 << len) {
            let mut idx = 0u32;
            for (p, &(v, c)) in m.pins.iter().enumerate() {
                if ((y >> v) & 1 == 1) ^ c {
                    idx |= 1 << p;
                }
            }
            let got = ((cell_f4 >> idx) & 1 == 1) ^ m.out_compl;
            if got != ((f4 >> y) & 1 == 1) {
                return false;
            }
        }
        true
    }

    /// A multi-cell program computing the `len`-variable function `tt`
    /// (memoized). `None` when the function is degenerate (constant or
    /// a literal — those need no cells) or the library cannot build it
    /// (no NAND-class cell for the Shannon fallback).
    fn program(&mut self, tt: u16, len: usize) -> Option<Rc<ProgramShape>> {
        let key = (tt & tt_mask(len), len as u8);
        if let Some(p) = self.prog_memo.get(&key) {
            return p.clone();
        }
        let mut steps = Vec::new();
        let shape = match self.build_rec(extend4(tt, len), len, &mut steps) {
            Some(ProgSrc::Step(out)) => {
                let mut area = 0.0;
                let mut arr = vec![0.0f64; steps.len()];
                for (i, step) in steps.iter().enumerate() {
                    let cell = &self.lib.cells[step.cell];
                    area += cell.area;
                    let at = step
                        .inputs
                        .iter()
                        .map(|src| match src {
                            ProgSrc::Step(j) => arr[*j as usize],
                            _ => 0.0,
                        })
                        .fold(0.0f64, f64::max);
                    arr[i] = at + cell.delay;
                }
                let delay = arr[out as usize];
                Some(Rc::new(ProgramShape {
                    steps,
                    out,
                    area,
                    delay,
                }))
            }
            _ => None,
        };
        self.prog_memo.insert(key, shape.clone());
        shape
    }

    /// Recursive program construction over an extended table: constant
    /// and literal detection, best single-cell match, then Shannon
    /// decomposition (with an XOR special case) on the top support
    /// variable.
    fn build_rec(&mut self, f4: u16, len: usize, steps: &mut Vec<ProgStep>) -> Option<ProgSrc> {
        if f4 == 0 {
            return Some(ProgSrc::Const(false));
        }
        if f4 == 0xFFFF {
            return Some(ProgSrc::Const(true));
        }
        for (v, &mask) in VAR_MASK.iter().enumerate().take(len) {
            if f4 == mask {
                return Some(ProgSrc::Pin(v as u8, false));
            }
            if f4 == !mask {
                return Some(ProgSrc::Pin(v as u8, true));
            }
        }
        // Best single cell (a complemented-phase match costs an extra
        // inverter on top).
        let ms = self.matches(f4, len);
        let mut best: Option<(f64, CellMatch)> = None;
        for m in ms.iter() {
            let extra = if m.out_compl {
                self.lib.cells[self.shared.inv].area
            } else {
                0.0
            };
            let cost = self.lib.cells[m.cell].area + extra;
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, m.clone()));
            }
        }
        if let Some((_, m)) = best {
            let inputs = m.pins.iter().map(|&(v, c)| ProgSrc::Pin(v, c)).collect();
            steps.push(ProgStep {
                cell: m.cell,
                inputs,
            });
            let out = ProgSrc::Step((steps.len() - 1) as u8);
            return Some(if m.out_compl {
                self.emit_not(out, steps)
            } else {
                out
            });
        }
        // Shannon on the top support variable.
        let (_, clen, vars) = compress(f4, len);
        debug_assert!(clen >= 2, "non-degenerate unmatched function");
        let v = vars[clen - 1] as usize;
        let (h0, h1) = cofactors(f4, v);
        if h1 == !h0 {
            // f = v ⊕ h0 — one XOR cell over the cofactor program.
            if let Some(xc) = self.shared.xor {
                let g = self.build_rec(h0, len, steps)?;
                return Some(match g {
                    ProgSrc::Const(b) => ProgSrc::Pin(v as u8, b),
                    g => {
                        steps.push(ProgStep {
                            cell: xc,
                            inputs: vec![ProgSrc::Pin(v as u8, false), g],
                        });
                        ProgSrc::Step((steps.len() - 1) as u8)
                    }
                });
            }
        }
        // f = (v ∧ h1) ∨ (¬v ∧ h0) = NAND(NAND(v, h1), NAND(¬v, h0)).
        let a = self.build_rec(h1, len, steps)?;
        let b = self.build_rec(h0, len, steps)?;
        let n1 = self.emit_nand(ProgSrc::Pin(v as u8, false), a, steps)?;
        let n2 = self.emit_nand(ProgSrc::Pin(v as u8, true), b, steps)?;
        self.emit_nand(n1, n2, steps)
    }

    /// Complement of a program source: free on pins and constants, an
    /// inverter step on step outputs.
    fn emit_not(&self, src: ProgSrc, steps: &mut Vec<ProgStep>) -> ProgSrc {
        match src {
            ProgSrc::Pin(v, c) => ProgSrc::Pin(v, !c),
            ProgSrc::Const(b) => ProgSrc::Const(!b),
            ProgSrc::Step(_) => {
                steps.push(ProgStep {
                    cell: self.shared.inv,
                    inputs: vec![src],
                });
                ProgSrc::Step((steps.len() - 1) as u8)
            }
        }
    }

    /// NAND of two program sources with constant folding; `None` when
    /// the library lacks a NAND-class cell.
    fn emit_nand(&self, a: ProgSrc, b: ProgSrc, steps: &mut Vec<ProgStep>) -> Option<ProgSrc> {
        match (a, b) {
            (ProgSrc::Const(false), _) | (_, ProgSrc::Const(false)) => Some(ProgSrc::Const(true)),
            (ProgSrc::Const(true), x) | (x, ProgSrc::Const(true)) => Some(self.emit_not(x, steps)),
            (a, b) => {
                let nand = self.shared.nand?;
                steps.push(ProgStep {
                    cell: nand,
                    inputs: vec![a, b],
                });
                Some(ProgSrc::Step((steps.len() - 1) as u8))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Phase-aware covering
// ---------------------------------------------------------------------------

/// What implements one literal (one polarity of one node).
#[derive(Debug, Clone)]
enum CandKind {
    /// A constant net (node 0, either phase).
    Const,
    /// A primary-input net (plain phase of an input node).
    Pi,
    /// An inverter fed by the opposite-phase literal.
    Inv,
    /// A free alias of another literal's net: the cut function
    /// collapsed to a constant or a single leaf literal, so the node
    /// needs no hardware of its own.
    Wire,
    /// A single library cell over cut-leaf literals (`pins` of the
    /// candidate, in cell-pin order).
    Cell { cell: usize },
    /// A cell program over the leaves of the matched cut.
    Program {
        prog: Rc<ProgramShape>,
        leaves: [u32; 4],
    },
}

/// One candidate implementation of a literal.
#[derive(Debug, Clone)]
struct Candidate {
    kind: CandKind,
    /// Cell area this candidate adds by itself.
    area: f64,
    /// Intrinsic delay from its pins to its output.
    delay: f64,
    /// The literals it reads (deduplicated; for [`CandKind::Cell`]
    /// these are exactly the cell pins in pin order).
    pins: Vec<u32>,
}

/// The covering engine: candidates, per-literal state, and the chosen
/// implementation graph.
struct Cover<'a> {
    mig: &'a Mig,
    lib: &'a CellLibrary,
    goal: MapGoal,
    /// Candidate implementations per literal (`2*node + phase`).
    cands: Vec<Vec<Candidate>>,
    /// Chosen candidate index per literal.
    choice: Vec<u32>,
    /// Area flow served to one consumer (forward pass).
    flow: Vec<f64>,
    /// Best achievable arrival per literal (forward pass).
    arr: Vec<f64>,
    /// Reference counts over the chosen-implementation graph.
    refs: Vec<u32>,
    /// Structural fanout estimate per node, for area-flow division.
    fanout: Vec<f64>,
    inv_cell: usize,
    inv_area: f64,
    inv_delay: f64,
}

impl<'a> Cover<'a> {
    fn new(mig: &'a Mig, lib: &'a CellLibrary, goal: MapGoal) -> Self {
        let nlits = 2 * mig.num_nodes();
        let fanout = mig
            .fanout_counts()
            .iter()
            .map(|&c| f64::from(c.max(1)))
            .collect();
        let inv_cell = lib.inverter();
        Cover {
            mig,
            lib,
            goal,
            cands: vec![Vec::new(); nlits],
            choice: vec![0; nlits],
            flow: vec![0.0; nlits],
            arr: vec![0.0; nlits],
            refs: vec![0; nlits],
            fanout,
            inv_cell,
            inv_area: lib.cells[inv_cell].area,
            inv_delay: lib.cells[inv_cell].delay,
        }
    }

    /// Fills the candidate lists: constants and inputs get their free
    /// nets, every reachable gate literal gets its cut matches, cut
    /// programs, and a phase-bridging inverter (always last).
    fn build_candidates(&mut self, cuts: &CutSet, matcher: &mut Matcher) {
        let free = |kind| Candidate {
            kind,
            area: 0.0,
            delay: 0.0,
            pins: Vec::new(),
        };
        self.cands[0].push(free(CandKind::Const));
        self.cands[1].push(free(CandKind::Const));
        for i in 0..self.mig.num_inputs() {
            let n = i + 1;
            self.cands[2 * n].push(free(CandKind::Pi));
            self.cands[2 * n + 1].push(Candidate {
                kind: CandKind::Inv,
                area: self.inv_area,
                delay: self.inv_delay,
                pins: vec![2 * n as u32],
            });
        }
        let reach = self.mig.reachable();
        for node in self.mig.gate_ids() {
            let n = node.index();
            if !reach[n] {
                continue;
            }
            for cut in cuts.cuts_of(n) {
                if cut.len == 1 && cut.leaves[0] == n as u32 {
                    continue; // the node's own unit cut
                }
                let len = cut.len as usize;
                // A cut whose function collapses to a constant or a
                // single leaf literal implements the node for free:
                // alias the source net instead of matching cells.
                let (ctt, clen, vars) = compress(cut.tt, len);
                if clen == 0 {
                    let v = (ctt & 1) as usize;
                    for phase in 0..2usize {
                        self.push_wire(2 * n + phase, (v ^ phase) as u32);
                    }
                    continue;
                }
                if clen == 1 {
                    let leaf = cut.leaves[vars[0] as usize];
                    let inv = ctt & 1 == 1;
                    for phase in 0..2usize {
                        self.push_wire(2 * n + phase, 2 * leaf + (inv as usize ^ phase) as u32);
                    }
                    continue;
                }
                for m in matcher.matches(cut.tt, len).iter() {
                    let lit = 2 * n + m.out_compl as usize;
                    let cell = &self.lib.cells[m.cell];
                    let pins = m
                        .pins
                        .iter()
                        .map(|&(v, c)| 2 * cut.leaves[v as usize] + c as u32)
                        .collect();
                    self.cands[lit].push(Candidate {
                        kind: CandKind::Cell { cell: m.cell },
                        area: cell.area,
                        delay: cell.delay,
                        pins,
                    });
                }
                for phase in 0..2usize {
                    let tt = if phase == 0 {
                        cut.tt
                    } else {
                        !cut.tt & tt_mask(len)
                    };
                    let Some(prog) = matcher.program(tt, len) else {
                        continue;
                    };
                    if prog.steps.len() < 2 {
                        continue; // single-step programs duplicate cell matches
                    }
                    let mut pins: Vec<u32> = prog
                        .steps
                        .iter()
                        .flat_map(|s| s.inputs.iter())
                        .filter_map(|src| match src {
                            ProgSrc::Pin(v, c) => Some(2 * cut.leaves[*v as usize] + *c as u32),
                            _ => None,
                        })
                        .collect();
                    pins.sort_unstable();
                    pins.dedup();
                    self.cands[2 * n + phase].push(Candidate {
                        kind: CandKind::Program {
                            prog: Rc::clone(&prog),
                            leaves: cut.leaves,
                        },
                        area: prog.area,
                        delay: prog.delay,
                        pins,
                    });
                }
            }
            for phase in 0..2usize {
                self.cands[2 * n + phase].push(Candidate {
                    kind: CandKind::Inv,
                    area: self.inv_area,
                    delay: self.inv_delay,
                    pins: vec![(2 * n + 1 - phase) as u32],
                });
            }
        }
    }

    /// Adds a zero-cost alias candidate for `lit`, deduplicated by
    /// source literal.
    fn push_wire(&mut self, lit: usize, pin: u32) {
        if self.cands[lit]
            .iter()
            .any(|c| matches!(c.kind, CandKind::Wire) && c.pins[0] == pin)
        {
            return;
        }
        self.cands[lit].push(Candidate {
            kind: CandKind::Wire,
            area: 0.0,
            delay: 0.0,
            pins: vec![pin],
        });
    }

    /// The selection key under the goal: area flow first for the area
    /// goal, arrival first for the delay goal.
    fn key(&self, full: f64, arr: f64) -> (f64, f64) {
        match self.goal {
            MapGoal::Area => (full, arr),
            MapGoal::Delay => (arr, full),
        }
    }

    /// Evaluates candidate `i` of `lit` against the current forward
    /// state: total served flow and arrival.
    fn eval(&self, lit: usize, i: usize) -> (f64, f64) {
        let c = &self.cands[lit][i];
        let mut full = c.area;
        let mut at = 0.0f64;
        for &p in &c.pins {
            full += self.flow[p as usize];
            at = at.max(self.arr[p as usize]);
        }
        (full, at + c.delay)
    }

    /// Forward pass in topological (arena) order: picks the best
    /// candidate per literal by area flow (or arrival), with a single
    /// cross-phase inverter relaxation per node. Guarantees the two
    /// phases of a node never both choose the inverter.
    fn forward_select(&mut self) {
        for n in 0..self.mig.num_nodes() {
            let (l0, l1) = (2 * n, 2 * n + 1);
            if self.cands[l0].is_empty() && self.cands[l1].is_empty() {
                continue; // unreachable gate
            }
            // Best non-inverter candidate per phase.
            let mut intr = [None::<(usize, f64, f64)>; 2];
            for (phase, lit) in [(0, l0), (1, l1)] {
                for i in 0..self.cands[lit].len() {
                    if matches!(self.cands[lit][i].kind, CandKind::Inv) {
                        continue;
                    }
                    let (full, at) = self.eval(lit, i);
                    if intr[phase].is_none_or(|(_, bf, ba)| self.key(full, at) < self.key(bf, ba)) {
                        intr[phase] = Some((i, full, at));
                    }
                }
            }
            // Inverter relaxation: phase p may instead invert the
            // opposite phase's intrinsic implementation.
            let fo = self.fanout[n];
            let mut sel = [None::<(usize, f64, f64)>; 2];
            let mut via_inv = [false; 2];
            for phase in 0..2 {
                let lit = [l0, l1][phase];
                sel[phase] = intr[phase];
                let Some((_, of, oa)) = intr[1 - phase] else {
                    continue;
                };
                let Some(ii) = self.cands[lit]
                    .iter()
                    .position(|c| matches!(c.kind, CandKind::Inv))
                else {
                    continue;
                };
                let full = self.inv_area + of / fo;
                let at = oa + self.inv_delay;
                if sel[phase].is_none_or(|(_, bf, ba)| self.key(full, at) < self.key(bf, ba)) {
                    sel[phase] = Some((ii, full, at));
                    via_inv[phase] = true;
                }
            }
            // Both phases choosing the inverter would be circular: the
            // phase gaining less reverts to its intrinsic choice.
            if via_inv[0] && via_inv[1] {
                let gain = |p: usize| {
                    let (_, int_f, _) = intr[p].expect("inverter relaxation needs both");
                    let (_, inv_f, _) = sel[p].expect("selected");
                    int_f - inv_f
                };
                let revert = if gain(0) <= gain(1) { 0 } else { 1 };
                sel[revert] = intr[revert];
            }
            for phase in 0..2 {
                let lit = [l0, l1][phase];
                if self.cands[lit].is_empty() {
                    continue;
                }
                let (i, full, at) = sel[phase]
                    .unwrap_or_else(|| panic!("library cannot implement node {n} phase {phase}"));
                self.choice[lit] = i as u32;
                self.flow[lit] = full / fo;
                self.arr[lit] = at;
            }
        }
    }

    /// Dereferences one use of `lit`: walks the chosen-implementation
    /// cone freeing every literal whose count reaches zero, returning
    /// the total area freed.
    fn deref_cone(&mut self, start: u32) -> f64 {
        let mut freed = 0.0;
        let mut stack = vec![start];
        while let Some(lit) = stack.pop() {
            let l = lit as usize;
            debug_assert!(self.refs[l] > 0, "deref of unreferenced literal");
            self.refs[l] -= 1;
            if self.refs[l] == 0 {
                let c = &self.cands[l][self.choice[l] as usize];
                freed += c.area;
                stack.extend_from_slice(&c.pins);
            }
        }
        freed
    }

    /// References one use of `lit`: walks the chosen-implementation
    /// cone activating every newly-live literal, returning the total
    /// area added. Exact inverse of [`Cover::deref_cone`].
    fn reref_cone(&mut self, start: u32) -> f64 {
        let mut added = 0.0;
        let mut stack = vec![start];
        while let Some(lit) = stack.pop() {
            let l = lit as usize;
            if self.refs[l] == 0 {
                let c = &self.cands[l][self.choice[l] as usize];
                added += c.area;
                stack.extend_from_slice(&c.pins);
            }
            self.refs[l] += 1;
        }
        added
    }

    /// Builds the initial cover: one reference per primary output.
    fn build_cover(&mut self) {
        for &(_, s) in self.mig.outputs() {
            let lit = 2 * s.node().index() + s.is_complemented() as usize;
            self.reref_cone(lit as u32);
        }
    }

    /// Covered literals in emission order: nodes ascending, and within
    /// a node the inverter-implemented phase after the phase it reads.
    fn cover_order(&self) -> Vec<u32> {
        let mut order = Vec::new();
        for n in 0..self.mig.num_nodes() {
            let (l0, l1) = (2 * n, 2 * n + 1);
            let inv_first = self.refs[l0] > 0
                && matches!(self.cands[l0][self.choice[l0] as usize].kind, CandKind::Inv);
            let pair = if inv_first { [l1, l0] } else { [l0, l1] };
            for l in pair {
                if self.refs[l] > 0 {
                    order.push(l as u32);
                }
            }
        }
        order
    }

    /// Arrival times of the chosen cover and the required time each
    /// covered literal must meet so the achieved critical path is
    /// preserved (delay-goal refinement gate).
    fn required_times(&self) -> Vec<f64> {
        let order = self.cover_order();
        let mut arr = vec![0.0f64; self.cands.len()];
        for &lit in &order {
            let l = lit as usize;
            let c = &self.cands[l][self.choice[l] as usize];
            let at = c
                .pins
                .iter()
                .map(|&p| arr[p as usize])
                .fold(0.0f64, f64::max);
            arr[l] = at + c.delay;
        }
        let critical = self
            .mig
            .outputs()
            .iter()
            .map(|&(_, s)| arr[2 * s.node().index() + s.is_complemented() as usize])
            .fold(0.0f64, f64::max);
        let mut req = vec![f64::INFINITY; self.cands.len()];
        for &(_, s) in self.mig.outputs() {
            let l = 2 * s.node().index() + s.is_complemented() as usize;
            req[l] = req[l].min(critical);
        }
        for &lit in order.iter().rev() {
            let l = lit as usize;
            if req[l].is_infinite() {
                req[l] = critical;
            }
            let c = &self.cands[l][self.choice[l] as usize];
            let slack = req[l] - c.delay;
            for &p in &c.pins {
                let p = p as usize;
                req[p] = req[p].min(slack);
            }
        }
        req
    }

    /// One exact-area refinement sweep: every covered literal re-picks
    /// the candidate with the smallest *true* area cost, measured by
    /// dereferencing its current cone and probe-referencing each
    /// alternative. A switch only happens on a strict improvement, so
    /// total area is monotone non-increasing. With `req` set (delay
    /// goal), a candidate is only eligible if its estimated arrival
    /// meets the literal's required time. Returns the number of
    /// literals whose choice switched, so the caller can stop iterating
    /// once a sweep converges (the sweep is deterministic: zero
    /// switches means every further sweep is an identical no-op).
    fn refine_sweep(&mut self, req: Option<&[f64]>) -> usize {
        let mut switches = 0usize;
        let mut order = self.cover_order();
        order.reverse();
        for lit in order {
            let l = lit as usize;
            if self.refs[l] == 0 {
                continue; // freed by an earlier re-choice this sweep
            }
            if self.cands[l].len() < 2 {
                continue;
            }
            let cur = self.choice[l] as usize;
            let cur_pins = self.cands[l][cur].pins.clone();
            for &p in &cur_pins {
                self.deref_cone(p);
            }
            let mut best: Option<(f64, usize)> = None;
            for i in 0..self.cands[l].len() {
                if matches!(self.cands[l][i].kind, CandKind::Inv) {
                    let opp = l ^ 1;
                    if matches!(
                        self.cands[opp][self.choice[opp] as usize].kind,
                        CandKind::Inv
                    ) {
                        continue; // would form an inverter loop
                    }
                }
                let cand_pins = self.cands[l][i].pins.clone();
                if let Some(req) = req {
                    if i != cur {
                        let at = cand_pins
                            .iter()
                            .map(|&p| self.arr[p as usize])
                            .fold(0.0f64, f64::max)
                            + self.cands[l][i].delay;
                        if at > req[l] + EPS {
                            continue;
                        }
                    }
                }
                let mut cost = self.cands[l][i].area;
                for &p in &cand_pins {
                    cost += self.reref_cone(p);
                }
                for &p in &cand_pins {
                    self.deref_cone(p);
                }
                // Prefer the incumbent on (near-)ties to avoid float
                // churn; switch only on a real improvement.
                let better = match best {
                    None => true,
                    Some((bc, bi)) => {
                        if i == cur {
                            cost <= bc + EPS
                        } else {
                            cost < bc - if bi == cur { EPS } else { 0.0 }
                        }
                    }
                };
                if better {
                    best = Some((cost, i));
                }
            }
            let (_, pick) = best.expect("current candidate is always eligible");
            if pick != cur {
                switches += 1;
            }
            self.choice[l] = pick as u32;
            let pick_pins = self.cands[l][pick].pins.clone();
            for &p in &pick_pins {
                self.reref_cone(p);
            }
        }
        switches
    }

    /// Writes the chosen cover out as a [`MappedDesign`] (instances in
    /// topological order).
    fn emit(&self) -> MappedDesign {
        let mut design = MappedDesign {
            library: self.lib.clone(),
            name: self.mig.name().to_string(),
            input_names: (0..self.mig.num_inputs())
                .map(|i| self.mig.input_name(i).to_string())
                .collect(),
            instances: Vec::new(),
            outputs: Vec::new(),
        };
        const UNSET: NetId = NetId::MAX;
        let mut net = vec![UNSET; self.cands.len()];
        for lit in self.cover_order() {
            let l = lit as usize;
            let node = l >> 1;
            let phase = l & 1;
            let cand = &self.cands[l][self.choice[l] as usize];
            net[l] = match &cand.kind {
                CandKind::Const => design.const_net(phase == 1),
                CandKind::Pi => design.input_net(node - 1),
                CandKind::Wire => {
                    let p = cand.pins[0] as usize;
                    debug_assert_ne!(net[p], UNSET, "wire source emitted first");
                    net[p]
                }
                CandKind::Inv => {
                    let inp = net[l ^ 1];
                    debug_assert_ne!(inp, UNSET, "inverter input emitted first");
                    let out = design.instance_net(design.instances.len());
                    design.instances.push(Instance {
                        cell: self.inv_cell,
                        inputs: vec![inp],
                        output: out,
                    });
                    out
                }
                CandKind::Cell { cell } => {
                    let inputs = cand
                        .pins
                        .iter()
                        .map(|&p| {
                            debug_assert_ne!(net[p as usize], UNSET);
                            net[p as usize]
                        })
                        .collect();
                    let out = design.instance_net(design.instances.len());
                    design.instances.push(Instance {
                        cell: *cell,
                        inputs,
                        output: out,
                    });
                    out
                }
                CandKind::Program { prog, leaves } => {
                    let mut step_net = vec![UNSET; prog.steps.len()];
                    for (i, step) in prog.steps.iter().enumerate() {
                        let inputs = step
                            .inputs
                            .iter()
                            .map(|src| match src {
                                ProgSrc::Pin(v, c) => {
                                    let p = 2 * leaves[*v as usize] as usize + *c as usize;
                                    debug_assert_ne!(net[p], UNSET);
                                    net[p]
                                }
                                ProgSrc::Step(j) => step_net[*j as usize],
                                ProgSrc::Const(b) => design.const_net(*b),
                            })
                            .collect();
                        let out = design.instance_net(design.instances.len());
                        design.instances.push(Instance {
                            cell: step.cell,
                            inputs,
                            output: out,
                        });
                        step_net[i] = out;
                    }
                    step_net[prog.out as usize]
                }
            };
        }
        for (name, s) in self.mig.outputs() {
            let l = 2 * s.node().index() + s.is_complemented() as usize;
            debug_assert_ne!(net[l], UNSET, "output literal is covered");
            design.outputs.push((name.clone(), net[l]));
        }
        design
    }
}

/// Maps `mig` onto `library`: cut enumeration, Boolean matching,
/// phase-aware covering, refinement, and emission (see the
/// [module docs](self)). The result computes exactly the functions of
/// `mig`'s outputs.
///
/// # Example
///
/// ```
/// use mig_core::Mig;
/// use mig_techmap::{map_mig, CellLibrary, MapConfig};
///
/// let mut mig = Mig::new("maj");
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let c = mig.add_input("c");
/// let m = mig.maj(a, b, c);
/// mig.add_output("f", m);
///
/// let design = map_mig(&mig, &CellLibrary::cmos22(), &MapConfig::default());
/// assert_eq!(design.num_cells(), 1, "one MAJ3 cell absorbs the node");
///
/// let nomaj = map_mig(&mig, &CellLibrary::cmos22_no_maj(), &MapConfig::default());
/// assert!(nomaj.area() > design.area(), "no MAJ cell → NAND/INV tree");
/// ```
pub fn map_mig(mig: &Mig, library: &CellLibrary, config: &MapConfig) -> MappedDesign {
    mig_core::faultpoint!("techmap.map");
    let cuts = enumerate_cuts(mig, config.cut_size, config.max_cuts);
    let mut matcher = Matcher::new(library);
    let mut cover = Cover::new(mig, library, config.goal);
    cover.build_candidates(&cuts, &mut matcher);
    cover.forward_select();
    cover.build_cover();
    if config.refine {
        for _ in 0..config.refine_passes {
            let req = match config.goal {
                MapGoal::Area => None,
                MapGoal::Delay => Some(cover.required_times()),
            };
            // A converged sweep switches nothing, so the remaining
            // passes — including their O(n) required-time recomputes —
            // would be identical no-ops; skip them.
            if cover.refine_sweep(req.as_deref()) == 0 {
                break;
            }
        }
    }
    cover.emit()
}

/// A [`CellLibrary`] + [`MapConfig`] packaged as a `mig_core`
/// [`TechModel`], so an [`OptContext`](mig_core::OptContext) can carry
/// the mapper as the cost oracle behind `map_area` / `map_delay` flow
/// passes.
#[derive(Debug, Clone)]
pub struct TechMapper {
    library: Arc<CellLibrary>,
    config: MapConfig,
}

impl TechMapper {
    /// A mapper over `library` with the default (area) configuration.
    ///
    /// Accepts either an owned [`CellLibrary`] or an already-shared
    /// `Arc<CellLibrary>` (e.g. from [`CellLibrary::shared_by_name`]);
    /// cloning the mapper never copies the library either way.
    pub fn new(library: impl Into<Arc<CellLibrary>>) -> Self {
        TechMapper {
            library: library.into(),
            config: MapConfig::default(),
        }
    }

    /// A mapper with an explicit configuration.
    pub fn with_config(library: impl Into<Arc<CellLibrary>>, config: MapConfig) -> Self {
        TechMapper {
            library: library.into(),
            config,
        }
    }

    /// The library this mapper targets.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// The mapping configuration.
    pub fn config(&self) -> &MapConfig {
        &self.config
    }

    /// Maps `mig` and returns the full mapped design.
    pub fn map(&self, mig: &Mig) -> MappedDesign {
        map_mig(mig, &self.library, &self.config)
    }
}

impl TechModel for TechMapper {
    fn name(&self) -> &str {
        self.library.name
    }

    fn measure(&self, mig: &Mig) -> MappedMetrics {
        let design = self.map(mig);
        MappedMetrics {
            area: design.area(),
            delay: design.delay(),
            power: design.power(),
            cells: design.num_cells(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig_core::Signal;

    /// Deterministic xorshift PRNG for test-circuit generation.
    fn rng(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// A random MIG tangle: majority/xor/mux over random signals.
    fn tangle(seed: u64, inputs: usize, gates: usize, outputs: usize) -> Mig {
        let mut s = seed;
        let mut mig = Mig::new(format!("tangle{seed}"));
        let mut pool: Vec<Signal> = (0..inputs)
            .map(|i| mig.add_input(format!("x{i}")))
            .collect();
        for _ in 0..gates {
            let pick = |s: &mut u64, pool: &[Signal]| {
                let sig = pool[(rng(s) as usize) % pool.len()];
                sig.complement_if(rng(s) & 1 == 1)
            };
            let a = pick(&mut s, &pool);
            let b = pick(&mut s, &pool);
            let c = pick(&mut s, &pool);
            let g = match rng(&mut s) % 3 {
                0 => mig.maj(a, b, c),
                1 => mig.xor(a, b),
                _ => mig.mux(a, b, c),
            };
            pool.push(g);
        }
        for o in 0..outputs {
            let sig = pool[pool.len() - 1 - (o % pool.len().min(8))];
            mig.add_output(format!("y{o}"), sig.complement_if(o & 1 == 1));
        }
        mig
    }

    fn equivalent(mig: &Mig, design: &MappedDesign) -> bool {
        mig_sim::equivalent(&mig.to_network(), &design.to_network(), 16)
    }

    /// All 24 permutations of [0, 1, 2, 3].
    fn perms4() -> Vec<[u8; 4]> {
        let mut out = Vec::with_capacity(24);
        let mut p = [0u8, 1, 2, 3];
        fn heap(k: usize, p: &mut [u8; 4], out: &mut Vec<[u8; 4]>) {
            if k == 1 {
                out.push(*p);
                return;
            }
            for i in 0..k {
                heap(k - 1, p, out);
                if k.is_multiple_of(2) {
                    p.swap(i, k - 1);
                } else {
                    p.swap(0, k - 1);
                }
            }
        }
        heap(4, &mut p, &mut out);
        out
    }

    /// Property (ISSUE): cut→cell matching agrees with truth-table
    /// evaluation for every cell in both libraries across all 768 NPN
    /// transforms of the cell function.
    #[test]
    fn matching_covers_all_npn_transforms_of_every_cell() {
        for lib in [CellLibrary::cmos22(), CellLibrary::cmos22_no_maj()] {
            let mut matcher = Matcher::new(&lib);
            for cell in &lib.cells {
                let k = cell.num_inputs;
                let g4 = extend4(cell.function.as_u64() as u16, k);
                for perm in perms4() {
                    for ifl in 0..16u8 {
                        for of in [false, true] {
                            let t = Npn4Transform {
                                perm,
                                input_flips: ifl,
                                output_flip: of,
                            };
                            let tt = npn4_apply(g4, &t);
                            let ms = matcher.matches(tt, 4);
                            assert!(
                                !ms.is_empty(),
                                "{}: {} transformed by {t:?} found no match",
                                lib.name,
                                cell.name
                            );
                            for m in ms.iter() {
                                assert!(
                                    matcher.check_match(tt, 4, m),
                                    "{}: bad match for {tt:#06x}",
                                    lib.name
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Programs compute the right function for every 3-variable truth
    /// table on both libraries (brute-force over all 256).
    #[test]
    fn programs_compute_every_3var_function() {
        for lib in [CellLibrary::cmos22(), CellLibrary::cmos22_no_maj()] {
            let mut matcher = Matcher::new(&lib);
            for tt in 0..=0xFFu16 {
                let Some(prog) = matcher.program(tt, 3) else {
                    continue; // degenerate (constant / literal)
                };
                for y in 0..8u32 {
                    let mut vals = vec![false; prog.steps.len()];
                    for (i, step) in prog.steps.iter().enumerate() {
                        let cf = &lib.cells[step.cell].function;
                        let mut idx = 0usize;
                        for (p, src) in step.inputs.iter().enumerate() {
                            let v = match src {
                                ProgSrc::Pin(v, c) => ((y >> v) & 1 == 1) ^ c,
                                ProgSrc::Step(j) => vals[*j as usize],
                                ProgSrc::Const(b) => *b,
                            };
                            if v {
                                idx |= 1 << p;
                            }
                        }
                        vals[i] = (cf.as_u64() >> idx) & 1 == 1;
                    }
                    assert_eq!(
                        vals[prog.out as usize],
                        (tt >> y) & 1 == 1,
                        "{}: tt {tt:#04x} at {y:03b}",
                        lib.name
                    );
                }
            }
        }
    }

    /// Mapped designs are equivalent to the source MIG on both
    /// libraries under both goals, with refinement on and off.
    #[test]
    fn mapping_random_tangles_is_equivalent() {
        for seed in [3, 17, 91] {
            let mig = tangle(seed, 6, 40, 4);
            for lib in [CellLibrary::cmos22(), CellLibrary::cmos22_no_maj()] {
                for config in [
                    MapConfig::default(),
                    MapConfig::delay(),
                    MapConfig {
                        refine: false,
                        ..MapConfig::default()
                    },
                ] {
                    let design = map_mig(&mig, &lib, &config);
                    assert!(
                        equivalent(&mig, &design),
                        "seed {seed} lib {} goal {:?} refine {}",
                        lib.name,
                        config.goal,
                        config.refine
                    );
                }
            }
        }
    }

    /// Property (ISSUE): exact-area refinement never increases total
    /// area.
    #[test]
    fn refinement_never_increases_area() {
        for seed in [5, 23, 64, 199] {
            let mig = tangle(seed, 7, 60, 5);
            for lib in [CellLibrary::cmos22(), CellLibrary::cmos22_no_maj()] {
                let raw = map_mig(
                    &mig,
                    &lib,
                    &MapConfig {
                        refine: false,
                        ..MapConfig::default()
                    },
                );
                let refined = map_mig(&mig, &lib, &MapConfig::default());
                assert!(
                    refined.area() <= raw.area() + EPS,
                    "seed {seed} lib {}: refined {} > raw {}",
                    lib.name,
                    refined.area(),
                    raw.area()
                );
                assert!(equivalent(&mig, &refined));
            }
        }
    }

    /// The MAJ library beats the majority-free one on majority-heavy
    /// logic (the paper's central mapping claim, in miniature).
    #[test]
    fn maj_cells_win_on_majority_trees() {
        let mut mig = Mig::new("majtree");
        let ins: Vec<Signal> = (0..9).map(|i| mig.add_input(format!("x{i}"))).collect();
        let l1: Vec<Signal> = ins.chunks(3).map(|c| mig.maj(c[0], c[1], c[2])).collect();
        let root = mig.maj(l1[0], l1[1], l1[2]);
        mig.add_output("y", root);
        let with = map_mig(&mig, &CellLibrary::cmos22(), &MapConfig::default());
        let without = map_mig(&mig, &CellLibrary::cmos22_no_maj(), &MapConfig::default());
        assert!(equivalent(&mig, &with) && equivalent(&mig, &without));
        assert_eq!(with.num_cells(), 4, "four MAJ3 cells");
        assert!(
            with.area() < without.area(),
            "{} !< {}",
            with.area(),
            without.area()
        );
    }

    /// Degenerate outputs: constants, direct and inverted inputs.
    #[test]
    fn constant_and_passthrough_outputs() {
        let mut mig = Mig::new("degenerate");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let g = mig.and(a, b);
        mig.add_output("k0", Signal::FALSE);
        mig.add_output("k1", Signal::TRUE);
        mig.add_output("pa", a);
        mig.add_output("na", !a);
        mig.add_output("g", !g);
        for lib in [CellLibrary::cmos22(), CellLibrary::cmos22_no_maj()] {
            let design = map_mig(&mig, &lib, &MapConfig::default());
            assert!(equivalent(&mig, &design), "{}", lib.name);
        }
    }

    /// The delay goal never produces a slower design than the area
    /// goal on its own internal model, and both verify.
    #[test]
    fn delay_goal_is_no_slower_than_area_goal() {
        for seed in [11, 47] {
            let mig = tangle(seed, 6, 50, 3);
            let lib = CellLibrary::cmos22();
            let by_area = map_mig(&mig, &lib, &MapConfig::default());
            let by_delay = map_mig(&mig, &lib, &MapConfig::delay());
            assert!(equivalent(&mig, &by_delay));
            assert!(
                by_delay.delay() <= by_area.delay() + EPS,
                "seed {seed}: delay-mapped {} > area-mapped {}",
                by_delay.delay(),
                by_area.delay()
            );
        }
    }

    /// TechMapper measures through the TechModel trait.
    #[test]
    fn tech_mapper_measures() {
        let mig = tangle(7, 5, 20, 2);
        let mapper = TechMapper::new(CellLibrary::cmos22());
        let m = mapper.measure(&mig);
        assert!(m.area > 0.0 && m.delay > 0.0 && m.power > 0.0 && m.cells > 0);
        assert_eq!(mapper.name(), "cmos22");
        let d = mapper.map(&mig);
        assert_eq!(d.num_cells(), m.cells);
    }
}
