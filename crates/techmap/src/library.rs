//! Standard-cell library model with a synthetic 22nm-style
//! characterization.
//!
//! The paper's experiments use a library of {MIN-3, MAJ-3, XOR-2, XNOR-2,
//! NAND-2, NOR-2, INV} cells characterized for CMOS 22nm from predictive
//! technology models. The absolute numbers here are synthetic but
//! internally consistent (INV < NAND/NOR < XOR < MAJ in area and delay);
//! the reproduction target is the *ratio* between mapped flows, not
//! absolute µm²/ns/µW.

use mig_tt::TruthTable;
use std::sync::{Arc, OnceLock};

/// One library cell: a named ≤ 3-input function with physical costs.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Cell name (e.g. `"MAJ3"`).
    pub name: &'static str,
    /// Number of inputs (1–3).
    pub num_inputs: usize,
    /// The cell function over its inputs.
    pub function: TruthTable,
    /// Cell area in µm².
    pub area: f64,
    /// Intrinsic delay in ns.
    pub delay: f64,
    /// Input capacitance per pin in fF.
    pub input_cap: f64,
    /// Leakage power in nW.
    pub leakage: f64,
}

/// A collection of cells plus global electrical constants.
#[derive(Debug, Clone)]
pub struct CellLibrary {
    /// Library name.
    pub name: &'static str,
    /// The cells.
    pub cells: Vec<Cell>,
    /// Supply voltage in V.
    pub vdd: f64,
    /// Clock frequency assumed by the power model, in GHz.
    pub freq_ghz: f64,
    /// Extra delay per fanout (wire + pin load), ns.
    pub fanout_delay: f64,
}

/// The stock library names [`CellLibrary::by_name`] accepts.
pub const KNOWN_LIBRARIES: [&str; 2] = ["cmos22", "cmos22_no_maj"];

fn tt1(f: impl Fn(bool) -> bool) -> TruthTable {
    let mut t = TruthTable::zeros(1);
    for i in 0..2usize {
        t.set_bit(i, f(i & 1 == 1));
    }
    t
}

fn tt2(f: impl Fn(bool, bool) -> bool) -> TruthTable {
    let mut t = TruthTable::zeros(2);
    for i in 0..4usize {
        t.set_bit(i, f(i & 1 == 1, i & 2 == 2));
    }
    t
}

fn tt3(f: impl Fn(bool, bool, bool) -> bool) -> TruthTable {
    let mut t = TruthTable::zeros(3);
    for i in 0..8usize {
        t.set_bit(i, f(i & 1 == 1, i & 2 == 2, i & 4 == 4));
    }
    t
}

impl CellLibrary {
    /// The paper's library: {INV, NAND2, NOR2, XOR2, XNOR2, MAJ3, MIN3}
    /// with 22nm-style characterization.
    pub fn cmos22() -> Self {
        let cells = vec![
            Cell {
                name: "INV",
                num_inputs: 1,
                function: tt1(|a| !a),
                area: 0.196,
                delay: 0.010,
                input_cap: 1.0,
                leakage: 1.2,
            },
            Cell {
                name: "NAND2",
                num_inputs: 2,
                function: tt2(|a, b| !(a && b)),
                area: 0.294,
                delay: 0.016,
                input_cap: 1.3,
                leakage: 2.0,
            },
            Cell {
                name: "NOR2",
                num_inputs: 2,
                function: tt2(|a, b| !(a || b)),
                area: 0.294,
                delay: 0.018,
                input_cap: 1.3,
                leakage: 2.1,
            },
            Cell {
                name: "XOR2",
                num_inputs: 2,
                function: tt2(|a, b| a ^ b),
                area: 0.686,
                delay: 0.030,
                input_cap: 2.1,
                leakage: 3.8,
            },
            Cell {
                name: "XNOR2",
                num_inputs: 2,
                function: tt2(|a, b| !(a ^ b)),
                area: 0.686,
                delay: 0.030,
                input_cap: 2.1,
                leakage: 3.8,
            },
            Cell {
                name: "MAJ3",
                num_inputs: 3,
                #[allow(clippy::nonminimal_bool)] // the textbook MAJ form
                function: tt3(|a, b, c| (a && b) || (a && c) || (b && c)),
                area: 0.882,
                delay: 0.033,
                input_cap: 2.4,
                leakage: 4.6,
            },
            Cell {
                name: "MIN3",
                num_inputs: 3,
                #[allow(clippy::nonminimal_bool)] // the textbook MAJ form
                function: tt3(|a, b, c| !((a && b) || (a && c) || (b && c))),
                area: 0.833,
                delay: 0.031,
                input_cap: 2.4,
                leakage: 4.4,
            },
        ];
        CellLibrary {
            name: "cmos22",
            cells,
            vdd: 0.8,
            freq_ghz: 1.0,
            fanout_delay: 0.0025,
        }
    }

    /// A majority-free subset (INV/NAND2/NOR2/XOR2/XNOR2) used to model a
    /// conventional flow that cannot absorb MAJ nodes into single cells.
    pub fn cmos22_no_maj() -> Self {
        let mut lib = Self::cmos22();
        lib.name = "cmos22-nomaj";
        lib.cells.retain(|c| c.num_inputs <= 2);
        lib
    }

    /// Looks a stock library up by name (see [`KNOWN_LIBRARIES`]).
    /// Accepts both the CLI spelling `cmos22_no_maj` and the library's
    /// own display name `cmos22-nomaj`.
    ///
    /// Returns a clone of the shared registry entry; callers that only
    /// need read access should prefer [`CellLibrary::shared_by_name`],
    /// which hands out the process-global `Arc` without copying the
    /// cell vector.
    pub fn by_name(name: &str) -> Option<CellLibrary> {
        Self::shared_by_name(name).map(|lib| (*lib).clone())
    }

    /// The process-global shared instance of a stock library.
    ///
    /// Stock libraries are immutable characterization data, so every
    /// `OptContext`, technology mapper and server worker can share one
    /// build (`OnceLock` + `Arc`) instead of reconstructing the cell
    /// vector and truth tables per job. See EXPERIMENTS.md §"serve
    /// startup amortization" for the measured per-job saving.
    pub fn shared_by_name(name: &str) -> Option<Arc<CellLibrary>> {
        static CMOS22: OnceLock<Arc<CellLibrary>> = OnceLock::new();
        static CMOS22_NO_MAJ: OnceLock<Arc<CellLibrary>> = OnceLock::new();
        match name {
            "cmos22" => Some(Arc::clone(CMOS22.get_or_init(|| Arc::new(Self::cmos22())))),
            "cmos22_no_maj" | "cmos22-nomaj" => Some(Arc::clone(
                CMOS22_NO_MAJ.get_or_init(|| Arc::new(Self::cmos22_no_maj())),
            )),
            _ => None,
        }
    }

    /// Looks a cell up by name.
    pub fn cell_by_name(&self, name: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// Index of the inverter cell.
    ///
    /// # Panics
    ///
    /// Panics if the library has no 1-input complement cell.
    pub fn inverter(&self) -> usize {
        self.cells
            .iter()
            .position(|c| c.num_inputs == 1 && c.function == tt1(|a| !a))
            .expect("library must contain an inverter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_well_formed() {
        let lib = CellLibrary::cmos22();
        assert_eq!(lib.cells.len(), 7);
        for cell in &lib.cells {
            assert_eq!(cell.function.num_vars(), cell.num_inputs);
            assert!(cell.area > 0.0 && cell.delay > 0.0);
        }
        assert_eq!(lib.cells[lib.inverter()].name, "INV");
    }

    #[test]
    fn relative_costs_are_sane() {
        let lib = CellLibrary::cmos22();
        let get = |n: &str| lib.cell_by_name(n).expect("cell exists");
        assert!(get("INV").area < get("NAND2").area);
        assert!(get("NAND2").area < get("XOR2").area);
        assert!(get("XOR2").area < get("MAJ3").area);
        assert!(get("INV").delay < get("MAJ3").delay);
    }

    #[test]
    fn maj3_function_is_majority() {
        let lib = CellLibrary::cmos22();
        let maj = lib.cell_by_name("MAJ3").expect("cell exists");
        assert_eq!(maj.function.as_u64(), 0xE8);
        let min = lib.cell_by_name("MIN3").expect("cell exists");
        assert_eq!(min.function.as_u64(), 0x17);
    }

    #[test]
    fn shared_registry_returns_one_instance() {
        let a = CellLibrary::shared_by_name("cmos22").expect("known");
        let b = CellLibrary::shared_by_name("cmos22").expect("known");
        assert!(Arc::ptr_eq(&a, &b), "one build shared by all callers");
        let c = CellLibrary::shared_by_name("cmos22_no_maj").expect("known");
        let d = CellLibrary::shared_by_name("cmos22-nomaj").expect("alias");
        assert!(Arc::ptr_eq(&c, &d));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(CellLibrary::shared_by_name("missing").is_none());
    }

    #[test]
    fn no_maj_subset() {
        let lib = CellLibrary::cmos22_no_maj();
        assert!(lib.cell_by_name("MAJ3").is_none());
        assert!(lib.cell_by_name("NAND2").is_some());
        assert_eq!(lib.cells.len(), 5);
    }
}
