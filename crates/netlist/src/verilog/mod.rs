//! Structural Verilog subset reader and writer.
//!
//! This is the MIGhty interchange format of the paper: a combinational
//! circuit flattened into Boolean primitives. The supported subset is
//!
//! ```verilog
//! module name (a, b, y);
//!   input a, b;
//!   output y;
//!   wire w0;
//!   assign w0 = a & ~b;
//!   assign y  = w0 | (a ^ b) | maj(a, b, w0);
//! endmodule
//! ```
//!
//! Expressions support `~ & | ^ ~^ ?:` with parentheses, the constants
//! `1'b0`/`1'b1`, and — as a documented extension — the `maj(a,b,c)`
//! intrinsic so that majority nodes survive a write/read round trip.
//! `assign` statements may appear in any order; combinational cycles are
//! rejected.

mod parser;
mod writer;

pub use parser::{parse_verilog, VerilogError};
pub use writer::write_verilog;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateKind, Network};

    #[test]
    fn round_trip_preserves_function() {
        let mut net = Network::new("rt");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let m = net.maj(a, b, c);
        let x = net.xor(a, m);
        let n = net.not(x);
        let mx = net.mux(a, b, n);
        net.set_output("y", mx);
        net.set_output("z", m);

        let text = write_verilog(&net);
        let back = parse_verilog(&text).expect("own output parses");
        assert_eq!(back.num_inputs(), 3);
        assert_eq!(back.num_outputs(), 2);
        for i in 0..8u32 {
            let assignment = [(i & 1) == 1, (i >> 1) & 1 == 1, (i >> 2) & 1 == 1];
            assert_eq!(
                net.eval(&assignment),
                back.eval(&assignment),
                "assignment {assignment:?}"
            );
        }
    }

    #[test]
    fn maj_intrinsic_round_trip() {
        let mut net = Network::new("m");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let m = net.maj(a, b, c);
        net.set_output("y", m);
        let text = write_verilog(&net);
        assert!(text.contains("maj("), "writer emits the maj intrinsic");
        let back = parse_verilog(&text).expect("parses");
        assert!(back.iter().any(|(_, g)| g.kind() == GateKind::Maj));
    }
}
