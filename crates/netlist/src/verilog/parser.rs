//! Recursive-descent parser for the structural Verilog subset.

use crate::{GateId, GateKind, Network};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced when parsing the Verilog subset fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerilogError {
    message: String,
    line: usize,
    column: usize,
}

impl VerilogError {
    fn new(message: impl Into<String>, line: usize, column: usize) -> Self {
        VerilogError {
            message: message.into(),
            line,
            column,
        }
    }

    /// 1-based source line where the error was detected. `0` for errors
    /// without a source location (elaboration-stage errors such as
    /// combinational cycles, which concern a whole net rather than a
    /// token).
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based source column (in characters) where the error was
    /// detected; `0` when the error has no source location.
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "verilog parse error: {}", self.message)
        } else {
            write!(
                f,
                "verilog parse error at line {}, column {}: {}",
                self.line, self.column, self.message
            )
        }
    }
}

impl Error for VerilogError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Const(bool),
    Punct(char),
    /// `~^` / `^~` XNOR operator.
    Xnor,
    Module,
    Input,
    Output,
    Wire,
    Assign,
    EndModule,
}

struct Lexer {
    tokens: Vec<(Token, usize, usize)>,
    pos: usize,
}

fn lex(text: &str) -> Result<Lexer, VerilogError> {
    let mut tokens = Vec::new();
    // Lexing operates on the decoded character sequence only — never on
    // byte slices of `text` — so multi-byte characters (in comments,
    // escaped identifiers, or corrupted input) can never desynchronize
    // the cursor from a UTF-8 boundary.
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut line = 1;
    // 1-based column of `chars[i]`, counted in characters.
    let mut col = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                    col += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let (start_line, start_col) = (line, col);
                i += 2;
                col += 2;
                while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
                if i + 1 >= chars.len() {
                    return Err(VerilogError::new(
                        "unterminated block comment",
                        start_line,
                        start_col,
                    ));
                }
                i += 2;
                col += 2;
            }
            '~' if chars.get(i + 1) == Some(&'^') => {
                tokens.push((Token::Xnor, line, col));
                i += 2;
                col += 2;
            }
            '^' if chars.get(i + 1) == Some(&'~') => {
                tokens.push((Token::Xnor, line, col));
                i += 2;
                col += 2;
            }
            '(' | ')' | ';' | ',' | '=' | '&' | '|' | '^' | '~' | '?' | ':' => {
                tokens.push((Token::Punct(c), line, col));
                i += 1;
                col += 1;
            }
            '1' if chars.get(i + 1) == Some(&'\'') => {
                // Sized binary constant: exactly `1'b0` or `1'b1`.
                let value = match (chars.get(i + 2), chars.get(i + 3)) {
                    (Some(&'b'), Some(&'0')) => false,
                    (Some(&'b'), Some(&'1')) => true,
                    _ => {
                        return Err(VerilogError::new(
                            "malformed sized constant (expected 1'b0 or 1'b1)",
                            line,
                            col,
                        ));
                    }
                };
                tokens.push((Token::Const(value), line, col));
                i += 4;
                col += 4;
            }
            '0' => {
                tokens.push((Token::Const(false), line, col));
                i += 1;
                col += 1;
            }
            '1' => {
                tokens.push((Token::Const(true), line, col));
                i += 1;
                col += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '\\' => {
                let start = i;
                let start_col = col;
                if c == '\\' {
                    // Escaped identifier: up to whitespace.
                    i += 1;
                    col += 1;
                    while i < chars.len() && !chars[i].is_whitespace() {
                        i += 1;
                        col += 1;
                    }
                } else {
                    while i < chars.len()
                        && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$')
                    {
                        i += 1;
                        col += 1;
                    }
                }
                let word: String = chars[start..i].iter().collect();
                let tok = match word.as_str() {
                    "module" => Token::Module,
                    "input" => Token::Input,
                    "output" => Token::Output,
                    "wire" => Token::Wire,
                    "assign" => Token::Assign,
                    "endmodule" => Token::EndModule,
                    _ => Token::Ident(word),
                };
                tokens.push((tok, line, start_col));
            }
            other => {
                return Err(VerilogError::new(
                    format!("unexpected character '{other}'"),
                    line,
                    col,
                ));
            }
        }
    }
    Ok(Lexer { tokens, pos: 0 })
}

impl Lexer {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _, _)| t)
    }

    /// (line, column) of the token at the cursor — or of the last token
    /// when the cursor is at end of input, so "unexpected end of file"
    /// errors point at the last thing actually seen.
    fn loc(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or((0, 0), |&(_, l, c)| (l, c))
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), VerilogError> {
        let (line, col) = self.loc();
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            Some(t) => Err(VerilogError::new(
                format!("expected {want:?}, found {t:?}"),
                line,
                col,
            )),
            None => Err(VerilogError::new("unexpected end of file", line, col)),
        }
    }

    fn expect_ident(&mut self) -> Result<String, VerilogError> {
        let (line, col) = self.loc();
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            Some(t) => Err(VerilogError::new(
                format!("expected identifier, found {t:?}"),
                line,
                col,
            )),
            None => Err(VerilogError::new("unexpected end of file", line, col)),
        }
    }
}

/// Expression AST prior to elaboration.
#[derive(Debug, Clone)]
enum Expr {
    Const(bool),
    Ref(String),
    Not(Box<Expr>),
    Bin(char, Box<Expr>, Box<Expr>),
    Xnor(Box<Expr>, Box<Expr>),
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
    Maj(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn parse_expr(lx: &mut Lexer) -> Result<Expr, VerilogError> {
    let cond = parse_or(lx)?;
    if lx.peek() == Some(&Token::Punct('?')) {
        lx.next();
        let then = parse_expr(lx)?;
        lx.expect(&Token::Punct(':'))?;
        let els = parse_expr(lx)?;
        Ok(Expr::Mux(Box::new(cond), Box::new(then), Box::new(els)))
    } else {
        Ok(cond)
    }
}

fn parse_or(lx: &mut Lexer) -> Result<Expr, VerilogError> {
    let mut lhs = parse_xor(lx)?;
    while lx.peek() == Some(&Token::Punct('|')) {
        lx.next();
        let rhs = parse_xor(lx)?;
        lhs = Expr::Bin('|', Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_xor(lx: &mut Lexer) -> Result<Expr, VerilogError> {
    let mut lhs = parse_and(lx)?;
    loop {
        match lx.peek() {
            Some(Token::Punct('^')) => {
                lx.next();
                let rhs = parse_and(lx)?;
                lhs = Expr::Bin('^', Box::new(lhs), Box::new(rhs));
            }
            Some(Token::Xnor) => {
                lx.next();
                let rhs = parse_and(lx)?;
                lhs = Expr::Xnor(Box::new(lhs), Box::new(rhs));
            }
            _ => break,
        }
    }
    Ok(lhs)
}

fn parse_and(lx: &mut Lexer) -> Result<Expr, VerilogError> {
    let mut lhs = parse_unary(lx)?;
    while lx.peek() == Some(&Token::Punct('&')) {
        lx.next();
        let rhs = parse_unary(lx)?;
        lhs = Expr::Bin('&', Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_unary(lx: &mut Lexer) -> Result<Expr, VerilogError> {
    match lx.peek() {
        Some(Token::Punct('~')) => {
            lx.next();
            Ok(Expr::Not(Box::new(parse_unary(lx)?)))
        }
        _ => parse_primary(lx),
    }
}

fn parse_primary(lx: &mut Lexer) -> Result<Expr, VerilogError> {
    let (line, col) = lx.loc();
    match lx.next() {
        Some(Token::Punct('(')) => {
            let e = parse_expr(lx)?;
            lx.expect(&Token::Punct(')'))?;
            Ok(e)
        }
        Some(Token::Const(v)) => Ok(Expr::Const(v)),
        Some(Token::Ident(name)) if name == "maj" && lx.peek() == Some(&Token::Punct('(')) => {
            lx.next();
            let a = parse_expr(lx)?;
            lx.expect(&Token::Punct(','))?;
            let b = parse_expr(lx)?;
            lx.expect(&Token::Punct(','))?;
            let c = parse_expr(lx)?;
            lx.expect(&Token::Punct(')'))?;
            Ok(Expr::Maj(Box::new(a), Box::new(b), Box::new(c)))
        }
        Some(Token::Ident(name)) => Ok(Expr::Ref(name)),
        Some(t) => Err(VerilogError::new(
            format!("expected expression, found {t:?}"),
            line,
            col,
        )),
        None => Err(VerilogError::new("unexpected end of file", line, col)),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetClass {
    Input,
    Output,
    Wire,
}

/// Parses a module in the structural Verilog subset into a [`Network`].
///
/// # Errors
///
/// Returns a [`VerilogError`] on lexical or syntax errors, references to
/// undeclared nets, multiply-driven or undriven nets, and combinational
/// cycles.
///
/// # Example
///
/// ```
/// let src = "module t(a, b, y); input a, b; output y; assign y = a & ~b; endmodule";
/// let net = mig_netlist::parse_verilog(src)?;
/// assert_eq!(net.eval(&[true, false]), vec![true]);
/// # Ok::<(), mig_netlist::VerilogError>(())
/// ```
pub fn parse_verilog(text: &str) -> Result<Network, VerilogError> {
    let mut lx = lex(text)?;
    lx.expect(&Token::Module)?;
    let module_name = lx.expect_ident()?;
    lx.expect(&Token::Punct('('))?;
    let mut classes: HashMap<String, NetClass> = HashMap::new();
    let mut input_order: Vec<String> = Vec::new();
    let mut output_order: Vec<String> = Vec::new();

    let mut ports = Vec::new();
    if lx.peek() != Some(&Token::Punct(')')) {
        // ANSI-style `input a, b, output y` declares directions inline; a
        // direction keyword applies to the names that follow it.
        let mut ansi_dir: Option<NetClass> = None;
        loop {
            match lx.peek() {
                Some(Token::Input) => {
                    lx.next();
                    ansi_dir = Some(NetClass::Input);
                }
                Some(Token::Output) => {
                    lx.next();
                    ansi_dir = Some(NetClass::Output);
                }
                _ => {}
            }
            let name = lx.expect_ident()?;
            if let Some(class) = ansi_dir {
                classes.insert(name.clone(), class);
                match class {
                    NetClass::Input => input_order.push(name.clone()),
                    NetClass::Output => output_order.push(name.clone()),
                    NetClass::Wire => {}
                }
            }
            ports.push(name);
            if lx.peek() == Some(&Token::Punct(',')) {
                lx.next();
            } else {
                break;
            }
        }
    }
    lx.expect(&Token::Punct(')'))?;
    lx.expect(&Token::Punct(';'))?;
    let mut assigns: HashMap<String, Expr> = HashMap::new();
    let mut assign_order: Vec<String> = Vec::new();

    loop {
        let (line, col) = lx.loc();
        match lx.next() {
            Some(Token::Input) | Some(Token::Output) | Some(Token::Wire) => {
                let class = match lx.tokens[lx.pos - 1].0 {
                    Token::Input => NetClass::Input,
                    Token::Output => NetClass::Output,
                    _ => NetClass::Wire,
                };
                loop {
                    let name = lx.expect_ident()?;
                    if classes.insert(name.clone(), class).is_some() {
                        return Err(VerilogError::new(
                            format!("net '{name}' declared twice"),
                            line,
                            col,
                        ));
                    }
                    match class {
                        NetClass::Input => input_order.push(name),
                        NetClass::Output => output_order.push(name),
                        NetClass::Wire => {}
                    }
                    if lx.peek() == Some(&Token::Punct(',')) {
                        lx.next();
                    } else {
                        break;
                    }
                }
                lx.expect(&Token::Punct(';'))?;
            }
            Some(Token::Assign) => {
                let target = lx.expect_ident()?;
                lx.expect(&Token::Punct('='))?;
                let expr = parse_expr(&mut lx)?;
                lx.expect(&Token::Punct(';'))?;
                match classes.get(&target) {
                    None => {
                        return Err(VerilogError::new(
                            format!("assignment to undeclared net '{target}'"),
                            line,
                            col,
                        ))
                    }
                    Some(NetClass::Input) => {
                        return Err(VerilogError::new(
                            format!("assignment to input '{target}'"),
                            line,
                            col,
                        ))
                    }
                    Some(_) => {}
                }
                if assigns.insert(target.clone(), expr).is_some() {
                    return Err(VerilogError::new(
                        format!("net '{target}' driven twice"),
                        line,
                        col,
                    ));
                }
                assign_order.push(target);
            }
            Some(Token::EndModule) => break,
            Some(t) => {
                return Err(VerilogError::new(
                    format!("expected declaration or assign, found {t:?}"),
                    line,
                    col,
                ))
            }
            None => return Err(VerilogError::new("missing endmodule", line, col)),
        }
    }

    // Elaborate into a Network; assigns may reference nets defined later,
    // so resolve recursively with cycle detection.
    let mut net = Network::new(module_name);
    let mut resolved: HashMap<String, GateId> = HashMap::new();
    for name in &input_order {
        let id = net.add_input(name.clone());
        resolved.insert(name.clone(), id);
    }

    struct Ctx<'a> {
        net: &'a mut Network,
        assigns: &'a HashMap<String, Expr>,
        resolved: HashMap<String, GateId>,
        in_progress: Vec<String>,
    }

    fn resolve_net(ctx: &mut Ctx<'_>, name: &str) -> Result<GateId, VerilogError> {
        if let Some(&id) = ctx.resolved.get(name) {
            return Ok(id);
        }
        if ctx.in_progress.iter().any(|n| n == name) {
            return Err(VerilogError::new(
                format!("combinational cycle through net '{name}'"),
                0,
                0,
            ));
        }
        let Some(expr) = ctx.assigns.get(name) else {
            return Err(VerilogError::new(
                format!("net '{name}' is never driven"),
                0,
                0,
            ));
        };
        ctx.in_progress.push(name.to_string());
        let expr = expr.clone();
        let id = build_expr(ctx, &expr)?;
        ctx.in_progress.pop();
        ctx.resolved.insert(name.to_string(), id);
        Ok(id)
    }

    fn build_expr(ctx: &mut Ctx<'_>, expr: &Expr) -> Result<GateId, VerilogError> {
        Ok(match expr {
            Expr::Const(v) => ctx.net.constant(*v),
            Expr::Ref(name) => resolve_net(ctx, name)?,
            Expr::Not(a) => {
                let a = build_expr(ctx, a)?;
                ctx.net.not(a)
            }
            Expr::Bin(op, a, b) => {
                let a = build_expr(ctx, a)?;
                let b = build_expr(ctx, b)?;
                let kind = match op {
                    '&' => GateKind::And,
                    '|' => GateKind::Or,
                    '^' => GateKind::Xor,
                    _ => unreachable!("parser only produces & | ^"),
                };
                ctx.net.add_gate(kind, vec![a, b])
            }
            Expr::Xnor(a, b) => {
                let a = build_expr(ctx, a)?;
                let b = build_expr(ctx, b)?;
                ctx.net.add_gate(GateKind::Xnor, vec![a, b])
            }
            Expr::Mux(s, t, e) => {
                let s = build_expr(ctx, s)?;
                let t = build_expr(ctx, t)?;
                let e = build_expr(ctx, e)?;
                ctx.net.mux(s, t, e)
            }
            Expr::Maj(a, b, c) => {
                let a = build_expr(ctx, a)?;
                let b = build_expr(ctx, b)?;
                let c = build_expr(ctx, c)?;
                ctx.net.maj(a, b, c)
            }
        })
    }

    let mut ctx = Ctx {
        net: &mut net,
        assigns: &assigns,
        resolved,
        in_progress: Vec::new(),
    };
    let mut outputs = Vec::new();
    for name in &output_order {
        let id = resolve_net(&mut ctx, name)?;
        outputs.push((name.clone(), id));
    }
    // Also elaborate wires nobody reads so undriven-wire errors surface even
    // when the wire is dangling.
    for name in &assign_order {
        resolve_net(&mut ctx, name)?;
    }
    for (name, id) in outputs {
        net.set_output(name, id);
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_module() {
        let src = "module t (a, b, y);\n input a, b;\n output y;\n assign y = a & b;\nendmodule\n";
        let net = parse_verilog(src).expect("parses");
        assert_eq!(net.name(), "t");
        assert_eq!(net.eval(&[true, true]), vec![true]);
        assert_eq!(net.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn operator_precedence() {
        // & binds tighter than ^ binds tighter than |
        let src = "module t(a,b,c,y); input a,b,c; output y; assign y = a | b & c; endmodule";
        let net = parse_verilog(src).expect("parses");
        assert_eq!(net.eval(&[true, false, false]), vec![true]);
        assert_eq!(net.eval(&[false, true, false]), vec![false]);
        let src2 = "module t(a,b,c,y); input a,b,c; output y; assign y = a ^ b & c; endmodule";
        let net2 = parse_verilog(src2).expect("parses");
        assert_eq!(net2.eval(&[true, true, false]), vec![true]); // a ^ (b&c)
    }

    #[test]
    fn out_of_order_assigns() {
        let src = "module t(a,y); input a; output y; wire w;\n\
                   assign y = w | a;\n assign w = ~a;\nendmodule";
        let net = parse_verilog(src).expect("parses");
        assert_eq!(net.eval(&[false]), vec![true]);
        assert_eq!(net.eval(&[true]), vec![true]);
    }

    #[test]
    fn ternary_and_xnor() {
        let src = "module t(s,a,b,y,z); input s,a,b; output y,z;\n\
                   assign y = s ? a : b;\n assign z = a ~^ b;\nendmodule";
        let net = parse_verilog(src).expect("parses");
        assert_eq!(net.eval(&[true, true, false]), vec![true, false]);
        assert_eq!(net.eval(&[false, true, false]), vec![false, false]);
        assert_eq!(net.eval(&[false, true, true]), vec![true, true]);
    }

    #[test]
    fn constants_and_comments() {
        let src = "// top comment\nmodule t(a,y); /* block */ input a; output y;\n\
                   assign y = a & 1'b1 | 1'b0; // trailing\nendmodule";
        let net = parse_verilog(src).expect("parses");
        assert_eq!(net.eval(&[true]), vec![true]);
        assert_eq!(net.eval(&[false]), vec![false]);
    }

    #[test]
    fn error_on_cycle() {
        let src = "module t(a,y); input a; output y; wire w;\n\
                   assign w = y; assign y = w & a; endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn error_on_undriven() {
        let src = "module t(a,y); input a; output y; wire w; assign y = w; endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.to_string().contains("never driven"), "{err}");
    }

    #[test]
    fn error_on_double_drive() {
        let src = "module t(a,y); input a; output y;\n\
                   assign y = a; assign y = ~a; endmodule";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.to_string().contains("driven twice"), "{err}");
    }

    #[test]
    fn error_on_assign_to_input() {
        let src = "module t(a,y); input a; output y; assign a = y; endmodule";
        assert!(parse_verilog(src).is_err());
    }

    #[test]
    fn error_reports_line() {
        let src = "module t(a,y);\ninput a;\noutput y;\nassign y = a @ a;\nendmodule";
        let err = parse_verilog(src).unwrap_err();
        assert_eq!(err.line(), 4);
        assert_eq!(err.column(), 14, "{err}");
        assert!(err.to_string().contains("line 4, column 14"), "{err}");
    }

    #[test]
    fn error_reports_column_after_multibyte_text() {
        // Columns count characters, not bytes: the two-byte 'é' in the
        // comment before the bad token must advance the column by one
        // (byte-counting would report 24).
        let src = "module t(a,y); input a; output y;\nassign y = a; /* é */ @\nendmodule";
        let err = parse_verilog(src).unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.column(), 23, "{err}");
    }

    #[test]
    fn multibyte_comment_does_not_desync_the_lexer() {
        // Regression: the lexer used to index the source *bytes* with a
        // *character* count, so any multi-byte character shifted every
        // later lookahead — `1'b1` after a non-ASCII comment could slice
        // mid-UTF-8-boundary and panic.
        let src = "module t(a,y); /* café ☕ */ input a; output y;\n\
                   assign y = a & 1'b1; // done ✓\nendmodule";
        let net = parse_verilog(src).expect("parses despite multibyte comments");
        assert_eq!(net.eval(&[true]), vec![true]);
        assert_eq!(net.eval(&[false]), vec![false]);
    }

    #[test]
    fn malformed_sized_constant_is_an_error_not_a_panic() {
        for bad in ["1'b", "1'bx", "1'", "1'c1"] {
            let src = format!("module t(a,y); input a; output y; assign y = a & {bad}; endmodule");
            let err = parse_verilog(&src).unwrap_err();
            assert_eq!(err.line(), 1, "{bad}: {err}");
        }
    }

    /// A small but representative module exercising every token kind.
    const CORPUS: &str = "module top(a, b, s, y, z); // ports\n\
                          input a, b, s;\n\
                          output y, z;\n\
                          wire w1, w2; /* internal ± nets */\n\
                          assign w1 = maj(a, b, 1'b0);\n\
                          assign w2 = s ? a : ~b;\n\
                          assign y = w1 ^ w2 | a & 1'b1;\n\
                          assign z = w1 ~^ w2;\n\
                          endmodule\n";

    #[test]
    fn truncated_verilog_never_panics() {
        // Property: every byte-level truncation of a valid module either
        // parses or reports a clean error — the parser must never panic,
        // even when the cut lands inside a multi-byte character (the
        // lossy decode turns it into U+FFFD).
        assert!(parse_verilog(CORPUS).is_ok());
        for cut in 0..CORPUS.len() {
            let text = String::from_utf8_lossy(&CORPUS.as_bytes()[..cut]);
            let _ = parse_verilog(&text);
        }
    }

    #[test]
    fn corrupted_verilog_never_panics() {
        // Property: deterministic single-byte corruptions (overwrites,
        // deletions, insertions, all SplitMix64-seeded) produce Ok or a
        // clean Err, never a panic or a bogus location (line/column must
        // stay within the text).
        let mut rng = crate::SplitMix64::seed_from_u64(0xB0B0_CAFE);
        let bytes = CORPUS.as_bytes();
        for _ in 0..500 {
            let at = (rng.next_u64() as usize) % bytes.len();
            let val = (rng.next_u64() & 0xFF) as u8;
            let mut mutated = bytes.to_vec();
            match rng.next_u64() % 3 {
                0 => mutated[at] = val,
                1 => {
                    mutated.remove(at);
                }
                _ => mutated.insert(at, val),
            }
            let text = String::from_utf8_lossy(&mutated);
            if let Err(e) = parse_verilog(&text) {
                let lines = text.lines().count() + 1;
                assert!(e.line() <= lines, "line {} of {lines}: {e}", e.line());
            }
        }
    }

    #[test]
    fn ansi_style_ports() {
        let src = "module t(input a, input b, output y); assign y = a | b; endmodule";
        let net = parse_verilog(src).expect("parses");
        assert_eq!(net.num_inputs(), 2);
        assert_eq!(net.eval(&[false, true]), vec![true]);
    }
}
