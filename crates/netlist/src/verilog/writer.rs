//! Writer emitting the structural Verilog subset.

use crate::{GateId, GateKind, Network};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Serializes a network as structural Verilog.
///
/// Internal gates get fresh `_n<k>` wire names; majority gates are emitted
/// through the `maj(a,b,c)` intrinsic understood by
/// [`parse_verilog`](crate::parse_verilog) so that MIG structure survives a
/// round trip.
///
/// # Example
///
/// ```
/// use mig_netlist::{Network, parse_verilog, write_verilog};
///
/// let mut net = Network::new("buf2");
/// let a = net.add_input("a");
/// let n = net.not(a);
/// net.set_output("y", n);
/// let text = write_verilog(&net);
/// let back = parse_verilog(&text)?;
/// assert_eq!(back.eval(&[false]), vec![true]);
/// # Ok::<(), mig_netlist::VerilogError>(())
/// ```
pub fn write_verilog(net: &Network) -> String {
    let mut used: HashSet<String> = net.input_names().iter().cloned().collect();
    used.extend(net.outputs().iter().map(|(n, _)| n.clone()));

    // Assign a wire name to every referenced internal gate.
    let reachable = net.reachable();
    let mut names: HashMap<GateId, String> = HashMap::new();
    for (i, &id) in net.inputs().iter().enumerate() {
        names.insert(id, net.input_name(i).to_string());
    }
    let mut wires = Vec::new();
    for (id, gate) in net.iter() {
        if gate.kind() == GateKind::Input || !reachable[id.index()] {
            continue;
        }
        let mut name = format!("_n{}", id.index());
        while used.contains(&name) {
            name.push('_');
        }
        used.insert(name.clone());
        names.insert(id, name.clone());
        wires.push(name);
    }

    let mut out = String::new();
    let mut ports: Vec<&str> = net.input_names().iter().map(String::as_str).collect();
    ports.extend(net.outputs().iter().map(|(n, _)| n.as_str()));
    let _ = writeln!(out, "module {} ({});", net.name(), ports.join(", "));
    if !net.input_names().is_empty() {
        let _ = writeln!(out, "  input {};", net.input_names().join(", "));
    }
    if !net.outputs().is_empty() {
        let names: Vec<&str> = net.outputs().iter().map(|(n, _)| n.as_str()).collect();
        let _ = writeln!(out, "  output {};", names.join(", "));
    }
    if !wires.is_empty() {
        for chunk in wires.chunks(20) {
            let _ = writeln!(out, "  wire {};", chunk.join(", "));
        }
    }

    for (id, gate) in net.iter() {
        if gate.kind() == GateKind::Input || !reachable[id.index()] {
            continue;
        }
        let expr = gate_expr(net, id, &names);
        let _ = writeln!(out, "  assign {} = {};", names[&id], expr);
    }
    for (name, gate) in net.outputs() {
        // Outputs driven directly by an input or by an internal wire of a
        // different name need a connecting assign.
        if names[gate] != *name {
            let _ = writeln!(out, "  assign {} = {};", name, names[gate]);
        }
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn gate_expr(net: &Network, id: GateId, names: &HashMap<GateId, String>) -> String {
    let gate = net.gate(id);
    let f = |i: usize| names[&gate.fanins()[i]].clone();
    let joined = |sep: &str| {
        gate.fanins()
            .iter()
            .map(|g| names[g].clone())
            .collect::<Vec<_>>()
            .join(sep)
    };
    match gate.kind() {
        GateKind::Const0 => "1'b0".to_string(),
        GateKind::Const1 => "1'b1".to_string(),
        GateKind::Input => unreachable!("inputs are not assigned"),
        GateKind::Buf => f(0),
        GateKind::Not => format!("~{}", f(0)),
        GateKind::And => joined(" & "),
        GateKind::Or => joined(" | "),
        GateKind::Xor => joined(" ^ "),
        GateKind::Xnor => format!("{} ~^ {}", f(0), f(1)),
        GateKind::Nand => format!("~({} & {})", f(0), f(1)),
        GateKind::Nor => format!("~({} | {})", f(0), f(1)),
        GateKind::Mux => format!("{} ? {} : {}", f(0), f(1), f(2)),
        GateKind::Maj => format!("maj({}, {}, {})", f(0), f(1), f(2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_verilog;

    #[test]
    fn writes_all_gate_kinds() {
        let mut net = Network::new("kinds");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let gates = vec![
            net.add_gate(GateKind::And, vec![a, b]),
            net.add_gate(GateKind::Or, vec![a, b]),
            net.add_gate(GateKind::Xor, vec![a, b]),
            net.add_gate(GateKind::Xnor, vec![a, b]),
            net.add_gate(GateKind::Nand, vec![a, b]),
            net.add_gate(GateKind::Nor, vec![a, b]),
            net.add_gate(GateKind::Mux, vec![a, b, c]),
            net.add_gate(GateKind::Maj, vec![a, b, c]),
            net.add_gate(GateKind::Not, vec![a]),
        ];
        for (i, g) in gates.iter().enumerate() {
            net.set_output(format!("y{i}"), *g);
        }
        let text = write_verilog(&net);
        let back = parse_verilog(&text).expect("round trip");
        for bits in 0..8u32 {
            let assignment = [(bits & 1) == 1, (bits >> 1) & 1 == 1, (bits >> 2) & 1 == 1];
            assert_eq!(net.eval(&assignment), back.eval(&assignment));
        }
    }

    #[test]
    fn output_fed_by_input_gets_assign() {
        let mut net = Network::new("thru");
        let a = net.add_input("a");
        net.set_output("y", a);
        let text = write_verilog(&net);
        assert!(text.contains("assign y = a;"));
        let back = parse_verilog(&text).expect("parses");
        assert_eq!(back.eval(&[true]), vec![true]);
    }

    #[test]
    fn name_collisions_avoided() {
        let mut net = Network::new("clash");
        let a = net.add_input("_n1"); // collides with generated wire pattern
        let n = net.not(a);
        net.set_output("y", n);
        let text = write_verilog(&net);
        let back = parse_verilog(&text).expect("parses");
        assert_eq!(back.eval(&[false]), vec![true]);
    }

    #[test]
    fn constants_serialize() {
        let mut net = Network::new("c");
        let one = net.constant(true);
        let a = net.add_input("a");
        let g = net.and(a, one);
        net.set_output("y", g);
        let text = write_verilog(&net);
        assert!(text.contains("1'b1"));
        let back = parse_verilog(&text).expect("parses");
        assert_eq!(back.eval(&[true]), vec![true]);
    }
}
