//! Stable, order-independent structural content hashing.
//!
//! [`Network::content_hash`] folds a netlist down to a single 64-bit
//! fingerprint built from splitmix64 finalizer rounds. The hash is
//! *content*-based, not *arena*-based: two netlists describing the same
//! circuit hash equal even when their gates were inserted in different
//! topological orders, dead gates never contribute, and primary
//! input/output identity comes from the declared port names rather than
//! from declaration positions. This is what makes it usable as a job-cache
//! key in `mighty serve` — a client re-submitting the same circuit built
//! by a different emitter still hits the cache.
//!
//! Properties (covered by tests here and in the serve suite):
//!
//! - deterministic across processes and platforms (no pointer or
//!   `DefaultHasher` state involved);
//! - independent of gate insertion order and of PO declaration order;
//! - excludes the module name (renaming a design does not change its
//!   content);
//! - any semantic mutation — a different gate kind, a rewired fanin, a
//!   renamed or redirected port — changes the hash with overwhelming
//!   probability (64-bit collision odds).

use crate::network::{GateKind, Network};

/// The splitmix64 finalizer: a fast, well-mixed 64-bit permutation used
/// as the combining primitive of the content hash (same constants as
/// [`crate::SplitMix64`]).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a string by folding its bytes through [`mix64`], eight bytes at
/// a time. Deterministic across platforms (unlike `DefaultHasher`).
pub fn hash_str(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut h = mix64(0x5EED_0000_0000_0001 ^ bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_le_bytes(word));
    }
    h
}

/// Domain-separation seeds so a PI named "x" can never collide with a PO
/// named "x" or a gate whose fanin hash happens to equal `hash_str("x")`.
const SEED_INPUT: u64 = 0x9E37_79B9_7F4A_7C15;
const SEED_GATE: u64 = 0xC2B2_AE3D_27D4_EB4F;
const SEED_OUTPUT: u64 = 0x1656_67B1_9E37_79F9;

fn kind_tag(kind: GateKind) -> u64 {
    match kind {
        GateKind::Const0 => 1,
        GateKind::Const1 => 2,
        GateKind::Input => 3,
        GateKind::Buf => 4,
        GateKind::Not => 5,
        GateKind::And => 6,
        GateKind::Or => 7,
        GateKind::Xor => 8,
        GateKind::Xnor => 9,
        GateKind::Nand => 10,
        GateKind::Nor => 11,
        GateKind::Mux => 12,
        GateKind::Maj => 13,
    }
}

impl Network {
    /// A stable 64-bit structural fingerprint of the circuit.
    ///
    /// Computed bottom-up in one arena pass: every gate's hash combines
    /// its kind tag with its fanin hashes *in fanin order* (MUX and other
    /// order-sensitive primitives stay order-sensitive), primary inputs
    /// hash from their declared names, and the final value folds the
    /// per-output hashes (name ⊕ driving cone) commutatively together
    /// with a commutative fold of the input-port names. Gates not in any
    /// output cone therefore never influence the result, and neither
    /// does the order in which gates, inputs or outputs were declared.
    ///
    /// See the [module docs](self) for the guarantees and intended use as
    /// the `mighty serve` job-cache key.
    pub fn content_hash(&self) -> u64 {
        let mut gate_hash: Vec<u64> = Vec::with_capacity(self.num_gates());
        let mut input_iter = self.input_names().iter();
        for (_, gate) in self.iter() {
            let h = match gate.kind() {
                GateKind::Input => {
                    let name = input_iter.next().expect("one name per input");
                    mix64(SEED_INPUT ^ hash_str(name))
                }
                kind => {
                    let mut h = mix64(SEED_GATE ^ kind_tag(kind));
                    for f in gate.fanins() {
                        h = mix64(h ^ gate_hash[f.index()]);
                    }
                    h
                }
            };
            gate_hash.push(h);
        }
        // Commutative folds: reordering ports must not change the hash.
        let mut acc: u64 = 0;
        for name in self.input_names() {
            acc = acc.wrapping_add(mix64(SEED_INPUT ^ hash_str(name)));
        }
        for (name, gate) in self.outputs() {
            acc = acc.wrapping_add(mix64(
                SEED_OUTPUT ^ hash_str(name) ^ gate_hash[gate.index()].rotate_left(17),
            ));
        }
        mix64(acc ^ mix64(self.num_inputs() as u64) ^ self.num_outputs() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::GateId;

    fn full_adder() -> Network {
        let mut net = Network::new("fa");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("cin");
        let s1 = net.xor(a, b);
        let sum = net.xor(s1, c);
        let carry = net.maj(a, b, c);
        net.set_output("sum", sum);
        net.set_output("cout", carry);
        net
    }

    #[test]
    fn deterministic_and_name_blind() {
        let h = full_adder().content_hash();
        assert_eq!(h, full_adder().content_hash());
        let mut renamed = full_adder();
        renamed.set_name("other_module");
        assert_eq!(h, renamed.content_hash(), "module name is not content");
    }

    #[test]
    fn gate_insertion_order_is_irrelevant() {
        // Same circuit, carry built before the sum chain.
        let mut net = Network::new("fa2");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("cin");
        let carry = net.maj(a, b, c);
        let s1 = net.xor(a, b);
        let sum = net.xor(s1, c);
        net.set_output("sum", sum);
        net.set_output("cout", carry);
        assert_eq!(net.content_hash(), full_adder().content_hash());
    }

    #[test]
    fn output_order_is_irrelevant() {
        let mut net = Network::new("fa3");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("cin");
        let s1 = net.xor(a, b);
        let sum = net.xor(s1, c);
        let carry = net.maj(a, b, c);
        net.set_output("cout", carry);
        net.set_output("sum", sum);
        assert_eq!(net.content_hash(), full_adder().content_hash());
    }

    #[test]
    fn dead_gates_are_irrelevant() {
        let mut net = full_adder();
        let a = net.inputs()[0];
        let b = net.inputs()[1];
        let _dead = net.and(a, b);
        assert_eq!(net.content_hash(), full_adder().content_hash());
    }

    #[test]
    fn mutations_change_the_hash() {
        let base = full_adder().content_hash();

        // Different gate kind in one cone.
        let mut m1 = Network::new("fa");
        let a = m1.add_input("a");
        let b = m1.add_input("b");
        let c = m1.add_input("cin");
        let s1 = m1.or(a, b);
        let sum = m1.xor(s1, c);
        let carry = m1.maj(a, b, c);
        m1.set_output("sum", sum);
        m1.set_output("cout", carry);
        assert_ne!(base, m1.content_hash());

        // Rewired fanin.
        let mut m2 = Network::new("fa");
        let a = m2.add_input("a");
        let b = m2.add_input("b");
        let c = m2.add_input("cin");
        let s1 = m2.xor(a, b);
        let sum = m2.xor(s1, a);
        let carry = m2.maj(a, b, c);
        m2.set_output("sum", sum);
        m2.set_output("cout", carry);
        assert_ne!(base, m2.content_hash());

        // Renamed port.
        let mut m3 = full_adder();
        m3.set_output("extra", GateId::from_index(0));
        assert_ne!(base, m3.content_hash());
    }

    #[test]
    fn mux_fanin_order_is_significant() {
        let build = |swap: bool| {
            let mut net = Network::new("m");
            let s = net.add_input("s");
            let t = net.add_input("t");
            let e = net.add_input("e");
            let m = if swap {
                net.mux(s, e, t)
            } else {
                net.mux(s, t, e)
            };
            net.set_output("y", m);
            net
        };
        assert_ne!(build(false).content_hash(), build(true).content_hash());
    }

    #[test]
    fn random_networks_rarely_collide() {
        // 64 random netlists over the same inputs: all hashes distinct.
        let mut rng = SplitMix64::seed_from_u64(0xD1CE);
        let mut seen = std::collections::HashSet::new();
        for round in 0..64 {
            let mut net = Network::new("rand");
            let mut ids: Vec<GateId> = (0..6).map(|i| net.add_input(format!("x{i}"))).collect();
            for _ in 0..20 {
                let a = ids[rng.gen_range(0..ids.len())];
                let b = ids[rng.gen_range(0..ids.len())];
                let g = match rng.gen_range(0..3) {
                    0 => net.and(a, b),
                    1 => net.or(a, b),
                    _ => net.xor(a, b),
                };
                ids.push(g);
            }
            net.set_output("y", *ids.last().unwrap());
            assert!(
                seen.insert(net.content_hash()),
                "collision at round {round}"
            );
        }
    }
}
