//! A tiny deterministic PRNG so the workspace has zero third-party
//! dependencies and every "random" benchmark or simulation pattern is
//! bit-for-bit reproducible across platforms and toolchain versions.
//!
//! The generator is splitmix64 (Steele, Lea, Flood — "Fast splittable
//! pseudorandom number generators", OOPSLA'14): a 64-bit state advanced
//! by a Weyl sequence and finalized with a variant of the MurmurHash3
//! mixer. It passes BigCrush when used as a stream and is more than
//! adequate for benchmark generation and random simulation patterns —
//! it is **not** cryptographic.

use std::ops::Bound;
use std::ops::RangeBounds;

/// Deterministic splitmix64 pseudorandom number generator.
///
/// ```
/// use mig_netlist::SplitMix64;
///
/// let mut a = SplitMix64::seed_from_u64(42);
/// let mut b = SplitMix64::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform `usize` in the given range (`a..b` or `a..=b`).
    ///
    /// Uses Lemire-style rejection-free multiply-shift reduction; the
    /// modulo bias is below 2⁻⁴⁸ for every range this suite uses.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: RangeBounds<usize>>(&mut self, range: R) -> usize {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x.checked_add(1).expect("range end overflows"),
            Bound::Excluded(&x) => x,
            Bound::Unbounded => usize::MAX,
        };
        assert!(lo < hi, "gen_range called with empty range");
        let span = (hi - lo) as u64;
        let r = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + r as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_splitmix64_vector() {
        // Reference stream for seed 1234567 from the splitmix64 paper's
        // public-domain C implementation.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn determinism_and_divergence() {
        let mut a = SplitMix64::seed_from_u64(9);
        let mut b = SplitMix64::seed_from_u64(9);
        let mut c = SplitMix64::seed_from_u64(10);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::seed_from_u64(99);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let hits = (0..4096).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 4096.0;
        assert!((frac - 0.25).abs() < 0.03, "frac {frac}");
    }
}
