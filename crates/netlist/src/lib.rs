//! Generic multi-level logic networks and structural Verilog I/O.
//!
//! A [`Network`] is a DAG of Boolean-primitive gates (AND/OR/XOR/MUX/MAJ/…)
//! used as the interchange format of the MIG suite: benchmark generators
//! emit networks, optimization engines import them into their native
//! representation (MIG, AIG, BDD) and export the optimized result back, and
//! the technology mapper consumes them.
//!
//! The [`verilog`] module reads and writes the flattened structural-Verilog
//! subset that the paper's MIGhty tool uses as its front/back end.
//!
//! # Example
//!
//! ```
//! use mig_netlist::{Network, GateKind};
//!
//! let mut net = Network::new("full_adder");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let cin = net.add_input("cin");
//! let sum = net.add_gate(GateKind::Xor, vec![a, b]);
//! let sum = net.add_gate(GateKind::Xor, vec![sum, cin]);
//! let carry = net.add_gate(GateKind::Maj, vec![a, b, cin]);
//! net.set_output("sum", sum);
//! net.set_output("cout", carry);
//! assert_eq!(net.num_inputs(), 3);
//! assert_eq!(net.num_outputs(), 2);
//! ```

#![warn(missing_docs)]

pub mod content_hash;
mod network;
pub mod rng;
mod stats;
mod topo;
pub mod verilog;

pub use network::{Gate, GateId, GateKind, Network};
pub use rng::SplitMix64;
pub use stats::NetworkStats;
pub use verilog::{parse_verilog, write_verilog, VerilogError};
