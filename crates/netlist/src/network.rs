//! The gate-level logic network data structure.

use std::fmt;

/// Index of a gate inside a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `GateId` from a raw index.
    pub fn from_index(index: usize) -> Self {
        GateId(u32::try_from(index).expect("network limited to 2^32 gates"))
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The Boolean primitive computed by a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Constant 0 (no fanins).
    Const0,
    /// Constant 1 (no fanins).
    Const1,
    /// Primary input (no fanins).
    Input,
    /// Identity (1 fanin).
    Buf,
    /// Complement (1 fanin).
    Not,
    /// Conjunction (≥ 2 fanins).
    And,
    /// Disjunction (≥ 2 fanins).
    Or,
    /// Exclusive-or (≥ 2 fanins).
    Xor,
    /// Complemented exclusive-or (2 fanins).
    Xnor,
    /// Complemented conjunction (2 fanins).
    Nand,
    /// Complemented disjunction (2 fanins).
    Nor,
    /// If-then-else: fanins `[sel, then, else]`.
    Mux,
    /// Three-input majority.
    Maj,
}

impl GateKind {
    /// Number of fanins this kind expects, or `None` for variadic kinds.
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::Const0 | GateKind::Const1 | GateKind::Input => Some(0),
            GateKind::Buf | GateKind::Not => Some(1),
            GateKind::Xnor | GateKind::Nand | GateKind::Nor => Some(2),
            GateKind::Mux | GateKind::Maj => Some(3),
            GateKind::And | GateKind::Or | GateKind::Xor => None,
        }
    }

    /// Evaluates the primitive on boolean fanin values.
    ///
    /// # Panics
    ///
    /// Panics if the number of values does not suit the kind.
    pub fn eval(self, values: &[bool]) -> bool {
        match self {
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Input => panic!("inputs have no defining function"),
            GateKind::Buf => values[0],
            GateKind::Not => !values[0],
            GateKind::And => values.iter().all(|&v| v),
            GateKind::Or => values.iter().any(|&v| v),
            GateKind::Xor => values.iter().fold(false, |acc, &v| acc ^ v),
            GateKind::Xnor => !(values[0] ^ values[1]),
            GateKind::Nand => !(values[0] && values[1]),
            GateKind::Nor => !(values[0] || values[1]),
            GateKind::Mux => {
                if values[0] {
                    values[1]
                } else {
                    values[2]
                }
            }
            GateKind::Maj => (values[0] && values[1]) || (values[2] && (values[0] || values[1])),
        }
    }

    /// Evaluates the primitive on 64 assignments in parallel.
    pub fn eval_words(self, values: &[u64]) -> u64 {
        match self {
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Input => panic!("inputs have no defining function"),
            GateKind::Buf => values[0],
            GateKind::Not => !values[0],
            GateKind::And => values.iter().fold(u64::MAX, |acc, &v| acc & v),
            GateKind::Or => values.iter().fold(0, |acc, &v| acc | v),
            GateKind::Xor => values.iter().fold(0, |acc, &v| acc ^ v),
            GateKind::Xnor => !(values[0] ^ values[1]),
            GateKind::Nand => !(values[0] & values[1]),
            GateKind::Nor => !(values[0] | values[1]),
            GateKind::Mux => (values[0] & values[1]) | (!values[0] & values[2]),
            GateKind::Maj => {
                (values[0] & values[1]) | (values[0] & values[2]) | (values[1] & values[2])
            }
        }
    }

    /// True for the kinds that count toward logic size (everything except
    /// constants, inputs and buffers).
    pub fn is_logic(self) -> bool {
        !matches!(
            self,
            GateKind::Const0 | GateKind::Const1 | GateKind::Input | GateKind::Buf
        )
    }
}

/// A single gate: a primitive and its fanin list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    kind: GateKind,
    fanins: Vec<GateId>,
}

impl Gate {
    /// The gate's primitive.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The gate's fanin list.
    pub fn fanins(&self) -> &[GateId] {
        &self.fanins
    }
}

/// A combinational gate-level logic network.
///
/// Gates live in an arena indexed by [`GateId`]. Named primary inputs and
/// named primary outputs delimit the circuit; everything else is internal.
/// Fanins must always refer to already-added gates, so the arena order is a
/// valid topological order.
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<GateId>,
    input_names: Vec<String>,
    outputs: Vec<(String, GateId)>,
}

impl Network {
    /// Creates an empty network with the given module name.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the module.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a named primary input and returns its gate id.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        let id = GateId::from_index(self.gates.len());
        self.gates.push(Gate {
            kind: GateKind::Input,
            fanins: vec![],
        });
        self.inputs.push(id);
        self.input_names.push(name.into());
        id
    }

    /// Adds a gate computing `kind` over `fanins`.
    ///
    /// # Panics
    ///
    /// Panics if a fanin id is out of range, or the fanin count does not
    /// match the kind's arity (variadic kinds require at least two fanins).
    pub fn add_gate(&mut self, kind: GateKind, fanins: Vec<GateId>) -> GateId {
        let id = GateId::from_index(self.gates.len());
        for &f in &fanins {
            assert!(f.index() < self.gates.len(), "fanin {f} does not exist yet");
        }
        match kind.arity() {
            Some(n) => assert_eq!(fanins.len(), n, "{kind:?} expects {n} fanins"),
            None => assert!(fanins.len() >= 2, "{kind:?} expects at least 2 fanins"),
        }
        assert!(
            !matches!(kind, GateKind::Input),
            "use add_input for primary inputs"
        );
        self.gates.push(Gate { kind, fanins });
        id
    }

    /// Returns (adding if needed) the constant gate of the given value.
    pub fn constant(&mut self, value: bool) -> GateId {
        let kind = if value {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        // Constants are rare; a linear scan keeps the structure simple.
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind == kind {
                return GateId::from_index(i);
            }
        }
        self.add_gate(kind, vec![])
    }

    /// Convenience: adds a NOT gate.
    pub fn not(&mut self, a: GateId) -> GateId {
        self.add_gate(GateKind::Not, vec![a])
    }

    /// Convenience: adds an AND gate.
    pub fn and(&mut self, a: GateId, b: GateId) -> GateId {
        self.add_gate(GateKind::And, vec![a, b])
    }

    /// Convenience: adds an OR gate.
    pub fn or(&mut self, a: GateId, b: GateId) -> GateId {
        self.add_gate(GateKind::Or, vec![a, b])
    }

    /// Convenience: adds an XOR gate.
    pub fn xor(&mut self, a: GateId, b: GateId) -> GateId {
        self.add_gate(GateKind::Xor, vec![a, b])
    }

    /// Convenience: adds a MAJ gate.
    pub fn maj(&mut self, a: GateId, b: GateId, c: GateId) -> GateId {
        self.add_gate(GateKind::Maj, vec![a, b, c])
    }

    /// Convenience: adds a MUX gate (`sel ? t : e`).
    pub fn mux(&mut self, sel: GateId, t: GateId, e: GateId) -> GateId {
        self.add_gate(GateKind::Mux, vec![sel, t, e])
    }

    /// Declares `gate` as the primary output called `name`.
    pub fn set_output(&mut self, name: impl Into<String>, gate: GateId) {
        assert!(gate.index() < self.gates.len(), "output gate must exist");
        self.outputs.push((name.into(), gate));
    }

    /// The gate with the given id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Total number of gates in the arena (including inputs and constants).
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Primary input ids in declaration order.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary input names in declaration order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// The name of input `i`.
    pub fn input_name(&self, i: usize) -> &str {
        &self.input_names[i]
    }

    /// Primary outputs as `(name, gate)` pairs.
    pub fn outputs(&self) -> &[(String, GateId)] {
        &self.outputs
    }

    /// Iterates over all `(id, gate)` pairs in arena (= topological) order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId::from_index(i), g))
    }

    /// Evaluates all outputs under a boolean input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_inputs()`.
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(assignment.len(), self.num_inputs());
        let mut values = vec![false; self.gates.len()];
        let mut input_iter = assignment.iter();
        for (i, g) in self.gates.iter().enumerate() {
            values[i] = match g.kind {
                GateKind::Input => *input_iter.next().expect("one value per input"),
                kind => {
                    let vals: Vec<bool> = g.fanins.iter().map(|f| values[f.index()]).collect();
                    kind.eval(&vals)
                }
            };
        }
        self.outputs
            .iter()
            .map(|&(_, g)| values[g.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Network {
        let mut net = Network::new("fa");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("cin");
        let s1 = net.xor(a, b);
        let sum = net.xor(s1, c);
        let carry = net.maj(a, b, c);
        net.set_output("sum", sum);
        net.set_output("cout", carry);
        net
    }

    #[test]
    fn full_adder_truth() {
        let net = full_adder();
        for i in 0..8u32 {
            let assignment = [(i & 1) == 1, (i >> 1) & 1 == 1, (i >> 2) & 1 == 1];
            let ones = assignment.iter().filter(|&&v| v).count();
            let out = net.eval(&assignment);
            assert_eq!(out[0], ones % 2 == 1, "sum for {assignment:?}");
            assert_eq!(out[1], ones >= 2, "cout for {assignment:?}");
        }
    }

    #[test]
    fn constants_are_shared() {
        let mut net = Network::new("c");
        let z1 = net.constant(false);
        let z2 = net.constant(false);
        let o1 = net.constant(true);
        assert_eq!(z1, z2);
        assert_ne!(z1, o1);
    }

    #[test]
    fn variadic_gates() {
        let mut net = Network::new("wide");
        let ins: Vec<GateId> = (0..5).map(|i| net.add_input(format!("x{i}"))).collect();
        let and = net.add_gate(GateKind::And, ins.clone());
        let xor = net.add_gate(GateKind::Xor, ins);
        net.set_output("a", and);
        net.set_output("x", xor);
        assert_eq!(net.eval(&[true; 5]), vec![true, true]);
        assert_eq!(
            net.eval(&[true, true, true, true, false]),
            vec![false, false]
        );
    }

    #[test]
    fn eval_words_matches_eval() {
        for kind in [
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Maj,
            GateKind::Mux,
        ] {
            for bits in 0..8u32 {
                let vals = [bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1];
                let n = kind.arity().unwrap_or(2);
                let words: Vec<u64> = vals[..n]
                    .iter()
                    .map(|&b| if b { u64::MAX } else { 0 })
                    .collect();
                let scalar = kind.eval(&vals[..n]);
                let word = kind.eval_words(&words);
                assert_eq!(word == u64::MAX, scalar, "{kind:?} {vals:?}");
                assert!(word == 0 || word == u64::MAX);
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn fanin_must_exist() {
        let mut net = Network::new("bad");
        let a = net.add_input("a");
        net.add_gate(GateKind::Not, vec![GateId::from_index(a.index() + 7)]);
    }

    #[test]
    #[should_panic(expected = "expects 3 fanins")]
    fn arity_checked() {
        let mut net = Network::new("bad");
        let a = net.add_input("a");
        net.add_gate(GateKind::Maj, vec![a, a]);
    }
}
