//! Summary statistics of a network.

use crate::{GateKind, Network};
use std::collections::BTreeMap;
use std::fmt;

/// Size/depth/composition summary of a [`Network`].
///
/// Produced by [`Network::stats`]; `size` counts logic gates the way the
/// paper counts nodes (inverters and buffers are free — they become edge
/// attributes in MIG/AIG form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkStats {
    /// Number of logic gates (excluding constants, inputs, buffers, NOTs).
    pub size: usize,
    /// Logic depth (inverter-transparent).
    pub depth: u32,
    /// Number of inverters.
    pub inverters: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Gate histogram by kind name.
    pub histogram: BTreeMap<&'static str, usize>,
}

fn kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Const0 => "const0",
        GateKind::Const1 => "const1",
        GateKind::Input => "input",
        GateKind::Buf => "buf",
        GateKind::Not => "not",
        GateKind::And => "and",
        GateKind::Or => "or",
        GateKind::Xor => "xor",
        GateKind::Xnor => "xnor",
        GateKind::Nand => "nand",
        GateKind::Nor => "nor",
        GateKind::Mux => "mux",
        GateKind::Maj => "maj",
    }
}

impl Network {
    /// Computes the summary statistics of this network.
    pub fn stats(&self) -> NetworkStats {
        let mut histogram = BTreeMap::new();
        for (_, gate) in self.iter() {
            *histogram.entry(kind_name(gate.kind())).or_insert(0) += 1;
        }
        NetworkStats {
            size: self.num_logic_gates(),
            depth: self.depth(),
            inverters: self.num_inverters(),
            inputs: self.num_inputs(),
            outputs: self.num_outputs(),
            histogram,
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "i/o={}/{} size={} depth={} inv={}",
            self.inputs, self.outputs, self.size, self.depth, self.inverters
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_network() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let n1 = net.and(a, b);
        let n2 = net.not(n1);
        net.set_output("y", n2);
        let s = net.stats();
        assert_eq!(s.size, 1);
        assert_eq!(s.inverters, 1);
        assert_eq!(s.depth, 1);
        assert_eq!(s.histogram["and"], 1);
        assert_eq!(s.histogram["input"], 2);
        assert_eq!(format!("{s}"), "i/o=2/1 size=1 depth=1 inv=1");
    }
}
