//! Topological utilities over [`Network`]s.

use crate::{GateId, GateKind, Network};
use std::collections::HashMap;

impl Network {
    /// Logic level of every gate: inputs and constants are level 0, any
    /// other gate is one more than its deepest fanin. Buffers and inverters
    /// are transparent (level of their fanin), matching how synthesis tools
    /// count logic depth on inverter-free representations.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.num_gates()];
        for (id, gate) in self.iter() {
            levels[id.index()] = match gate.kind() {
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
                GateKind::Buf | GateKind::Not => levels[gate.fanins()[0].index()],
                _ => {
                    gate.fanins()
                        .iter()
                        .map(|f| levels[f.index()])
                        .max()
                        .unwrap_or(0)
                        + 1
                }
            };
        }
        levels
    }

    /// Depth of the network: the maximum level over all primary outputs.
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs()
            .iter()
            .map(|&(_, g)| levels[g.index()])
            .max()
            .unwrap_or(0)
    }

    /// Number of logic gates (excluding inputs, constants and buffers;
    /// inverters are counted separately by [`Network::num_inverters`]).
    pub fn num_logic_gates(&self) -> usize {
        self.iter()
            .filter(|(_, g)| g.kind().is_logic() && g.kind() != GateKind::Not)
            .count()
    }

    /// Number of inverters.
    pub fn num_inverters(&self) -> usize {
        self.iter()
            .filter(|(_, g)| g.kind() == GateKind::Not)
            .count()
    }

    /// Marks every gate reachable from the outputs (transitive fanin).
    pub fn reachable(&self) -> Vec<bool> {
        let mut mark = vec![false; self.num_gates()];
        let mut stack: Vec<GateId> = self.outputs().iter().map(|&(_, g)| g).collect();
        while let Some(id) = stack.pop() {
            if mark[id.index()] {
                continue;
            }
            mark[id.index()] = true;
            stack.extend(self.gate(id).fanins().iter().copied());
        }
        mark
    }

    /// Returns a copy of the network with unreachable gates removed and
    /// buffers bypassed. Primary inputs are always retained (a circuit
    /// keeps its interface even if an input is unused).
    pub fn sweep(&self) -> Network {
        let mark = self.reachable();
        let mut out = Network::new(self.name().to_string());
        let mut map: HashMap<GateId, GateId> = HashMap::new();
        for (id, gate) in self.iter() {
            match gate.kind() {
                GateKind::Input => {
                    let pos = self
                        .inputs()
                        .iter()
                        .position(|&i| i == id)
                        .expect("input gate listed in inputs");
                    let new = out.add_input(self.input_name(pos).to_string());
                    map.insert(id, new);
                }
                _ if !mark[id.index()] => {}
                GateKind::Buf => {
                    let src = map[&gate.fanins()[0]];
                    map.insert(id, src);
                }
                kind => {
                    let fanins = gate.fanins().iter().map(|f| map[f]).collect();
                    let new = out.add_gate(kind, fanins);
                    map.insert(id, new);
                }
            }
        }
        for (name, g) in self.outputs() {
            out.set_output(name.clone(), map[g]);
        }
        out
    }

    /// Fanout count of every gate (number of gate fanins referencing it,
    /// plus one per primary output driven).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_gates()];
        for (_, gate) in self.iter() {
            for f in gate.fanins() {
                counts[f.index()] += 1;
            }
        }
        for &(_, g) in self.outputs() {
            counts[g.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn levels_and_depth() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let n1 = net.and(a, b);
        let n2 = net.not(n1);
        let n3 = net.or(n2, a);
        net.set_output("y", n3);
        let levels = net.levels();
        assert_eq!(levels[n1.index()], 1);
        assert_eq!(levels[n2.index()], 1, "inverters are transparent");
        assert_eq!(levels[n3.index()], 2);
        assert_eq!(net.depth(), 2);
    }

    #[test]
    fn sweep_removes_dangling() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let used = net.and(a, b);
        let _dead = net.xor(a, b);
        net.set_output("y", used);
        let swept = net.sweep();
        assert_eq!(swept.num_logic_gates(), 1);
        assert_eq!(swept.num_inputs(), 2, "interface preserved");
        assert_eq!(swept.eval(&[true, true]), vec![true]);
        assert_eq!(swept.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn sweep_bypasses_buffers() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let buf = net.add_gate(GateKind::Buf, vec![a]);
        let n = net.not(buf);
        net.set_output("y", n);
        let swept = net.sweep();
        assert_eq!(swept.num_inverters(), 1);
        assert_eq!(
            swept
                .iter()
                .filter(|(_, g)| g.kind() == GateKind::Buf)
                .count(),
            0
        );
        assert_eq!(swept.eval(&[false]), vec![true]);
    }

    #[test]
    fn fanout_counting() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let n1 = net.and(a, b);
        let n2 = net.or(n1, a);
        net.set_output("y", n2);
        net.set_output("z", n1);
        let fo = net.fanout_counts();
        assert_eq!(fo[a.index()], 2);
        assert_eq!(fo[n1.index()], 2); // used by n2 and output z
        assert_eq!(fo[n2.index()], 1);
    }
}
