//! A minimal JSON reader/writer for the `mighty serve` wire protocol.
//!
//! The workspace has a zero-third-party-deps invariant, so the
//! line-delimited JSON protocol is parsed by this small
//! recursive-descent parser instead of `serde`. It implements the full JSON value
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null) with a nesting-depth cap, which is all a one-request-per-line
//! protocol needs; serialization goes through [`escape_str`] plus the
//! hand-rolled writers in the serve module, matching the style
//! `mig_bench::to_json` already uses for the trajectory file.

use std::collections::BTreeMap;

/// Maximum nesting depth accepted by the parser — far above anything
/// the protocol produces, low enough that a hostile request cannot
/// overflow the stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object keys are kept in a `BTreeMap`: protocol
/// objects are tiny and deterministic iteration keeps everything
/// reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the protocol only uses integers that fit `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error (the protocol is one value per line).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The string value of object member `key`, if present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The numeric value of object member `key`, if present.
    pub fn get_num(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Json::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value of object member `key`, if present.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Object member lookup (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs: the protocol never emits
                            // them, but accept well-formed ones.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or("truncated surrogate")?;
                                    let lo =
                                        std::str::from_utf8(lo).map_err(|_| "bad surrogate")?;
                                    let lo =
                                        u32::from_str_radix(lo, 16).map_err(|_| "bad surrogate")?;
                                    self.pos += 6;
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).ok_or("bad surrogate pair")?
                                } else {
                                    return Err("lone surrogate".into());
                                }
                            } else {
                                char::from_u32(code).ok_or("bad \\u code point")?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err("raw control character in string".into()),
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included). Verilog payloads ride through this, so newlines, quotes
/// and control characters all round-trip.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_requests() {
        let v = Json::parse(
            r#"{"id": 7, "netlist": "module m;\nendmodule\n", "flow": "size*2; rewrite", "effort": 2, "progress": true}"#,
        )
        .unwrap();
        assert_eq!(v.get_num("id"), Some(7.0));
        assert_eq!(v.get_str("flow"), Some("size*2; rewrite"));
        assert_eq!(v.get_str("netlist"), Some("module m;\nendmodule\n"));
        assert_eq!(v.get_bool("progress"), Some(true));
        assert_eq!(v.get_str("missing"), None);
    }

    #[test]
    fn parses_scalars_arrays_and_nesting() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e1").unwrap(), Json::Num(-125.0));
        let v = Json::parse(r#"[1, [2, {"a": []}], "x"]"#).unwrap();
        match &v {
            Json::Arr(items) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash \u{1} end";
        let wire = format!("\"{}\"", escape_str(nasty));
        assert_eq!(Json::parse(&wire).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9""#).unwrap(),
            Json::Str("Aé".to_string())
        );
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".to_string())
        );
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "[1,",
            "\"unterminated",
            "tru",
            "01a",
            "{} trailing",
            "\"\\q\"",
            "\"\\ud800\"",
            "nul",
            "--3",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
        // Depth bomb: must error, not blow the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }
}
