//! # MIGhty — the end-to-end driver of the MIG suite
//!
//! This crate reproduces the role of the paper's *MIGhty* tool: a
//! command-line front end that takes a circuit (a generated MCNC stand-in
//! from [`mig_benchgen`] or a structural-Verilog file), imports it into a
//! Majority-Inverter Graph, runs an optimization *flow* — a script of
//! [`mig_core`] passes sequenced by the composable pass manager
//! ([`mig_core::Flow`]) — verifies the result against the input with
//! [`mig_sim`] equivalence checking, and reports per-pass size, depth,
//! switching-activity and wall-time numbers.
//!
//! The legacy cost targets (`size`, `depth`, `activity`, `all` — the
//! paper's Algorithm 1, Algorithm 2, §IV-C and Table I) are compiled to
//! canned flow scripts by [`flow_for_target`]; `mighty opt --flow`
//! exposes arbitrary scripts (e.g. `"size*2; rewrite; depth_rewrite;
//! activity"`). The binary is `mighty`; the library half exposes the
//! same pipeline as plain functions ([`load_input`], [`run_opt`],
//! [`run_flow`], [`render_report`]) so integration tests drive the exact
//! code path the CLI does. The timed suite sweep behind `mighty bench`
//! lives in [`mig_bench`], which writes the `mig-bench/v8`
//! perf-trajectory JSON (`BENCH_opt.json`) with every optimized result
//! technology-mapped onto both stock `mig_techmap` libraries. The
//! `mighty map` half ([`run_map`], [`render_map_report`]) maps a
//! circuit onto a [`CellLibrary`] — optionally after a flow that
//! carries the library as its [`mig_core::TechModel`], so `map_area` /
//! `map_delay` steps minimize measured mapped cost.
//!
//! ```
//! use mig_mighty::{load_input, run_opt, OptTarget};
//!
//! let net = load_input("my_adder").unwrap();
//! let outcome = run_opt(&net, OptTarget::Depth, 2, 16, false, 1);
//! assert!(outcome.mig_equiv && outcome.net_equiv);
//! assert!(outcome.after.depth <= outcome.before.depth);
//! assert_eq!(outcome.flow, "depth");
//! ```

pub mod json;
pub mod serve;

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use mig_core::{Budget, Flow, MappedMetrics, Mig, OptContext, SpotCheck};
use mig_netlist::{parse_verilog, write_verilog, Network};
use mig_techmap::{map_mig, CellLibrary, MapConfig, MappedDesign, TechMapper, KNOWN_LIBRARIES};

/// Which cost function the legacy `opt` pipeline minimizes. Each target
/// compiles to a canned flow script (see [`flow_for_target`]); the
/// `--flow` switch bypasses targets entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptTarget {
    /// Algorithm 1: node count.
    Size,
    /// Algorithm 2: logic depth.
    Depth,
    /// §IV-C: switching activity under uniform input probabilities.
    Activity,
    /// The paper's Table I flow: size, then depth, then activity.
    All,
}

impl OptTarget {
    /// Parses a target name as given on the command line.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "size" => Ok(Self::Size),
            "depth" => Ok(Self::Depth),
            "activity" => Ok(Self::Activity),
            "all" => Ok(Self::All),
            other => Err(format!(
                "unknown target `{other}` (expected size, depth, activity or all)"
            )),
        }
    }
}

impl fmt::Display for OptTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Size => "size",
            Self::Depth => "depth",
            Self::Activity => "activity",
            Self::All => "all",
        })
    }
}

/// Compiles a legacy [`OptTarget`] (plus the `--rewrite` switch) to the
/// canned flow script the old if-chain pipeline ran: the Boolean
/// rewriting pass slots in after the size stage, or first for a
/// depth/activity-only flow. The default target/rewrite combinations
/// produce bit-identical results to the pre-flow `run_opt`.
pub fn flow_for_target(target: OptTarget, rewrite: bool) -> &'static str {
    match (target, rewrite) {
        (OptTarget::Size, false) => "size",
        (OptTarget::Size, true) => "size; rewrite",
        (OptTarget::Depth, false) => "depth",
        (OptTarget::Depth, true) => "rewrite; depth",
        (OptTarget::Activity, false) => "activity",
        (OptTarget::Activity, true) => "rewrite; activity",
        (OptTarget::All, false) => "size; depth; activity",
        (OptTarget::All, true) => "size; rewrite; depth; activity",
    }
}

/// The three paper metrics of one MIG, captured at a pipeline stage
/// (the pass manager's ledger metrics, re-exported under this crate's
/// historic name).
pub use mig_core::PassMetrics as Snapshot;

/// One executed pass in an [`OptOutcome`] — exactly the pass manager's
/// ledger entry (name, wall time, metrics on both sides). The
/// import-normalizing `"cleanup"` stage appears only when it changed
/// the graph.
pub use mig_core::PassReport as StageReport;

/// Resilience knobs of one driver run, surfaced by the CLI as
/// `--timeout-ms`, `--pass-timeout-ms`, `--max-nodes` and `--selfcheck`.
/// The default is fully permissive (no budget, no spot check) — exactly
/// the historical behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Wall-clock budget for the whole flow, in milliseconds; passes
    /// whose turn comes after the deadline are skipped (ledgered, not
    /// lost).
    pub timeout_ms: Option<u64>,
    /// Per-pass timeout in milliseconds; an overrunning pass is rolled
    /// back to its pre-pass checkpoint.
    pub pass_timeout_ms: Option<u64>,
    /// Node-count cap; a pass whose output grows past it is rolled
    /// back.
    pub max_nodes: Option<usize>,
    /// Run the network-level simulation spot check ([`NetSpotCheck`])
    /// after every pass, rolling back any pass whose result fails it.
    pub selfcheck: bool,
}

impl RunOptions {
    fn budget(&self) -> Budget {
        Budget {
            total_ms: self.timeout_ms,
            pass_ms: self.pass_timeout_ms,
            max_nodes: self.max_nodes,
        }
    }

    /// Installs these options on a pass-manager context.
    fn apply(&self, ctx: &mut OptContext, rounds: usize) {
        ctx.set_budget(self.budget());
        if self.selfcheck {
            ctx.set_spot_check(Box::new(NetSpotCheck { rounds }));
        }
    }
}

/// The `--selfcheck` verifier: a [`mig_core::SpotCheck`] that exports
/// both graphs to networks and compares them with [`mig_sim`]'s
/// batched simulation (exhaustive up to 16 inputs, `rounds` seeded
/// random 64-pattern words above). Heavier than the in-core
/// [`mig_core::SimSpotCheck`], but it exercises the exact
/// export-and-simulate path the final verdicts use.
#[derive(Debug, Clone, Copy)]
pub struct NetSpotCheck {
    /// Random simulation rounds for graphs with more than 16 inputs.
    pub rounds: usize,
}

impl SpotCheck for NetSpotCheck {
    fn name(&self) -> &str {
        "mig_sim"
    }

    fn check(&self, reference: &Mig, candidate: &Mig) -> bool {
        let a = reference.to_network();
        let b = candidate.to_network();
        a.num_inputs() == b.num_inputs()
            && a.num_outputs() == b.num_outputs()
            && mig_sim::equivalent(&a, &b, self.rounds.max(1))
    }
}

/// Everything `mighty opt` produces: per-pass metrics and timings, the
/// equivalence verdicts, and the optimized network ready to be written
/// back out.
#[derive(Debug, Clone)]
pub struct OptOutcome {
    /// Circuit name as recorded in the netlist.
    pub name: String,
    /// The canonical flow script that ran (compiled from a legacy
    /// target, or the `--flow` script as parsed).
    pub flow: String,
    /// Metrics of the imported (unoptimized) MIG.
    pub before: Snapshot,
    /// Metrics after optimization.
    pub after: Snapshot,
    /// One entry per executed pass, in run order, with wall times.
    pub stages: Vec<StageReport>,
    /// MIG-level equivalence of the optimized graph against the import.
    pub mig_equiv: bool,
    /// Network-level equivalence of the exported result against the input
    /// netlist, checked through `mig_sim` (exhaustive ≤ 16 inputs, seeded
    /// random otherwise).
    pub net_equiv: bool,
    /// Optimized circuit exported back to the interchange form.
    pub optimized: Network,
    /// Wall-clock optimization time in milliseconds (excludes I/O).
    pub millis: u128,
    /// Whether any stage ended degraded (skipped, timed out, or rolled
    /// back) — the result is still valid and verified, but some passes
    /// did not contribute.
    pub degraded: bool,
}

/// Resolves a CLI input spec: a known benchmark name from
/// [`mig_benchgen::MCNC_NAMES`] or [`mig_benchgen::LARGE_NAMES`], or a
/// path to a structural-Verilog file.
pub fn load_input(spec: &str) -> Result<Network, String> {
    if let Some(net) = mig_benchgen::generate(spec) {
        return Ok(net);
    }
    let text = std::fs::read_to_string(spec).map_err(|e| {
        format!(
            "`{spec}` is neither a known benchmark ({}) nor a readable file: {e}",
            mig_benchgen::MCNC_NAMES
                .iter()
                .chain(mig_benchgen::LARGE_NAMES.iter())
                .copied()
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    parse_verilog(&text).map_err(|e| format!("{spec}: {e}"))
}

/// Runs the legacy optimize-and-verify pipeline on one network: the
/// target (plus `rewrite`) compiles to its canned flow via
/// [`flow_for_target`] and runs through [`run_flow`] — a thin wrapper,
/// kept because the canned flows are the paper's reference pipelines.
///
/// `effort` scales every pass's iteration budget; `rounds` is the number
/// of 64-pattern blocks used by the random half of the equivalence
/// checks (small input counts are always checked exhaustively). Both are
/// clamped to at least 1 so a zero never silently skips verification.
/// `jobs` is the rewriting engine's evaluate-phase worker count (0 =
/// available parallelism); it affects wall time only, never the result.
pub fn run_opt(
    net: &Network,
    target: OptTarget,
    effort: usize,
    rounds: usize,
    rewrite: bool,
    jobs: usize,
) -> OptOutcome {
    let flow = Flow::parse(flow_for_target(target, rewrite)).expect("canned flows parse");
    run_flow(net, &flow, effort, rounds, jobs)
}

/// Runs an arbitrary optimization flow on one network and verifies the
/// result: import → cleanup → every pass of `flow` through one shared
/// [`OptContext`] → MIG- and netlist-level equivalence checks. The
/// per-pass wall times and metrics land in [`OptOutcome::stages`].
/// Equivalent to [`run_flow_with`] under default [`RunOptions`].
pub fn run_flow(
    net: &Network,
    flow: &Flow,
    effort: usize,
    rounds: usize,
    jobs: usize,
) -> OptOutcome {
    run_flow_with(net, flow, effort, rounds, jobs, &RunOptions::default())
}

/// [`run_flow`] with resilience options: the [`RunOptions`] budget and
/// optional post-pass spot check are installed on the context, so a
/// panicking, overrunning, or wrong-result pass degrades the run
/// ([`OptOutcome::degraded`], per-stage [`StageReport::outcome`])
/// instead of killing it — the returned network is always valid and
/// still goes through both final equivalence checks.
pub fn run_flow_with(
    net: &Network,
    flow: &Flow,
    effort: usize,
    rounds: usize,
    jobs: usize,
    opts: &RunOptions,
) -> OptOutcome {
    let mut ctx = OptContext::with_jobs(jobs);
    run_flow_session(net, flow, effort, rounds, opts, &mut ctx, |_| {})
}

/// [`run_flow_with`] against a caller-owned, reusable [`OptContext`],
/// with a per-stage observer.
///
/// This is the entry point of a `mighty serve` worker: the worker keeps
/// one context alive across jobs (arena pool, rewrite cache and level
/// mirror survive, so later jobs skip the warm-up allocations) and
/// streams every executed stage to the client as it lands in the
/// wall-time ledger. Context reuse never changes results — caches are
/// stamp-keyed and arenas wiped on reuse — so the outcome is
/// bit-identical to a fresh-context [`run_flow_with`] run with the same
/// arguments (the serve test suite asserts this). Any spot check or
/// budget left over from a previous job is cleared/overwritten before
/// the flow runs.
pub fn run_flow_session(
    net: &Network,
    flow: &Flow,
    effort: usize,
    rounds: usize,
    opts: &RunOptions,
    ctx: &mut OptContext,
    mut observe: impl FnMut(&StageReport),
) -> OptOutcome {
    let rounds = rounds.max(1);
    let mig = Mig::from_network(net);
    let before = Snapshot::of(&mig);
    ctx.clear_spot_check();
    ctx.take_ledger();
    opts.apply(ctx, rounds);

    let start = Instant::now();
    let mut stages: Vec<StageReport> = Vec::new();
    let cleanup_start = Instant::now();
    let cleaned = mig.cleanup();
    let cleanup_millis = cleanup_start.elapsed().as_secs_f64() * 1e3;
    if Snapshot::of(&cleaned) != before {
        let report = StageReport {
            pass: "cleanup".to_string(),
            millis: cleanup_millis,
            before,
            after: Snapshot::of(&cleaned),
            outcome: mig_core::PassOutcome::Completed,
            note: None,
        };
        observe(&report);
        stages.push(report);
    }
    let cur = flow.run_observed(cleaned, effort, ctx, &mut observe);
    let millis = start.elapsed().as_millis();
    stages.extend(ctx.take_ledger());

    let after = Snapshot::of(&cur);
    let mig_equiv = cur.equiv(&mig, rounds);
    let optimized = cur.to_network();
    let net_equiv = mig_sim::equivalent(net, &optimized, rounds);
    let degraded = stages.iter().any(|s| s.outcome.degraded());

    OptOutcome {
        name: net.name().to_string(),
        flow: flow.to_string(),
        before,
        after,
        stages,
        mig_equiv,
        net_equiv,
        optimized,
        millis,
        degraded,
    }
}

/// Everything `mighty map` produces: the optimization trail (when a
/// flow ran before mapping), the mapped netlist with its physical
/// metrics, and both equivalence verdicts.
#[derive(Debug, Clone)]
pub struct MapOutcome {
    /// Circuit name as recorded in the netlist.
    pub name: String,
    /// Display name of the cell library mapped onto.
    pub library: String,
    /// The flow script that ran before mapping, if any.
    pub flow: Option<String>,
    /// Metrics of the imported (unoptimized) MIG.
    pub before: Snapshot,
    /// Metrics of the MIG handed to the mapper.
    pub after: Snapshot,
    /// One entry per executed pass, in run order, with wall times.
    pub stages: Vec<StageReport>,
    /// Physical metrics of the mapped design.
    pub mapped: MappedMetrics,
    /// The mapped standard-cell netlist.
    pub design: MappedDesign,
    /// MIG-level equivalence of the pre-mapping graph vs the import.
    pub mig_equiv: bool,
    /// Equivalence of the mapped netlist against the input network,
    /// checked through `mig_sim` on the cell-level export.
    pub map_equiv: bool,
    /// Wall-clock optimize+map time in milliseconds (excludes I/O).
    pub millis: u128,
    /// Whether any stage ended degraded (skipped, timed out, or rolled
    /// back).
    pub degraded: bool,
}

/// Resolves a `--lib` argument to a stock [`CellLibrary`], with an
/// error that lists the available names.
pub fn resolve_library(name: &str) -> Result<CellLibrary, String> {
    CellLibrary::by_name(name).ok_or_else(|| {
        format!(
            "unknown library `{name}` (available: {})",
            KNOWN_LIBRARIES.join(", ")
        )
    })
}

/// Runs `mighty map`: import → cleanup → optional optimization flow
/// (with the target library installed as the flow's [`mig_core::TechModel`],
/// so `map_area`/`map_delay` steps measure real mapped cost) → cut-based
/// technology mapping → equivalence checks at both levels.
pub fn run_map(
    net: &Network,
    library: &str,
    flow: Option<&Flow>,
    effort: usize,
    rounds: usize,
    jobs: usize,
) -> Result<MapOutcome, String> {
    run_map_with(
        net,
        library,
        flow,
        effort,
        rounds,
        jobs,
        &RunOptions::default(),
    )
}

/// [`run_map`] with resilience options (see [`run_flow_with`]). The
/// final mapping itself runs behind a panic boundary: a crashing mapper
/// yields an `Err` describing the fault, never a process abort.
pub fn run_map_with(
    net: &Network,
    library: &str,
    flow: Option<&Flow>,
    effort: usize,
    rounds: usize,
    jobs: usize,
    opts: &RunOptions,
) -> Result<MapOutcome, String> {
    let lib = resolve_library(library)?;
    let rounds = rounds.max(1);
    let mig = Mig::from_network(net);
    let before = Snapshot::of(&mig);
    let mut ctx = OptContext::with_jobs(jobs);
    ctx.set_tech(Box::new(TechMapper::new(lib.clone())));
    opts.apply(&mut ctx, rounds);

    let start = Instant::now();
    let mut stages: Vec<StageReport> = Vec::new();
    let cleanup_start = Instant::now();
    let cleaned = mig.cleanup();
    let cleanup_millis = cleanup_start.elapsed().as_secs_f64() * 1e3;
    if Snapshot::of(&cleaned) != before {
        stages.push(StageReport {
            pass: "cleanup".to_string(),
            millis: cleanup_millis,
            before,
            after: Snapshot::of(&cleaned),
            outcome: mig_core::PassOutcome::Completed,
            note: None,
        });
    }
    let cur = match flow {
        Some(f) => f.run(cleaned, effort, &mut ctx),
        None => cleaned,
    };
    stages.extend(ctx.take_ledger());
    let design = catch_unwind(AssertUnwindSafe(|| {
        map_mig(&cur, &lib, &MapConfig::default())
    }))
    .map_err(|_| format!("technology mapping onto `{}` panicked", lib.name))?;
    let millis = start.elapsed().as_millis();

    let mapped = MappedMetrics {
        area: design.area(),
        delay: design.delay(),
        power: design.power(),
        cells: design.num_cells(),
    };
    let after = Snapshot::of(&cur);
    let mig_equiv = cur.equiv(&mig, rounds);
    let map_equiv = mig_sim::equivalent(net, &design.to_network(), rounds);
    let degraded = stages.iter().any(|s| s.outcome.degraded());
    Ok(MapOutcome {
        name: net.name().to_string(),
        library: lib.name.to_string(),
        flow: flow.map(Flow::to_string),
        before,
        after,
        stages,
        mapped,
        design,
        mig_equiv,
        map_equiv,
        millis,
        degraded,
    })
}

fn pct(before: f64, after: f64) -> String {
    if before == 0.0 {
        return "—".to_string();
    }
    format!("{:+.1}%", (after - before) / before * 100.0)
}

/// The paper cross-reference printed next to a pass name in the report.
fn pass_label(pass: &str) -> String {
    match pass {
        "size" => "size (Alg. 1)".to_string(),
        "depth" => "depth (Alg. 2)".to_string(),
        "activity" => "activity (§IV-C)".to_string(),
        "rewrite" => "rewrite (Boolean)".to_string(),
        "depth_rewrite" => "depth_rewrite (Boolean)".to_string(),
        "esat" => "esat (e-graph)".to_string(),
        "depth_esat" => "depth_esat (e-graph)".to_string(),
        "map_area" => "map_area (mapped §V)".to_string(),
        "map_delay" => "map_delay (mapped §V)".to_string(),
        other => other.to_string(),
    }
}

/// Renders the human-readable report the CLI prints: one row per
/// executed pass with its node/depth deltas against the previous stage
/// and its own wall time, then the totals against the import.
pub fn render_report(o: &OptOutcome) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "=== {} · flow: {} · {} ms ===\n",
        o.name, o.flow, o.millis
    ));
    s.push_str(&format!(
        "{:<24} {:>8} {:>7} {:>7} {:>7} {:>12} {:>9}\n",
        "stage", "size", "Δsize", "depth", "Δdepth", "activity", "ms"
    ));
    s.push_str(&format!(
        "{:<24} {:>8} {:>7} {:>7} {:>7} {:>12.3} {:>9}\n",
        "import", o.before.size, "—", o.before.depth, "—", o.before.activity, "—"
    ));
    for stage in &o.stages {
        let dsize = stage.after.size as i64 - stage.before.size as i64;
        let ddepth = i64::from(stage.after.depth) - i64::from(stage.before.depth);
        s.push_str(&format!(
            "{:<24} {:>8} {:>+7} {:>7} {:>+7} {:>12.3} {:>9.1}{}\n",
            pass_label(&stage.pass),
            stage.after.size,
            dsize,
            stage.after.depth,
            ddepth,
            stage.after.activity,
            stage.millis,
            outcome_marker(stage),
        ));
    }
    s.push_str(&format!(
        "{:<24} {:>8} {:>7} {:>7} {:>7} {:>12}\n",
        "Δ vs import",
        pct(o.before.size as f64, o.after.size as f64),
        "",
        pct(o.before.depth as f64, o.after.depth as f64),
        "",
        pct(o.before.activity, o.after.activity),
    ));
    push_degraded_summary(&mut s, &o.stages);
    s.push_str(&format!(
        "equivalence: MIG {} · netlist (mig_sim) {}\n",
        if o.mig_equiv { "PASS" } else { "FAIL" },
        if o.net_equiv { "PASS" } else { "FAIL" },
    ));
    s
}

/// The per-stage degraded-outcome marker (` [rolled_back]` etc.; empty
/// for clean completions).
fn outcome_marker(stage: &StageReport) -> String {
    if stage.outcome.degraded() {
        format!("  [{}]", stage.outcome)
    } else {
        String::new()
    }
}

/// Appends the `degraded:` summary block — one line per degraded stage
/// with its ledger note — or nothing when every stage completed.
fn push_degraded_summary(s: &mut String, stages: &[StageReport]) {
    let degraded: Vec<&StageReport> = stages.iter().filter(|st| st.outcome.degraded()).collect();
    if degraded.is_empty() {
        return;
    }
    s.push_str(&format!(
        "degraded: {} of {} stages did not contribute\n",
        degraded.len(),
        stages.len()
    ));
    for st in degraded {
        s.push_str(&format!(
            "  {} [{}]: {}\n",
            st.pass,
            st.outcome,
            st.note.as_deref().unwrap_or("no detail recorded"),
        ));
    }
}

/// Renders the `mighty map` report: the optimization trail (when a
/// flow ran), then the mapped area/delay/power line and the verdicts.
pub fn render_map_report(o: &MapOutcome) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "=== {} · lib: {} · flow: {} · {} ms ===\n",
        o.name,
        o.library,
        o.flow.as_deref().unwrap_or("(none)"),
        o.millis
    ));
    if !o.stages.is_empty() {
        s.push_str(&format!(
            "{:<24} {:>8} {:>7} {:>12} {:>9}\n",
            "stage", "size", "depth", "activity", "ms"
        ));
        s.push_str(&format!(
            "{:<24} {:>8} {:>7} {:>12.3} {:>9}\n",
            "import", o.before.size, o.before.depth, o.before.activity, "—"
        ));
        for stage in &o.stages {
            s.push_str(&format!(
                "{:<24} {:>8} {:>7} {:>12.3} {:>9.1}{}\n",
                pass_label(&stage.pass),
                stage.after.size,
                stage.after.depth,
                stage.after.activity,
                stage.millis,
                outcome_marker(stage),
            ));
        }
    }
    push_degraded_summary(&mut s, &o.stages);
    s.push_str(&format!(
        "mapped:  {} cells · area {:.3} µm² · delay {:.4} ns · power {:.3} µW\n",
        o.mapped.cells, o.mapped.area, o.mapped.delay, o.mapped.power
    ));
    s.push_str(&format!(
        "equivalence: MIG {} · mapped netlist (mig_sim) {}\n",
        if o.mig_equiv { "PASS" } else { "FAIL" },
        if o.map_equiv { "PASS" } else { "FAIL" },
    ));
    s
}

/// Writes `net` as structural Verilog to `path`, or stdout for `-`.
pub fn emit_verilog(net: &Network, path: &str) -> Result<(), String> {
    let text = write_verilog(net);
    if path == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(path, text).map_err(|e| format!("writing `{path}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_input_resolves_benchmarks_and_rejects_garbage() {
        let net = load_input("alu4").expect("benchmark name resolves");
        assert_eq!(net.num_inputs(), 14);
        let err = load_input("no_such_benchmark_or_file").unwrap_err();
        assert!(err.contains("neither a known benchmark"));
    }

    #[test]
    fn opt_all_improves_and_stays_equivalent() {
        let net = load_input("my_adder").unwrap();
        let o = run_opt(&net, OptTarget::All, 2, 16, false, 1);
        assert!(o.mig_equiv, "MIG-level equivalence must hold");
        assert!(o.net_equiv, "network-level equivalence must hold");
        assert!(o.after.size <= o.before.size);
        assert!(o.after.depth <= o.before.depth);
        assert_eq!(o.flow, "size; depth; activity");
        let passes: Vec<&str> = o.stages.iter().map(|s| s.pass.as_str()).collect();
        for expected in ["size", "depth", "activity"] {
            assert!(passes.contains(&expected), "missing pass {expected}");
        }
    }

    #[test]
    fn rewrite_flow_adds_a_stage_and_stays_equivalent() {
        let net = load_input("my_adder").unwrap();
        let plain = run_opt(&net, OptTarget::Size, 1, 16, false, 1);
        let o = run_opt(&net, OptTarget::Size, 1, 16, true, 1);
        assert!(o.mig_equiv && o.net_equiv);
        assert_eq!(o.flow, "size; rewrite");
        let passes: Vec<&str> = o.stages.iter().map(|s| s.pass.as_str()).collect();
        assert!(passes.contains(&"rewrite"), "{passes:?}");
        assert!(o.after.size <= plain.after.size, "rewrite must not grow");
    }

    #[test]
    fn run_flow_matches_the_compiled_target() {
        // The thin-wrapper contract: run_opt(target) and run_flow on the
        // canned script must produce the same stages and metrics.
        let net = load_input("count").unwrap();
        let via_target = run_opt(&net, OptTarget::All, 1, 8, true, 1);
        let flow = Flow::parse(flow_for_target(OptTarget::All, true)).unwrap();
        let via_flow = run_flow(&net, &flow, 1, 8, 1);
        assert_eq!(via_target.flow, via_flow.flow);
        assert_eq!(via_target.after.size, via_flow.after.size);
        assert_eq!(via_target.after.depth, via_flow.after.depth);
        assert_eq!(via_target.stages.len(), via_flow.stages.len());
        for (a, b) in via_target.stages.iter().zip(&via_flow.stages) {
            assert_eq!(a.pass, b.pass);
            assert_eq!(a.after.size, b.after.size);
            assert_eq!(a.after.depth, b.after.depth);
        }
    }

    #[test]
    fn custom_flows_run_and_verify() {
        let net = load_input("my_adder").unwrap();
        let flow = Flow::parse("rewrite; depth_rewrite; size*2").unwrap();
        let o = run_flow(&net, &flow, 1, 8, 1);
        assert!(o.mig_equiv && o.net_equiv);
        assert_eq!(o.flow, "rewrite; depth_rewrite; size*2");
        let passes: Vec<&str> = o.stages.iter().map(|s| s.pass.as_str()).collect();
        assert!(passes.ends_with(&["rewrite", "depth_rewrite", "size", "size"]));
    }

    #[test]
    fn report_mentions_every_metric_verdict_and_per_pass_time() {
        let net = load_input("my_adder").unwrap();
        let o = run_opt(&net, OptTarget::Size, 1, 8, false, 1);
        let r = render_report(&o);
        for needle in [
            "size",
            "Δsize",
            "depth",
            "Δdepth",
            "activity",
            "ms",
            "flow: size",
            "size (Alg. 1)",
            "PASS",
        ] {
            assert!(r.contains(needle), "missing `{needle}` in:\n{r}");
        }
    }

    #[test]
    fn target_parsing_round_trips() {
        for t in [
            OptTarget::Size,
            OptTarget::Depth,
            OptTarget::Activity,
            OptTarget::All,
        ] {
            assert_eq!(OptTarget::parse(&t.to_string()).unwrap(), t);
        }
        assert!(OptTarget::parse("speed").is_err());
    }

    #[test]
    fn canned_flows_all_parse() {
        for target in [
            OptTarget::Size,
            OptTarget::Depth,
            OptTarget::Activity,
            OptTarget::All,
        ] {
            for rewrite in [false, true] {
                let script = flow_for_target(target, rewrite);
                let flow = Flow::parse(script).expect(script);
                assert_eq!(flow.to_string(), script, "canned scripts are canonical");
            }
        }
    }
}
