//! # MIGhty — the end-to-end driver of the MIG suite
//!
//! This crate reproduces the role of the paper's *MIGhty* tool: a
//! command-line front end that takes a circuit (a generated MCNC stand-in
//! from [`mig_benchgen`] or a structural-Verilog file), imports it into a
//! Majority-Inverter Graph, runs the paper's optimizers
//! ([`mig_core::optimize_size`] — Algorithm 1, [`mig_core::optimize_depth`]
//! — Algorithm 2, [`mig_core::optimize_activity`] — §IV-C), verifies the
//! result against the input with [`mig_sim`] equivalence checking, and
//! reports before/after size, depth and switching-activity statistics.
//!
//! The binary is `mighty`; the library half exposes the same pipeline as
//! plain functions ([`load_input`], [`run_opt`], [`render_report`]) so
//! integration tests drive the exact code path the CLI does. The timed
//! suite sweep behind `mighty bench` lives in [`mig_bench`], which writes
//! the `mig-bench/v3` perf-trajectory JSON (`BENCH_opt.json`).
//!
//! ```
//! use mig_mighty::{load_input, run_opt, OptTarget};
//!
//! let net = load_input("my_adder").unwrap();
//! let outcome = run_opt(&net, OptTarget::Depth, 2, 16, false, 1);
//! assert!(outcome.mig_equiv && outcome.net_equiv);
//! assert!(outcome.after.depth <= outcome.before.depth);
//! ```

use std::fmt;
use std::time::Instant;

use mig_core::{
    optimize_activity, optimize_depth, optimize_rewrite, optimize_size, ActivityOptConfig,
    DepthOptConfig, Mig, RewriteConfig, SizeOptConfig,
};
use mig_netlist::{parse_verilog, write_verilog, Network};

/// Which cost function the `opt` pipeline minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptTarget {
    /// Algorithm 1: node count.
    Size,
    /// Algorithm 2: logic depth.
    Depth,
    /// §IV-C: switching activity under uniform input probabilities.
    Activity,
    /// The paper's Table I flow: size, then depth, then activity.
    All,
}

impl OptTarget {
    /// Parses a target name as given on the command line.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "size" => Ok(Self::Size),
            "depth" => Ok(Self::Depth),
            "activity" => Ok(Self::Activity),
            "all" => Ok(Self::All),
            other => Err(format!(
                "unknown target `{other}` (expected size, depth, activity or all)"
            )),
        }
    }
}

impl fmt::Display for OptTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Size => "size",
            Self::Depth => "depth",
            Self::Activity => "activity",
            Self::All => "all",
        })
    }
}

/// The three paper metrics of one MIG, captured at a pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Majority-node count (paper "Size").
    pub size: usize,
    /// Logic levels (paper "Depth"); inverters are free edge attributes.
    pub depth: u32,
    /// `Σ p(1−p)` under uniform inputs (paper "Activity").
    pub activity: f64,
}

impl Snapshot {
    /// Captures size/depth/activity of `mig`.
    pub fn of(mig: &Mig) -> Self {
        Snapshot {
            size: mig.size(),
            depth: mig.depth(),
            activity: mig.switching_activity_uniform(),
        }
    }
}

/// Everything `mighty opt` produces: per-stage metrics, the equivalence
/// verdicts, and the optimized network ready to be written back out.
#[derive(Debug, Clone)]
pub struct OptOutcome {
    /// Circuit name as recorded in the netlist.
    pub name: String,
    /// The cost function that was optimized.
    pub target: OptTarget,
    /// Metrics of the imported (unoptimized) MIG.
    pub before: Snapshot,
    /// Metrics after optimization.
    pub after: Snapshot,
    /// `(stage label, metrics after that stage)`, in run order.
    pub stages: Vec<(&'static str, Snapshot)>,
    /// MIG-level equivalence of the optimized graph against the import.
    pub mig_equiv: bool,
    /// Network-level equivalence of the exported result against the input
    /// netlist, checked through `mig_sim` (exhaustive ≤ 16 inputs, seeded
    /// random otherwise).
    pub net_equiv: bool,
    /// Optimized circuit exported back to the interchange form.
    pub optimized: Network,
    /// Wall-clock optimization time in milliseconds (excludes I/O).
    pub millis: u128,
}

/// Resolves a CLI input spec: a known benchmark name from
/// [`mig_benchgen::MCNC_NAMES`], or a path to a structural-Verilog file.
pub fn load_input(spec: &str) -> Result<Network, String> {
    if let Some(net) = mig_benchgen::generate(spec) {
        return Ok(net);
    }
    let text = std::fs::read_to_string(spec).map_err(|e| {
        format!(
            "`{spec}` is neither a known benchmark ({}) nor a readable file: {e}",
            mig_benchgen::MCNC_NAMES.join(", ")
        )
    })?;
    parse_verilog(&text).map_err(|e| format!("{spec}: {e}"))
}

/// Runs the full optimize-and-verify pipeline on one network.
///
/// `effort` scales every optimizer's iteration budget; `rounds` is the
/// number of 64-pattern blocks used by the random half of the equivalence
/// checks (small input counts are always checked exhaustively). Both are
/// clamped to at least 1 so a zero never silently skips verification.
/// With `rewrite` set, the cut-based Boolean rewriting pass
/// ([`mig_core::optimize_rewrite`]) runs after the size stage (or first,
/// for a depth/activity-only flow) — the `mighty opt --rewrite` switch.
/// `jobs` is the rewriting engine's evaluate-phase worker count (0 =
/// available parallelism); it affects wall time only, never the result.
pub fn run_opt(
    net: &Network,
    target: OptTarget,
    effort: usize,
    rounds: usize,
    rewrite: bool,
    jobs: usize,
) -> OptOutcome {
    let rounds = rounds.max(1);
    let mig = Mig::from_network(net);
    let before = Snapshot::of(&mig);
    let uniform = vec![0.5; mig.num_inputs()];

    let start = Instant::now();
    let mut stages: Vec<(&'static str, Snapshot)> = Vec::new();
    let mut cur = mig.cleanup();
    if Snapshot::of(&cur) != before {
        stages.push(("cleanup", Snapshot::of(&cur)));
    }
    if matches!(target, OptTarget::Size | OptTarget::All) {
        cur = optimize_size(
            &cur,
            &SizeOptConfig {
                effort: effort.max(1),
                ..SizeOptConfig::default()
            },
        );
        stages.push(("size (Alg. 1)", Snapshot::of(&cur)));
    }
    if rewrite {
        cur = optimize_rewrite(
            &cur,
            &RewriteConfig {
                effort: effort.max(1),
                jobs,
                ..RewriteConfig::default()
            },
        );
        stages.push(("rewrite (Boolean)", Snapshot::of(&cur)));
    }
    if matches!(target, OptTarget::Depth | OptTarget::All) {
        cur = optimize_depth(
            &cur,
            &DepthOptConfig {
                effort: effort.max(1),
                ..DepthOptConfig::default()
            },
        );
        stages.push(("depth (Alg. 2)", Snapshot::of(&cur)));
    }
    if matches!(target, OptTarget::Activity | OptTarget::All) {
        cur = optimize_activity(
            &cur,
            &uniform,
            &ActivityOptConfig {
                effort: effort.max(1),
                ..ActivityOptConfig::default()
            },
        );
        stages.push(("activity (§IV-C)", Snapshot::of(&cur)));
    }
    let millis = start.elapsed().as_millis();

    let after = Snapshot::of(&cur);
    let mig_equiv = cur.equiv(&mig, rounds);
    let optimized = cur.to_network();
    let net_equiv = mig_sim::equivalent(net, &optimized, rounds);

    OptOutcome {
        name: net.name().to_string(),
        target,
        before,
        after,
        stages,
        mig_equiv,
        net_equiv,
        optimized,
        millis,
    }
}

fn pct(before: f64, after: f64) -> String {
    if before == 0.0 {
        return "—".to_string();
    }
    format!("{:+.1}%", (after - before) / before * 100.0)
}

/// Renders the human-readable before/after report the CLI prints.
pub fn render_report(o: &OptOutcome) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "=== {} · target={} · {} ms ===\n",
        o.name, o.target, o.millis
    ));
    s.push_str(&format!(
        "{:<24} {:>8} {:>8} {:>12}\n",
        "stage", "size", "depth", "activity"
    ));
    s.push_str(&format!(
        "{:<24} {:>8} {:>8} {:>12.3}\n",
        "import", o.before.size, o.before.depth, o.before.activity
    ));
    for (label, snap) in &o.stages {
        s.push_str(&format!(
            "{:<24} {:>8} {:>8} {:>12.3}\n",
            label, snap.size, snap.depth, snap.activity
        ));
    }
    s.push_str(&format!(
        "{:<24} {:>8} {:>8} {:>12}\n",
        "Δ vs import",
        pct(o.before.size as f64, o.after.size as f64),
        pct(o.before.depth as f64, o.after.depth as f64),
        pct(o.before.activity, o.after.activity),
    ));
    s.push_str(&format!(
        "equivalence: MIG {} · netlist (mig_sim) {}\n",
        if o.mig_equiv { "PASS" } else { "FAIL" },
        if o.net_equiv { "PASS" } else { "FAIL" },
    ));
    s
}

/// Writes `net` as structural Verilog to `path`, or stdout for `-`.
pub fn emit_verilog(net: &Network, path: &str) -> Result<(), String> {
    let text = write_verilog(net);
    if path == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(path, text).map_err(|e| format!("writing `{path}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_input_resolves_benchmarks_and_rejects_garbage() {
        let net = load_input("alu4").expect("benchmark name resolves");
        assert_eq!(net.num_inputs(), 14);
        let err = load_input("no_such_benchmark_or_file").unwrap_err();
        assert!(err.contains("neither a known benchmark"));
    }

    #[test]
    fn opt_all_improves_and_stays_equivalent() {
        let net = load_input("my_adder").unwrap();
        let o = run_opt(&net, OptTarget::All, 2, 16, false, 1);
        assert!(o.mig_equiv, "MIG-level equivalence must hold");
        assert!(o.net_equiv, "network-level equivalence must hold");
        assert!(o.after.size <= o.before.size);
        assert!(o.after.depth <= o.before.depth);
        let labels: Vec<&str> = o.stages.iter().map(|(l, _)| *l).collect();
        for expected in ["size (Alg. 1)", "depth (Alg. 2)", "activity (§IV-C)"] {
            assert!(labels.contains(&expected), "missing stage {expected}");
        }
    }

    #[test]
    fn rewrite_flow_adds_a_stage_and_stays_equivalent() {
        let net = load_input("my_adder").unwrap();
        let plain = run_opt(&net, OptTarget::Size, 1, 16, false, 1);
        let o = run_opt(&net, OptTarget::Size, 1, 16, true, 1);
        assert!(o.mig_equiv && o.net_equiv);
        let labels: Vec<&str> = o.stages.iter().map(|(l, _)| *l).collect();
        assert!(labels.contains(&"rewrite (Boolean)"), "{labels:?}");
        assert!(o.after.size <= plain.after.size, "rewrite must not grow");
    }

    #[test]
    fn report_mentions_every_metric_and_verdict() {
        let net = load_input("my_adder").unwrap();
        let o = run_opt(&net, OptTarget::Size, 1, 8, false, 1);
        let r = render_report(&o);
        assert!(r.contains("size"), "{r}");
        assert!(r.contains("depth"), "{r}");
        assert!(r.contains("activity"), "{r}");
        assert!(r.contains("PASS"), "{r}");
    }

    #[test]
    fn target_parsing_round_trips() {
        for t in [
            OptTarget::Size,
            OptTarget::Depth,
            OptTarget::Activity,
            OptTarget::All,
        ] {
            assert_eq!(OptTarget::parse(&t.to_string()).unwrap(), t);
        }
        assert!(OptTarget::parse("speed").is_err());
    }
}
