//! `mighty` — command-line driver for the MIG suite.
//!
//! ```text
//! mighty opt [INPUT] [--target size|depth|activity|all] [--rewrite]
//!            [--flow SCRIPT] [--effort N] [--rounds N] [--jobs N] [-o FILE]
//! mighty map [INPUT] [--lib cmos22|cmos22_no_maj] [--flow SCRIPT]
//!            [--effort N] [--rounds N] [--jobs N] [-o FILE]
//! mighty bench [BENCH]... [--quick] [--flow SCRIPT] [--effort N]
//!              [--rounds N] [--jobs N] [-o FILE]
//! mighty stats [INPUT]...
//! mighty gen BENCH [-o FILE]
//! mighty equiv A B [--rounds N]
//! mighty list
//! ```
//!
//! `INPUT` is a benchmark name from `mighty list` or a structural-Verilog
//! file path; `-o -` writes Verilog to stdout.

use std::process::ExitCode;

use mig_core::Flow;
use mig_mighty::{
    emit_verilog, load_input, render_map_report, render_report, run_flow, run_map, run_opt,
    OptTarget,
};

const USAGE: &str = "mighty — Majority-Inverter Graph optimization driver

USAGE:
    mighty opt [INPUT] [--target size|depth|activity|all] [--rewrite]
               [--flow SCRIPT] [--effort N] [--rounds N] [--jobs N] [-o FILE]
                                        optimize, verify, report (default
                                        INPUT: my_adder, target: all);
                                        --rewrite adds the cut-based Boolean
                                        rewriting pass after the size stage;
                                        --flow runs an arbitrary pass script
                                        instead of a target, e.g.
                                        size*2; rewrite; depth_rewrite
                                        (passes: size, depth, activity,
                                        rewrite, depth_rewrite, map_area,
                                        map_delay; pass*N repeats, a bare
                                        pass* converges);
                                        --jobs sets the rewriting engine's
                                        evaluate-phase worker threads
                                        (default: all cores; results are
                                        identical for any value)
    mighty map [INPUT] [--lib cmos22|cmos22_no_maj] [--flow SCRIPT]
               [--effort N] [--rounds N] [--jobs N] [-o FILE]
                                        technology-map onto a standard-cell
                                        library (default lib: cmos22) and
                                        report mapped area/delay/power; an
                                        optional --flow optimizes first with
                                        the library installed as the flow's
                                        tech model (so map_area/map_delay
                                        steps minimize real mapped cost);
                                        -o writes the mapped netlist as
                                        structural Verilog
    mighty bench [BENCH]... [--quick] [--flow SCRIPT] [--effort N]
                 [--rounds N] [--jobs N] [-o FILE]
                                        timed pass sweep over the MCNC suite
                                        (default flow: size; rewrite; depth;
                                        activity); writes the mig-bench/v5
                                        JSON perf trajectory with mapped
                                        area/delay/power on both stock
                                        libraries (default FILE:
                                        BENCH_opt.json); exits nonzero on any
                                        equivalence failure or size
                                        regression
    mighty stats [INPUT]...             print circuit statistics
    mighty gen BENCH [-o FILE]          emit a generated benchmark as Verilog
    mighty equiv A B [--rounds N]       check two circuits for equivalence
    mighty list                         list the generated MCNC benchmarks
                                        and the stock cell libraries
    mighty help                         show this message

INPUT is a benchmark name (see `mighty list`) or a Verilog file path.";

struct Args {
    positional: Vec<String>,
    target: Option<OptTarget>,
    flow: Option<String>,
    effort: Option<usize>,
    rounds: Option<usize>,
    jobs: Option<usize>,
    output: Option<String>,
    lib: Option<String>,
    quick: bool,
    rewrite: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        target: None,
        flow: None,
        effort: None,
        rounds: None,
        jobs: None,
        output: None,
        lib: None,
        quick: false,
        rewrite: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--target" | "-t" => args.target = Some(OptTarget::parse(&value(a)?)?),
            "--flow" | "-f" => args.flow = Some(value(a)?),
            "--effort" | "-e" => {
                args.effort = Some(value(a)?.parse().map_err(|e| format!("--effort: {e}"))?);
            }
            "--quick" | "-q" => args.quick = true,
            "--rewrite" | "-w" => args.rewrite = true,
            "--jobs" | "-j" => {
                args.jobs = Some(value(a)?.parse().map_err(|e| format!("--jobs: {e}"))?);
            }
            "--rounds" | "-r" => {
                args.rounds = Some(
                    value(a)?
                        .parse::<usize>()
                        .map_err(|e| format!("--rounds: {e}"))?
                        .max(1),
                );
            }
            "--output" | "-o" => args.output = Some(value(a)?),
            "--lib" | "-l" => args.lib = Some(value(a)?),
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(format!("unknown flag `{flag}`"));
            }
            _ => args.positional.push(a.clone()),
        }
    }
    Ok(args)
}

fn cmd_opt(args: &Args) -> Result<bool, String> {
    let spec = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("my_adder");
    let net = load_input(spec)?;
    let outcome = match &args.flow {
        Some(script) => {
            if args.target.is_some() || args.rewrite {
                return Err("--flow replaces --target/--rewrite; pass one or the other".into());
            }
            let flow = Flow::parse(script)?;
            run_flow(
                &net,
                &flow,
                args.effort.unwrap_or(2),
                args.rounds.unwrap_or(32),
                args.jobs.unwrap_or(0),
            )
        }
        None => run_opt(
            &net,
            args.target.unwrap_or(OptTarget::All),
            args.effort.unwrap_or(2),
            args.rounds.unwrap_or(32),
            args.rewrite,
            args.jobs.unwrap_or(0),
        ),
    };
    print!("{}", render_report(&outcome));
    if let Some(path) = &args.output {
        emit_verilog(&outcome.optimized, path)?;
    }
    Ok(outcome.mig_equiv && outcome.net_equiv)
}

fn cmd_map(args: &Args) -> Result<bool, String> {
    let spec = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("my_adder");
    let net = load_input(spec)?;
    let flow = args.flow.as_deref().map(Flow::parse).transpose()?;
    let outcome = run_map(
        &net,
        args.lib.as_deref().unwrap_or("cmos22"),
        flow.as_ref(),
        args.effort.unwrap_or(2),
        args.rounds.unwrap_or(32),
        args.jobs.unwrap_or(0),
    )?;
    print!("{}", render_map_report(&outcome));
    if let Some(path) = &args.output {
        emit_verilog(&outcome.design.to_network(), path)?;
    }
    Ok(outcome.mig_equiv && outcome.map_equiv)
}

fn cmd_bench(args: &Args) -> Result<bool, String> {
    let mut config = if args.quick {
        mig_bench::BenchConfig::quick()
    } else {
        mig_bench::BenchConfig::full()
    };
    for name in &args.positional {
        if !mig_benchgen::MCNC_NAMES.contains(&name.as_str()) {
            return Err(format!("unknown benchmark `{name}` (see `mighty list`)"));
        }
    }
    config.names = args.positional.clone();
    if let Some(script) = &args.flow {
        Flow::parse(script)?; // validate up front for a clean CLI error
        config.flow = Some(script.clone());
    }
    if let Some(effort) = args.effort {
        config.effort = effort;
    }
    if let Some(rounds) = args.rounds {
        config.rounds = rounds;
    }
    if let Some(jobs) = args.jobs {
        config.jobs = jobs;
    }
    let report = mig_bench::run_suite(&config);
    print!("{}", mig_bench::render_table(&report));
    let path = args.output.as_deref().unwrap_or("BENCH_opt.json");
    let json = mig_bench::to_json(&report);
    if path == "-" {
        print!("{json}");
    } else {
        std::fs::write(path, json).map_err(|e| format!("writing `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    Ok(report.all_ok())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let specs: Vec<&str> = if args.positional.is_empty() {
        vec!["my_adder"]
    } else {
        args.positional.iter().map(String::as_str).collect()
    };
    for spec in specs {
        let net = load_input(spec)?;
        println!("{}", net.stats());
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .first()
        .ok_or("gen requires a benchmark name (see `mighty list`)")?;
    let net = mig_benchgen::generate(name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (see `mighty list`)"))?;
    emit_verilog(&net, args.output.as_deref().unwrap_or("-"))
}

fn cmd_equiv(args: &Args) -> Result<bool, String> {
    let [a, b] = args.positional.as_slice() else {
        return Err("equiv requires exactly two inputs".into());
    };
    let na = load_input(a)?;
    let nb = load_input(b)?;
    if na.num_inputs() != nb.num_inputs() || na.num_outputs() != nb.num_outputs() {
        println!("NOT EQUIVALENT (interface mismatch)");
        return Ok(false);
    }
    let ok = mig_sim::equivalent(&na, &nb, args.rounds.unwrap_or(32));
    println!("{}", if ok { "EQUIVALENT" } else { "NOT EQUIVALENT" });
    Ok(ok)
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{USAGE}");
        return Ok(true);
    };
    let args = parse_args(rest)?;
    match cmd.as_str() {
        "opt" => cmd_opt(&args),
        "map" => cmd_map(&args),
        "bench" => cmd_bench(&args),
        "stats" => cmd_stats(&args).map(|()| true),
        "gen" => cmd_gen(&args).map(|()| true),
        "equiv" => cmd_equiv(&args),
        "list" => {
            for name in mig_benchgen::MCNC_NAMES {
                println!("{name}");
            }
            println!("libraries: {}", mig_techmap::KNOWN_LIBRARIES.join(", "));
            Ok(true)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("mighty: {msg}");
            ExitCode::FAILURE
        }
    }
}
