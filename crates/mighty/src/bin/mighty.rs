fn main() {}
