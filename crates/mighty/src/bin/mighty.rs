//! `mighty` — command-line driver for the MIG suite.
//!
//! ```text
//! mighty opt [INPUT] [--target size|depth|activity|all] [--rewrite]
//!            [--flow SCRIPT] [--effort N] [--rounds N] [--jobs N] [-o FILE]
//! mighty map [INPUT] [--lib cmos22|cmos22_no_maj] [--flow SCRIPT]
//!            [--effort N] [--rounds N] [--jobs N] [-o FILE]
//! mighty bench [BENCH]... [--quick] [--flow SCRIPT] [--effort N]
//!              [--rounds N] [--jobs N] [-o FILE]
//! mighty serve [--listen ADDR] [--workers N] [--cache N] [--drain-ms N]
//! mighty serve --bench [--quick] [--clients N] [--workers N]
//!              [--flow SCRIPT] [--effort N] [-o FILE]
//! mighty stats [INPUT]...
//! mighty gen BENCH [-o FILE]
//! mighty equiv A B [--rounds N]
//! mighty list
//! ```
//!
//! `INPUT` is a benchmark name from `mighty list` or a structural-Verilog
//! file path; `-o -` writes Verilog to stdout.

use std::process::ExitCode;

use mig_core::Flow;
use mig_mighty::{
    emit_verilog, load_input, render_map_report, render_report, run_flow_with, run_map_with,
    OptTarget, RunOptions,
};

/// Exit code: success (equivalence verified, no degraded stages).
const EXIT_OK: u8 = 0;
/// Exit code: unexpected failure (I/O, internal error).
const EXIT_FAILURE: u8 = 1;
/// Exit code: usage error — unknown command, bad flag or argument.
const EXIT_USAGE: u8 = 2;
/// Exit code: the input could not be loaded or parsed.
const EXIT_INPUT: u8 = 3;
/// Exit code: an equivalence check failed (or a bench regression).
const EXIT_EQUIV: u8 = 4;
/// Exit code: the run completed degraded — a budget was exceeded or a
/// pass was rolled back/skipped; the emitted netlist is still valid and
/// equivalence-verified.
const EXIT_DEGRADED: u8 = 5;

/// An error annotated with the exit code it should produce.
struct Failure {
    code: u8,
    message: String,
}

impl Failure {
    fn usage(message: impl Into<String>) -> Self {
        Failure {
            code: EXIT_USAGE,
            message: message.into(),
        }
    }

    fn input(message: impl Into<String>) -> Self {
        Failure {
            code: EXIT_INPUT,
            message: message.into(),
        }
    }

    fn generic(message: impl Into<String>) -> Self {
        Failure {
            code: EXIT_FAILURE,
            message: message.into(),
        }
    }
}

const USAGE: &str = "mighty — Majority-Inverter Graph optimization driver

USAGE:
    mighty opt [INPUT] [--target size|depth|activity|all] [--rewrite]
               [--flow SCRIPT] [--effort N] [--rounds N] [--jobs N] [-o FILE]
                                        optimize, verify, report (default
                                        INPUT: my_adder, target: all);
                                        --rewrite adds the cut-based Boolean
                                        rewriting pass after the size stage;
                                        --flow runs an arbitrary pass script
                                        instead of a target, e.g.
                                        size*2; rewrite; depth_rewrite
                                        (passes: size, depth, activity,
                                        rewrite, depth_rewrite, esat,
                                        depth_esat, map_area, map_delay;
                                        pass*N repeats,
                                        a bare pass* converges);
                                        --jobs sets the rewriting engine's
                                        evaluate-phase worker threads
                                        (default: all cores; results are
                                        identical for any value)
    mighty map [INPUT] [--lib cmos22|cmos22_no_maj] [--flow SCRIPT]
               [--effort N] [--rounds N] [--jobs N] [-o FILE]
                                        technology-map onto a standard-cell
                                        library (default lib: cmos22) and
                                        report mapped area/delay/power; an
                                        optional --flow optimizes first with
                                        the library installed as the flow's
                                        tech model (so map_area/map_delay
                                        steps minimize real mapped cost);
                                        -o writes the mapped netlist as
                                        structural Verilog
    mighty bench [BENCH]... [--suite mcnc|large|all] [--quick]
                 [--flow SCRIPT] [--effort N]
                 [--rounds N] [--jobs N] [-o FILE]
                                        timed pass sweep over the selected
                                        suite (default: mcnc; the large tier
                                        runs 100k-1M-node circuits through
                                        size*2; rewrite; depth_rewrite; depth
                                        and records memory footprint plus
                                        level-maintenance counters; --quick
                                        keeps only mul_100k of the tier);
                                        writes the mig-bench/v8 JSON perf
                                        trajectory with mapped
                                        area/delay/power on both stock
                                        libraries (default FILE:
                                        BENCH_opt.json); exits nonzero on any
                                        equivalence failure or size
                                        regression
    mighty serve [--listen ADDR] [--workers N] [--cache N] [--drain-ms N]
                                        long-running optimization service:
                                        line-delimited JSON jobs over TCP
                                        (default ADDR 127.0.0.1:7171, port 0
                                        picks a free one; default workers:
                                        all cores), executed on a fixed
                                        worker pool with persistent contexts
                                        and a bounded LRU result cache
                                        (--cache entries, 0 disables);
                                        SIGTERM/ctrl-c or {\"op\":\"shutdown\"}
                                        drains in-flight jobs within
                                        --drain-ms and exits 0
    mighty serve --bench [--quick] [--clients N] [--workers N]
                 [--flow SCRIPT] [--effort N] [-o FILE]
                                        load generator: sweeps the worker
                                        pool over {1, 2, 4} (or just
                                        --workers N), measures jobs/sec and
                                        p50/p95/p99 latency, verifies every
                                        response and checks it bit-identical
                                        to a local `mighty opt`; splices the
                                        sweep into FILE's serve block
                                        (default: BENCH_opt.json)
    mighty stats [INPUT]...             print circuit statistics
    mighty gen BENCH [-o FILE]          emit a generated benchmark as Verilog
    mighty gen --list                   list every generatable circuit (MCNC
                                        and large tier)
    mighty equiv A B [--rounds N]       check two circuits for equivalence
    mighty list                         list the generated MCNC benchmarks,
                                        the large tier and the stock cell
                                        libraries
    mighty help                         show this message

RESILIENCE (opt, map, bench):
    --timeout-ms N                      wall-clock budget for the whole flow;
                                        passes whose turn comes after the
                                        deadline are skipped (recorded in the
                                        ledger, run still completes)
    --pass-timeout-ms N                 per-pass timeout; an overrunning pass
                                        is rolled back to its checkpoint
    --max-nodes N                       roll back any pass whose output grows
                                        past N majority nodes
    --selfcheck                         simulation spot check after every
                                        pass; a pass whose result is not
                                        equivalent to its input is rolled
                                        back. A panicking pass is always
                                        rolled back, flags or not.

EXIT CODES:
    0   success
    1   unexpected failure
    2   usage error (bad command, flag, or argument)
    3   input could not be loaded or parsed
    4   equivalence check failed (or bench regression)
    5   degraded completion: budget exceeded or passes rolled back/skipped
        (result still valid and equivalence-verified)

INPUT is a benchmark name (see `mighty list`) or a Verilog file path.";

struct Args {
    positional: Vec<String>,
    target: Option<OptTarget>,
    flow: Option<String>,
    effort: Option<usize>,
    rounds: Option<usize>,
    jobs: Option<usize>,
    output: Option<String>,
    lib: Option<String>,
    suite: Option<String>,
    quick: bool,
    rewrite: bool,
    list: bool,
    timeout_ms: Option<u64>,
    pass_timeout_ms: Option<u64>,
    max_nodes: Option<usize>,
    selfcheck: bool,
    listen: Option<String>,
    workers: Option<usize>,
    cache: Option<usize>,
    drain_ms: Option<u64>,
    bench_load: bool,
    clients: Option<usize>,
}

impl Args {
    fn run_options(&self) -> RunOptions {
        RunOptions {
            timeout_ms: self.timeout_ms,
            pass_timeout_ms: self.pass_timeout_ms,
            max_nodes: self.max_nodes,
            selfcheck: self.selfcheck,
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        target: None,
        flow: None,
        effort: None,
        rounds: None,
        jobs: None,
        output: None,
        lib: None,
        suite: None,
        quick: false,
        rewrite: false,
        list: false,
        timeout_ms: None,
        pass_timeout_ms: None,
        max_nodes: None,
        selfcheck: false,
        listen: None,
        workers: None,
        cache: None,
        drain_ms: None,
        bench_load: false,
        clients: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--target" | "-t" => args.target = Some(OptTarget::parse(&value(a)?)?),
            "--flow" | "-f" => args.flow = Some(value(a)?),
            "--effort" | "-e" => {
                args.effort = Some(value(a)?.parse().map_err(|e| format!("--effort: {e}"))?);
            }
            "--quick" | "-q" => args.quick = true,
            "--rewrite" | "-w" => args.rewrite = true,
            "--jobs" | "-j" => {
                args.jobs = Some(value(a)?.parse().map_err(|e| format!("--jobs: {e}"))?);
            }
            "--rounds" | "-r" => {
                args.rounds = Some(
                    value(a)?
                        .parse::<usize>()
                        .map_err(|e| format!("--rounds: {e}"))?
                        .max(1),
                );
            }
            "--output" | "-o" => args.output = Some(value(a)?),
            "--suite" | "-s" => args.suite = Some(value(a)?),
            "--list" => args.list = true,
            "--lib" | "-l" => args.lib = Some(value(a)?),
            "--timeout-ms" => {
                args.timeout_ms = Some(
                    value(a)?
                        .parse()
                        .map_err(|e| format!("--timeout-ms: {e}"))?,
                );
            }
            "--pass-timeout-ms" => {
                args.pass_timeout_ms = Some(
                    value(a)?
                        .parse()
                        .map_err(|e| format!("--pass-timeout-ms: {e}"))?,
                );
            }
            "--max-nodes" => {
                args.max_nodes = Some(value(a)?.parse().map_err(|e| format!("--max-nodes: {e}"))?);
            }
            "--selfcheck" => args.selfcheck = true,
            "--listen" => args.listen = Some(value(a)?),
            "--workers" => {
                args.workers = Some(value(a)?.parse().map_err(|e| format!("--workers: {e}"))?);
            }
            "--cache" => {
                args.cache = Some(value(a)?.parse().map_err(|e| format!("--cache: {e}"))?);
            }
            "--drain-ms" => {
                args.drain_ms = Some(value(a)?.parse().map_err(|e| format!("--drain-ms: {e}"))?);
            }
            "--bench" => args.bench_load = true,
            "--clients" => {
                args.clients = Some(
                    value(a)?
                        .parse::<usize>()
                        .map_err(|e| format!("--clients: {e}"))?
                        .max(1),
                );
            }
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(format!("unknown flag `{flag}`"));
            }
            _ => args.positional.push(a.clone()),
        }
    }
    Ok(args)
}

fn cmd_opt(args: &Args) -> Result<u8, Failure> {
    let spec = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("my_adder");
    let net = load_input(spec).map_err(Failure::input)?;
    let flow = match &args.flow {
        Some(script) => {
            if args.target.is_some() || args.rewrite {
                return Err(Failure::usage(
                    "--flow replaces --target/--rewrite; pass one or the other",
                ));
            }
            Flow::parse(script).map_err(Failure::usage)?
        }
        None => {
            let script =
                mig_mighty::flow_for_target(args.target.unwrap_or(OptTarget::All), args.rewrite);
            Flow::parse(script).expect("canned flows parse")
        }
    };
    let outcome = run_flow_with(
        &net,
        &flow,
        args.effort.unwrap_or(2),
        args.rounds.unwrap_or(32),
        args.jobs.unwrap_or(0),
        &args.run_options(),
    );
    print!("{}", render_report(&outcome));
    if let Some(path) = &args.output {
        emit_verilog(&outcome.optimized, path).map_err(Failure::generic)?;
    }
    if !(outcome.mig_equiv && outcome.net_equiv) {
        Ok(EXIT_EQUIV)
    } else if outcome.degraded {
        Ok(EXIT_DEGRADED)
    } else {
        Ok(EXIT_OK)
    }
}

fn cmd_map(args: &Args) -> Result<u8, Failure> {
    let spec = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("my_adder");
    let net = load_input(spec).map_err(Failure::input)?;
    let flow = args
        .flow
        .as_deref()
        .map(Flow::parse)
        .transpose()
        .map_err(Failure::usage)?;
    let outcome = run_map_with(
        &net,
        args.lib.as_deref().unwrap_or("cmos22"),
        flow.as_ref(),
        args.effort.unwrap_or(2),
        args.rounds.unwrap_or(32),
        args.jobs.unwrap_or(0),
        &args.run_options(),
    )
    .map_err(|e| {
        // A crashing mapper is a degraded completion (the optimized
        // netlist is intact, only the mapping product is missing), not
        // an internal error.
        if e.contains("panicked") {
            Failure {
                code: EXIT_DEGRADED,
                message: e,
            }
        } else {
            Failure::usage(e)
        }
    })?;
    print!("{}", render_map_report(&outcome));
    if let Some(path) = &args.output {
        emit_verilog(&outcome.design.to_network(), path).map_err(Failure::generic)?;
    }
    if !(outcome.mig_equiv && outcome.map_equiv) {
        Ok(EXIT_EQUIV)
    } else if outcome.degraded {
        Ok(EXIT_DEGRADED)
    } else {
        Ok(EXIT_OK)
    }
}

fn cmd_bench(args: &Args) -> Result<u8, Failure> {
    let mut config = if args.quick {
        mig_bench::BenchConfig::quick()
    } else {
        mig_bench::BenchConfig::full()
    };
    if let Some(suite) = &args.suite {
        if !mig_bench::SUITES.contains(&suite.as_str()) {
            return Err(Failure::usage(format!(
                "unknown suite `{suite}` (known suites: {})",
                mig_bench::SUITES.join(", ")
            )));
        }
        config.suite = suite.clone();
    }
    for name in &args.positional {
        if !mig_benchgen::MCNC_NAMES.contains(&name.as_str())
            && !mig_benchgen::LARGE_NAMES.contains(&name.as_str())
        {
            return Err(Failure::usage(format!(
                "unknown benchmark `{name}` (see `mighty list`)"
            )));
        }
    }
    config.names = args.positional.clone();
    // A large-tier name without an explicit --suite routes through the
    // large runner (running mul_1m through the MCNC mapping/esat stages
    // by accident would be a footgun, not a feature).
    if args.suite.is_none()
        && args
            .positional
            .iter()
            .any(|n| mig_benchgen::LARGE_NAMES.contains(&n.as_str()))
    {
        config.suite = "all".into();
    }
    if let Some(script) = &args.flow {
        // Validate up front for a clean CLI error.
        Flow::parse(script).map_err(Failure::usage)?;
        config.flow = Some(script.clone());
    }
    if let Some(effort) = args.effort {
        config.effort = effort;
    }
    if let Some(rounds) = args.rounds {
        config.rounds = rounds;
    }
    if let Some(jobs) = args.jobs {
        config.jobs = jobs;
    }
    config.timeout_ms = args.timeout_ms;
    config.pass_timeout_ms = args.pass_timeout_ms;
    config.max_nodes = args.max_nodes;
    config.selfcheck = args.selfcheck;
    let report = mig_bench::run_suite(&config);
    print!("{}", mig_bench::render_table(&report));
    let path = args.output.as_deref().unwrap_or("BENCH_opt.json");
    let json = mig_bench::to_json(&report);
    if path == "-" {
        print!("{json}");
    } else {
        std::fs::write(path, json)
            .map_err(|e| Failure::generic(format!("writing `{path}`: {e}")))?;
        println!("wrote {path}");
    }
    if !report.all_ok() {
        Ok(EXIT_EQUIV)
    } else if report.any_degraded() {
        Ok(EXIT_DEGRADED)
    } else {
        Ok(EXIT_OK)
    }
}

fn cmd_stats(args: &Args) -> Result<u8, Failure> {
    let specs: Vec<&str> = if args.positional.is_empty() {
        vec!["my_adder"]
    } else {
        args.positional.iter().map(String::as_str).collect()
    };
    for spec in specs {
        let net = load_input(spec).map_err(Failure::input)?;
        println!("{}", net.stats());
    }
    Ok(EXIT_OK)
}

fn cmd_gen(args: &Args) -> Result<u8, Failure> {
    if args.list {
        for name in mig_benchgen::MCNC_NAMES {
            println!("{name}");
        }
        for name in mig_benchgen::LARGE_NAMES {
            println!("{name}");
        }
        return Ok(EXIT_OK);
    }
    let name = args
        .positional
        .first()
        .ok_or_else(|| Failure::usage("gen requires a benchmark name (see `mighty gen --list`)"))?;
    let net = mig_benchgen::generate(name)
        .ok_or_else(|| Failure::usage(format!("unknown benchmark `{name}` (see `mighty list`)")))?;
    emit_verilog(&net, args.output.as_deref().unwrap_or("-")).map_err(Failure::generic)?;
    Ok(EXIT_OK)
}

fn cmd_equiv(args: &Args) -> Result<u8, Failure> {
    let [a, b] = args.positional.as_slice() else {
        return Err(Failure::usage("equiv requires exactly two inputs"));
    };
    let na = load_input(a).map_err(Failure::input)?;
    let nb = load_input(b).map_err(Failure::input)?;
    if na.num_inputs() != nb.num_inputs() || na.num_outputs() != nb.num_outputs() {
        println!("NOT EQUIVALENT (interface mismatch)");
        return Ok(EXIT_EQUIV);
    }
    let ok = mig_sim::equivalent(&na, &nb, args.rounds.unwrap_or(32));
    println!("{}", if ok { "EQUIVALENT" } else { "NOT EQUIVALENT" });
    Ok(if ok { EXIT_OK } else { EXIT_EQUIV })
}

fn cmd_serve(args: &Args) -> Result<u8, Failure> {
    use mig_mighty::serve;
    if args.bench_load {
        return cmd_serve_bench(args);
    }
    let workers = args.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let config = serve::ServeConfig {
        listen: args
            .listen
            .clone()
            .unwrap_or_else(|| "127.0.0.1:7171".to_string()),
        workers,
        cache_capacity: args.cache.unwrap_or(64),
        drain_ms: args.drain_ms.unwrap_or(10_000),
    };
    serve::install_signal_handlers();
    let server = serve::Server::start(&config).map_err(Failure::generic)?;
    // The exact line the serve tests and tooling parse for the bound
    // (possibly ephemeral) port — keep it first and stable.
    println!("listening on {}", server.addr());
    println!(
        "workers: {}  cache: {} entries  drain: {} ms",
        config.workers, config.cache_capacity, config.drain_ms
    );
    if server.wait() {
        Ok(EXIT_OK)
    } else {
        Err(Failure::generic(
            "drain deadline expired with jobs still in flight",
        ))
    }
}

fn cmd_serve_bench(args: &Args) -> Result<u8, Failure> {
    use mig_mighty::serve;
    let mut cfg = if args.quick {
        serve::LoadConfig::quick()
    } else {
        serve::LoadConfig::full()
    };
    if let Some(clients) = args.clients {
        cfg.clients = clients;
    }
    if let Some(script) = &args.flow {
        Flow::parse(script).map_err(Failure::usage)?;
        cfg.flow = script.clone();
    }
    if let Some(effort) = args.effort {
        cfg.effort = effort.max(1);
    }
    if let Some(workers) = args.workers {
        cfg.workers_sweep = vec![workers.max(1)];
    }
    let sweeps = serve::run_load(&cfg).map_err(Failure::generic)?;
    print!("{}", serve::render_load_table(&sweeps));
    let report = mig_bench::ServeReport {
        flow: cfg.flow.clone(),
        effort: cfg.effort,
        sweeps: sweeps
            .iter()
            .map(|r| mig_bench::ServeSweep {
                workers: r.workers,
                clients: r.clients,
                jobs: r.jobs,
                jobs_per_sec: r.jobs_per_sec,
                p50_ms: r.p50_ms,
                p95_ms: r.p95_ms,
                p99_ms: r.p99_ms,
                verified: r.verified,
                bit_identical: r.bit_identical,
            })
            .collect(),
    };
    let path = args.output.as_deref().unwrap_or("BENCH_opt.json");
    if path == "-" {
        print!("{}", mig_bench::serve_block_json(&report));
    } else {
        splice_serve_block(path, &report)?;
        println!("updated {path}");
    }
    if sweeps.iter().all(|r| r.verified && r.bit_identical) {
        Ok(EXIT_OK)
    } else {
        Ok(EXIT_EQUIV)
    }
}

/// Splices a fresh `"serve"` block into an existing `BENCH_opt.json`:
/// removes any previous block, inserts the new one immediately before
/// `"totals"`, and upgrades a pre-v8 schema line. Textual surgery on
/// purpose — every byte of the committed MCNC trajectory outside the
/// block stays identical.
fn splice_serve_block(path: &str, report: &mig_bench::ServeReport) -> Result<(), Failure> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        Failure::generic(format!(
            "reading `{path}`: {e} (run `mighty bench` first to create it)"
        ))
    })?;
    let mut lines: Vec<&str> = text.lines().collect();
    if let Some(start) = lines
        .iter()
        .position(|l| l.trim_start().starts_with("\"serve\": {"))
    {
        let end = lines[start..]
            .iter()
            .position(|l| *l == "  },")
            .map(|off| start + off)
            .ok_or_else(|| Failure::generic(format!("`{path}`: unterminated serve block")))?;
        lines.drain(start..=end);
    }
    let totals = lines
        .iter()
        .position(|l| l.trim_start().starts_with("\"totals\": {"))
        .ok_or_else(|| {
            Failure::generic(format!("`{path}`: no totals block — not a mig-bench file"))
        })?;
    let block = mig_bench::serve_block_json(report);
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        if i == totals {
            out.push_str(&block);
        }
        if line.contains("\"schema\": \"mig-bench/v7\"") {
            out.push_str("  \"schema\": \"mig-bench/v8\",\n");
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    std::fs::write(path, out).map_err(|e| Failure::generic(format!("writing `{path}`: {e}")))
}

fn run() -> Result<u8, Failure> {
    #[cfg(feature = "faultpoints")]
    mig_core::faultpoint::configure_from_env()
        .map_err(|e| Failure::usage(format!("{}: {e}", mig_core::faultpoint::ENV_VAR)))?;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{USAGE}");
        return Ok(EXIT_OK);
    };
    let args = parse_args(rest).map_err(Failure::usage)?;
    match cmd.as_str() {
        "opt" => cmd_opt(&args),
        "map" => cmd_map(&args),
        "bench" => cmd_bench(&args),
        "serve" => cmd_serve(&args),
        "stats" => cmd_stats(&args),
        "gen" => cmd_gen(&args),
        "equiv" => cmd_equiv(&args),
        "list" => {
            for name in mig_benchgen::MCNC_NAMES {
                println!("{name}");
            }
            println!(
                "large tier (bench --suite large): {}",
                mig_benchgen::LARGE_NAMES.join(", ")
            );
            println!("libraries: {}", mig_techmap::KNOWN_LIBRARIES.join(", "));
            Ok(EXIT_OK)
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(EXIT_OK)
        }
        other => Err(Failure::usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(f) => {
            eprintln!("mighty: {}", f.message);
            ExitCode::from(f.code)
        }
    }
}
