//! `mighty serve` — a concurrent optimization service.
//!
//! A long-running server that accepts optimization jobs over a
//! line-delimited JSON protocol on a TCP socket and executes them on a
//! fixed pool of worker threads (`std::thread` only — the workspace's
//! zero-third-party-deps invariant extends to the service layer). The
//! design amortizes everything that a one-shot `mighty opt` process
//! pays per run:
//!
//! - the NPN majority database ([`mig_tt`]'s `MigDatabase::global()`)
//!   and the stock cell libraries/match indexes
//!   ([`mig_techmap::CellLibrary::shared_by_name`]) are build-once
//!   process-global values, pre-warmed at server start;
//! - every worker owns one persistent [`OptContext`] — arena pool,
//!   rewrite cache, level mirror — that survives across jobs (context
//!   reuse never changes results; see `run_flow_session`);
//! - a bounded LRU result cache keyed by (canonical netlist content
//!   hash, flow script, effort) returns verified results without
//!   recomputation.
//!
//! Every response is equivalence-verified (the per-job `run_flow_session`
//! runs both the MIG-level and netlist-level checks; cache hits re-run
//! the netlist-level check against the incoming circuit) and
//! bit-identical to what `mighty opt` prints for the same flow — the
//! serve test suite asserts this across concurrent clients.
//!
//! # Protocol
//!
//! One JSON value per line, UTF-8. Requests:
//!
//! ```json
//! {"id": 1, "netlist": "my_adder", "flow": "size; rewrite", "effort": 2}
//! {"id": 2, "netlist": "module m(a, y); input a; output y; ...", "flow": "depth"}
//! {"op": "ping"}
//! {"op": "stats"}
//! {"op": "shutdown"}
//! ```
//!
//! `netlist` is structural Verilog text (anything containing a
//! `module` keyword) or a generated-benchmark name; the server never
//! reads files. Optional job fields: `rounds`, `timeout_ms`,
//! `pass_timeout_ms`, `max_nodes`, `selfcheck`, `progress` (stream
//! per-pass lines). Responses (one line each, all carrying the job
//! `id`):
//!
//! ```json
//! {"type": "progress", "id": 1, "pass": "size", "size": 180, "depth": 12, ...}
//! {"type": "result", "id": 1, "exit_code": 0, "mig_equiv": true, ..., "verilog": "..."}
//! {"type": "error", "id": 2, "exit_code": 3, "message": "..."}
//! ```
//!
//! `exit_code` mirrors the CLI contract: 0 ok, 2 malformed request,
//! 3 input error, 4 equivalence failure, 5 degraded (budget/rollback
//! semantics per job — a panicking or over-budget job degrades without
//! taking the server down). See `DESIGN.md` §15 for the full spec.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use mig_core::{Flow, OptContext};
use mig_netlist::{parse_verilog, write_verilog, Network};

use crate::json::{escape_str, Json};
use crate::{run_flow_session, OptOutcome, RunOptions, Snapshot};

/// Exit codes of the per-job contract (the CLI's codes, reused on the
/// wire).
pub mod exit_code {
    /// Job completed, verified, nothing degraded.
    pub const OK: i64 = 0;
    /// Malformed request (unparseable JSON, unknown field values).
    pub const USAGE: i64 = 2;
    /// Input error (netlist does not parse / unknown benchmark).
    pub const INPUT: i64 = 3;
    /// The optimized result failed an equivalence check.
    pub const EQUIV: i64 = 4;
    /// Completed and verified, but one or more passes degraded.
    pub const DEGRADED: i64 = 5;
}

/// Server configuration (the `mighty serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7171"` (port 0 picks a free one).
    pub listen: String,
    /// Worker threads executing jobs (≥ 1).
    pub workers: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Graceful-shutdown drain deadline in milliseconds.
    pub drain_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            workers: 1,
            cache_capacity: 64,
            drain_ms: 10_000,
        }
    }
}

/// Aggregate counters, readable over the wire via `{"op": "stats"}`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Jobs fully executed (including degraded ones).
    pub jobs_done: usize,
    /// Jobs answered straight from the result cache.
    pub cache_hits: usize,
    /// Jobs that missed the cache and ran.
    pub cache_misses: usize,
    /// Jobs that ended with a non-zero exit code.
    pub jobs_failed: usize,
    /// Connections accepted since start.
    pub connections: usize,
}

/// One parsed, validated job.
struct Job {
    /// Pre-serialized JSON of the client's `id` (echoed verbatim).
    id: String,
    net: Network,
    flow: Flow,
    effort: usize,
    rounds: usize,
    opts: RunOptions,
    progress: bool,
    out: mpsc::Sender<String>,
}

/// The bounded LRU result cache. Keyed by (content hash, flow script,
/// effort) — everything that determines the optimized structure. Jobs
/// carrying budgets or self checks bypass it (budget outcomes depend on
/// wall time, so they are not replayable), as do degraded or
/// non-verified results.
struct JobCache {
    entries: HashMap<(u64, String, usize), CacheEntry>,
    /// Monotone use counter backing the LRU order.
    tick: u64,
    capacity: usize,
}

struct CacheEntry {
    last_used: u64,
    value: Arc<CachedResult>,
}

/// What a cache hit replays: the verified outcome minus its wall times.
struct CachedResult {
    optimized: Network,
    before: Snapshot,
    after: Snapshot,
    flow: String,
    stages: usize,
}

impl JobCache {
    fn new(capacity: usize) -> Self {
        JobCache {
            entries: HashMap::new(),
            tick: 0,
            capacity,
        }
    }

    fn get(&mut self, key: &(u64, String, usize)) -> Option<Arc<CachedResult>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.value)
        })
    }

    fn insert(&mut self, key: (u64, String, usize), value: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Evict the least-recently-used entry. Linear scan: the
            // cache is small (tens of entries) and eviction is off the
            // optimization hot path.
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(
            key,
            CacheEntry {
                last_used: self.tick,
                value: Arc::new(value),
            },
        );
    }
}

/// State shared between the accept loop, connection threads, and
/// workers.
struct Shared {
    queue: Mutex<Vec<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    in_flight: AtomicUsize,
    /// Response lines handed to a connection writer thread but not yet
    /// flushed to (or abandoned with) its socket. The graceful drain
    /// waits for this to hit zero so an in-flight job's result reaches
    /// the client before the process exits.
    pending_writes: AtomicUsize,
    stats: Mutex<ServerStats>,
    cache: Mutex<JobCache>,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    fn idle(&self) -> bool {
        self.in_flight.load(Ordering::SeqCst) == 0
            && self.pending_writes.load(Ordering::SeqCst) == 0
            && self.queue.lock().expect("queue lock").is_empty()
    }

    /// Routes one response line to a connection's writer thread,
    /// keeping the pending-write accounting exact even when the writer
    /// is already gone.
    fn send_line(&self, tx: &mpsc::Sender<String>, line: String) {
        self.pending_writes.fetch_add(1, Ordering::SeqCst);
        if tx.send(line).is_err() {
            self.pending_writes.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// A running server: bound address plus the handles needed to stop it.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<thread::JoinHandle<()>>,
    worker_threads: Vec<thread::JoinHandle<()>>,
    drain_ms: u64,
}

impl Server {
    /// Binds, pre-warms the shared engine state, and starts the worker
    /// pool plus the accept loop. Returns as soon as the socket is
    /// listening.
    pub fn start(config: &ServeConfig) -> Result<Server, String> {
        let workers = config.workers.max(1);
        // Pre-warm the process-global immutable state so the first job
        // on every worker pays nothing: the 222-class NPN majority
        // database and both stock libraries with their match indexes.
        mig_tt::MigDatabase::global();
        for lib in mig_techmap::KNOWN_LIBRARIES {
            let _ = mig_techmap::CellLibrary::shared_by_name(lib);
        }

        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| format!("cannot bind `{}`: {e}", config.listen))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;

        let shared = Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            pending_writes: AtomicUsize::new(0),
            stats: Mutex::new(ServerStats::default()),
            cache: Mutex::new(JobCache::new(config.cache_capacity)),
        });

        let mut worker_threads = Vec::with_capacity(workers);
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            worker_threads.push(
                thread::Builder::new()
                    .name(format!("mighty-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| format!("spawn worker: {e}"))?,
            );
        }

        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("mighty-accept".to_string())
            .spawn(move || accept_loop(listener, &accept_shared))
            .map_err(|e| format!("spawn accept loop: {e}"))?;

        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            worker_threads,
            drain_ms: config.drain_ms,
        })
    }

    /// The bound socket address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the aggregate counters.
    pub fn stats(&self) -> ServerStats {
        *self.shared.stats.lock().expect("stats lock")
    }

    /// Requests a graceful shutdown: stop accepting, let queued and
    /// in-flight jobs finish.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the server shut down (via [`Server::shutdown`], a
    /// `{"op": "shutdown"}` request, or an installed signal handler)
    /// and all jobs drained — or the drain deadline expired. Returns
    /// `true` when the drain completed in time.
    pub fn wait(mut self) -> bool {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept loop only exits on shutdown, so from here the
        // queue can only shrink. Drain within the deadline.
        let deadline = Instant::now() + Duration::from_millis(self.drain_ms);
        while !self.shared.idle() && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        let drained = self.shared.idle();
        if drained {
            // Workers are idle; join them so the process exits clean.
            self.shared.queue_cv.notify_all();
            for t in self.worker_threads.drain(..) {
                let _ = t.join();
            }
        }
        // Non-drained workers are left detached; the caller decides
        // (the CLI exits the process, reporting the failed drain).
        drained
    }
}

/// The accept loop: non-blocking accept so shutdown requests (wire op
/// or signal) are noticed within one poll interval.
fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        if signal_pending() {
            shared.begin_shutdown();
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Refuse new connections from here on: the listener is
            // dropped, so later connects get ECONNREFUSED.
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.stats.lock().expect("stats lock").connections += 1;
                let shared = Arc::clone(shared);
                let _ = thread::Builder::new()
                    .name("mighty-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One connection: a reader (this thread) that parses requests and a
/// writer thread that serializes responses from all of the
/// connection's jobs. The reader and every queued job hold clones of
/// the response sender; the writer exits when the last clone drops.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let (tx, rx) = mpsc::channel::<String>();
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer_shared = Arc::clone(shared);
    let writer = thread::Builder::new()
        .name("mighty-conn-write".to_string())
        .spawn(move || {
            let mut w = BufWriter::new(write_stream);
            // Once a write fails the client is gone; keep consuming
            // (without writing) so every queued line is accounted for —
            // the graceful drain waits on `pending_writes`.
            let mut broken = false;
            while let Ok(line) = rx.recv() {
                if !broken {
                    broken = w.write_all(line.as_bytes()).is_err()
                        || w.write_all(b"\n").is_err()
                        || w.flush().is_err();
                }
                writer_shared.pending_writes.fetch_sub(1, Ordering::SeqCst);
            }
        });

    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match handle_request(&line, &tx, shared) {
            RequestFate::Continue => {}
            RequestFate::CloseConnection => break,
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    drop(tx);
    if let Ok(w) = writer {
        let _ = w.join();
    }
}

enum RequestFate {
    Continue,
    CloseConnection,
}

/// Parses and dispatches one request line.
fn handle_request(line: &str, tx: &mpsc::Sender<String>, shared: &Arc<Shared>) -> RequestFate {
    let value = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            shared.send_line(
                tx,
                error_line("null", exit_code::USAGE, &format!("bad JSON: {e}")),
            );
            return RequestFate::Continue;
        }
    };
    let id = render_id(&value);
    match value.get_str("op") {
        Some("ping") => {
            shared.send_line(tx, "{\"type\": \"pong\"}".to_string());
            RequestFate::Continue
        }
        Some("stats") => {
            let st = *shared.stats.lock().expect("stats lock");
            shared.send_line(
                tx,
                format!(
                    "{{\"type\": \"stats\", \"jobs_done\": {}, \"cache_hits\": {}, \
                 \"cache_misses\": {}, \"jobs_failed\": {}, \"connections\": {}}}",
                    st.jobs_done, st.cache_hits, st.cache_misses, st.jobs_failed, st.connections
                ),
            );
            RequestFate::Continue
        }
        Some("shutdown") => {
            shared.send_line(tx, "{\"type\": \"shutting_down\"}".to_string());
            shared.begin_shutdown();
            RequestFate::CloseConnection
        }
        Some(other) => {
            shared.send_line(
                tx,
                error_line(&id, exit_code::USAGE, &format!("unknown op `{other}`")),
            );
            RequestFate::Continue
        }
        None => {
            match parse_job(&value, &id, tx.clone()) {
                Ok(job) => {
                    let mut queue = shared.queue.lock().expect("queue lock");
                    // Checked under the queue lock: workers only exit
                    // when (shutdown && queue empty) holds under this
                    // same lock, so a job admitted here is guaranteed a
                    // worker — and one rejected here never strands.
                    if shared.shutdown.load(Ordering::SeqCst) {
                        drop(queue);
                        shared.send_line(
                            tx,
                            error_line(&id, exit_code::USAGE, "server is shutting down"),
                        );
                    } else {
                        queue.insert(0, job); // workers pop from the back (FIFO)
                        shared.queue_cv.notify_one();
                    }
                }
                Err((code, msg)) => {
                    shared.send_line(tx, error_line(&id, code, &msg));
                }
            }
            RequestFate::Continue
        }
    }
}

/// Serializes the client's `id` member back to a JSON snippet (`null`
/// when absent — every response still carries the key).
fn render_id(value: &Json) -> String {
    match value.get("id") {
        Some(Json::Num(n)) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Some(Json::Str(s)) => format!("\"{}\"", escape_str(s)),
        Some(Json::Bool(b)) => format!("{b}"),
        _ => "null".to_string(),
    }
}

fn error_line(id: &str, code: i64, message: &str) -> String {
    format!(
        "{{\"type\": \"error\", \"id\": {id}, \"exit_code\": {code}, \"message\": \"{}\"}}",
        escape_str(message)
    )
}

/// Validates a job request into a ready-to-run [`Job`].
fn parse_job(value: &Json, id: &str, out: mpsc::Sender<String>) -> Result<Job, (i64, String)> {
    let spec = value
        .get_str("netlist")
        .ok_or((exit_code::USAGE, "missing `netlist`".to_string()))?;
    let net = if spec.contains("module") {
        parse_verilog(spec).map_err(|e| (exit_code::INPUT, format!("verilog: {e}")))?
    } else {
        mig_benchgen::generate(spec).ok_or((
            exit_code::INPUT,
            format!("`{spec}` is neither Verilog text nor a known benchmark"),
        ))?
    };
    let flow_script = value.get_str("flow").unwrap_or("size");
    let flow = Flow::parse(flow_script).map_err(|e| (exit_code::USAGE, format!("flow: {e}")))?;
    let get_usize = |key: &str, default: usize| -> Result<usize, (i64, String)> {
        match value.get(key) {
            None => Ok(default),
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
            Some(_) => Err((
                exit_code::USAGE,
                format!("`{key}` must be a non-negative integer"),
            )),
        }
    };
    let effort = get_usize("effort", 2)?.max(1);
    let rounds = get_usize("rounds", 16)?.max(1);
    let opts = RunOptions {
        timeout_ms: match get_usize("timeout_ms", 0)? {
            0 => None,
            n => Some(n as u64),
        },
        pass_timeout_ms: match get_usize("pass_timeout_ms", 0)? {
            0 => None,
            n => Some(n as u64),
        },
        max_nodes: match get_usize("max_nodes", 0)? {
            0 => None,
            n => Some(n),
        },
        selfcheck: value.get_bool("selfcheck").unwrap_or(false),
    };
    Ok(Job {
        id: id.to_string(),
        net,
        flow,
        effort,
        rounds,
        opts,
        progress: value.get_bool("progress").unwrap_or(false),
        out,
    })
}

/// The worker loop: one persistent [`OptContext`] per worker, reused
/// across jobs. On an (unexpected) panic escaping a job, the context is
/// replaced with a fresh one — a worker never dies, matching the PR-7
/// rule that a faulty job degrades without taking the service down.
fn worker_loop(shared: &Arc<Shared>) {
    let mut ctx = OptContext::with_jobs(1);
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock")
                    .0;
            }
        };
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let panicked = {
            let ctx_ref = &mut ctx;
            catch_unwind(AssertUnwindSafe(|| execute_job(&job, ctx_ref, shared))).is_err()
        };
        if panicked {
            // The context may hold half-mutated scratch state; rebuild.
            ctx = OptContext::with_jobs(1);
            let mut stats = shared.stats.lock().expect("stats lock");
            stats.jobs_done += 1;
            stats.jobs_failed += 1;
            drop(stats);
            shared.send_line(
                &job.out,
                error_line(
                    &job.id,
                    exit_code::DEGRADED,
                    "job panicked; worker recovered",
                ),
            );
        }
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.queue_cv.notify_all();
    }
}

/// Runs one job: cache probe, optimization with optional progress
/// streaming, verification, response.
fn execute_job(job: &Job, ctx: &mut OptContext, shared: &Arc<Shared>) {
    let start = Instant::now();
    // Budgeted or self-checked jobs are not replayable (their outcome
    // depends on wall time), so they bypass the cache entirely.
    let cacheable = job.opts == RunOptions::default();
    let key = (job.net.content_hash(), job.flow.to_string(), job.effort);

    if cacheable {
        let hit = shared.cache.lock().expect("cache lock").get(&key);
        if let Some(cached) = hit {
            // Never trust a cache entry blindly: re-verify the stored
            // result against the incoming circuit before replaying it.
            let mut optimized = cached.optimized.clone();
            optimized.set_name(job.net.name());
            let net_equiv = mig_sim::equivalent(&job.net, &optimized, job.rounds);
            let mut stats = shared.stats.lock().expect("stats lock");
            stats.jobs_done += 1;
            if net_equiv {
                stats.cache_hits += 1;
                drop(stats);
                shared.send_line(
                    &job.out,
                    result_line(
                        &job.id,
                        &ResultFields {
                            name: job.net.name(),
                            flow: &cached.flow,
                            before: cached.before,
                            after: cached.after,
                            stages: cached.stages,
                            mig_equiv: true,
                            net_equiv: true,
                            degraded: false,
                            cached: true,
                            hash: key.0,
                            millis: start.elapsed().as_millis(),
                            verilog: &write_verilog(&optimized),
                        },
                    ),
                );
                return;
            }
            // A failed re-verification means the entry cannot serve
            // this request (hash collision); drop it and fall through
            // to a real run.
            stats.jobs_failed += 1;
            drop(stats);
            shared
                .cache
                .lock()
                .expect("cache lock")
                .entries
                .remove(&key);
        }
    }

    let out = job.out.clone();
    let id = job.id.clone();
    let progress = job.progress;
    let progress_shared = Arc::clone(shared);
    let outcome: OptOutcome = run_flow_session(
        &job.net,
        &job.flow,
        job.effort,
        job.rounds,
        &job.opts,
        ctx,
        move |stage| {
            if progress {
                progress_shared.send_line(
                    &out,
                    format!(
                        "{{\"type\": \"progress\", \"id\": {id}, \"pass\": \"{}\", \
                     \"size\": {}, \"depth\": {}, \"activity\": {:.3}, \
                     \"millis\": {:.2}, \"outcome\": \"{}\"}}",
                        escape_str(&stage.pass),
                        stage.after.size,
                        stage.after.depth,
                        stage.after.activity,
                        stage.millis,
                        stage.outcome.name(),
                    ),
                );
            }
        },
    );

    let verified = outcome.mig_equiv && outcome.net_equiv;
    {
        let mut stats = shared.stats.lock().expect("stats lock");
        stats.jobs_done += 1;
        if cacheable {
            stats.cache_misses += 1;
        }
        if !verified {
            stats.jobs_failed += 1;
        }
    }
    if cacheable && verified && !outcome.degraded {
        shared.cache.lock().expect("cache lock").insert(
            key.clone(),
            CachedResult {
                optimized: outcome.optimized.clone(),
                before: outcome.before,
                after: outcome.after,
                flow: outcome.flow.clone(),
                stages: outcome.stages.len(),
            },
        );
    }
    shared.send_line(
        &job.out,
        result_line(
            &job.id,
            &ResultFields {
                name: &outcome.name,
                flow: &outcome.flow,
                before: outcome.before,
                after: outcome.after,
                stages: outcome.stages.len(),
                mig_equiv: outcome.mig_equiv,
                net_equiv: outcome.net_equiv,
                degraded: outcome.degraded,
                cached: false,
                hash: key.0,
                millis: start.elapsed().as_millis(),
                verilog: &write_verilog(&outcome.optimized),
            },
        ),
    );
}

struct ResultFields<'a> {
    name: &'a str,
    flow: &'a str,
    before: Snapshot,
    after: Snapshot,
    stages: usize,
    mig_equiv: bool,
    net_equiv: bool,
    degraded: bool,
    cached: bool,
    hash: u64,
    millis: u128,
    verilog: &'a str,
}

fn result_line(id: &str, f: &ResultFields<'_>) -> String {
    let exit = if !f.mig_equiv || !f.net_equiv {
        exit_code::EQUIV
    } else if f.degraded {
        exit_code::DEGRADED
    } else {
        exit_code::OK
    };
    format!(
        "{{\"type\": \"result\", \"id\": {id}, \"exit_code\": {exit}, \
         \"name\": \"{}\", \"flow\": \"{}\", \
         \"before\": {{\"size\": {}, \"depth\": {}, \"activity\": {:.3}}}, \
         \"after\": {{\"size\": {}, \"depth\": {}, \"activity\": {:.3}}}, \
         \"stages\": {}, \"mig_equiv\": {}, \"net_equiv\": {}, \
         \"degraded\": {}, \"cached\": {}, \"hash\": \"{:016x}\", \
         \"millis\": {}, \"verilog\": \"{}\"}}",
        escape_str(f.name),
        escape_str(f.flow),
        f.before.size,
        f.before.depth,
        f.before.activity,
        f.after.size,
        f.after.depth,
        f.after.activity,
        f.stages,
        f.mig_equiv,
        f.net_equiv,
        f.degraded,
        f.cached,
        f.hash,
        f.millis,
        escape_str(f.verilog),
    )
}

// ---------------------------------------------------------------------------
// Signal handling (graceful shutdown on SIGTERM / ctrl-c)
// ---------------------------------------------------------------------------

static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// True once a SIGTERM/SIGINT arrived after
/// [`install_signal_handlers`] ran.
pub fn signal_pending() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Installs SIGTERM and SIGINT handlers that flip an atomic flag the
/// accept loop polls, so either signal triggers the same graceful
/// drain as a `{"op": "shutdown"}` request. Raw `signal(2)` FFI —
/// the workspace links no `libc` crate, and `std` already links the
/// platform C library.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// No-op off Unix (the serve loop still honors wire-level shutdown).
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

// ---------------------------------------------------------------------------
// Load generator (`mighty serve --bench`)
// ---------------------------------------------------------------------------

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Worker counts to sweep (the trajectory uses {1, 2, 4}).
    pub workers_sweep: Vec<usize>,
    /// Concurrent client connections.
    pub clients: usize,
    /// Jobs each client submits.
    pub jobs_per_client: usize,
    /// Flow script every job runs.
    pub flow: String,
    /// Per-pass effort.
    pub effort: usize,
    /// Benchmark names the jobs cycle through.
    pub corpus: Vec<String>,
}

impl LoadConfig {
    /// The quick sweep CI runs: small MCNC circuits, a light flow.
    pub fn quick() -> Self {
        LoadConfig {
            workers_sweep: vec![1, 2, 4],
            clients: 4,
            jobs_per_client: 4,
            flow: "size; rewrite".to_string(),
            effort: 1,
            corpus: ["my_adder", "count", "b9", "cla", "mm30a"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    /// The full sweep behind the committed trajectory numbers.
    pub fn full() -> Self {
        LoadConfig {
            clients: 8,
            jobs_per_client: 8,
            ..Self::quick()
        }
    }
}

/// Measured results of one worker-count sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Worker threads the server ran.
    pub workers: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Total jobs completed.
    pub jobs: usize,
    /// End-to-end wall time of the sweep in milliseconds.
    pub total_ms: f64,
    /// Completed jobs per second.
    pub jobs_per_sec: f64,
    /// Median per-job latency (client-observed), milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// All responses verified (both equivalence checks passed).
    pub verified: bool,
    /// All responses bit-identical to a local `mighty opt` run of the
    /// same netlist/flow/effort.
    pub bit_identical: bool,
}

/// Runs the load sweep: for each worker count, starts an in-process
/// server (result cache disabled so throughput measures real work),
/// hammers it with `clients` concurrent connections, and checks every
/// response against a locally computed reference (equivalence verdicts
/// plus bit-identical Verilog).
pub fn run_load(cfg: &LoadConfig) -> Result<Vec<SweepResult>, String> {
    // Reference results, computed once per corpus entry through the
    // exact `mighty opt` code path (fresh context, jobs = 1).
    let flow = Flow::parse(&cfg.flow).map_err(|e| format!("flow: {e}"))?;
    let mut reference: HashMap<String, String> = HashMap::new();
    for name in &cfg.corpus {
        let net = mig_benchgen::generate(name)
            .ok_or_else(|| format!("unknown corpus benchmark `{name}`"))?;
        let outcome = crate::run_flow_with(&net, &flow, cfg.effort, 16, 1, &RunOptions::default());
        if !outcome.mig_equiv || !outcome.net_equiv {
            return Err(format!("reference run for `{name}` failed verification"));
        }
        reference.insert(name.clone(), write_verilog(&outcome.optimized));
    }
    let reference = Arc::new(reference);

    let mut sweeps = Vec::new();
    for &workers in &cfg.workers_sweep {
        let server = Server::start(&ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            workers,
            cache_capacity: 0,
            drain_ms: 60_000,
        })?;
        let addr = server.addr();
        let start = Instant::now();
        let mut handles = Vec::new();
        for c in 0..cfg.clients {
            let corpus = cfg.corpus.clone();
            let flow = cfg.flow.clone();
            let reference = Arc::clone(&reference);
            let jobs = cfg.jobs_per_client;
            let effort = cfg.effort;
            handles.push(thread::spawn(move || {
                client_run(addr, c, &corpus, &flow, effort, jobs, &reference)
            }));
        }
        let mut latencies: Vec<f64> = Vec::new();
        let mut verified = true;
        let mut bit_identical = true;
        for h in handles {
            let r = h
                .join()
                .map_err(|_| "client thread panicked".to_string())??;
            latencies.extend(r.latencies_ms);
            verified &= r.verified;
            bit_identical &= r.bit_identical;
        }
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        server.shutdown();
        if !server.wait() {
            return Err("server failed to drain after sweep".to_string());
        }

        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let pct = |p: f64| -> f64 {
            if latencies.is_empty() {
                return 0.0;
            }
            let rank = ((p / 100.0) * latencies.len() as f64).ceil() as usize;
            latencies[rank.clamp(1, latencies.len()) - 1]
        };
        let jobs = cfg.clients * cfg.jobs_per_client;
        sweeps.push(SweepResult {
            workers,
            clients: cfg.clients,
            jobs,
            total_ms,
            jobs_per_sec: jobs as f64 / (total_ms / 1e3),
            p50_ms: pct(50.0),
            p95_ms: pct(95.0),
            p99_ms: pct(99.0),
            verified,
            bit_identical,
        });
    }
    Ok(sweeps)
}

struct ClientResult {
    latencies_ms: Vec<f64>,
    verified: bool,
    bit_identical: bool,
}

/// One load-generator client: a connection submitting jobs serially and
/// validating each response.
fn client_run(
    addr: SocketAddr,
    client_index: usize,
    corpus: &[String],
    flow: &str,
    effort: usize,
    jobs: usize,
    reference: &HashMap<String, String>,
) -> Result<ClientResult, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    let mut result = ClientResult {
        latencies_ms: Vec::with_capacity(jobs),
        verified: true,
        bit_identical: true,
    };
    for j in 0..jobs {
        let name = &corpus[(client_index * jobs + j) % corpus.len()];
        let sent = Instant::now();
        writeln!(
            writer,
            "{{\"id\": {j}, \"netlist\": \"{}\", \"flow\": \"{}\", \"effort\": {effort}}}",
            escape_str(name),
            escape_str(flow),
        )
        .map_err(|e| format!("send: {e}"))?;
        writer.flush().map_err(|e| format!("flush: {e}"))?;
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                return Err("server closed the connection mid-job".to_string());
            }
            let v = Json::parse(&line)?;
            match v.get_str("type") {
                Some("progress") => continue,
                Some("result") => {
                    result.latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                    if v.get_num("exit_code") != Some(0.0)
                        || v.get_bool("mig_equiv") != Some(true)
                        || v.get_bool("net_equiv") != Some(true)
                    {
                        result.verified = false;
                    }
                    if v.get_str("verilog") != reference.get(name).map(String::as_str) {
                        result.bit_identical = false;
                    }
                    break;
                }
                _ => return Err(format!("unexpected response: {line}")),
            }
        }
    }
    Ok(result)
}

/// Renders the human-readable load-sweep table.
pub fn render_load_table(sweeps: &[SweepResult]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<8} {:>8} {:>6} {:>10} {:>9} {:>9} {:>9} {:>9} {:>13}\n",
        "workers",
        "clients",
        "jobs",
        "jobs/sec",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "verified",
        "bit-identical"
    ));
    for r in sweeps {
        s.push_str(&format!(
            "{:<8} {:>8} {:>6} {:>10.2} {:>9.1} {:>9.1} {:>9.1} {:>9} {:>13}\n",
            r.workers,
            r.clients,
            r.jobs,
            r.jobs_per_sec,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            if r.verified { "PASS" } else { "FAIL" },
            if r.bit_identical { "PASS" } else { "FAIL" },
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_is_bounded_and_lru() {
        let mut cache = JobCache::new(2);
        let key = |n: u64| (n, "size".to_string(), 1usize);
        let entry = || CachedResult {
            optimized: Network::new("x"),
            before: Snapshot {
                size: 1,
                depth: 1,
                activity: 0.0,
                mapped: None,
            },
            after: Snapshot {
                size: 1,
                depth: 1,
                activity: 0.0,
                mapped: None,
            },
            flow: "size".to_string(),
            stages: 1,
        };
        cache.insert(key(1), entry());
        cache.insert(key(2), entry());
        assert!(cache.get(&key(1)).is_some(), "touch 1 → 2 becomes LRU");
        cache.insert(key(3), entry());
        assert!(cache.get(&key(2)).is_none(), "2 evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.entries.len(), 2);
    }

    #[test]
    fn zero_capacity_cache_never_stores() {
        let mut cache = JobCache::new(0);
        cache.insert(
            (1, "size".to_string(), 1),
            CachedResult {
                optimized: Network::new("x"),
                before: Snapshot {
                    size: 0,
                    depth: 0,
                    activity: 0.0,
                    mapped: None,
                },
                after: Snapshot {
                    size: 0,
                    depth: 0,
                    activity: 0.0,
                    mapped: None,
                },
                flow: "size".to_string(),
                stages: 0,
            },
        );
        assert!(cache.entries.is_empty());
    }

    #[test]
    fn id_rendering_round_trips() {
        let v = Json::parse(r#"{"id": 42}"#).unwrap();
        assert_eq!(render_id(&v), "42");
        let v = Json::parse(r#"{"id": "job-7"}"#).unwrap();
        assert_eq!(render_id(&v), "\"job-7\"");
        let v = Json::parse(r#"{"op": "ping"}"#).unwrap();
        assert_eq!(render_id(&v), "null");
    }
}
