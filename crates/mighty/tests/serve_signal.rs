//! Process-level `mighty serve` tests: graceful shutdown on SIGTERM
//! and ctrl-c (SIGINT). These spawn the real binary — signal disposition
//! is per-process state, so they cannot run in-process like the rest of
//! the serve suite (`tests/serve.rs` at the workspace root).
#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Spawns `mighty serve` on an ephemeral port and parses the bound
/// address from its first stdout line. Returns the stdout reader too —
/// dropping it would close the pipe and turn the server's own status
/// prints into broken-pipe panics.
fn spawn_server() -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mighty"))
        .args(["serve", "--listen", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mighty serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .to_string();
    (child, addr, reader)
}

fn send_signal(child: &Child, signal: &str) {
    let status = Command::new("kill")
        .args([signal, &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill {signal} failed");
}

/// Waits for the child to exit, failing the test if it takes longer
/// than `limit`.
fn wait_with_deadline(child: &mut Child, limit: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > limit {
            let _ = child.kill();
            panic!("server did not exit within {limit:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigterm_drains_and_exits_zero() {
    let (mut child, addr, _stdout) = spawn_server();
    // Prove it serves, then signal it.
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    writeln!(w, "{{\"op\": \"ping\"}}").expect("send ping");
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .expect("read pong");
    assert!(line.contains("pong"), "got: {line:?}");

    send_signal(&child, "-TERM");
    let status = wait_with_deadline(&mut child, Duration::from_secs(20));
    assert_eq!(status.code(), Some(0), "SIGTERM must exit 0 after drain");
    // The listener is gone: connecting again must fail.
    assert!(TcpStream::connect(&addr).is_err(), "socket still open");
}

#[test]
fn sigint_in_flight_job_completes_before_exit() {
    let (mut child, addr, _stdout) = spawn_server();
    // Start a job and interrupt once it is demonstrably in flight (the
    // first progress line arrived): the drain must still deliver the
    // result before the process exits 0.
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(
        w,
        "{{\"id\": 1, \"netlist\": \"alu4\", \"flow\": \"size; rewrite\", \
         \"effort\": 2, \"progress\": true}}"
    )
    .expect("send job");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read first progress");
    assert!(
        line.contains("\"type\": \"progress\""),
        "expected a progress line first, got: {line:?}"
    );
    send_signal(&child, "-INT");
    let result = loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read result");
        assert!(n > 0, "connection closed before the result arrived");
        if line.contains("\"type\": \"result\"") {
            break line.clone();
        }
    };
    assert!(
        result.contains("\"exit_code\": 0"),
        "in-flight job must complete through the drain; got: {}",
        &result[..result.len().min(200)]
    );
    let status = wait_with_deadline(&mut child, Duration::from_secs(20));
    assert_eq!(status.code(), Some(0), "SIGINT must exit 0 after drain");
}
