//! The large "logic compression circuit" of the paper's Section V-A.2:
//! an LZ-style match finder. Each unit compares a 32-bit pattern against
//! a sliding window position (XNOR + AND-reduction), a priority chain
//! finds the first match, and an encoder emits its position.
//!
//! At `units = 4096` the network has roughly 0.3 M primitive nodes,
//! matching the paper's "(unoptimized) 0.3M nodes" description.

use mig_netlist::{GateId, Network};

/// Pattern width compared at every window position.
pub const PATTERN_BITS: usize = 32;

/// Generates the compression match-finder with `units` window positions.
///
/// Inputs: `s[units + PATTERN_BITS − 1]` (the window) and
/// `p[PATTERN_BITS]` (the pattern). Outputs: `found`, the binary match
/// position `pos[⌈log₂ units⌉]`, and the first pattern byte echoed
/// through a mask (`lit[8]`) as the literal fallback path.
///
/// # Panics
///
/// Panics if `units < 2`.
pub fn compression_circuit(units: usize) -> Network {
    assert!(units >= 2);
    let mut net = Network::new(format!("compress{units}"));
    let window: Vec<GateId> = (0..units + PATTERN_BITS - 1)
        .map(|i| net.add_input(format!("s{i}")))
        .collect();
    let pattern: Vec<GateId> = (0..PATTERN_BITS)
        .map(|i| net.add_input(format!("p{i}")))
        .collect();

    // Match units: AND-reduce the 32 XNORs at each position.
    let mut matches = Vec::with_capacity(units);
    for u in 0..units {
        let mut bits: Vec<GateId> = (0..PATTERN_BITS)
            .map(|i| net.add_gate(mig_netlist::GateKind::Xnor, vec![window[u + i], pattern[i]]))
            .collect();
        while bits.len() > 1 {
            let mut next = Vec::with_capacity(bits.len().div_ceil(2));
            for pair in bits.chunks(2) {
                next.push(if pair.len() == 2 {
                    net.and(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            bits = next;
        }
        matches.push(bits[0]);
    }

    // Priority chain: first_u = match_u & !(any match before u).
    let mut any_before = net.constant(false);
    let mut firsts = Vec::with_capacity(units);
    for &m in &matches {
        let nb = net.not(any_before);
        firsts.push(net.and(m, nb));
        any_before = net.or(any_before, m);
    }
    net.set_output("found", any_before);

    // Position encoder: pos_b = OR over units whose index has bit b set.
    let pos_bits = usize::BITS as usize - (units - 1).leading_zeros() as usize;
    for b in 0..pos_bits {
        let terms: Vec<GateId> = firsts
            .iter()
            .enumerate()
            .filter(|(u, _)| (u >> b) & 1 == 1)
            .map(|(_, &f)| f)
            .collect();
        let mut acc = net.constant(false);
        let mut layer = terms;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    net.or(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        if let Some(&single) = layer.first() {
            acc = single;
        }
        net.set_output(format!("pos{b}"), acc);
    }

    // Literal fallback: first window byte gated by "no match".
    let no_match = net.not(any_before);
    for (i, &w) in window.iter().enumerate().take(8) {
        let lit = net.and(w, no_match);
        net.set_output(format!("lit{i}"), lit);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_pos(net: &Network, assign: &[bool], pos_bits: usize) -> (bool, u64) {
        let out = net.eval(assign);
        let found = out[0];
        let pos = (0..pos_bits).fold(0u64, |acc, b| acc | (out[1 + b] as u64) << b);
        (found, pos)
    }

    #[test]
    fn finds_first_match() {
        let units = 16;
        let net = compression_circuit(units);
        let pos_bits = 4;
        // Window = all zeros except a pattern copy planted at position 5.
        let pattern: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let mut window = vec![false; units + 31];
        for (i, &b) in pattern.iter().enumerate() {
            window[5 + i] = b;
        }
        // Zero window bits may accidentally match an all-zero pattern;
        // our pattern is non-zero so position 5 is the unique match
        // unless the plant overlaps itself (it does not here).
        let mut assign = window.clone();
        assign.extend(pattern.iter().copied());
        let (found, pos) = eval_pos(&net, &assign, pos_bits);
        assert!(found);
        assert_eq!(pos, 5);
    }

    #[test]
    fn no_match_raises_literal_path() {
        let units = 8;
        let net = compression_circuit(units);
        // Pattern of all ones, window of all zeros: no match anywhere.
        let mut assign = vec![false; units + 31];
        assign[0] = true; // first window bit feeds the literal byte
        assign.extend(vec![true; 32]);
        let out = net.eval(&assign);
        assert!(!out[0], "no match");
        // lit outputs follow the window byte.
        let lit0 = out[out.len() - 8];
        assert!(lit0, "literal path passes window bit 0");
    }

    #[test]
    fn scale_estimate() {
        // The paper's instance: ~0.3M nodes at 4096 units. Check the
        // growth rate on a small instance instead (65–80 gates/unit).
        let net = compression_circuit(64);
        let per_unit = net.num_logic_gates() as f64 / 64.0;
        assert!(
            (60.0..90.0).contains(&per_unit),
            "gates per unit {per_unit}"
        );
    }

    #[test]
    fn priority_prefers_earlier_position() {
        let units = 8;
        let net = compression_circuit(units);
        let pattern: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        let mut window = vec![false; units + 31];
        // Plant matches at positions 2 and 6 — they overlap; position 2
        // pattern bits win where they conflict, so just plant at 2 and
        // verify the reported position is ≤ 2.
        for (i, &b) in pattern.iter().enumerate() {
            window[2 + i] = b;
        }
        let mut assign = window.clone();
        assign.extend(pattern.iter().copied());
        let (found, pos) = eval_pos(&net, &assign, 3);
        assert!(found);
        assert!(pos <= 2, "first match at or before the plant: {pos}");
    }
}
