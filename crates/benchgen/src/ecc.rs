//! Error-correcting-circuit generators: stand-ins for ISCAS-85 C1355 and
//! C1908 (both are single-error-correcting codec circuits dominated by
//! XOR parity trees and a correction decoder).

use mig_netlist::{GateId, Network, SplitMix64};

/// Builds a balanced XOR tree over the given gates.
fn xor_tree(net: &mut Network, mut bits: Vec<GateId>) -> GateId {
    assert!(!bits.is_empty());
    while bits.len() > 1 {
        let mut next = Vec::with_capacity(bits.len().div_ceil(2));
        for pair in bits.chunks(2) {
            next.push(if pair.len() == 2 {
                net.xor(pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        bits = next;
    }
    bits[0]
}

/// Generic single-error-correcting codec: `data` data inputs, `checks`
/// received check inputs, `decode_bits` syndrome bits feeding the
/// correction decoder, `status` extra parity status outputs.
///
/// Outputs: `data` corrected bits followed by `status` parity statuses.
fn ecc_circuit(
    name: &str,
    data: usize,
    checks: usize,
    decode_bits: usize,
    status: usize,
    seed: u64,
) -> Network {
    assert!(checks >= decode_bits);
    assert!(
        (1usize << decode_bits) >= data,
        "decoder must cover data bits"
    );
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut net = Network::new(name.to_string());
    let d: Vec<GateId> = (0..data).map(|i| net.add_input(format!("d{i}"))).collect();
    let chk: Vec<GateId> = (0..checks)
        .map(|i| net.add_input(format!("c{i}")))
        .collect();

    // Parity groups: check j covers a seeded subset of the data bits
    // (every data bit lands in at least one group).
    let mut syndromes = Vec::with_capacity(checks);
    for (j, &c) in chk.iter().enumerate() {
        let mut group: Vec<GateId> = d
            .iter()
            .enumerate()
            .filter(|(i, _)| (i + j) % 2 == 0 || rng.gen_bool(0.4))
            .map(|(_, &g)| g)
            .collect();
        if group.is_empty() {
            group.push(d[j % data]);
        }
        group.push(c);
        syndromes.push(xor_tree(&mut net, group));
    }

    // Correction decoder over the first `decode_bits` syndromes.
    let sel = &syndromes[..decode_bits];
    let nsel: Vec<GateId> = sel.iter().map(|&s| net.not(s)).collect();
    let enable = {
        // Error present: OR of all syndromes.
        let mut acc = syndromes[0];
        for &s in &syndromes[1..] {
            acc = net.or(acc, s);
        }
        acc
    };
    for (i, &di) in d.iter().enumerate().take(data) {
        // correct_i = enable & (sel == i)
        let mut term = enable;
        for (b, (&s, &ns)) in sel.iter().zip(&nsel).enumerate() {
            let lit = if (i >> b) & 1 == 1 { s } else { ns };
            term = net.and(term, lit);
        }
        let corrected = net.xor(di, term);
        net.set_output(format!("o{i}"), corrected);
    }
    // Status outputs: pairwise syndrome combinations.
    for j in 0..status {
        let x = syndromes[j % syndromes.len()];
        let y = syndromes[(j * 3 + 1) % syndromes.len()];
        let st = if x == y { net.not(x) } else { net.xor(x, y) };
        net.set_output(format!("st{j}"), st);
    }
    net
}

/// `C1355` stand-in: 32-bit single-error-correcting circuit
/// (41 inputs / 32 outputs, matching the ISCAS-85 interface).
pub fn ecc_c1355() -> Network {
    ecc_circuit("C1355", 32, 9, 5, 0, 0x1355)
}

/// `C1908` stand-in: 16-bit SEC/DED codec
/// (33 inputs / 25 outputs, matching the ISCAS-85 interface).
pub fn ecc_c1908() -> Network {
    ecc_circuit("C1908", 16, 17, 4, 9, 0x1908)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interfaces_match_iscas() {
        let c1355 = ecc_c1355();
        assert_eq!((c1355.num_inputs(), c1355.num_outputs()), (41, 32));
        let c1908 = ecc_c1908();
        assert_eq!((c1908.num_inputs(), c1908.num_outputs()), (33, 25));
    }

    #[test]
    fn deterministic_generation() {
        let a = ecc_c1355();
        let b = ecc_c1355();
        assert_eq!(a.num_gates(), b.num_gates());
        // Same structure ⇒ same behaviour on a sample vector.
        let assign: Vec<bool> = (0..41).map(|i| i % 3 == 0).collect();
        assert_eq!(a.eval(&assign), b.eval(&assign));
    }

    #[test]
    fn zero_word_passes_through() {
        // All-zero data with all-zero checks has zero parity in every
        // group, so no correction fires and the data passes through.
        let net = ecc_c1355();
        let out = net.eval(&[false; 41]);
        assert!(out.iter().all(|&b| !b), "clean zero word passes through");
    }

    #[test]
    fn single_check_flip_corrupts_exactly_one_data_bit() {
        // Flipping one check input raises exactly one syndrome; the
        // decoder then flips exactly one (decoder-selected) output bit.
        let net = ecc_c1355();
        let mut assign = vec![false; 41];
        assign[32] = true; // chk_0
        let out = net.eval(&assign);
        let flipped = out.iter().filter(|&&b| b).count();
        assert_eq!(flipped, 1, "one syndrome ⇒ one corrected bit");
    }

    #[test]
    fn xor_dominated_structure() {
        let net = ecc_c1355();
        let stats = net.stats();
        let xors = stats.histogram.get("xor").copied().unwrap_or(0);
        assert!(
            xors * 2 >= stats.size,
            "ECC should be XOR-dominated: {stats:?}"
        );
    }
}
