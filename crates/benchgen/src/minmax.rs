//! Min/max datapath generator: stand-in for MCNC `mm30a` (a 30-bit
//! minmax circuit — comparators plus wide multiplexers).

use mig_netlist::{GateId, Network};

/// Unsigned ripple comparator: returns `x < y`.
fn less_than(net: &mut Network, x: &[GateId], y: &[GateId]) -> GateId {
    let mut lt = net.constant(false);
    for i in 0..x.len() {
        let nx = net.not(x[i]);
        let bit_lt = net.and(nx, y[i]);
        let ne = net.xor(x[i], y[i]);
        let eq = net.not(ne);
        let keep = net.and(eq, lt);
        lt = net.or(bit_lt, keep);
    }
    lt
}

/// `mm30a` stand-in: `width`-bit min/max update datapath.
///
/// Inputs: `x[w] y[w] min[w] max[w] ctrl[4]`; outputs:
/// `nmin[w] nmax[w] sel[w] mix[w]` (for `width = 30`: 124 inputs /
/// 120 outputs, matching MCNC `mm30a`).
pub fn minmax(width: usize) -> Network {
    let mut net = Network::new(format!("mm{width}a"));
    let x: Vec<GateId> = (0..width).map(|i| net.add_input(format!("x{i}"))).collect();
    let y: Vec<GateId> = (0..width).map(|i| net.add_input(format!("y{i}"))).collect();
    let cur_min: Vec<GateId> = (0..width)
        .map(|i| net.add_input(format!("min{i}")))
        .collect();
    let cur_max: Vec<GateId> = (0..width)
        .map(|i| net.add_input(format!("max{i}")))
        .collect();
    let ctrl: Vec<GateId> = (0..4).map(|i| net.add_input(format!("ctrl{i}"))).collect();

    let x_lt_min = less_than(&mut net, &x, &cur_min);
    let max_lt_x = less_than(&mut net, &cur_max, &x);
    let upd_min = net.and(x_lt_min, ctrl[0]);
    let upd_max = net.and(max_lt_x, ctrl[0]);

    for i in 0..width {
        let nmin = net.mux(upd_min, x[i], cur_min[i]);
        net.set_output(format!("nmin{i}"), nmin);
    }
    for i in 0..width {
        let nmax = net.mux(upd_max, x[i], cur_max[i]);
        net.set_output(format!("nmax{i}"), nmax);
    }
    for i in 0..width {
        let sel = net.mux(ctrl[1], y[i], x[i]);
        net.set_output(format!("sel{i}"), sel);
    }
    for i in 0..width {
        let xy = net.xor(x[i], y[i]);
        let masked = net.and(xy, ctrl[2]);
        let mixed = net.mux(ctrl[3], masked, cur_min[i]);
        net.set_output(format!("mix{i}"), mixed);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn num(out: &[bool], lo: usize, n: usize) -> u64 {
        (0..n).fold(0u64, |acc, i| acc | (out[lo + i] as u64) << i)
    }

    #[test]
    fn mm30a_interface() {
        let net = minmax(30);
        assert_eq!(net.num_inputs(), 124);
        assert_eq!(net.num_outputs(), 120);
    }

    #[test]
    fn min_max_update_semantics() {
        let w = 8;
        let net = minmax(w);
        let cases = [
            (5u64, 100u64, 10u64, 200u64), // x below min ⇒ min updates
            (250, 100, 10, 200),           // x above max ⇒ max updates
            (50, 100, 10, 200),            // inside ⇒ no update
        ];
        for (x, y, mn, mx) in cases {
            let mut assign = bits(x, w);
            assign.extend(bits(y, w));
            assign.extend(bits(mn, w));
            assign.extend(bits(mx, w));
            assign.extend([true, false, false, false]); // ctrl0 = enable
            let out = net.eval(&assign);
            let nmin = num(&out, 0, w);
            let nmax = num(&out, w, w);
            assert_eq!(nmin, mn.min(x), "min for x={x}");
            assert_eq!(nmax, mx.max(x), "max for x={x}");
            // sel = x when ctrl1 = 0.
            assert_eq!(num(&out, 2 * w, w), x);
        }
    }

    #[test]
    fn disabled_update_holds() {
        let w = 8;
        let net = minmax(w);
        let mut assign = bits(1, w); // x = 1, far below min
        assign.extend(bits(0, w));
        assign.extend(bits(100, w));
        assign.extend(bits(200, w));
        assign.extend([false, false, false, false]); // disabled
        let out = net.eval(&assign);
        assert_eq!(num(&out, 0, w), 100, "min held");
        assert_eq!(num(&out, w, w), 200, "max held");
    }
}
