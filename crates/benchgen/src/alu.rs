//! ALU circuit generators: the 4-bit `alu4` and 16-bit `dalu` stand-ins.

use mig_netlist::{GateId, Network};

/// `alu4` stand-in: a 4-bit ALU with the MCNC circuit's 14-input /
/// 8-output interface.
///
/// Inputs: `a[4] b[4] s[4] m cin`; outputs: `f[4] cout pp gg eq`.
///
/// * logic mode (`m = 1`): `t = {a&b, a|b, a^b, ~a}[s1 s0]`, complemented
///   when `s2` is set;
/// * arithmetic mode (`m = 0`): `f = a + y + cin` with
///   `y = {b, ~b, 0, 1…1}[s1 s0]` (ADD/SUB/INC/DEC);
/// * flags: group propagate `pp`, group generate `gg`, equality `eq`.
pub fn alu4() -> Network {
    let mut net = Network::new("alu4");
    let a: Vec<GateId> = (0..4).map(|i| net.add_input(format!("a{i}"))).collect();
    let b: Vec<GateId> = (0..4).map(|i| net.add_input(format!("b{i}"))).collect();
    let s: Vec<GateId> = (0..4).map(|i| net.add_input(format!("s{i}"))).collect();
    let m = net.add_input("m");
    let cin = net.add_input("cin");

    let zero = net.constant(false);
    let one = net.constant(true);

    let mut f_bits = Vec::with_capacity(4);
    let mut carry = cin;
    let mut props = Vec::new();
    let mut gens = Vec::new();
    let mut eqs = Vec::new();
    for i in 0..4 {
        // Logic unit.
        let and_ = net.and(a[i], b[i]);
        let or_ = net.or(a[i], b[i]);
        let xor_ = net.xor(a[i], b[i]);
        let nota = net.not(a[i]);
        let sel0 = net.mux(s[0], or_, and_);
        let sel1 = net.mux(s[0], nota, xor_);
        let t = net.mux(s[1], sel1, sel0);
        let logic = net.xor(t, s[2]);

        // Arithmetic unit: y = {b, ~b, 0, 1}[s1 s0].
        let notb = net.not(b[i]);
        let y0 = net.mux(s[0], notb, b[i]);
        let y1 = net.mux(s[0], one, zero);
        let y = net.mux(s[1], y1, y0);
        let p = net.xor(a[i], y);
        let g = net.and(a[i], y);
        let sum = net.xor(p, carry);
        let pc = net.and(p, carry);
        carry = net.or(g, pc);
        props.push(p);
        gens.push(g);

        let f = net.mux(m, logic, sum);
        f_bits.push(f);
        let ne = net.xor(a[i], b[i]);
        let e = net.not(ne);
        eqs.push(e);
    }
    for (i, &f) in f_bits.iter().enumerate() {
        net.set_output(format!("f{i}"), f);
    }
    let notm = net.not(m);
    let cout = net.and(notm, carry);
    net.set_output("cout", cout);
    let pp = {
        let p01 = net.and(props[0], props[1]);
        let p23 = net.and(props[2], props[3]);
        net.and(p01, p23)
    };
    net.set_output("pp", pp);
    let gg = {
        // g3 + p3·g2 + p3·p2·g1 + p3·p2·p1·g0
        let mut acc = gens[3];
        let mut pfx = props[3];
        for i in (0..3).rev() {
            let t = net.and(pfx, gens[i]);
            acc = net.or(acc, t);
            if i > 0 {
                pfx = net.and(pfx, props[i]);
            }
        }
        acc
    };
    net.set_output("gg", gg);
    let eq = {
        let e01 = net.and(eqs[0], eqs[1]);
        let e23 = net.and(eqs[2], eqs[3]);
        net.and(e01, e23)
    };
    net.set_output("eq", eq);
    net
}

/// `dalu` stand-in: a 16-bit dedicated ALU slice with the MCNC circuit's
/// 75-input / 16-output interface.
///
/// Inputs: `a[16] b[16] c[16] d[16] op[8] ctrl[3]`; output `r[16]`.
/// The datapath computes bitwise ops, a 16-bit sum `a+c`, a subtraction
/// `a−b`, a one-position shifter and a comparator, selected by a
/// priority mux over `op[7:4]`.
pub fn dalu() -> Network {
    let mut net = Network::new("dalu");
    let a: Vec<GateId> = (0..16).map(|i| net.add_input(format!("a{i}"))).collect();
    let b: Vec<GateId> = (0..16).map(|i| net.add_input(format!("b{i}"))).collect();
    let c: Vec<GateId> = (0..16).map(|i| net.add_input(format!("c{i}"))).collect();
    let d: Vec<GateId> = (0..16).map(|i| net.add_input(format!("d{i}"))).collect();
    let op: Vec<GateId> = (0..8).map(|i| net.add_input(format!("op{i}"))).collect();
    let ctrl: Vec<GateId> = (0..3).map(|i| net.add_input(format!("ctrl{i}"))).collect();

    // Bitwise units.
    let t1: Vec<GateId> = (0..16)
        .map(|i| {
            let and_ = net.and(a[i], b[i]);
            let or_ = net.or(a[i], b[i]);
            net.mux(op[0], and_, or_)
        })
        .collect();
    let t2: Vec<GateId> = (0..16)
        .map(|i| {
            let xor_ = net.xor(c[i], d[i]);
            let and_ = net.and(c[i], d[i]);
            net.mux(op[1], xor_, and_)
        })
        .collect();

    // Adder a + c (carry-in ctrl0) and subtractor a − b.
    let mut sum = Vec::with_capacity(16);
    let mut carry = ctrl[0];
    for i in 0..16 {
        let p = net.xor(a[i], c[i]);
        let s = net.xor(p, carry);
        carry = net.maj(a[i], c[i], carry);
        sum.push(s);
    }
    let mut diff = Vec::with_capacity(16);
    let mut borrow = net.constant(true); // two's complement +1
    for i in 0..16 {
        let nb = net.not(b[i]);
        let p = net.xor(a[i], nb);
        let s = net.xor(p, borrow);
        borrow = net.maj(a[i], nb, borrow);
        diff.push(s);
    }

    // Shifter: b shifted by one, direction ctrl1, fill op2.
    let shl: Vec<GateId> = (0..16)
        .map(|i| if i == 0 { op[2] } else { b[i - 1] })
        .collect();
    let shr: Vec<GateId> = (0..16)
        .map(|i| if i == 15 { op[2] } else { b[i + 1] })
        .collect();
    let sh: Vec<GateId> = (0..16).map(|i| net.mux(ctrl[1], shl[i], shr[i])).collect();

    // Comparator: a < d (unsigned, ripple).
    let mut lt = net.constant(false);
    for i in 0..16 {
        let nai = net.not(a[i]);
        let gt_bit = net.and(nai, d[i]);
        let ne = net.xor(a[i], d[i]);
        let keep = net.not(ne);
        let kept = net.and(keep, lt);
        lt = net.or(gt_bit, kept);
    }

    // Priority select over op[7:4]: sum, diff, shift, bitwise mix.
    for i in 0..16 {
        let mix = net.xor(t1[i], t2[i]);
        let cmp_masked = net.and(lt, c[i]);
        let level0 = net.mux(op[4], sum[i], mix);
        let level1 = net.mux(op[5], diff[i], level0);
        let level2 = net.mux(op[6], sh[i], level1);
        let level3 = net.mux(op[7], cmp_masked, level2);
        let gated = net.mux(ctrl[2], t1[i], level3);
        net.set_output(format!("r{i}"), gated);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn num(out: &[bool], lo: usize, n: usize) -> u64 {
        (0..n).fold(0u64, |acc, i| acc | (out[lo + i] as u64) << i)
    }

    #[test]
    fn alu4_interface() {
        let net = alu4();
        assert_eq!(net.num_inputs(), 14);
        assert_eq!(net.num_outputs(), 8);
    }

    #[test]
    fn alu4_add_and_sub() {
        let net = alu4();
        for a in 0..16u64 {
            for b in 0..16u64 {
                // ADD: m=0, s=0000, cin=0
                let mut assign = bits(a, 4);
                assign.extend(bits(b, 4));
                assign.extend(bits(0b0000, 4));
                assign.extend([false, false]); // m, cin
                let out = net.eval(&assign);
                let f = num(&out, 0, 4) | num(&out, 4, 1) << 4;
                assert_eq!(f, a + b, "ADD {a}+{b}");
                // SUB: m=0, s=0001 (y=~b), cin=1 → a - b (mod 32 w/ carry)
                let mut assign = bits(a, 4);
                assign.extend(bits(b, 4));
                assign.extend(bits(0b0001, 4));
                assign.extend([false, true]);
                let out = net.eval(&assign);
                let f = num(&out, 0, 4);
                assert_eq!(f, a.wrapping_sub(b) & 0xF, "SUB {a}-{b}");
            }
        }
    }

    #[test]
    fn alu4_logic_ops() {
        let net = alu4();
        let a = 0b1100u64;
        let b = 0b1010u64;
        for (sel, expect) in [
            (0b00u64, a & b),
            (0b01, a | b),
            (0b10, a ^ b),
            (0b11, !a & 0xF),
        ] {
            let mut assign = bits(a, 4);
            assign.extend(bits(b, 4));
            assign.extend(bits(sel, 4)); // s2=s3=0
            assign.extend([true, false]); // m=1
            let out = net.eval(&assign);
            assert_eq!(num(&out, 0, 4), expect, "sel {sel:02b}");
        }
    }

    #[test]
    fn alu4_eq_flag() {
        let net = alu4();
        let mut assign = bits(0b0110, 4);
        assign.extend(bits(0b0110, 4));
        assign.extend(bits(0, 4));
        assign.extend([true, false]);
        let out = net.eval(&assign);
        assert!(out[7], "eq must be set for equal operands");
    }

    #[test]
    fn dalu_interface_and_add() {
        let net = dalu();
        assert_eq!(net.num_inputs(), 75);
        assert_eq!(net.num_outputs(), 16);
        // op4 = 1, others 0, ctrl = 0 → r = a + c.
        let a = 12345u64;
        let c = 23456u64;
        let mut assign = bits(a, 16);
        assign.extend(bits(0, 16)); // b
        assign.extend(bits(c, 16));
        assign.extend(bits(0, 16)); // d
        assign.extend(bits(0b0001_0000, 8)); // op
        assign.extend(bits(0, 3)); // ctrl
        let out = net.eval(&assign);
        assert_eq!(num(&out, 0, 16), (a + c) & 0xFFFF);
    }

    #[test]
    fn dalu_sub_takes_priority() {
        let net = dalu();
        let a = 500u64;
        let b = 123u64;
        let mut assign = bits(a, 16);
        assign.extend(bits(b, 16));
        assign.extend(bits(999, 16)); // c
        assign.extend(bits(0, 16)); // d
        assign.extend(bits(0b0011_0000, 8)); // op5 (diff) over op4 (sum)
        assign.extend(bits(0, 3));
        let out = net.eval(&assign);
        assert_eq!(num(&out, 0, 16), (a - b) & 0xFFFF);
    }
}
