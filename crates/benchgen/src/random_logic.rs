//! Seeded layered random-logic generators.
//!
//! Stand-ins for the large, irregular MCNC circuits whose netlists are
//! not reproducible functionally: `bigkey` (key-encryption rounds),
//! `clma` (large multi-level control/datapath mix) and the combinational
//! core of `s38417`. The generators produce deterministic, reconvergent,
//! multi-level networks at the same interface and scale.

use mig_netlist::{GateId, GateKind, Network, SplitMix64};

/// Parameters for [`layered_random`].
#[derive(Debug, Clone)]
pub struct RandomLogicParams {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Approximate number of logic gates.
    pub gates: usize,
    /// Number of layers (controls depth before optimization).
    pub layers: usize,
    /// Generation seed.
    pub seed: u64,
}

/// Generates a layered, reconvergent random network: each layer draws
/// fanins mostly from the two previous layers (locality creates
/// reconvergence), with occasional long edges back to earlier layers or
/// the inputs.
pub fn layered_random(name: &str, p: &RandomLogicParams) -> Network {
    assert!(p.layers >= 1 && p.gates >= p.layers);
    let mut rng = SplitMix64::seed_from_u64(p.seed);
    let mut net = Network::new(name.to_string());
    let inputs: Vec<GateId> = (0..p.inputs)
        .map(|i| net.add_input(format!("x{i}")))
        .collect();

    let per_layer = p.gates / p.layers;
    let mut prev: Vec<GateId> = inputs.clone();
    let mut prev2: Vec<GateId> = Vec::new();
    let mut all_gates: Vec<GateId> = Vec::new();

    for layer in 0..p.layers {
        let mut cur = Vec::with_capacity(per_layer);
        for g in 0..per_layer {
            // Fanin source pools: previous layer (70%), layer before
            // that (20%), a long edge to any earlier gate or input (10%).
            let pick = |rng: &mut SplitMix64| -> GateId {
                let r: f64 = rng.next_f64();
                if r < 0.7 || prev2.is_empty() {
                    prev[rng.gen_range(0..prev.len())]
                } else if r < 0.9 || all_gates.is_empty() {
                    prev2[rng.gen_range(0..prev2.len())]
                } else {
                    all_gates[rng.gen_range(0..all_gates.len())]
                }
            };
            // In layer 0, make sure every input is touched early.
            let a = match if layer == 0 { inputs.get(g) } else { None } {
                Some(&inp) => inp,
                None => pick(&mut rng),
            };
            let b = pick(&mut rng);
            let kind_roll: f64 = rng.next_f64();
            let id = if kind_roll < 0.32 {
                net.add_gate(GateKind::And, vec![a, b])
            } else if kind_roll < 0.58 {
                net.add_gate(GateKind::Or, vec![a, b])
            } else if kind_roll < 0.72 {
                net.add_gate(GateKind::Xor, vec![a, b])
            } else if kind_roll < 0.80 {
                net.add_gate(GateKind::Nand, vec![a, b])
            } else if kind_roll < 0.88 {
                net.add_gate(GateKind::Nor, vec![a, b])
            } else if kind_roll < 0.94 {
                let c = pick(&mut rng);
                net.add_gate(GateKind::Mux, vec![a, b, c])
            } else {
                let c = pick(&mut rng);
                net.add_gate(GateKind::Maj, vec![a, b, c])
            };
            cur.push(id);
        }
        all_gates.extend(&cur);
        prev2 = std::mem::replace(&mut prev, cur);
    }

    // Outputs: mostly from the last layers, some from the middle.
    for o in 0..p.outputs {
        let src = if o % 5 == 4 && all_gates.len() > per_layer * 2 {
            all_gates[rng.gen_range(all_gates.len() / 2..all_gates.len())]
        } else {
            let start = all_gates.len().saturating_sub(2 * per_layer);
            all_gates[rng.gen_range(start..all_gates.len())]
        };
        net.set_output(format!("y{o}"), src);
    }
    net.sweep()
}

/// `bigkey` stand-in: a key-encryption-style circuit — data XOR-masked
/// with an expanded key, passed through seeded 4×4 S-box layers and a
/// bit permutation, twice (487 inputs / 421 outputs, matching MCNC
/// `bigkey`).
pub fn bigkey() -> Network {
    let data_bits = 421;
    let key_bits = 66;
    let mut rng = SplitMix64::seed_from_u64(0xB16_4E7);
    let mut net = Network::new("bigkey".to_string());
    let data: Vec<GateId> = (0..data_bits)
        .map(|i| net.add_input(format!("d{i}")))
        .collect();
    let key: Vec<GateId> = (0..key_bits)
        .map(|i| net.add_input(format!("k{i}")))
        .collect();

    let mut state = data.clone();
    for round in 0..2 {
        // Key mixing: XOR with a rotated key expansion.
        state = state
            .iter()
            .enumerate()
            .map(|(i, &s)| net.xor(s, key[(i + round * 13) % key_bits]))
            .collect();
        // S-box layer: groups of 4 bits through seeded 2-level logic.
        let mut next = Vec::with_capacity(state.len());
        for chunk in state.chunks(4) {
            if chunk.len() < 4 {
                next.extend_from_slice(chunk);
                continue;
            }
            let (a, b, c, d) = (chunk[0], chunk[1], chunk[2], chunk[3]);
            for _ in 0..4 {
                // A random 2-level function of the four bits.
                let l1 = if rng.gen_bool(0.5) {
                    net.and(a, b)
                } else {
                    net.xor(a, b)
                };
                let l2 = if rng.gen_bool(0.5) {
                    net.or(c, d)
                } else {
                    net.xor(c, d)
                };
                let f = match rng.gen_range(0..3) {
                    0 => net.xor(l1, l2),
                    1 => net.and(l1, l2),
                    _ => {
                        let t = net.or(l1, l2);
                        net.xor(t, a)
                    }
                };
                next.push(f);
            }
        }
        // Permutation: seeded rotation-based shuffle (deterministic).
        let n = next.len();
        state = (0..n).map(|i| next[(i * 97 + round * 31) % n]).collect();
    }
    for (i, &s) in state.iter().enumerate().take(data_bits) {
        net.set_output(format!("y{i}"), s);
    }
    net.sweep()
}

/// `clma` stand-in: large multi-level random logic
/// (416 inputs / 115 outputs, ≈ 14 k gates).
pub fn clma() -> Network {
    layered_random(
        "clma",
        &RandomLogicParams {
            inputs: 416,
            outputs: 115,
            gates: 14_000,
            layers: 40,
            seed: 0xC1_4A,
        },
    )
}

/// `s38417` stand-in: the combinational core of the ISCAS-89 circuit
/// (1494 inputs / 1571 outputs, ≈ 9 k gates, shallow and wide).
pub fn s38417() -> Network {
    layered_random(
        "s38417",
        &RandomLogicParams {
            inputs: 1494,
            outputs: 1571,
            gates: 9_500,
            layers: 22,
            seed: 0x38417,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_random_interface_and_determinism() {
        let p = RandomLogicParams {
            inputs: 20,
            outputs: 8,
            gates: 200,
            layers: 10,
            seed: 7,
        };
        let a = layered_random("t", &p);
        let b = layered_random("t", &p);
        assert_eq!(a.num_inputs(), 20);
        assert_eq!(a.num_outputs(), 8);
        assert_eq!(a.num_gates(), b.num_gates());
        let assign: Vec<bool> = (0..20).map(|i| i % 3 == 1).collect();
        assert_eq!(a.eval(&assign), b.eval(&assign));
    }

    #[test]
    fn big_circuits_hit_their_scale() {
        let c = clma();
        assert_eq!((c.num_inputs(), c.num_outputs()), (416, 115));
        let size = c.num_logic_gates();
        assert!((8_000..20_000).contains(&size), "clma size {size}");

        let s = s38417();
        assert_eq!((s.num_inputs(), s.num_outputs()), (1494, 1571));
        let size = s.num_logic_gates();
        assert!((5_000..14_000).contains(&size), "s38417 size {size}");
    }

    #[test]
    fn bigkey_interface_and_scale() {
        let b = bigkey();
        assert_eq!((b.num_inputs(), b.num_outputs()), (487, 421));
        let size = b.num_logic_gates();
        assert!((3_000..12_000).contains(&size), "bigkey size {size}");
    }

    #[test]
    fn outputs_depend_on_inputs() {
        let p = RandomLogicParams {
            inputs: 16,
            outputs: 4,
            gates: 120,
            layers: 8,
            seed: 99,
        };
        let net = layered_random("t", &p);
        let base = net.eval(&[false; 16]);
        let mut changed = false;
        for i in 0..16 {
            let mut assign = vec![false; 16];
            assign[i] = true;
            if net.eval(&assign) != base {
                changed = true;
                break;
            }
        }
        assert!(changed, "at least one input must influence an output");
    }
}
