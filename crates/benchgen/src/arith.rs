//! Arithmetic circuit generators: adders, incrementers, multipliers.
//!
//! Faithful functional stand-ins for the arithmetic MCNC circuits:
//! `my_adder` (16-bit ripple-carry), `cla` (64-bit carry-lookahead),
//! `count` (16-bit loadable incrementer) and `C6288` (16×16 array
//! multiplier).

use mig_netlist::{GateId, Network};

/// Full adder returning `(sum, carry)`.
fn full_adder(net: &mut Network, a: GateId, b: GateId, c: GateId) -> (GateId, GateId) {
    let ab = net.xor(a, b);
    let sum = net.xor(ab, c);
    let carry = net.maj(a, b, c);
    (sum, carry)
}

/// `my_adder` stand-in: a `width`-bit ripple-carry adder with carry-in.
///
/// Interface: `a[width] b[width] cin → s[width] cout`
/// (for `width = 16`: 33 inputs / 17 outputs, matching the MCNC circuit).
pub fn ripple_adder(width: usize) -> Network {
    let mut net = Network::new(format!("my_adder{width}"));
    let a: Vec<GateId> = (0..width).map(|i| net.add_input(format!("a{i}"))).collect();
    let b: Vec<GateId> = (0..width).map(|i| net.add_input(format!("b{i}"))).collect();
    let mut carry = net.add_input("cin");
    for i in 0..width {
        let (s, c) = full_adder(&mut net, a[i], b[i], carry);
        net.set_output(format!("s{i}"), s);
        carry = c;
    }
    net.set_output("cout", carry);
    net
}

/// `cla` stand-in: a `width`-bit carry-lookahead adder built from 4-bit
/// lookahead groups chained hierarchically.
///
/// Interface: `a[width] b[width] cin → s[width] cout`
/// (for `width = 64`: 129 inputs / 65 outputs, matching MCNC `cla`).
pub fn cla_adder(width: usize) -> Network {
    let mut net = Network::new(format!("cla{width}"));
    let a: Vec<GateId> = (0..width).map(|i| net.add_input(format!("a{i}"))).collect();
    let b: Vec<GateId> = (0..width).map(|i| net.add_input(format!("b{i}"))).collect();
    let cin = net.add_input("cin");

    // Bit-level propagate/generate.
    let p: Vec<GateId> = (0..width).map(|i| net.xor(a[i], b[i])).collect();
    let g: Vec<GateId> = (0..width).map(|i| net.and(a[i], b[i])).collect();

    // Lookahead carries in groups of 4: c_{i+1} = g_i + p_i·c_i expanded.
    let mut carries = vec![cin];
    let mut group_cin = cin;
    for base in (0..width).step_by(4) {
        let hi = (base + 4).min(width);
        let mut c = group_cin;
        for i in base..hi {
            // c_{i+1} = g_i | p_i & c_i  — expanded from the group input
            // to keep the lookahead flat inside each group.
            let pc = net.and(p[i], c);
            c = net.or(g[i], pc);
            carries.push(c);
        }
        group_cin = c;
    }
    for i in 0..width {
        let s = net.xor(p[i], carries[i]);
        net.set_output(format!("s{i}"), s);
    }
    net.set_output("cout", carries[width]);
    net
}

/// `count` stand-in: a `width`-bit loadable incrementer.
///
/// Interface: `d[width] l[width] load en cin → q[width]`
/// (for `width = 16`: 35 inputs / 16 outputs, matching MCNC `count`).
///
/// `q = load ? l : d + (en & cin)` — the combinational next-state logic
/// of a loadable counter.
pub fn counter(width: usize) -> Network {
    let mut net = Network::new(format!("count{width}"));
    let d: Vec<GateId> = (0..width).map(|i| net.add_input(format!("d{i}"))).collect();
    let l: Vec<GateId> = (0..width).map(|i| net.add_input(format!("l{i}"))).collect();
    let load = net.add_input("load");
    let en = net.add_input("en");
    let cin = net.add_input("cin");
    let mut carry = net.and(en, cin);
    for i in 0..width {
        let inc = net.xor(d[i], carry);
        carry = net.and(d[i], carry);
        let q = net.mux(load, l[i], inc);
        net.set_output(format!("q{i}"), q);
    }
    net
}

/// `C6288` stand-in: a `width × width` array multiplier (for
/// `width = 16`: 32 inputs / 32 outputs, the ISCAS-85 C6288 interface).
pub fn multiplier(width: usize) -> Network {
    let mut net = Network::new(format!("mul{width}x{width}"));
    let a: Vec<GateId> = (0..width).map(|i| net.add_input(format!("a{i}"))).collect();
    let b: Vec<GateId> = (0..width).map(|i| net.add_input(format!("b{i}"))).collect();

    // Partial products.
    let mut pp: Vec<Vec<GateId>> = Vec::with_capacity(width);
    for bj in &b {
        pp.push(a.iter().map(|&ai| net.and(ai, *bj)).collect());
    }

    // Ripple-carry array reduction, row by row. Invariant: at the start
    // of iteration `j`, `row[i]` holds the accumulated bit of weight
    // `j + i` and `outputs` holds the final bits of weights `0..j`.
    let zero = net.constant(false);
    let mut outputs: Vec<GateId> = vec![pp[0][0]];
    let mut row: Vec<GateId> = pp[0][1..].to_vec();
    row.push(zero);
    for pprow in pp.iter().skip(1) {
        let mut next_row = Vec::with_capacity(width + 1);
        let mut carry = zero;
        for i in 0..width {
            let (s, c) = full_adder(&mut net, pprow[i], row[i], carry);
            next_row.push(s);
            carry = c;
        }
        next_row.push(carry);
        outputs.push(next_row[0]);
        row = next_row[1..].to_vec();
    }
    outputs.extend(row);
    outputs.truncate(2 * width);
    for (i, &o) in outputs.iter().enumerate() {
        net.set_output(format!("p{i}"), o);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_num(net: &Network, assign: &[bool], lo: usize, n: usize) -> u64 {
        let out = net.eval(assign);
        (0..n).fold(0u64, |acc, i| acc | (out[lo + i] as u64) << i)
    }

    fn bits(v: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (v >> i) & 1 == 1).collect()
    }

    #[test]
    fn ripple_adder_adds() {
        let net = ripple_adder(4);
        assert_eq!(net.num_inputs(), 9);
        assert_eq!(net.num_outputs(), 5);
        for a in 0..16u64 {
            for b in 0..16u64 {
                for cin in 0..2u64 {
                    let mut assign = bits(a, 4);
                    assign.extend(bits(b, 4));
                    assign.push(cin == 1);
                    let sum = eval_num(&net, &assign, 0, 4);
                    let cout = eval_num(&net, &assign, 4, 1);
                    assert_eq!(sum | cout << 4, a + b + cin, "{a}+{b}+{cin}");
                }
            }
        }
    }

    #[test]
    fn cla_matches_ripple() {
        let cla = cla_adder(8);
        let rca = ripple_adder(8);
        assert_eq!(cla.num_inputs(), 17);
        assert_eq!(cla.num_outputs(), 9);
        for t in 0..200u64 {
            let a = t.wrapping_mul(97) % 256;
            let b = t.wrapping_mul(61) % 256;
            let cin = t % 2;
            let mut assign = bits(a, 8);
            assign.extend(bits(b, 8));
            assign.push(cin == 1);
            assert_eq!(
                cla.eval(&assign),
                rca.eval(&assign),
                "a={a} b={b} cin={cin}"
            );
        }
    }

    #[test]
    fn counter_increments_and_loads() {
        let net = counter(4);
        assert_eq!(net.num_inputs(), 11);
        assert_eq!(net.num_outputs(), 4);
        for d in 0..16u64 {
            // increment (load=0, en=1, cin=1)
            let mut assign = bits(d, 4);
            assign.extend(bits(0b1010, 4)); // l = 10
            assign.extend([false, true, true]);
            let q = eval_num(&net, &assign, 0, 4);
            assert_eq!(q, (d + 1) % 16, "increment {d}");
            // hold (en=0)
            let mut hold = bits(d, 4);
            hold.extend(bits(0b1010, 4));
            hold.extend([false, false, true]);
            assert_eq!(eval_num(&net, &hold, 0, 4), d, "hold {d}");
            // load
            let mut load = bits(d, 4);
            load.extend(bits(0b1010, 4));
            load.extend([true, true, true]);
            assert_eq!(eval_num(&net, &load, 0, 4), 0b1010, "load {d}");
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let net = multiplier(4);
        assert_eq!(net.num_inputs(), 8);
        assert_eq!(net.num_outputs(), 8);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut assign = bits(a, 4);
                assign.extend(bits(b, 4));
                let p = eval_num(&net, &assign, 0, 8);
                assert_eq!(p, a * b, "{a}×{b}");
            }
        }
    }

    #[test]
    fn c6288_interface() {
        let net = multiplier(16);
        assert_eq!(net.num_inputs(), 32);
        assert_eq!(net.num_outputs(), 32);
        // Spot-check a few products.
        let mut assign = vec![false; 32];
        for (i, bit) in (0..16).map(|i| (i, (12345u64 >> i) & 1 == 1)) {
            assign[i] = bit;
        }
        for (i, bit) in (0..16).map(|i| (i, (54321u64 >> i) & 1 == 1)) {
            assign[16 + i] = bit;
        }
        let out = net.eval(&assign);
        let p = (0..32).fold(0u64, |acc, i| acc | (out[i] as u64) << i);
        assert_eq!(p, 12345 * 54321);
    }
}
