//! Large-scale benchmark generators (100k–1M MIG nodes).
//!
//! The MCNC tier tops out around 15k nodes — far too small to exercise
//! the million-node data-structure work (bounded level maintenance,
//! strash pre-sizing, arena recycling). These generators produce three
//! structurally distinct large circuits:
//!
//! * [`wide_multiplier`] — an `n×n` array multiplier: arithmetic,
//!   XOR/MAJ-dominated, quadratic in `n` (≈ 9.4·n² MIG nodes after the
//!   AOIG transposition), with the long carry chains that stress the
//!   depth passes;
//! * [`alu_stack`] — layers of mux-selected add/xor/and ALU slices
//!   chained operand-to-operand: a control/datapath mix with heavy
//!   reconvergence and a deterministic op schedule drawn from
//!   [`SplitMix64`];
//! * [`ecc_chain`] — an unrolled parity mixer: `stages` rounds of
//!   neighbor XOR with occasional majority taps, linear in
//!   `width × stages` and the deepest circuit of the tier.
//!
//! Every generator is fully deterministic (seeded), so the large tier
//! is reproducible bit-for-bit like the MCNC tier.

use crate::arith::multiplier;
use mig_netlist::{GateId, Network, SplitMix64};

/// An `n×n` array multiplier named `mul{n}x{n}_large`. Thin wrapper
/// over the MCNC `C6288` generator at much larger width; `n = 330`
/// lands at roughly one million MIG nodes, `n = 103` at roughly 100k.
pub fn wide_multiplier(n: usize) -> Network {
    let mut net = multiplier(n);
    net.set_name(format!("mul{n}x{n}_large"));
    net
}

/// A stack of `stages` ALU slices over `width`-bit operands.
///
/// Each stage computes `add`, `xor` and `and` of its two operands and
/// selects per-stage via two control inputs (a mux tree), then feeds
/// the result forward as the next stage's left operand while the right
/// operand rotates through the original input under a seeded schedule.
/// The mix of carry chains (adder), linear layers (xor) and control
/// logic (mux trees) resembles a pipelined datapath flattened into
/// combinational logic.
pub fn alu_stack(width: usize, stages: usize, seed: u64) -> Network {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut net = Network::new(format!("alu{width}x{stages}_large"));
    let a: Vec<GateId> = (0..width).map(|i| net.add_input(format!("a{i}"))).collect();
    let b: Vec<GateId> = (0..width).map(|i| net.add_input(format!("b{i}"))).collect();
    let ctl: Vec<GateId> = (0..2 * stages)
        .map(|i| net.add_input(format!("c{i}")))
        .collect();

    let mut acc = a;
    for stage in 0..stages {
        // Right operand: the original B rotated by a seeded amount, so
        // consecutive stages reconverge on shared input cones without
        // ever being structurally identical.
        let rot = rng.gen_range(1..width);
        let rhs: Vec<GateId> = (0..width).map(|i| b[(i + rot) % width]).collect();
        // Ripple add in 16-bit lanes: carries stay inside a lane, so a
        // stage costs 16 carry levels instead of `width` — the stack's
        // total depth stays in the hundreds even at datapath widths,
        // like a real pipelined ALU rather than one giant adder.
        let mut sum: Vec<GateId> = Vec::with_capacity(width);
        for lane in (0..width).step_by(16) {
            let hi = (lane + 16).min(width);
            let mut carry = net.and(acc[lane], rhs[lane]);
            sum.push(net.xor(acc[lane], rhs[lane]));
            for i in lane + 1..hi {
                let s0 = net.xor(acc[i], rhs[i]);
                sum.push(net.xor(s0, carry));
                carry = net.maj(acc[i], rhs[i], carry);
            }
        }
        // Bitwise lanes and the 3-way select: c1 ? add : (c0 ? xor : and).
        let c0 = ctl[2 * stage];
        let c1 = ctl[2 * stage + 1];
        let mut next: Vec<GateId> = Vec::with_capacity(width);
        for i in 0..width {
            let x = net.xor(acc[i], rhs[i]);
            let n = net.and(acc[i], rhs[i]);
            let low = net.mux(c0, x, n);
            next.push(net.mux(c1, sum[i], low));
        }
        acc = next;
    }
    for (i, &g) in acc.iter().enumerate() {
        net.set_output(format!("y{i}"), g);
    }
    net
}

/// An unrolled parity mixer: `stages` rounds over a `width`-bit state
/// where each round XORs every bit with a seeded distant neighbor, and
/// every eighth bit additionally mixes through a majority tap (keeping
/// the circuit outside the purely linear class). Roughly
/// `3.4 · width · stages` MIG nodes at depth proportional to `stages` —
/// the deep-and-narrow complement to the multiplier's square profile.
pub fn ecc_chain(width: usize, stages: usize, seed: u64) -> Network {
    assert!(width >= 4);
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut net = Network::new(format!("ecc{width}x{stages}_large"));
    let mut state: Vec<GateId> = (0..width).map(|i| net.add_input(format!("d{i}"))).collect();
    for _ in 0..stages {
        let stride = rng.gen_range(1..width);
        let maj_phase = rng.gen_range(0..8);
        let mut next: Vec<GateId> = Vec::with_capacity(width);
        for i in 0..width {
            let partner = state[(i + stride) % width];
            let mixed = net.xor(state[i], partner);
            if i % 8 == maj_phase {
                let third = state[(i + width / 2) % width];
                next.push(net.maj(mixed, partner, third));
            } else {
                next.push(mixed);
            }
        }
        state = next;
    }
    for (i, &g) in state.iter().enumerate() {
        net.set_output(format!("p{i}"), g);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_multiplier_is_a_renamed_multiplier() {
        let net = wide_multiplier(8);
        assert_eq!(net.name(), "mul8x8_large");
        assert_eq!(net.num_inputs(), 16);
        assert_eq!(net.num_outputs(), 16);
    }

    #[test]
    fn alu_stack_interface_and_determinism() {
        let n1 = alu_stack(8, 3, 7);
        let n2 = alu_stack(8, 3, 7);
        assert_eq!(n1.num_inputs(), 8 + 8 + 6);
        assert_eq!(n1.num_outputs(), 8);
        assert_eq!(n1.num_gates(), n2.num_gates(), "seeded → deterministic");
        // A one-stage stack with c = (0,1) selects the adder: check a
        // couple of additions end-to-end.
        let one = alu_stack(4, 1, 7);
        let mut assign = vec![false; one.num_inputs()];
        // a = 3, b is rotated inside the stage, so just check the
        // circuit evaluates and is stable.
        assign[0] = true;
        assign[1] = true;
        let out1 = one.eval(&assign);
        let out2 = one.eval(&assign);
        assert_eq!(out1, out2);
    }

    #[test]
    fn ecc_chain_parity_structure() {
        let net = ecc_chain(16, 4, 11);
        assert_eq!(net.num_inputs(), 16);
        assert_eq!(net.num_outputs(), 16);
        // Deep: at least one XOR per stage on every path.
        assert!(net.depth() >= 4);
        // Deterministic.
        let again = ecc_chain(16, 4, 11);
        assert_eq!(net.num_gates(), again.num_gates());
    }

    #[test]
    fn generators_scale_as_documented() {
        // Small instances; the scaling exponents are what matter.
        let m = wide_multiplier(16).num_logic_gates() as f64;
        let m2 = wide_multiplier(32).num_logic_gates() as f64;
        assert!(m2 / m > 3.5, "multiplier is quadratic, got ×{}", m2 / m);
        let e = ecc_chain(64, 8, 1).num_logic_gates();
        let e2 = ecc_chain(64, 16, 1).num_logic_gates();
        assert!(e2 > e * 3 / 2, "ecc chain is linear in stages");
    }
}
