//! # MCNC-style benchmark circuit generators
//!
//! The MCNC benchmark suite used by the paper's evaluation is not
//! redistributable, so this crate provides deterministic generators that
//! reproduce each circuit's *role*: the same primary-input/output counts,
//! the same structural character (XOR-dominated ECC, array multiplier,
//! carry chains, PLAs, wide random control logic) and a comparable scale.
//! Optimization algorithms only see DAG structure, so these stand-ins
//! exercise the same code paths as the originals; see `DESIGN.md` §3 for
//! the substitution rationale.
//!
//! # Example
//!
//! ```
//! use mig_benchgen::{generate, MCNC_NAMES};
//!
//! let net = generate("alu4").expect("known benchmark");
//! assert_eq!(net.num_inputs(), 14);
//! assert_eq!(net.num_outputs(), 8);
//! assert_eq!(MCNC_NAMES.len(), 14);
//! ```

mod alu;
mod arith;
mod compression;
mod ecc;
mod large;
mod minmax;
mod pla;
mod random_logic;

pub use alu::{alu4, dalu};
pub use arith::{cla_adder, counter, multiplier, ripple_adder};
pub use compression::{compression_circuit, PATTERN_BITS};
pub use ecc::{ecc_c1355, ecc_c1908};
pub use large::{alu_stack, ecc_chain, wide_multiplier};
pub use minmax::minmax;
pub use pla::{b9, misex3, seeded_pla, PlaParams};
pub use random_logic::{bigkey, clma, layered_random, s38417, RandomLogicParams};

use mig_netlist::Network;

/// The 14 MCNC circuits of the paper's Table I, in the paper's order.
pub const MCNC_NAMES: [&str; 14] = [
    "C1355", "C1908", "C6288", "bigkey", "my_adder", "cla", "dalu", "b9", "count", "alu4", "clma",
    "mm30a", "s38417", "misex3",
];

/// The large-tier circuits (100k–1M MIG nodes after import), smallest
/// first so a partial run still covers every structural family.
pub const LARGE_NAMES: [&str; 4] = ["ecc_200k", "alu_400k", "mul_100k", "mul_1m"];

/// Generates the named benchmark circuit, or `None` for unknown names.
/// Knows every [`MCNC_NAMES`] entry and every [`LARGE_NAMES`] entry.
pub fn generate(name: &str) -> Option<Network> {
    Some(match name {
        "C1355" => ecc_c1355(),
        "C1908" => ecc_c1908(),
        "C6288" => {
            let mut net = multiplier(16);
            net.set_name("C6288");
            net
        }
        "bigkey" => bigkey(),
        "my_adder" => {
            let mut net = ripple_adder(16);
            net.set_name("my_adder");
            net
        }
        "cla" => {
            let mut net = cla_adder(64);
            net.set_name("cla");
            net
        }
        "dalu" => dalu(),
        "b9" => b9(),
        "count" => {
            let mut net = counter(16);
            net.set_name("count");
            net
        }
        "alu4" => alu4(),
        "clma" => clma(),
        "mm30a" => {
            let mut net = minmax(30);
            net.set_name("mm30a");
            net
        }
        "s38417" => s38417(),
        "misex3" => misex3(),
        // Large tier: names encode the approximate post-import MIG node
        // count; parameters are fixed so results are reproducible.
        "mul_100k" => {
            let mut net = wide_multiplier(112);
            net.set_name("mul_100k");
            net
        }
        "mul_1m" => {
            let mut net = wide_multiplier(355);
            net.set_name("mul_1m");
            net
        }
        "alu_400k" => {
            let mut net = alu_stack(256, 114, 0xa1a1);
            net.set_name("alu_400k");
            net
        }
        "ecc_200k" => {
            let mut net = ecc_chain(256, 253, 0xecc1);
            net.set_name("ecc_200k");
            net
        }
        _ => return None,
    })
}

/// Generates the full large tier in [`LARGE_NAMES`] order.
pub fn large_suite() -> Vec<Network> {
    LARGE_NAMES
        .iter()
        .map(|n| generate(n).expect("all names are known"))
        .collect()
}

/// Generates the full 14-circuit suite in Table I order.
pub fn mcnc_suite() -> Vec<Network> {
    MCNC_NAMES
        .iter()
        .map(|n| generate(n).expect("all names are known"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table I interface column.
    const EXPECTED_IO: [(&str, usize, usize); 14] = [
        ("C1355", 41, 32),
        ("C1908", 33, 25),
        ("C6288", 32, 32),
        ("bigkey", 487, 421),
        ("my_adder", 33, 17),
        ("cla", 129, 65),
        ("dalu", 75, 16),
        ("b9", 41, 21),
        ("count", 35, 16),
        ("alu4", 14, 8),
        ("clma", 416, 115),
        ("mm30a", 124, 120),
        ("s38417", 1494, 1571),
        ("misex3", 14, 14),
    ];

    #[test]
    fn all_interfaces_match_table1() {
        for (name, ins, outs) in EXPECTED_IO {
            let net = generate(name).expect("known");
            assert_eq!(
                (net.num_inputs(), net.num_outputs()),
                (ins, outs),
                "interface of {name}"
            );
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(generate("nonexistent").is_none());
    }

    #[test]
    fn suite_covers_expected_size_range() {
        // Paper: "ranging from 0.1k to 15k nodes" (post-optimization).
        // Unoptimized primitive counts run a bit larger; check the suite
        // spans two orders of magnitude.
        let suite = mcnc_suite();
        let sizes: Vec<usize> = suite.iter().map(|n| n.num_logic_gates()).collect();
        let min = *sizes.iter().min().expect("non-empty");
        let max = *sizes.iter().max().expect("non-empty");
        assert!(min >= 40, "smallest {min}");
        assert!(max >= 8_000, "largest {max}");
    }
}
