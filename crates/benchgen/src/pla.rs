//! Seeded two-level (PLA) circuit generators: stand-ins for the
//! PLA-derived MCNC circuits `misex3` (14/14) and the control circuit
//! `b9` (41/21).

use mig_netlist::{GateId, Network, SplitMix64};

/// Parameters of a seeded PLA.
#[derive(Debug, Clone)]
pub struct PlaParams {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of product terms.
    pub cubes: usize,
    /// Literal-count range per cube (inclusive).
    pub literals: (usize, usize),
    /// Average number of cubes OR-ed per output.
    pub cubes_per_output: usize,
    /// Generation seed.
    pub seed: u64,
}

fn balanced_tree(
    net: &mut Network,
    mut layer: Vec<GateId>,
    mk: impl Fn(&mut Network, GateId, GateId) -> GateId,
) -> GateId {
    assert!(!layer.is_empty());
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                mk(net, pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        layer = next;
    }
    layer[0]
}

/// Generates a two-level AND/OR network from seeded product terms.
/// Product terms are shared between outputs, as in a real PLA.
pub fn seeded_pla(name: &str, p: &PlaParams) -> Network {
    let mut rng = SplitMix64::seed_from_u64(p.seed);
    let mut net = Network::new(name.to_string());
    let inputs: Vec<GateId> = (0..p.inputs)
        .map(|i| net.add_input(format!("x{i}")))
        .collect();
    let ninputs: Vec<GateId> = inputs.iter().map(|&g| net.not(g)).collect();

    // Product terms: balanced AND trees over random literal sets.
    let mut terms = Vec::with_capacity(p.cubes);
    for _ in 0..p.cubes {
        let nlits = rng.gen_range(p.literals.0..=p.literals.1).min(p.inputs);
        let mut vars: Vec<usize> = (0..p.inputs).collect();
        // Partial shuffle for the chosen variables.
        for i in 0..nlits {
            let j = rng.gen_range(i..vars.len());
            vars.swap(i, j);
        }
        let lits: Vec<GateId> = vars[..nlits]
            .iter()
            .map(|&v| {
                if rng.gen_bool(0.5) {
                    inputs[v]
                } else {
                    ninputs[v]
                }
            })
            .collect();
        terms.push(balanced_tree(&mut net, lits, |n, a, b| n.and(a, b)));
    }

    // Outputs: balanced OR of a random subset of terms (each ≥ 1 term).
    for o in 0..p.outputs {
        let count = rng.gen_range(1..=2 * p.cubes_per_output).clamp(1, p.cubes);
        let mut chosen: Vec<GateId> = (0..count)
            .map(|_| terms[rng.gen_range(0..terms.len())])
            .collect();
        chosen.sort_unstable();
        chosen.dedup();
        let y = balanced_tree(&mut net, chosen, |n, a, b| n.or(a, b));
        net.set_output(format!("y{o}"), y);
    }
    net.sweep()
}

/// `misex3` stand-in: a 14-input / 14-output PLA at the MCNC circuit's
/// scale (a few hundred shared product terms).
pub fn misex3() -> Network {
    seeded_pla(
        "misex3",
        &PlaParams {
            inputs: 14,
            outputs: 14,
            cubes: 220,
            literals: (6, 11),
            cubes_per_output: 28,
            seed: 0x0003_15E3,
        },
    )
}

/// `b9` stand-in: a 41-input / 21-output sparse control PLA
/// (about a hundred gates after sweeping, matching MCNC `b9`).
pub fn b9() -> Network {
    seeded_pla(
        "b9",
        &PlaParams {
            inputs: 41,
            outputs: 21,
            cubes: 55,
            literals: (3, 6),
            cubes_per_output: 4,
            seed: 0xB9,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interfaces() {
        let m = misex3();
        assert_eq!((m.num_inputs(), m.num_outputs()), (14, 14));
        let b = b9();
        assert_eq!((b.num_inputs(), b.num_outputs()), (41, 21));
    }

    #[test]
    fn deterministic() {
        let a = misex3();
        let b = misex3();
        assert_eq!(a.num_gates(), b.num_gates());
        let assign: Vec<bool> = (0..14).map(|i| i % 2 == 0).collect();
        assert_eq!(a.eval(&assign), b.eval(&assign));
    }

    #[test]
    fn two_level_depth_is_logarithmic() {
        // AND trees over ≤ 11 literals + OR trees: depth stays small but
        // nonzero.
        let m = misex3();
        let depth = m.depth();
        assert!((3..=16).contains(&depth), "depth {depth}");
    }

    #[test]
    fn b9_is_small() {
        let b = b9();
        let size = b.num_logic_gates();
        assert!((40..400).contains(&size), "size {size}");
    }

    #[test]
    fn outputs_are_nonconstant() {
        let m = misex3();
        // At least half the outputs toggle across a small sample.
        let mut toggling = 0;
        let base = m.eval(&[false; 14]);
        for t in 0..20u64 {
            let assign: Vec<bool> = (0..14)
                .map(|i| (t >> (i % 6)) & 1 == 1 || i as u64 == t % 14)
                .collect();
            let out = m.eval(&assign);
            toggling += out.iter().zip(&base).filter(|(a, b)| a != b).count();
        }
        assert!(toggling > 0, "outputs never toggle");
    }
}
