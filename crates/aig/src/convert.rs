//! Conversions between [`Aig`] and the generic gate-level [`Network`].

use crate::{Aig, Lit};
use mig_netlist::{GateId, GateKind, Network};
use std::collections::HashMap;

impl Aig {
    /// Imports a gate-level network, decomposing every primitive into
    /// two-input ANDs with complemented edges.
    pub fn from_network(net: &Network) -> Aig {
        let mut aig = Aig::new(net.name().to_string());
        let mut map: HashMap<GateId, Lit> = HashMap::new();
        for (i, &id) in net.inputs().iter().enumerate() {
            let l = aig.add_input(net.input_name(i).to_string());
            map.insert(id, l);
        }
        for (id, gate) in net.iter() {
            if gate.kind() == GateKind::Input {
                continue;
            }
            let f: Vec<Lit> = gate.fanins().iter().map(|g| map[g]).collect();
            let l = match gate.kind() {
                GateKind::Const0 => Lit::FALSE,
                GateKind::Const1 => Lit::TRUE,
                GateKind::Input => unreachable!("filtered above"),
                GateKind::Buf => f[0],
                GateKind::Not => !f[0],
                GateKind::And => f[1..].iter().fold(f[0], |acc, &x| aig.and(acc, x)),
                GateKind::Or => f[1..].iter().fold(f[0], |acc, &x| aig.or(acc, x)),
                GateKind::Xor => f[1..].iter().fold(f[0], |acc, &x| aig.xor(acc, x)),
                GateKind::Xnor => !aig.xor(f[0], f[1]),
                GateKind::Nand => !aig.and(f[0], f[1]),
                GateKind::Nor => !aig.or(f[0], f[1]),
                GateKind::Mux => aig.mux(f[0], f[1], f[2]),
                GateKind::Maj => aig.maj(f[0], f[1], f[2]),
            };
            map.insert(id, l);
        }
        for (name, gate) in net.outputs() {
            aig.add_output(name.clone(), map[gate]);
        }
        aig
    }

    /// Exports the AIG as a network of 2-input AND gates plus inverters.
    pub fn to_network(&self) -> Network {
        let mut net = Network::new(self.name().to_string());
        let mut node_map: Vec<Option<GateId>> = vec![None; self.num_nodes()];
        let mut inverters: HashMap<GateId, GateId> = HashMap::new();
        for i in 0..self.num_inputs() {
            node_map[i + 1] = Some(net.add_input(self.input_name(i).to_string()));
        }
        let mark = self.reachable();

        fn resolve(
            net: &mut Network,
            node_map: &[Option<GateId>],
            inverters: &mut HashMap<GateId, GateId>,
            l: Lit,
        ) -> GateId {
            let base = if l.is_constant() {
                net.constant(false)
            } else {
                node_map[l.node() as usize].expect("children precede parents")
            };
            if l.is_complemented() {
                *inverters
                    .entry(base)
                    .or_insert_with(|| net.add_gate(GateKind::Not, vec![base]))
            } else {
                base
            }
        }

        for node in self.gate_ids() {
            if !mark[node as usize] {
                continue;
            }
            let [a, b] = self.fanins(node);
            let ga = resolve(&mut net, &node_map, &mut inverters, a);
            let gb = resolve(&mut net, &node_map, &mut inverters, b);
            node_map[node as usize] = Some(net.add_gate(GateKind::And, vec![ga, gb]));
        }
        for (name, l) in self.outputs() {
            let id = resolve(&mut net, &node_map, &mut inverters, *l);
            net.set_output(name.clone(), id);
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig_netlist::parse_verilog;

    fn check_equal(net: &Network, aig: &Aig) {
        let n = net.num_inputs();
        assert!(n <= 10);
        for bits in 0..(1u32 << n) {
            let assign: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(net.eval(&assign), aig.eval(&assign), "assign {bits:b}");
        }
    }

    #[test]
    fn import_primitives() {
        let src = "module t(a,b,c,y0,y1,y2,y3);\n\
            input a,b,c; output y0,y1,y2,y3;\n\
            assign y0 = a & b | c;\n\
            assign y1 = a ^ b ^ c;\n\
            assign y2 = c ? a : b;\n\
            assign y3 = maj(a, b, c);\n\
            endmodule";
        let net = parse_verilog(src).expect("parses");
        let aig = Aig::from_network(&net);
        check_equal(&net, &aig);
    }

    #[test]
    fn export_round_trip() {
        let mut aig = Aig::new("rt");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.xor(a, b);
        let m = aig.mux(c, x, a);
        aig.add_output("y", !m);
        let net = aig.to_network();
        check_equal(&net, &aig);
        let back = Aig::from_network(&net);
        assert!(aig.equiv(&back, 4));
        assert_eq!(back.size(), aig.size(), "AND structure preserved");
    }
}
