//! # AND-Inverter Graphs with a `resyn2`-style optimization flow
//!
//! This crate is the "ABC" baseline substrate of the MIG suite: a
//! structurally-hashed [`Aig`] plus the classic optimization passes —
//! [`balance`] (AND-tree depth balancing), [`rewrite`] (4-cut NPN
//! rewriting against a memoized structure database) and [`refactor`]
//! (reconvergence-cut collapse + ISOP refactoring) — glued into the
//! [`resyn2`] script that the paper compares MIG optimization against.
//!
//! # Example
//!
//! ```
//! use mig_aig::{Aig, resyn2};
//!
//! let mut aig = Aig::new("xor3");
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let c = aig.add_input("c");
//! let t = aig.xor(a, b);
//! let f = aig.xor(t, c);
//! aig.add_output("f", f);
//! let opt = resyn2(&aig);
//! assert!(opt.equiv(&aig, 4));
//! ```

mod aig;
mod balance;
mod convert;
pub mod cuts;
mod refactor;
mod resyn;
mod rewrite;

pub use crate::aig::{Aig, Lit};
pub use balance::balance;
pub use refactor::refactor;
pub use resyn::{resyn2, resyn_light};
pub use rewrite::rewrite;
