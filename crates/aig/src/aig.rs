//! The AND-Inverter Graph arena.

use std::collections::HashMap;
use std::fmt;

/// A literal: an AIG node index plus a complement attribute.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Constant false (regular edge to node 0).
    pub const FALSE: Lit = Lit(0);
    /// Constant true (complemented edge to node 0).
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node index and complement flag.
    pub fn new(node: u32, complemented: bool) -> Self {
        Lit(node << 1 | complemented as u32)
    }

    /// The node index.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the edge is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// True for the two constant literals.
    pub fn is_constant(self) -> bool {
        self.node() == 0
    }

    /// Complements the literal iff `c`.
    #[must_use]
    pub fn complement_if(self, c: bool) -> Lit {
        Lit(self.0 ^ c as u32)
    }

    /// Raw packed value.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!a{}", self.node())
        } else {
            write!(f, "a{}", self.node())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An AND-Inverter Graph: the homogeneous AND-node network with
/// complemented edges used by ABC (paper reference \[5\]/\[8\]), implemented
/// with structural hashing and constant/identity simplification at
/// construction.
///
/// Node 0 is constant 0; nodes `1..=num_inputs` are primary inputs;
/// every later node is a two-input AND.
///
/// # Example
///
/// ```
/// use mig_aig::Aig;
///
/// let mut aig = Aig::new("and2");
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let y = aig.and(a, b);
/// aig.add_output("y", y);
/// assert_eq!(aig.size(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Aig {
    name: String,
    nodes: Vec<[Lit; 2]>,
    level: Vec<u32>,
    num_inputs: usize,
    input_names: Vec<String>,
    outputs: Vec<(String, Lit)>,
    strash: HashMap<[Lit; 2], u32>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new(name: impl Into<String>) -> Self {
        Aig {
            name: name.into(),
            nodes: vec![[Lit::FALSE; 2]],
            level: vec![0],
            num_inputs: 0,
            input_names: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input.
    ///
    /// # Panics
    ///
    /// Panics if gates were already created.
    pub fn add_input(&mut self, name: impl Into<String>) -> Lit {
        assert_eq!(
            self.nodes.len(),
            self.num_inputs + 1,
            "all inputs must be added before gates"
        );
        self.nodes.push([Lit::FALSE; 2]);
        self.level.push(0);
        self.num_inputs += 1;
        self.input_names.push(name.into());
        Lit::new(self.num_inputs as u32, false)
    }

    /// The literal of input `i` (0-based).
    pub fn input(&self, i: usize) -> Lit {
        assert!(i < self.num_inputs);
        Lit::new(i as u32 + 1, false)
    }

    /// The name of input `i`.
    pub fn input_name(&self, i: usize) -> &str {
        &self.input_names[i]
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Declares a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, lit: Lit) {
        assert!((lit.node() as usize) < self.nodes.len());
        self.outputs.push((name.into(), lit));
    }

    /// The outputs as `(name, literal)` pairs.
    pub fn outputs(&self) -> &[(String, Lit)] {
        &self.outputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Redirects output `i` to a new literal.
    pub fn set_output(&mut self, i: usize, lit: Lit) {
        assert!((lit.node() as usize) < self.nodes.len());
        self.outputs[i].1 = lit;
    }

    /// True if `node` is an AND gate.
    pub fn is_gate(&self, node: u32) -> bool {
        node as usize > self.num_inputs
    }

    /// True if `node` is a primary input.
    pub fn is_input(&self, node: u32) -> bool {
        (1..=self.num_inputs).contains(&(node as usize))
    }

    /// The two fanins of an AND node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a gate.
    pub fn fanins(&self, node: u32) -> [Lit; 2] {
        assert!(self.is_gate(node), "a{node} is not an AND gate");
        self.nodes[node as usize]
    }

    /// Total arena nodes (constant + inputs + gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Logic level of a node.
    pub fn level_of(&self, node: u32) -> u32 {
        self.level[node as usize]
    }

    /// Logic level of the node a literal points at.
    pub fn level_of_lit(&self, lit: Lit) -> u32 {
        self.level[lit.node() as usize]
    }

    /// Creates (or finds) the AND of two literals, applying the standard
    /// one-level simplification rules.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == b {
            return a;
        }
        if a == !b {
            return Lit::FALSE;
        }
        if a == Lit::FALSE || b == Lit::FALSE {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE {
            return a;
        }
        let key = if a <= b { [a, b] } else { [b, a] };
        if let Some(&n) = self.strash.get(&key) {
            return Lit::new(n, false);
        }
        let n = self.nodes.len() as u32;
        let lvl = 1 + self
            .level
            .get(key[0].node() as usize)
            .copied()
            .unwrap_or(0)
            .max(self.level[key[1].node() as usize]);
        self.nodes.push(key);
        self.level.push(lvl);
        self.strash.insert(key, n);
        Lit::new(n, false)
    }

    /// Probes the strash table without allocating: the literal `AND(a,b)`
    /// would evaluate to, or `None` if a node would be created.
    pub fn lookup_and(&self, a: Lit, b: Lit) -> Option<Lit> {
        if a == b {
            return Some(a);
        }
        if a == !b || a == Lit::FALSE || b == Lit::FALSE {
            return Some(Lit::FALSE);
        }
        if a == Lit::TRUE {
            return Some(b);
        }
        if b == Lit::TRUE {
            return Some(a);
        }
        let key = if a <= b { [a, b] } else { [b, a] };
        self.strash.get(&key).map(|&n| Lit::new(n, false))
    }

    /// Disjunction via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Exclusive-or (3 AND nodes unless simplified).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let t = self.and(a, !b);
        let e = self.and(!a, b);
        self.or(t, e)
    }

    /// If-then-else `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let p = self.and(sel, t);
        let q = self.and(!sel, e);
        self.or(p, q)
    }

    /// Three-input majority (AND/OR decomposition).
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let bc_or = self.or(b, c);
        let bc_and = self.and(b, c);
        self.mux(a, bc_or, bc_and)
    }

    /// Marks nodes reachable from the outputs.
    pub fn reachable(&self) -> Vec<bool> {
        let mut mark = vec![false; self.nodes.len()];
        mark[..=self.num_inputs].fill(true);
        let mut stack: Vec<u32> = self.outputs.iter().map(|&(_, l)| l.node()).collect();
        while let Some(n) = stack.pop() {
            if mark[n as usize] {
                continue;
            }
            mark[n as usize] = true;
            for l in self.nodes[n as usize] {
                stack.push(l.node());
            }
        }
        mark
    }

    /// Size: reachable AND nodes (ABC's node count metric).
    pub fn size(&self) -> usize {
        let mark = self.reachable();
        (self.num_inputs + 1..self.nodes.len())
            .filter(|&i| mark[i])
            .count()
    }

    /// Depth: maximum level over the outputs.
    pub fn depth(&self) -> u32 {
        self.outputs
            .iter()
            .map(|&(_, l)| self.level[l.node() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Fanout count per node over reachable gates and outputs.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mark = self.reachable();
        let mut counts = vec![0u32; self.nodes.len()];
        for (i, fanins) in self.nodes.iter().enumerate().skip(self.num_inputs + 1) {
            if !mark[i] {
                continue;
            }
            for l in fanins {
                counts[l.node() as usize] += 1;
            }
        }
        for &(_, l) in &self.outputs {
            counts[l.node() as usize] += 1;
        }
        counts
    }

    /// Iterates over gate node indices in topological (arena) order.
    pub fn gate_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (self.num_inputs + 1..self.nodes.len()).map(|i| i as u32)
    }

    /// Returns a compacted copy without dead nodes.
    pub fn cleanup(&self) -> Aig {
        let mut out = Aig::new(self.name.clone());
        for name in &self.input_names {
            out.add_input(name.clone());
        }
        let mark = self.reachable();
        let mut map: Vec<Lit> = vec![Lit::FALSE; self.nodes.len()];
        for (i, m) in map.iter_mut().enumerate().take(self.num_inputs + 1) {
            *m = Lit::new(i as u32, false);
        }
        for i in self.num_inputs + 1..self.nodes.len() {
            if !mark[i] {
                continue;
            }
            let [a, b] = self.nodes[i];
            let na = map[a.node() as usize].complement_if(a.is_complemented());
            let nb = map[b.node() as usize].complement_if(b.is_complemented());
            map[i] = out.and(na, nb);
        }
        for (name, l) in &self.outputs {
            let m = map[l.node() as usize].complement_if(l.is_complemented());
            out.add_output(name.clone(), m);
        }
        out
    }

    /// Evaluates the outputs under a boolean assignment.
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = assignment
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        self.simulate_words(&words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }

    /// 64-way parallel simulation.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != num_inputs()`.
    pub fn simulate_words(&self, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(input_words.len(), self.num_inputs);
        let mut values = vec![0u64; self.nodes.len()];
        for (i, &w) in input_words.iter().enumerate() {
            values[i + 1] = w;
        }
        let val = |values: &[u64], l: Lit| {
            let v = values[l.node() as usize];
            if l.is_complemented() {
                !v
            } else {
                v
            }
        };
        for i in self.num_inputs + 1..self.nodes.len() {
            let [a, b] = self.nodes[i];
            values[i] = val(&values, a) & val(&values, b);
        }
        self.outputs.iter().map(|&(_, l)| val(&values, l)).collect()
    }

    /// Equivalence check: exhaustive for ≤ 16 inputs, random otherwise.
    pub fn equiv(&self, other: &Aig, rounds: usize) -> bool {
        assert_eq!(self.num_inputs(), other.num_inputs());
        assert_eq!(self.num_outputs(), other.num_outputs());
        if self.num_inputs <= 16 {
            let n = self.num_inputs;
            let total: usize = 1 << n;
            // Pack assignments in 64-bit words: pattern p gets bit p%64.
            for base in (0..total).step_by(64) {
                let words: Vec<u64> = (0..n)
                    .map(|v| {
                        let mut w = 0u64;
                        for b in 0..64.min(total - base) {
                            if ((base + b) >> v) & 1 == 1 {
                                w |= 1 << b;
                            }
                        }
                        w
                    })
                    .collect();
                if self.simulate_words(&words) != other.simulate_words(&words) {
                    return false;
                }
            }
            return true;
        }
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..rounds {
            let words: Vec<u64> = (0..self.num_inputs).map(|_| next()).collect();
            if self.simulate_words(&words) != other.simulate_words(&words) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_rules() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.and(a, Lit::TRUE), a);
        assert_eq!(aig.and(Lit::FALSE, b), Lit::FALSE);
        assert_eq!(aig.num_nodes(), 3, "no gate allocated");
    }

    #[test]
    fn strashing() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g1 = aig.and(a, b);
        let g2 = aig.and(b, a);
        assert_eq!(g1, g2);
        assert_eq!(aig.size(), 0, "unused gates are dead");
        aig.add_output("y", g1);
        assert_eq!(aig.size(), 1);
    }

    #[test]
    fn derived_gates() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let or = aig.or(a, b);
        let xor = aig.xor(a, b);
        let mux = aig.mux(c, a, b);
        let maj = aig.maj(a, b, c);
        aig.add_output("or", or);
        aig.add_output("xor", xor);
        aig.add_output("mux", mux);
        aig.add_output("maj", maj);
        for bits in 0..8u32 {
            let v = [(bits & 1) == 1, (bits >> 1) & 1 == 1, (bits >> 2) & 1 == 1];
            let out = aig.eval(&v);
            assert_eq!(out[0], v[0] | v[1]);
            assert_eq!(out[1], v[0] ^ v[1]);
            assert_eq!(out[2], if v[2] { v[0] } else { v[1] });
            assert_eq!(out[3], (v[0] && v[1]) || (v[2] && (v[0] || v[1])));
        }
    }

    #[test]
    fn levels_and_depth() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g1 = aig.and(a, b);
        let g2 = aig.and(g1, c);
        aig.add_output("y", g2);
        assert_eq!(aig.level_of_lit(g1), 1);
        assert_eq!(aig.level_of_lit(g2), 2);
        assert_eq!(aig.depth(), 2);
    }

    #[test]
    fn cleanup_compacts() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let keep = aig.and(a, b);
        let _dead = aig.or(a, b);
        aig.add_output("y", !keep);
        let clean = aig.cleanup();
        assert_eq!(clean.size(), 1);
        assert!(clean.equiv(&aig, 4));
    }

    #[test]
    fn exhaustive_equiv_detects_mismatch() {
        let mut a1 = Aig::new("a");
        let x = a1.add_input("x");
        let y = a1.add_input("y");
        let g = a1.and(x, y);
        a1.add_output("o", g);
        let mut a2 = Aig::new("b");
        let x2 = a2.add_input("x");
        let y2 = a2.add_input("y");
        let g2 = a2.or(x2, y2);
        a2.add_output("o", g2);
        assert!(!a1.equiv(&a2, 4));
    }

    #[test]
    fn lookup_and_matches_and() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        assert_eq!(aig.lookup_and(a, b), None);
        let g = aig.and(a, b);
        assert_eq!(aig.lookup_and(b, a), Some(g));
        assert_eq!(aig.lookup_and(a, Lit::TRUE), Some(a));
        assert_eq!(aig.lookup_and(a, !a), Some(Lit::FALSE));
    }
}
