//! The `resyn2`-style optimization script (the paper's ABC baseline).
//!
//! ABC's `resyn2` alias is `b; rw; rf; b; rw; rwz; b; rfz; rwz; b`.
//! The same pass sequence is reproduced here on our own AIG, with a
//! size-guard around each rewriting pass (a pass whose global result is
//! worse than its input is discarded — the estimates inside `rw`/`rf`
//! are heuristic).

use crate::balance::balance;
use crate::refactor::refactor;
use crate::rewrite::rewrite;
use crate::Aig;

/// One pass of the script with a size guard.
fn guarded(aig: &Aig, zero_gain: bool, pass: impl Fn(&Aig, bool) -> Aig) -> Aig {
    let cand = pass(aig, zero_gain).cleanup();
    let better = if zero_gain {
        cand.size() <= aig.size()
    } else {
        cand.size() < aig.size()
    };
    if better {
        cand
    } else {
        aig.cleanup()
    }
}

/// Runs the `resyn2` sequence: `b; rw; rf; b; rw; rwz; b; rfz; rwz; b`.
///
/// The result is functionally equivalent to the input, never larger, and
/// usually both smaller and shallower.
///
/// # Example
///
/// ```
/// use mig_aig::{Aig, resyn2};
///
/// let mut aig = Aig::new("t");
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let c = aig.add_input("c");
/// // f = ab + ab'c — redundant; resyn2 finds a(b + c).
/// let ab = aig.and(a, b);
/// let nb_c = aig.and(!b, c);
/// let anbc = aig.and(a, nb_c);
/// let f = aig.or(ab, anbc);
/// aig.add_output("f", f);
/// let opt = resyn2(&aig);
/// assert!(opt.equiv(&aig, 4));
/// assert!(opt.size() < aig.size());
/// ```
pub fn resyn2(aig: &Aig) -> Aig {
    let mut cur = balance(aig);
    cur = guarded(&cur, false, rewrite);
    cur = guarded(&cur, false, refactor);
    cur = balance(&cur);
    cur = guarded(&cur, false, rewrite);
    cur = guarded(&cur, true, rewrite);
    cur = balance(&cur);
    cur = guarded(&cur, true, refactor);
    cur = guarded(&cur, true, rewrite);
    cur = balance(&cur);
    cur.cleanup()
}

/// A lighter script (`b; rw; b`) for very large designs where the full
/// sequence is too slow.
pub fn resyn_light(aig: &Aig) -> Aig {
    let mut cur = balance(aig);
    cur = guarded(&cur, false, rewrite);
    cur = balance(&cur);
    cur.cleanup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lit;

    #[test]
    fn resyn2_on_adder_slice() {
        // A 4-bit ripple-carry adder: resyn2 must preserve function and
        // not increase size.
        let mut aig = Aig::new("add4");
        let a: Vec<Lit> = (0..4).map(|i| aig.add_input(format!("a{i}"))).collect();
        let b: Vec<Lit> = (0..4).map(|i| aig.add_input(format!("b{i}"))).collect();
        let mut carry = Lit::FALSE;
        for i in 0..4 {
            let s1 = aig.xor(a[i], b[i]);
            let sum = aig.xor(s1, carry);
            let c1 = aig.and(a[i], b[i]);
            let c2 = aig.and(s1, carry);
            carry = aig.or(c1, c2);
            aig.add_output(format!("s{i}"), sum);
        }
        aig.add_output("cout", carry);
        let before = (aig.size(), aig.depth());
        let opt = resyn2(&aig);
        assert!(opt.equiv(&aig, 8));
        assert!(opt.size() <= before.0);
    }

    #[test]
    fn resyn2_removes_redundancy() {
        let mut aig = Aig::new("red");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        // (a&b) | (a&b&c) == a&b, plus duplicated logic.
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        let f = aig.or(ab, abc);
        let g = aig.and(f, ab);
        aig.add_output("f", g);
        let opt = resyn2(&aig);
        assert!(opt.equiv(&aig, 4));
        assert_eq!(opt.size(), 1, "everything collapses to a&b");
    }

    #[test]
    fn resyn_light_is_sound() {
        let mut aig = Aig::new("l");
        let ins: Vec<Lit> = (0..6).map(|i| aig.add_input(format!("x{i}"))).collect();
        let mut acc = ins[0];
        for &l in &ins[1..] {
            acc = aig.xor(acc, l);
        }
        aig.add_output("f", acc);
        let opt = resyn_light(&aig);
        assert!(opt.equiv(&aig, 4));
        assert!(opt.size() <= aig.size());
        assert!(opt.depth() <= aig.depth());
    }
}
