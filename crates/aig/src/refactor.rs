//! Cut-based refactoring (ABC's `refactor` / `rf` pass).
//!
//! For every node, a reconvergence-driven cut of up to `max_leaves` leaves
//! is collapsed into a truth table, resynthesized through ISOP +
//! algebraic factoring, and the factored form is rebuilt bottom-up. The
//! rewrite is committed when it saves nodes (`zero_gain` additionally
//! accepts neutral restructurings, which often enable later passes).

use crate::{Aig, Lit};
use mig_tt::{factor_sop, isop, FactoredForm, TruthTable};

/// Maximum cut width for refactoring (truth tables stay tiny).
pub const REFACTOR_MAX_LEAVES: usize = 10;

/// Computes a reconvergence-driven cut of at most `max_leaves` leaves by
/// greedily expanding the deepest expandable leaf.
pub(crate) fn reconv_cut(aig: &Aig, node: u32, max_leaves: usize) -> Vec<u32> {
    let mut leaves: Vec<u32> = vec![node];
    loop {
        // Find the deepest gate leaf whose expansion keeps the bound.
        let mut best: Option<(usize, u32)> = None;
        for (i, &l) in leaves.iter().enumerate() {
            if !aig.is_gate(l) {
                continue;
            }
            let [a, b] = aig.fanins(l);
            let mut growth = 0usize;
            for f in [a.node(), b.node()] {
                if !leaves.contains(&f) && f != 0 {
                    growth += 1;
                }
            }
            if leaves.len() - 1 + growth > max_leaves {
                continue;
            }
            match best {
                Some((_, bl)) if aig.level_of(bl) >= aig.level_of(l) => {}
                _ => best = Some((i, l)),
            }
        }
        let Some((i, l)) = best else { break };
        leaves.swap_remove(i);
        let [a, b] = aig.fanins(l);
        for f in [a.node(), b.node()] {
            if f != 0 && !leaves.contains(&f) {
                leaves.push(f);
            }
        }
    }
    leaves.sort_unstable();
    leaves
}

/// Truth table of `node` over the cut `leaves` (local cone simulation).
pub(crate) fn cone_tt(aig: &Aig, node: u32, leaves: &[u32]) -> TruthTable {
    let nv = leaves.len();
    assert!(nv <= 16);
    let mut memo: std::collections::HashMap<u32, TruthTable> = std::collections::HashMap::new();
    memo.insert(0, TruthTable::zeros(nv));
    for (i, &l) in leaves.iter().enumerate() {
        memo.insert(l, TruthTable::var(i, nv));
    }
    fn rec(aig: &Aig, n: u32, memo: &mut std::collections::HashMap<u32, TruthTable>) -> TruthTable {
        if let Some(t) = memo.get(&n) {
            return t.clone();
        }
        assert!(aig.is_gate(n), "cone must be bounded by the leaves");
        let [a, b] = aig.fanins(n);
        let ta = {
            let t = rec(aig, a.node(), memo);
            if a.is_complemented() {
                t.not()
            } else {
                t
            }
        };
        let tb = {
            let t = rec(aig, b.node(), memo);
            if b.is_complemented() {
                t.not()
            } else {
                t
            }
        };
        let t = ta.and(&tb);
        memo.insert(n, t.clone());
        t
    }
    rec(aig, node, &mut memo)
}

/// Size of the maximal fanout-free cone of `node` bounded by `leaves`:
/// the number of AND nodes that would die if `node` were re-implemented.
pub(crate) fn mffc_size(aig: &Aig, node: u32, leaves: &[u32], fanout: &[u32]) -> usize {
    use std::collections::HashMap;
    let mut refs: HashMap<u32, u32> = HashMap::new();
    fn deref(
        aig: &Aig,
        n: u32,
        leaves: &[u32],
        fanout: &[u32],
        refs: &mut HashMap<u32, u32>,
    ) -> usize {
        let mut count = 1usize;
        for l in aig.fanins(n) {
            let c = l.node();
            if !aig.is_gate(c) || leaves.binary_search(&c).is_ok() {
                continue;
            }
            let r = refs.entry(c).or_insert(fanout[c as usize]);
            *r -= 1;
            if *r == 0 {
                count += deref(aig, c, leaves, fanout, refs);
            }
        }
        count
    }
    deref(aig, node, leaves, fanout, &mut refs)
}

/// Builds a factored form bottom-up in `out` over the given leaf
/// literals, with balanced AND/OR folds.
pub(crate) fn build_factored(out: &mut Aig, ff: &FactoredForm, leaf_lits: &[Lit]) -> Lit {
    match ff {
        FactoredForm::Const(false) => Lit::FALSE,
        FactoredForm::Const(true) => Lit::TRUE,
        FactoredForm::Literal { var, positive } => leaf_lits[*var].complement_if(!positive),
        FactoredForm::And(parts) => {
            let mut lits: Vec<Lit> = parts
                .iter()
                .map(|p| build_factored(out, p, leaf_lits))
                .collect();
            balanced_fold(out, &mut lits, false)
        }
        FactoredForm::Or(parts) => {
            let mut lits: Vec<Lit> = parts
                .iter()
                .map(|p| build_factored(out, p, leaf_lits))
                .collect();
            balanced_fold(out, &mut lits, true)
        }
    }
}

fn balanced_fold(out: &mut Aig, lits: &mut Vec<Lit>, is_or: bool) -> Lit {
    if is_or {
        for l in lits.iter_mut() {
            *l = !*l;
        }
    }
    while lits.len() > 1 {
        lits.sort_by_key(|&l| std::cmp::Reverse(out.level_of_lit(l)));
        let a = lits.pop().expect("len > 1");
        let b = lits.pop().expect("len > 1");
        let g = out.and(a, b);
        lits.push(g);
    }
    let res = lits.pop().unwrap_or(Lit::TRUE);
    if is_or {
        !res
    } else {
        res
    }
}

/// Conservative dry run: how many new nodes building `ff` would allocate,
/// using only the strash table (a `None` intermediate counts as a miss
/// and poisons its parents).
pub(crate) fn dry_run_factored(out: &Aig, ff: &FactoredForm, leaf_lits: &[Lit]) -> usize {
    fn rec(out: &Aig, ff: &FactoredForm, leaf_lits: &[Lit], misses: &mut usize) -> Option<Lit> {
        match ff {
            FactoredForm::Const(false) => Some(Lit::FALSE),
            FactoredForm::Const(true) => Some(Lit::TRUE),
            FactoredForm::Literal { var, positive } => {
                Some(leaf_lits[*var].complement_if(!positive))
            }
            FactoredForm::And(parts) | FactoredForm::Or(parts) => {
                let is_or = matches!(ff, FactoredForm::Or(_));
                let mut acc: Option<Lit> = None;
                let mut first = true;
                for p in parts {
                    let lit = rec(out, p, leaf_lits, misses).map(|l| l.complement_if(is_or));
                    if first {
                        acc = lit;
                        first = false;
                        continue;
                    }
                    acc = match (acc, lit) {
                        (Some(a), Some(b)) => match out.lookup_and(a, b) {
                            Some(l) => Some(l),
                            None => {
                                *misses += 1;
                                None
                            }
                        },
                        _ => {
                            *misses += 1;
                            None
                        }
                    };
                }
                acc.map(|l| l.complement_if(is_or))
            }
        }
    }
    let mut misses = 0usize;
    let _ = rec(out, ff, leaf_lits, &mut misses);
    misses
}

/// One refactoring pass over the whole AIG.
///
/// With `zero_gain = false` only strictly size-reducing rewrites are
/// applied (ABC's `rf`); with `true`, neutral ones as well (`rfz`).
pub fn refactor(aig: &Aig, zero_gain: bool) -> Aig {
    let fanout = aig.fanout_counts();
    let mark = aig.reachable();
    let mut out = Aig::new(aig.name().to_string());
    for i in 0..aig.num_inputs() {
        out.add_input(aig.input_name(i).to_string());
    }
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for (i, m) in map.iter_mut().enumerate().take(aig.num_inputs() + 1) {
        *m = Lit::new(i as u32, false);
    }
    for node in aig.gate_ids() {
        if !mark[node as usize] {
            continue;
        }
        let [fa, fb] = aig.fanins(node);
        let da = map[fa.node() as usize].complement_if(fa.is_complemented());
        let db = map[fb.node() as usize].complement_if(fb.is_complemented());

        let leaves = reconv_cut(aig, node, REFACTOR_MAX_LEAVES);
        let mut chosen: Option<Lit> = None;
        if leaves.len() >= 3 && !leaves.contains(&node) {
            let tt = cone_tt(aig, node, &leaves);
            // Prefer the cheaper polarity.
            let ff_pos = factor_sop(&isop(&tt));
            let ff_neg = factor_sop(&isop(&tt.not()));
            let (ff, flip) = if ff_neg.num_literals() < ff_pos.num_literals() {
                (ff_neg, true)
            } else {
                (ff_pos, false)
            };
            let leaf_lits: Vec<Lit> = leaves.iter().map(|&l| map[l as usize]).collect();
            let added = dry_run_factored(&out, &ff, &leaf_lits);
            let saved = mffc_size(aig, node, &leaves, &fanout);
            let gain_ok = if zero_gain {
                added <= saved
            } else {
                added < saved
            };
            if gain_ok {
                let lit = build_factored(&mut out, &ff, &leaf_lits);
                chosen = Some(lit.complement_if(flip));
            }
        }
        map[node as usize] = chosen.unwrap_or_else(|| out.and(da, db));
    }
    for (name, l) in aig.outputs() {
        let m = map[l.node() as usize].complement_if(l.is_complemented());
        out.add_output(name.clone(), m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconv_cut_bounds_leaves() {
        let mut aig = Aig::new("t");
        let ins: Vec<Lit> = (0..8).map(|i| aig.add_input(format!("x{i}"))).collect();
        let mut acc = ins[0];
        for &l in &ins[1..] {
            acc = aig.xor(acc, l);
        }
        aig.add_output("y", acc);
        let cut = reconv_cut(&aig, acc.node(), 5);
        assert!(cut.len() <= 5, "cut {cut:?}");
    }

    #[test]
    fn cone_tt_matches_simulation() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.xor(a, b);
        let m = aig.mux(c, x, a);
        aig.add_output("y", m);
        let leaves = vec![a.node(), b.node(), c.node()];
        // cone_tt computes the function of the *node*; the mux literal may
        // be complemented (OR via De Morgan), so compensate.
        let tt = cone_tt(&aig, m.node(), &leaves);
        for bits in 0..8usize {
            let assign = [bits & 1 == 1, (bits >> 1) & 1 == 1, (bits >> 2) & 1 == 1];
            let node_val = aig.eval(&assign)[0] ^ m.is_complemented();
            assert_eq!(tt.get_bit(bits), node_val, "bits {bits}");
        }
    }

    #[test]
    fn mffc_counts_exclusive_cone() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let g1 = aig.and(a, b);
        let g2 = aig.and(g1, c);
        aig.add_output("y", g2);
        let fanout = aig.fanout_counts();
        let leaves = vec![a.node(), b.node(), c.node()];
        assert_eq!(mffc_size(&aig, g2.node(), &leaves, &fanout), 2);
        // Share g1: it no longer belongs to g2's MFFC.
        aig.add_output("z", g1);
        let fanout = aig.fanout_counts();
        assert_eq!(mffc_size(&aig, g2.node(), &leaves, &fanout), 1);
    }

    #[test]
    fn refactor_reduces_redundant_logic() {
        // f = ab + ab'c  ⇒  a(b + c): 4 ANDs naively, 2 after refactor.
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let nbc = aig.and(!b, c);
        let anbc = aig.and(a, nbc);
        let f = aig.or(ab, anbc);
        aig.add_output("f", f);
        let before = aig.size();
        let opt = refactor(&aig, false).cleanup();
        assert!(opt.equiv(&aig, 4));
        assert!(opt.size() < before, "{} !< {}", opt.size(), before);
    }

    #[test]
    fn refactor_zero_gain_is_sound() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let x = aig.xor(a, b);
        let y = aig.xor(c, d);
        let f = aig.and(x, y);
        aig.add_output("f", f);
        let opt = refactor(&aig, true).cleanup();
        assert!(opt.equiv(&aig, 4));
    }

    #[test]
    fn refactor_never_changes_function_random() {
        // A denser random structure.
        let mut aig = Aig::new("t");
        let ins: Vec<Lit> = (0..6).map(|i| aig.add_input(format!("x{i}"))).collect();
        let mut pool = ins.clone();
        let mut state = 12345u64;
        let mut rnd = move |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as usize) % m
        };
        for _ in 0..30 {
            let a = pool[rnd(pool.len())].complement_if(rnd(2) == 1);
            let b = pool[rnd(pool.len())].complement_if(rnd(2) == 1);
            let g = aig.and(a, b);
            pool.push(g);
        }
        let f = *pool.last().expect("nonempty");
        aig.add_output("f", f);
        let opt = refactor(&aig, false).cleanup();
        assert!(opt.equiv(&aig, 4));
        assert!(opt.size() <= aig.size());
    }
}
