//! AND-tree balancing (ABC's `balance` pass).
//!
//! Maximal single-fanout AND trees are collected into their leaf lists
//! and rebuilt as minimum-depth trees by always pairing the two
//! shallowest leaves (a Huffman-style construction, optimal for
//! uniform-delay two-input gates).

use crate::{Aig, Lit};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Rebuilds the AIG with every AND tree depth-balanced.
///
/// The result is functionally equivalent; its depth is at most the
/// input's and its size at most the input's (strashing may merge more).
///
/// # Example
///
/// ```
/// use mig_aig::{Aig, balance};
///
/// let mut aig = Aig::new("chain");
/// let ins: Vec<_> = (0..8).map(|i| aig.add_input(format!("x{i}"))).collect();
/// let y = ins[1..].iter().fold(ins[0], |acc, &x| aig.and(acc, x));
/// aig.add_output("y", y);
/// assert_eq!(aig.depth(), 7);
/// let b = balance(&aig);
/// assert!(b.equiv(&aig, 4));
/// assert_eq!(b.depth(), 3);
/// ```
pub fn balance(aig: &Aig) -> Aig {
    let fanout = aig.fanout_counts();
    let mark = aig.reachable();
    let mut out = Aig::new(aig.name().to_string());
    for i in 0..aig.num_inputs() {
        out.add_input(aig.input_name(i).to_string());
    }
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for (i, m) in map.iter_mut().enumerate().take(aig.num_inputs() + 1) {
        *m = Lit::new(i as u32, false);
    }

    // A gate is an internal tree node when it feeds exactly one parent,
    // through a regular (non-complemented) edge, and is not an output.
    // Internal nodes are skipped: their tree root rebuilds them.
    let mut internal = vec![false; aig.num_nodes()];
    {
        let mut uses: Vec<(u32, bool)> = vec![(0, true); aig.num_nodes()]; // (count, all_regular)
        for n in aig.gate_ids() {
            if !mark[n as usize] {
                continue;
            }
            for l in aig.fanins(n) {
                let e = &mut uses[l.node() as usize];
                e.0 += 1;
                e.1 &= !l.is_complemented();
            }
        }
        for &(_, l) in aig.outputs() {
            let e = &mut uses[l.node() as usize];
            e.0 += 1;
            e.1 = false; // treat output drivers as roots
        }
        for n in aig.gate_ids() {
            let (count, all_regular) = uses[n as usize];
            internal[n as usize] = mark[n as usize] && count == 1 && all_regular;
        }
    }
    let _ = fanout;

    // Collect the leaves of the AND tree rooted at `root` (old graph).
    fn collect_leaves(aig: &Aig, internal: &[bool], root: u32, leaves: &mut Vec<Lit>) {
        for l in aig.fanins(root) {
            if !l.is_complemented() && aig.is_gate(l.node()) && internal[l.node() as usize] {
                collect_leaves(aig, internal, l.node(), leaves);
            } else {
                leaves.push(l);
            }
        }
    }

    for n in aig.gate_ids() {
        if !mark[n as usize] || internal[n as usize] {
            continue;
        }
        let mut leaves = Vec::new();
        collect_leaves(aig, &internal, n, &mut leaves);
        // Map leaves into the new graph and pair the shallowest first.
        let mut heap: BinaryHeap<(Reverse<u32>, Lit)> = leaves
            .into_iter()
            .map(|l| {
                let m = map[l.node() as usize].complement_if(l.is_complemented());
                (Reverse(out.level_of_lit(m)), m)
            })
            .collect();
        while heap.len() > 1 {
            let (_, a) = heap.pop().expect("len > 1");
            let (_, b) = heap.pop().expect("len > 1");
            let g = out.and(a, b);
            heap.push((Reverse(out.level_of_lit(g)), g));
        }
        map[n as usize] = heap.pop().map(|(_, l)| l).expect("tree has a root");
    }

    for (name, l) in aig.outputs() {
        let m = map[l.node() as usize].complement_if(l.is_complemented());
        out.add_output(name.clone(), m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balances_or_chain_too() {
        // OR chains are AND chains on complemented edges after De Morgan;
        // each OR's inner AND is used complemented, so trees still form.
        let mut aig = Aig::new("or-chain");
        let ins: Vec<Lit> = (0..8).map(|i| aig.add_input(format!("x{i}"))).collect();
        let y = ins[1..].iter().fold(ins[0], |acc, &x| aig.or(acc, x));
        aig.add_output("y", y);
        assert_eq!(aig.depth(), 7);
        let b = balance(&aig);
        assert!(b.equiv(&aig, 4));
        assert_eq!(b.depth(), 3, "OR chain balances through De Morgan");
    }

    #[test]
    fn respects_shared_fanout() {
        // A shared node must not be duplicated into both trees.
        let mut aig = Aig::new("shared");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let shared = aig.and(a, b);
        let t1 = aig.and(shared, c);
        let t2 = aig.and(shared, a);
        aig.add_output("y", t1);
        aig.add_output("z", t2);
        let bal = balance(&aig);
        assert!(bal.equiv(&aig, 4));
        assert!(bal.size() <= aig.size());
    }

    #[test]
    fn already_balanced_is_stable() {
        let mut aig = Aig::new("tree");
        let ins: Vec<Lit> = (0..4).map(|i| aig.add_input(format!("x{i}"))).collect();
        let l = aig.and(ins[0], ins[1]);
        let r = aig.and(ins[2], ins[3]);
        let y = aig.and(l, r);
        aig.add_output("y", y);
        let b = balance(&aig);
        assert_eq!(b.depth(), 2);
        assert_eq!(b.size(), 3);
        assert!(b.equiv(&aig, 4));
    }

    #[test]
    fn uneven_arrival_levels() {
        // Leaves at different levels: Huffman pairing keeps depth minimal.
        let mut aig = Aig::new("uneven");
        let ins: Vec<Lit> = (0..6).map(|i| aig.add_input(format!("x{i}"))).collect();
        let deep = aig.xor(ins[0], ins[1]); // level 2
        let y0 = aig.and(deep, ins[2]);
        let y1 = aig.and(y0, ins[3]);
        let y2 = aig.and(y1, ins[4]);
        let y3 = aig.and(y2, ins[5]);
        aig.add_output("y", y3);
        let b = balance(&aig);
        assert!(b.equiv(&aig, 4));
        // deep(2) with 4 level-0 leaves: optimal depth is 3.
        assert_eq!(b.depth(), 3);
    }
}
