//! Cut rewriting against an NPN class database (ABC's `rewrite` / `rw`).
//!
//! Every 4-feasible cut function is NPN-canonized; a per-class optimized
//! structure (synthesized once from the factored irredundant cover and
//! memoized) is pasted in place of the cut when it saves nodes.

use crate::cuts::{enumerate_cuts, Cut};
use crate::refactor::mffc_size;
use crate::{Aig, Lit};
use mig_tt::{factor_sop, isop, npn_canonize, FactoredForm, NpnTransform, TruthTable};
use std::collections::HashMap;

/// A literal inside a [`MiniAig`]: index 0 is constant 0, `1..=4` are the
/// canonical inputs, `5..` are steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MiniLit(u8);

impl MiniLit {
    const FALSE: MiniLit = MiniLit(0);
    const TRUE: MiniLit = MiniLit(1);

    fn var(i: usize) -> Self {
        MiniLit(((i as u8) + 1) << 1)
    }

    fn step(i: usize) -> Self {
        MiniLit(((i as u8) + 5) << 1)
    }

    fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    fn complement_if(self, c: bool) -> Self {
        MiniLit(self.0 ^ c as u8)
    }
}

impl std::ops::Not for MiniLit {
    type Output = MiniLit;

    fn not(self) -> MiniLit {
        MiniLit(self.0 ^ 1)
    }
}

/// A small pre-synthesized AIG structure over 4 canonical inputs.
#[derive(Debug, Clone)]
pub(crate) struct MiniAig {
    steps: Vec<[MiniLit; 2]>,
    out: MiniLit,
}

struct MiniBuilder {
    steps: Vec<[MiniLit; 2]>,
    strash: HashMap<[u8; 2], usize>,
}

impl MiniBuilder {
    fn new() -> Self {
        MiniBuilder {
            steps: Vec::new(),
            strash: HashMap::new(),
        }
    }

    fn and(&mut self, a: MiniLit, b: MiniLit) -> MiniLit {
        if a == b {
            return a;
        }
        if a == !b || a == MiniLit::FALSE || b == MiniLit::FALSE {
            return MiniLit::FALSE;
        }
        if a == MiniLit::TRUE {
            return b;
        }
        if b == MiniLit::TRUE {
            return a;
        }
        let key = if a.0 <= b.0 { [a.0, b.0] } else { [b.0, a.0] };
        if let Some(&i) = self.strash.get(&key) {
            return MiniLit::step(i);
        }
        let i = self.steps.len();
        self.steps.push([MiniLit(key[0]), MiniLit(key[1])]);
        self.strash.insert(key, i);
        MiniLit::step(i)
    }

    fn build_factored(&mut self, ff: &FactoredForm) -> MiniLit {
        match ff {
            FactoredForm::Const(false) => MiniLit::FALSE,
            FactoredForm::Const(true) => MiniLit::TRUE,
            FactoredForm::Literal { var, positive } => MiniLit::var(*var).complement_if(!positive),
            FactoredForm::And(parts) => {
                let lits: Vec<MiniLit> = parts.iter().map(|p| self.build_factored(p)).collect();
                self.fold(lits, false)
            }
            FactoredForm::Or(parts) => {
                let lits: Vec<MiniLit> = parts.iter().map(|p| self.build_factored(p)).collect();
                self.fold(lits, true)
            }
        }
    }

    fn fold(&mut self, mut lits: Vec<MiniLit>, is_or: bool) -> MiniLit {
        if is_or {
            for l in &mut lits {
                *l = !*l;
            }
        }
        while lits.len() > 1 {
            // Balanced pairing front-to-back.
            let mut next = Vec::with_capacity(lits.len().div_ceil(2));
            for pair in lits.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.and(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            lits = next;
        }
        let res = lits.pop().unwrap_or(MiniLit::TRUE);
        if is_or {
            !res
        } else {
            res
        }
    }
}

/// Synthesizes a structure for a canonical 4-variable function from its
/// cheaper-polarity factored cover.
pub(crate) fn synthesize_structure(canon: &TruthTable) -> MiniAig {
    let ff_pos = factor_sop(&isop(canon));
    let ff_neg = factor_sop(&isop(&canon.not()));
    let (ff, flip) = if ff_neg.num_literals() < ff_pos.num_literals() {
        (ff_neg, true)
    } else {
        (ff_pos, false)
    };
    let mut b = MiniBuilder::new();
    let out = b.build_factored(&ff).complement_if(flip);
    MiniAig {
        steps: b.steps,
        out,
    }
}

/// Pastes `mini` into `out` with the given input literals; returns the
/// output literal.
fn paste(out: &mut Aig, mini: &MiniAig, inputs: &[Lit; 4]) -> Lit {
    let mut vals: Vec<Lit> = Vec::with_capacity(5 + mini.steps.len());
    vals.push(Lit::FALSE);
    vals.extend_from_slice(inputs);
    for [a, b] in &mini.steps {
        let la = vals[a.index()].complement_if(a.is_complemented());
        let lb = vals[b.index()].complement_if(b.is_complemented());
        let g = out.and(la, lb);
        vals.push(g);
    }
    vals[mini.out.index()].complement_if(mini.out.is_complemented())
}

/// Dry run of [`paste`]: counts strash misses without allocating.
fn dry_run(out: &Aig, mini: &MiniAig, inputs: &[Lit; 4]) -> usize {
    let mut vals: Vec<Option<Lit>> = Vec::with_capacity(5 + mini.steps.len());
    vals.push(Some(Lit::FALSE));
    vals.extend(inputs.iter().map(|&l| Some(l)));
    let mut misses = 0usize;
    for [a, b] in &mini.steps {
        let la = vals[a.index()].map(|l| l.complement_if(a.is_complemented()));
        let lb = vals[b.index()].map(|l| l.complement_if(b.is_complemented()));
        let res = match (la, lb) {
            (Some(x), Some(y)) => out.lookup_and(x, y),
            _ => None,
        };
        if res.is_none() {
            misses += 1;
        }
        vals.push(res);
    }
    misses
}

/// Maps a cut's leaf literals through the recorded NPN transform so that
/// the canonical structure computes the original cut function.
///
/// With `canon = T(f)` (flip inputs, permute, flip output), we have
/// `f(x₀..x₃) = canon(y₀..y₃)^out_flip` where `yᵢ = x_{perm[i]} ^
/// flip_{perm[i]}`.
fn transform_inputs(tr: &NpnTransform, leaf_lits: &[Lit]) -> ([Lit; 4], bool) {
    let mut inputs = [Lit::FALSE; 4];
    for (input, &src) in inputs.iter_mut().zip(&tr.perm) {
        let base = leaf_lits.get(src).copied().unwrap_or(Lit::FALSE);
        *input = base.complement_if((tr.input_flips >> src) & 1 == 1);
    }
    (inputs, tr.output_flip)
}

/// Lifts a ≤ 4-leaf cut function to a full 4-variable table (functions
/// over fewer leaves repeat periodically in the extra variables).
fn lift_tt(cut: &Cut) -> u16 {
    let width = 1usize << cut.leaves.len();
    let mut v = 0u16;
    for i in 0..16 {
        if (cut.tt >> (i % width)) & 1 == 1 {
            v |= 1 << i;
        }
    }
    v
}

/// One rewriting pass over the whole AIG (`rw`, or `rwz` with
/// `zero_gain`).
///
/// NPN canonization results and synthesized structures are memoized per
/// 16-bit function, so the expensive exact canonization runs once per
/// distinct cut function in the design.
pub fn rewrite(aig: &Aig, zero_gain: bool) -> Aig {
    let cuts = enumerate_cuts(aig, 4, 8);
    let fanout = aig.fanout_counts();
    let mark = aig.reachable();
    let mut db: HashMap<TruthTable, MiniAig> = HashMap::new();
    let mut canon_cache: HashMap<u16, (TruthTable, NpnTransform)> = HashMap::new();

    let mut out = Aig::new(aig.name().to_string());
    for i in 0..aig.num_inputs() {
        out.add_input(aig.input_name(i).to_string());
    }
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for (i, m) in map.iter_mut().enumerate().take(aig.num_inputs() + 1) {
        *m = Lit::new(i as u32, false);
    }

    for node in aig.gate_ids() {
        if !mark[node as usize] {
            continue;
        }
        let [fa, fb] = aig.fanins(node);
        let da = map[fa.node() as usize].complement_if(fa.is_complemented());
        let db_lit = map[fb.node() as usize].complement_if(fb.is_complemented());

        // Evaluate every eligible cut's gain; keep the best.
        let mut best: Option<(isize, [Lit; 4], bool, MiniAig)> = None;
        for cut in &cuts[node as usize] {
            if cut.leaves.len() < 3 || cut.leaves.contains(&node) {
                continue;
            }
            let bits = lift_tt(cut);
            if bits == 0 || bits == 0xFFFF {
                continue;
            }
            let (canon, tr) = canon_cache
                .entry(bits)
                .or_insert_with(|| npn_canonize(&TruthTable::from_u64(4, bits as u64)))
                .clone();
            let mini = db
                .entry(canon.clone())
                .or_insert_with(|| synthesize_structure(&canon))
                .clone();
            let leaf_lits: Vec<Lit> = cut.leaves.iter().map(|&l| map[l as usize]).collect();
            let (inputs, out_flip) = transform_inputs(&tr, &leaf_lits);
            let added = dry_run(&out, &mini, &inputs) as isize;
            let saved = mffc_size(aig, node, &cut.leaves, &fanout) as isize;
            let gain = saved - added;
            let acceptable = if zero_gain { gain >= 0 } else { gain > 0 };
            if !acceptable {
                continue;
            }
            match best {
                Some((g, _, _, _)) if g >= gain => {}
                _ => best = Some((gain, inputs, out_flip, mini)),
            }
        }

        map[node as usize] = match best {
            Some((_, inputs, out_flip, mini)) => {
                paste(&mut out, &mini, &inputs).complement_if(out_flip)
            }
            None => out.and(da, db_lit),
        };
    }
    for (name, l) in aig.outputs() {
        let m = map[l.node() as usize].complement_if(l.is_complemented());
        out.add_output(name.clone(), m);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks that a synthesized structure computes its canonical function.
    fn check_structure(canon: &TruthTable) {
        let mini = synthesize_structure(canon);
        let mut aig = Aig::new("probe");
        let ins: [Lit; 4] = std::array::from_fn(|i| aig.add_input(format!("x{i}")));
        let out = paste(&mut aig, &mini, &ins);
        aig.add_output("y", out);
        for bits in 0..16usize {
            let assign: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(
                aig.eval(&assign)[0],
                canon.get_bit(bits),
                "canon {canon} bits {bits:04b}"
            );
        }
    }

    #[test]
    fn structures_compute_their_class() {
        let a = TruthTable::var(0, 4);
        let b = TruthTable::var(1, 4);
        let c = TruthTable::var(2, 4);
        let d = TruthTable::var(3, 4);
        for f in [
            a.and(&b).or(&c.and(&d)),
            a.xor(&b).xor(&c),
            TruthTable::maj(&a, &b, &c),
            a.and(&b).and(&c).and(&d),
            TruthTable::mux(&a, &b, &c),
        ] {
            let (canon, _) = npn_canonize(&f);
            check_structure(&canon);
        }
    }

    #[test]
    fn npn_paste_reproduces_original_function() {
        // End-to-end: canonize an arbitrary function, paste its canonical
        // structure through the transform, verify the original returns.
        let mut state = 0xDEADBEEFu64;
        for _ in 0..20 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let f = TruthTable::from_u64(4, state >> 32 & 0xFFFF);
            if f.is_zero() || f.is_one() {
                continue;
            }
            let (canon, tr) = npn_canonize(&f);
            let mini = synthesize_structure(&canon);
            let mut aig = Aig::new("probe");
            let ins: Vec<Lit> = (0..4).map(|i| aig.add_input(format!("x{i}"))).collect();
            let (inputs, out_flip) = transform_inputs(&tr, &ins);
            let out = paste(&mut aig, &mini, &inputs).complement_if(out_flip);
            aig.add_output("y", out);
            for bits in 0..16usize {
                let assign: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
                assert_eq!(
                    aig.eval(&assign)[0],
                    f.get_bit(bits),
                    "f {f} bits {bits:04b}"
                );
            }
        }
    }

    #[test]
    fn rewrite_preserves_function() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let x = aig.xor(a, b);
        let m = aig.mux(c, x, d);
        let f = aig.and(m, a);
        aig.add_output("f", f);
        let opt = rewrite(&aig, false).cleanup();
        assert!(opt.equiv(&aig, 4));
        assert!(opt.size() <= aig.size());
    }

    #[test]
    fn rewrite_reduces_nonoptimal_mux() {
        // A MUX built wastefully: sel?a:a plus redundancy collapses.
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let s = aig.add_input("s");
        let t1 = aig.and(s, a);
        let t2 = aig.and(!s, b);
        let t3 = aig.and(s, b);
        let o1 = aig.or(t1, t2);
        let o2 = aig.or(t1, t3);
        let f = aig.and(o1, o2);
        aig.add_output("f", f);
        let before = aig.size();
        let opt = rewrite(&aig, false).cleanup();
        assert!(opt.equiv(&aig, 4));
        assert!(opt.size() < before, "{} !< {}", opt.size(), before);
    }

    #[test]
    fn rewrite_zero_gain_sound() {
        let mut aig = Aig::new("t");
        let ins: Vec<Lit> = (0..5).map(|i| aig.add_input(format!("x{i}"))).collect();
        let mut acc = ins[0];
        for &l in &ins[1..] {
            acc = aig.mux(l, acc, ins[0]);
        }
        aig.add_output("f", acc);
        let opt = rewrite(&aig, true).cleanup();
        assert!(opt.equiv(&aig, 4));
    }
}
