//! K-feasible cut enumeration with cut truth tables (k ≤ 4).
//!
//! Cuts drive the rewriting pass: each cut of a node is a small window
//! whose function (a ≤ 4-variable truth table) can be NPN-matched against
//! a database of pre-optimized structures.

use crate::Aig;

/// A cut: a set of leaf nodes and the function of the root over them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// Sorted leaf node indices.
    pub leaves: Vec<u32>,
    /// Truth table of the root over `leaves` (leaf `i` = variable `i`),
    /// valid in the low `2^leaves.len()` bits.
    pub tt: u16,
}

impl Cut {
    /// The unit cut of a node (function = projection of its only leaf).
    pub fn unit(node: u32) -> Self {
        Cut {
            leaves: vec![node],
            tt: 0b10,
        }
    }

    /// True if `other`'s leaves are a subset of this cut's leaves.
    pub fn dominates(&self, other: &Cut) -> bool {
        self.leaves
            .iter()
            .all(|l| other.leaves.binary_search(l).is_ok())
    }

    fn mask(&self) -> u16 {
        if self.leaves.len() >= 4 {
            0xFFFF
        } else {
            (1u16 << (1 << self.leaves.len())) - 1
        }
    }
}

/// Expands `tt` over `from` leaves onto the superset `to` leaves.
fn expand_tt(tt: u16, from: &[u32], to: &[u32]) -> u16 {
    let positions: Vec<usize> = from
        .iter()
        .map(|l| to.binary_search(l).expect("from ⊆ to"))
        .collect();
    let mut out = 0u16;
    for i in 0..(1usize << to.len()) {
        let mut j = 0usize;
        for (bit, &pos) in positions.iter().enumerate() {
            if (i >> pos) & 1 == 1 {
                j |= 1 << bit;
            }
        }
        if (tt >> j) & 1 == 1 {
            out |= 1 << i;
        }
    }
    out
}

/// Enumerates up to `max_cuts` k-feasible cuts per node (k ≤ 4), smallest
/// cuts first. Every node also keeps its unit cut (last).
///
/// # Panics
///
/// Panics if `k > 4` (truth tables are 16-bit).
pub fn enumerate_cuts(aig: &Aig, k: usize, max_cuts: usize) -> Vec<Vec<Cut>> {
    assert!(k <= 4, "cut truth tables are 16-bit (k ≤ 4)");
    let n = aig.num_nodes();
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); n];
    // Constant node: empty cut, function 0.
    cuts[0] = vec![Cut {
        leaves: vec![],
        tt: 0,
    }];
    for (i, c) in cuts
        .iter_mut()
        .enumerate()
        .take(aig.num_inputs() + 1)
        .skip(1)
    {
        *c = vec![Cut::unit(i as u32)];
    }
    for node in aig.gate_ids() {
        let [fa, fb] = aig.fanins(node);
        let mut new_cuts: Vec<Cut> = Vec::new();
        for ca in &cuts[fa.node() as usize] {
            for cb in &cuts[fb.node() as usize] {
                // Merge leaf sets.
                let mut leaves = ca.leaves.clone();
                for &l in &cb.leaves {
                    if let Err(pos) = leaves.binary_search(&l) {
                        leaves.insert(pos, l);
                    }
                }
                if leaves.len() > k {
                    continue;
                }
                let mut ta = expand_tt(ca.tt, &ca.leaves, &leaves);
                let mut tb = expand_tt(cb.tt, &cb.leaves, &leaves);
                if fa.is_complemented() {
                    ta = !ta;
                }
                if fb.is_complemented() {
                    tb = !tb;
                }
                let cut = Cut {
                    leaves,
                    tt: ta & tb,
                };
                let cut = Cut {
                    tt: cut.tt & cut.mask(),
                    ..cut
                };
                // Dominance filtering.
                if new_cuts.iter().any(|c| c.dominates(&cut)) {
                    continue;
                }
                new_cuts.retain(|c| !cut.dominates(c));
                new_cuts.push(cut);
            }
        }
        new_cuts.sort_by_key(|c| c.leaves.len());
        new_cuts.truncate(max_cuts);
        new_cuts.push(Cut::unit(node));
        cuts[node as usize] = new_cuts;
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lit;

    /// Evaluates a cut function against brute-force node simulation.
    fn check_cut(aig: &Aig, node: u32, cut: &Cut) {
        let n = aig.num_inputs();
        for bits in 0..(1u32 << n) {
            let assign: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            // Node values via a probe output.
            let mut probe = aig.clone();
            probe.add_output("probe", Lit::new(node, false));
            for (i, &leaf) in cut.leaves.iter().enumerate() {
                probe.add_output(format!("leaf{i}"), Lit::new(leaf, false));
            }
            let outs = probe.eval(&assign);
            let base = outs.len() - cut.leaves.len();
            let node_val = outs[base - 1];
            let mut idx = 0usize;
            for i in 0..cut.leaves.len() {
                if outs[base + i] {
                    idx |= 1 << i;
                }
            }
            assert_eq!(
                (cut.tt >> idx) & 1 == 1,
                node_val,
                "cut {cut:?} at node {node}, assignment {bits:04b}"
            );
        }
    }

    #[test]
    fn cut_functions_are_correct() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let x = aig.xor(a, b);
        let m = aig.mux(c, x, d);
        aig.add_output("y", m);
        let cuts = enumerate_cuts(&aig, 4, 8);
        for node in aig.gate_ids() {
            for cut in &cuts[node as usize] {
                check_cut(&aig, node, cut);
            }
        }
    }

    #[test]
    fn four_input_cut_found_for_xor_mux() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let x = aig.xor(a, b);
        let m = aig.mux(c, x, d);
        aig.add_output("y", m);
        let cuts = enumerate_cuts(&aig, 4, 8);
        let root_cuts = &cuts[m.node() as usize];
        let want = vec![a.node(), b.node(), c.node(), d.node()];
        assert!(
            root_cuts.iter().any(|cut| cut.leaves == want),
            "the PI cut must be enumerated: {root_cuts:?}"
        );
    }

    #[test]
    fn dominated_cuts_are_removed() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g1 = aig.and(a, b);
        let g2 = aig.and(g1, a); // g2 ≡ g1, structure a&b&a
        aig.add_output("y", g2);
        let cuts = enumerate_cuts(&aig, 4, 8);
        // No cut should strictly contain another cut's leaves.
        for node in aig.gate_ids() {
            let list = &cuts[node as usize];
            for (i, c1) in list.iter().enumerate() {
                for (j, c2) in list.iter().enumerate() {
                    if i != j && c1.leaves != c2.leaves {
                        assert!(
                            !(c1.dominates(c2) && c1.leaves.len() < c2.leaves.len()),
                            "cut {c2:?} dominated by {c1:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn expand_tt_identity() {
        // var0 over [5] onto [3,5]: var becomes index 1.
        assert_eq!(expand_tt(0b10, &[5], &[3, 5]), 0b1100);
        // AND over [2,7] onto [2,5,7]: f(a,c) = a&c.
        let expanded = expand_tt(0b1000, &[2, 7], &[2, 5, 7]);
        for i in 0..8 {
            let a = i & 1 == 1;
            let c = (i >> 2) & 1 == 1;
            assert_eq!((expanded >> i) & 1 == 1, a && c);
        }
    }
}
