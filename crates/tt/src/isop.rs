//! Irredundant sum-of-products extraction (Minato–Morreale procedure).
//!
//! Given a completely-specified function — or an incompletely-specified one
//! as an interval `[lower, upper]` — [`isop`] / [`isop_interval`] produce an
//! irredundant cube cover: no cube and no literal can be dropped without
//! leaving the interval. The cover feeds algebraic factoring
//! ([`crate::factor`]) in refactoring-style resynthesis.

use crate::TruthTable;

/// A product term over up to 32 variables.
///
/// A variable `v` participates when bit `v` of `mask` is set; its polarity
/// is bit `v` of `polarity` (1 = positive literal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cube {
    /// Participating-variable mask.
    pub mask: u32,
    /// Polarity bits for participating variables.
    pub polarity: u32,
}

impl Cube {
    /// The universal cube (no literals — constant 1).
    pub const UNIVERSE: Cube = Cube {
        mask: 0,
        polarity: 0,
    };

    /// Single-literal cube.
    pub fn literal(var: usize, positive: bool) -> Self {
        Cube {
            mask: 1 << var,
            polarity: if positive { 1 << var } else { 0 },
        }
    }

    /// Adds a literal, returning the extended cube.
    #[must_use]
    pub fn with_literal(mut self, var: usize, positive: bool) -> Self {
        self.mask |= 1 << var;
        if positive {
            self.polarity |= 1 << var;
        } else {
            self.polarity &= !(1 << var);
        }
        self
    }

    /// Number of literals in the cube.
    pub fn num_literals(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Evaluates the cube under an input assignment (bit `v` = variable `v`).
    pub fn eval(&self, assignment: u32) -> bool {
        (assignment ^ self.polarity) & self.mask == 0
    }

    /// Truth table of the cube over `num_vars` variables.
    pub fn to_truth_table(&self, num_vars: usize) -> TruthTable {
        let mut t = TruthTable::ones(num_vars);
        for v in 0..num_vars {
            if (self.mask >> v) & 1 == 1 {
                let lit = TruthTable::var(v, num_vars);
                t = t.and(&if (self.polarity >> v) & 1 == 1 {
                    lit
                } else {
                    lit.not()
                });
            }
        }
        t
    }
}

/// A sum of products: a disjunction of [`Cube`]s over `num_vars` variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sop {
    /// Number of variables in the function's domain.
    pub num_vars: usize,
    /// The cubes (OR-ed together).
    pub cubes: Vec<Cube>,
}

impl Sop {
    /// The constant-0 cover.
    pub fn zero(num_vars: usize) -> Self {
        Sop {
            num_vars,
            cubes: vec![],
        }
    }

    /// Total number of literals across all cubes.
    pub fn num_literals(&self) -> u32 {
        self.cubes.iter().map(Cube::num_literals).sum()
    }

    /// Truth table of the whole cover.
    pub fn to_truth_table(&self) -> TruthTable {
        let mut t = TruthTable::zeros(self.num_vars);
        for c in &self.cubes {
            t = t.or(&c.to_truth_table(self.num_vars));
        }
        t
    }
}

/// Computes an irredundant SOP cover of the completely-specified function
/// `f`.
///
/// # Example
///
/// ```
/// use mig_tt::{isop, TruthTable};
///
/// let a = TruthTable::var(0, 3);
/// let b = TruthTable::var(1, 3);
/// let c = TruthTable::var(2, 3);
/// let cover = isop(&TruthTable::maj(&a, &b, &c));
/// assert_eq!(cover.to_truth_table(), TruthTable::maj(&a, &b, &c));
/// assert_eq!(cover.cubes.len(), 3); // ab + ac + bc
/// ```
pub fn isop(f: &TruthTable) -> Sop {
    isop_interval(f, f)
}

/// Computes an irredundant cover `g` with `lower ⊆ g ⊆ upper`.
///
/// # Panics
///
/// Panics if `lower ⊄ upper` or variable counts differ.
pub fn isop_interval(lower: &TruthTable, upper: &TruthTable) -> Sop {
    assert_eq!(lower.num_vars(), upper.num_vars());
    assert!(
        lower.and(&upper.not()).is_zero(),
        "lower bound must imply upper bound"
    );
    let (cubes, _) = isop_rec(lower, upper, lower.num_vars());
    Sop {
        num_vars: lower.num_vars(),
        cubes,
    }
}

fn isop_rec(lower: &TruthTable, upper: &TruthTable, nv: usize) -> (Vec<Cube>, TruthTable) {
    if lower.is_zero() {
        return (vec![], TruthTable::zeros(nv));
    }
    if upper.is_one() {
        return (vec![Cube::UNIVERSE], TruthTable::ones(nv));
    }
    // Split on the highest variable either bound depends on; one must exist
    // because `upper` is not constant-1 and `lower` is not constant-0.
    let var = (0..nv)
        .rev()
        .find(|&v| lower.depends_on(v) || upper.depends_on(v))
        .expect("non-constant interval must have a splitting variable");

    let l0 = lower.cofactor0(var);
    let l1 = lower.cofactor1(var);
    let u0 = upper.cofactor0(var);
    let u1 = upper.cofactor1(var);

    // Cubes that must contain the negative / positive literal of `var`.
    let (c0, cov0) = isop_rec(&l0.and(&u1.not()), &u0, nv);
    let (c1, cov1) = isop_rec(&l1.and(&u0.not()), &u1, nv);

    // What remains to be covered without using `var`.
    let lnew = l0.and(&cov0.not()).or(&l1.and(&cov1.not()));
    let (cs, covs) = isop_rec(&lnew, &u0.and(&u1), nv);

    let mut cubes = Vec::with_capacity(c0.len() + c1.len() + cs.len());
    cubes.extend(c0.into_iter().map(|c| c.with_literal(var, false)));
    cubes.extend(c1.into_iter().map(|c| c.with_literal(var, true)));
    cubes.extend(cs);

    let x = TruthTable::var(var, nv);
    let cover = x.not().and(&cov0).or(&x.and(&cov1)).or(&covs);
    (cubes, cover)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars3() -> (TruthTable, TruthTable, TruthTable) {
        (
            TruthTable::var(0, 3),
            TruthTable::var(1, 3),
            TruthTable::var(2, 3),
        )
    }

    #[test]
    fn cube_eval() {
        let c = Cube::literal(0, true).with_literal(2, false);
        assert!(c.eval(0b001));
        assert!(!c.eval(0b101));
        assert!(!c.eval(0b000));
        assert_eq!(c.num_literals(), 2);
    }

    #[test]
    fn isop_constants() {
        assert!(isop(&TruthTable::zeros(3)).cubes.is_empty());
        let one = isop(&TruthTable::ones(3));
        assert_eq!(one.cubes, vec![Cube::UNIVERSE]);
    }

    #[test]
    fn isop_covers_function() {
        let (a, b, c) = vars3();
        for f in [
            a.and(&b).or(&c),
            a.xor(&b).xor(&c),
            TruthTable::maj(&a, &b, &c),
            a.clone(),
            a.not().and(&b.not()).and(&c.not()),
        ] {
            let cover = isop(&f);
            assert_eq!(cover.to_truth_table(), f, "function {f}");
        }
    }

    #[test]
    fn isop_exhaustive_3vars() {
        for bits in 0u64..256 {
            let f = TruthTable::from_u64(3, bits);
            assert_eq!(isop(&f).to_truth_table(), f, "bits {bits:02x}");
        }
    }

    #[test]
    fn isop_is_irredundant_on_maj() {
        let (a, b, c) = vars3();
        let f = TruthTable::maj(&a, &b, &c);
        let cover = isop(&f);
        // Dropping any cube must lose coverage.
        for skip in 0..cover.cubes.len() {
            let mut t = TruthTable::zeros(3);
            for (i, cube) in cover.cubes.iter().enumerate() {
                if i != skip {
                    t = t.or(&cube.to_truth_table(3));
                }
            }
            assert_ne!(t, f, "cube {skip} is redundant");
        }
    }

    #[test]
    fn isop_interval_respects_bounds() {
        let (a, b, _) = vars3();
        let lower = a.and(&b);
        let upper = a.or(&b);
        let cover = isop_interval(&lower, &upper);
        let g = cover.to_truth_table();
        assert!(lower.and(&g.not()).is_zero(), "lower ⊆ g");
        assert!(g.and(&upper.not()).is_zero(), "g ⊆ upper");
        // With the whole interval free, a single-literal cover suffices.
        assert_eq!(cover.num_literals(), 1);
    }

    #[test]
    #[should_panic(expected = "lower bound must imply upper bound")]
    fn isop_interval_rejects_bad_bounds() {
        let (a, b, _) = vars3();
        let _ = isop_interval(&a.or(&b), &a.and(&b));
    }

    #[test]
    fn isop_xor_has_four_cubes() {
        let (a, b, c) = vars3();
        let f = a.xor(&b).xor(&c);
        let cover = isop(&f);
        // Parity of 3 vars needs exactly 4 minterm cubes.
        assert_eq!(cover.cubes.len(), 4);
        assert!(cover.cubes.iter().all(|c| c.num_literals() == 3));
    }
}
