//! Truth-table machinery for logic synthesis.
//!
//! This crate provides the Boolean-function plumbing shared by every other
//! crate in the MIG suite:
//!
//! * [`TruthTable`] — a bit-packed truth table for functions of up to 16
//!   variables, with the usual Boolean operations, cofactoring and support
//!   computation.
//! * [`npn`] — exact NPN canonization for small functions (≤ 6 variables),
//!   used by cut rewriting and Boolean matching.
//! * [`mig_db`] — the NPN-class → optimal-majority-structure database
//!   behind cut-based MIG rewriting, with a `u16`-specialized 4-variable
//!   canonizer for the enumeration hot path.
//! * [`mod@isop`] — Minato–Morreale irredundant sum-of-products extraction.
//! * [`factor`] — algebraic factoring of an SOP into a literal-count-cheap
//!   factored form, used by AIG refactoring.
//!
//! # Example
//!
//! ```
//! use mig_tt::TruthTable;
//!
//! let a = TruthTable::var(0, 3);
//! let b = TruthTable::var(1, 3);
//! let c = TruthTable::var(2, 3);
//! let maj = TruthTable::maj(&a, &b, &c);
//! assert_eq!(maj.count_ones(), 4);
//! ```

#![warn(missing_docs)]

pub mod factor;
pub mod isop;
pub mod mig_db;
pub mod npn;
mod truth_table;

pub use factor::{factor_sop, FactoredForm};
pub use isop::{isop, Cube, Sop};
pub use mig_db::{
    npn4_apply, npn4_canonize, npn4_class_representatives, MigDatabase, MigLit, MigProgram,
    Npn4Transform, NUM_NPN4_CLASSES,
};
pub use npn::{npn_canonize, NpnTransform};
pub use truth_table::TruthTable;
