//! Bit-packed truth tables for Boolean functions of up to 16 variables.

use std::fmt;

/// Maximum number of variables supported by [`TruthTable`].
pub const MAX_VARS: usize = 16;

/// A truth table over `num_vars` Boolean variables, packed into 64-bit words.
///
/// Bit `i` of the table is the function value under the input assignment
/// whose binary encoding is `i` (variable 0 is the least significant bit of
/// the assignment index). Tables with fewer than 6 variables occupy a single
/// partially-used word; unused high bits are always kept zero so that
/// equality and hashing are structural.
///
/// # Example
///
/// ```
/// use mig_tt::TruthTable;
///
/// let a = TruthTable::var(0, 2);
/// let b = TruthTable::var(1, 2);
/// let and = a.and(&b);
/// assert_eq!(and.get_bit(0b11), true);
/// assert_eq!(and.get_bit(0b01), false);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

fn word_count(num_vars: usize) -> usize {
    if num_vars <= 6 {
        1
    } else {
        1 << (num_vars - 6)
    }
}

fn word_mask(num_vars: usize) -> u64 {
    if num_vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1 << num_vars)) - 1
    }
}

/// Per-word pattern of variable `v` for `v < 6`.
const VAR_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

impl TruthTable {
    /// Creates the constant-0 function over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 16`.
    pub fn zeros(num_vars: usize) -> Self {
        assert!(
            num_vars <= MAX_VARS,
            "truth table limited to {MAX_VARS} vars"
        );
        TruthTable {
            num_vars,
            words: vec![0; word_count(num_vars)],
        }
    }

    /// Creates the constant-1 function over `num_vars` variables.
    pub fn ones(num_vars: usize) -> Self {
        let mut t = Self::zeros(num_vars);
        let mask = word_mask(num_vars);
        for w in &mut t.words {
            *w = mask;
        }
        t
    }

    /// Creates the projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars` or `num_vars > 16`.
    pub fn var(var: usize, num_vars: usize) -> Self {
        assert!(var < num_vars, "var {var} out of range for {num_vars} vars");
        let mut t = Self::zeros(num_vars);
        if var < 6 {
            let mask = word_mask(num_vars);
            for w in &mut t.words {
                *w = VAR_PATTERNS[var] & mask;
            }
        } else {
            let stride = 1usize << (var - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if (i / stride) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        t
    }

    /// Builds a table from raw words (little-endian bit order).
    ///
    /// Extra high bits beyond `2^num_vars` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` does not match the required word count.
    pub fn from_words(num_vars: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), word_count(num_vars), "wrong word count");
        let mut t = TruthTable { num_vars, words };
        t.mask_off();
        t
    }

    /// Builds a ≤ 6-variable table from a single word.
    pub fn from_u64(num_vars: usize, bits: u64) -> Self {
        assert!(num_vars <= 6);
        let mut t = TruthTable {
            num_vars,
            words: vec![bits],
        };
        t.mask_off();
        t
    }

    /// The packed words of this table.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// For ≤ 6-variable tables, the single packed word.
    ///
    /// # Panics
    ///
    /// Panics if the table has more than 6 variables.
    pub fn as_u64(&self) -> u64 {
        assert!(self.num_vars <= 6, "as_u64 requires <= 6 vars");
        self.words[0]
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of rows (`2^num_vars`).
    pub fn num_bits(&self) -> usize {
        1 << self.num_vars
    }

    fn mask_off(&mut self) {
        let mask = word_mask(self.num_vars);
        if let Some(last) = self.words.last_mut() {
            *last &= mask;
        }
        if self.num_vars < 6 {
            for w in &mut self.words {
                *w &= mask;
            }
        }
    }

    /// Function value for input assignment `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_vars`.
    pub fn get_bit(&self, index: usize) -> bool {
        assert!(index < self.num_bits(), "row index out of range");
        (self.words[index >> 6] >> (index & 63)) & 1 == 1
    }

    /// Sets the function value for input assignment `index`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        assert!(index < self.num_bits(), "row index out of range");
        let w = &mut self.words[index >> 6];
        if value {
            *w |= 1 << (index & 63);
        } else {
            *w &= !(1 << (index & 63));
        }
    }

    /// Number of satisfying assignments.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// True if the function is constant 0.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if the function is constant 1.
    pub fn is_one(&self) -> bool {
        *self == Self::ones(self.num_vars)
    }

    fn zip(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.num_vars, other.num_vars, "var count mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| f(a, b))
            .collect();
        let mut t = TruthTable {
            num_vars: self.num_vars,
            words,
        };
        t.mask_off();
        t
    }

    /// Bitwise complement (logical NOT).
    pub fn not(&self) -> Self {
        let words = self.words.iter().map(|&w| !w).collect();
        let mut t = TruthTable {
            num_vars: self.num_vars,
            words,
        };
        t.mask_off();
        t
    }

    /// Logical AND.
    pub fn and(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a & b)
    }

    /// Logical OR.
    pub fn or(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a | b)
    }

    /// Logical XOR.
    pub fn xor(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a ^ b)
    }

    /// Three-input majority `ab + ac + bc`.
    pub fn maj(a: &Self, b: &Self, c: &Self) -> Self {
        a.and(b).or(&a.and(c)).or(&b.and(c))
    }

    /// If-then-else `sel ? t : e`.
    pub fn mux(sel: &Self, t: &Self, e: &Self) -> Self {
        sel.and(t).or(&sel.not().and(e))
    }

    /// Positive cofactor: the function with `var` fixed to 1.
    ///
    /// The result keeps the same variable count; it simply no longer depends
    /// on `var`.
    pub fn cofactor1(&self, var: usize) -> Self {
        assert!(var < self.num_vars);
        let mut t = self.clone();
        if var < 6 {
            let shift = 1u32 << var;
            let pat = VAR_PATTERNS[var];
            for w in &mut t.words {
                let hi = *w & pat;
                *w = hi | (hi >> shift);
            }
        } else {
            let stride = 1usize << (var - 6);
            let n = t.words.len();
            let mut i = 0;
            while i < n {
                for j in 0..stride {
                    t.words[i + j] = t.words[i + stride + j];
                }
                i += 2 * stride;
            }
        }
        t.mask_off();
        t
    }

    /// Negative cofactor: the function with `var` fixed to 0.
    pub fn cofactor0(&self, var: usize) -> Self {
        assert!(var < self.num_vars);
        let mut t = self.clone();
        if var < 6 {
            let shift = 1u32 << var;
            let pat = !VAR_PATTERNS[var];
            for w in &mut t.words {
                let lo = *w & pat;
                *w = lo | (lo << shift);
            }
        } else {
            let stride = 1usize << (var - 6);
            let n = t.words.len();
            let mut i = 0;
            while i < n {
                for j in 0..stride {
                    t.words[i + stride + j] = t.words[i + j];
                }
                i += 2 * stride;
            }
        }
        t.mask_off();
        t
    }

    /// True if the function depends on `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor0(var) != self.cofactor1(var)
    }

    /// The set of variables the function depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_vars).filter(|&v| self.depends_on(v)).collect()
    }

    /// Returns the same function expressed over `new_num_vars ≥ num_vars`
    /// variables (the added variables are don't-care / unused).
    pub fn extend_to(&self, new_num_vars: usize) -> Self {
        assert!(new_num_vars >= self.num_vars && new_num_vars <= MAX_VARS);
        if new_num_vars == self.num_vars {
            return self.clone();
        }
        let mut t = Self::zeros(new_num_vars);
        let old_bits = self.num_bits();
        for i in 0..t.num_bits() {
            if self.get_bit(i % old_bits) {
                t.set_bit(i, true);
            }
        }
        t
    }

    /// Returns the function with its variables renamed: new variable `i`
    /// takes the role of old variable `perm[i]`.
    ///
    /// `perm` must be a permutation of `0..num_vars`.
    pub fn permute(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.num_vars);
        let mut t = Self::zeros(self.num_vars);
        for i in 0..self.num_bits() {
            // Build the old index corresponding to new index i.
            let mut old = 0usize;
            for (new_var, &old_var) in perm.iter().enumerate() {
                if (i >> new_var) & 1 == 1 {
                    old |= 1 << old_var;
                }
            }
            if self.get_bit(old) {
                t.set_bit(i, true);
            }
        }
        t
    }

    /// Returns the function with variable `var` complemented.
    pub fn flip_var(&self, var: usize) -> Self {
        assert!(var < self.num_vars);
        let mut t = self.clone();
        if var < 6 {
            let shift = 1u32 << var;
            let pat = VAR_PATTERNS[var];
            for w in &mut t.words {
                *w = ((*w & pat) >> shift) | ((*w & !pat) << shift);
            }
        } else {
            let stride = 1usize << (var - 6);
            let n = t.words.len();
            let mut i = 0;
            while i < n {
                for j in 0..stride {
                    t.words.swap(i + j, i + stride + j);
                }
                i += 2 * stride;
            }
        }
        t.mask_off();
        t
    }

    /// Composes this function with the given argument functions: the result
    /// is `self(args[0], args[1], ...)`. All argument tables must share a
    /// variable count, which becomes the variable count of the result.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != num_vars` or argument var counts differ.
    pub fn compose(&self, args: &[TruthTable]) -> TruthTable {
        assert_eq!(args.len(), self.num_vars, "need one argument per variable");
        let out_vars = args.first().map_or(0, |a| a.num_vars());
        assert!(args.iter().all(|a| a.num_vars() == out_vars));
        let mut acc = TruthTable::zeros(out_vars);
        // Shannon expansion over the rows of `self`.
        for row in 0..self.num_bits() {
            if !self.get_bit(row) {
                continue;
            }
            let mut minterm = TruthTable::ones(out_vars);
            for (v, arg) in args.iter().enumerate() {
                if (row >> v) & 1 == 1 {
                    minterm = minterm.and(arg);
                } else {
                    minterm = minterm.and(&arg.not());
                }
            }
            acc = acc.or(&minterm);
        }
        acc
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({}v, {})", self.num_vars, self)
    }
}

impl fmt::Display for TruthTable {
    /// Hex dump, most significant word first, as in standard synthesis tools.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = (self.num_bits().max(4)) / 4;
        let per_word = 16;
        let mut s = String::new();
        for w in self.words.iter().rev() {
            s.push_str(&format!("{w:016x}"));
        }
        // Keep only the needed trailing digits.
        let keep = digits.min(self.words.len() * per_word);
        write!(f, "0x{}", &s[s.len() - keep..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert!(TruthTable::zeros(3).is_zero());
        assert!(TruthTable::ones(3).is_one());
        assert_eq!(TruthTable::ones(3).count_ones(), 8);
        assert_eq!(TruthTable::ones(8).count_ones(), 256);
    }

    #[test]
    fn var_projection_small() {
        for n in 1..=6 {
            for v in 0..n {
                let t = TruthTable::var(v, n);
                for i in 0..t.num_bits() {
                    assert_eq!(t.get_bit(i), (i >> v) & 1 == 1);
                }
            }
        }
    }

    #[test]
    fn var_projection_large() {
        let t = TruthTable::var(7, 8);
        for i in 0..256 {
            assert_eq!(t.get_bit(i), (i >> 7) & 1 == 1);
        }
    }

    #[test]
    fn boolean_ops() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        assert_eq!(a.and(&b).as_u64(), 0b1000);
        assert_eq!(a.or(&b).as_u64(), 0b1110);
        assert_eq!(a.xor(&b).as_u64(), 0b0110);
        assert_eq!(a.not().as_u64(), 0b0101);
    }

    #[test]
    fn majority_table() {
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        let m = TruthTable::maj(&a, &b, &c);
        // MAJ3 = 0xE8
        assert_eq!(m.as_u64(), 0xE8);
    }

    #[test]
    fn mux_table() {
        let s = TruthTable::var(2, 3);
        let t = TruthTable::var(1, 3);
        let e = TruthTable::var(0, 3);
        let m = TruthTable::mux(&s, &t, &e);
        for i in 0..8 {
            let (sv, tv, ev) = ((i >> 2) & 1 == 1, (i >> 1) & 1 == 1, i & 1 == 1);
            assert_eq!(m.get_bit(i), if sv { tv } else { ev });
        }
    }

    #[test]
    fn cofactors_small() {
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let f = a.and(&b);
        assert_eq!(f.cofactor1(0), b);
        assert!(f.cofactor0(0).is_zero());
        assert_eq!(f.cofactor1(1), a);
    }

    #[test]
    fn cofactors_large() {
        let a = TruthTable::var(7, 8);
        let b = TruthTable::var(0, 8);
        let f = a.xor(&b);
        assert_eq!(f.cofactor1(7), b.not());
        assert_eq!(f.cofactor0(7), b);
    }

    #[test]
    fn support_and_dependency() {
        let a = TruthTable::var(0, 4);
        let c = TruthTable::var(2, 4);
        let f = a.or(&c);
        assert_eq!(f.support(), vec![0, 2]);
        assert!(!f.depends_on(1));
        assert!(!f.depends_on(3));
    }

    #[test]
    fn permute_roundtrip() {
        let a = TruthTable::var(0, 3);
        let f = a.and(&TruthTable::var(2, 3));
        let g = f.permute(&[2, 1, 0]);
        // New var 0 takes role of old var 2: g = var2&var0 again (symmetric).
        assert_eq!(g, f);
        let h = TruthTable::var(1, 3).permute(&[1, 0, 2]);
        assert_eq!(h, TruthTable::var(0, 3));
    }

    #[test]
    fn flip_var_small_and_large() {
        let a = TruthTable::var(0, 3);
        assert_eq!(a.flip_var(0), a.not());
        let b = TruthTable::var(6, 7);
        assert_eq!(b.flip_var(6), b.not());
        let f = TruthTable::var(0, 7).and(&b);
        assert_eq!(f.flip_var(6), TruthTable::var(0, 7).and(&b.not()));
    }

    #[test]
    fn extend_keeps_function() {
        let a = TruthTable::var(0, 2).xor(&TruthTable::var(1, 2));
        let e = a.extend_to(4);
        assert_eq!(e.support(), vec![0, 1]);
        for i in 0..16 {
            assert_eq!(e.get_bit(i), a.get_bit(i & 3));
        }
    }

    #[test]
    fn compose_applies_arguments() {
        // f(x0,x1) = x0 & x1, args: x0 := a^b, x1 := c
        let f = TruthTable::var(0, 2).and(&TruthTable::var(1, 2));
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        let g = f.compose(&[a.xor(&b), c.clone()]);
        assert_eq!(g, a.xor(&b).and(&c));
    }

    #[test]
    fn display_hex() {
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        assert_eq!(format!("{}", TruthTable::maj(&a, &b, &c)), "0xe8");
    }

    #[test]
    #[should_panic(expected = "row index out of range")]
    fn get_bit_bounds() {
        TruthTable::zeros(2).get_bit(4);
    }
}
