//! Exact NPN canonization for small functions.
//!
//! Two functions are NPN-equivalent if one can be obtained from the other by
//! Negating inputs, Permuting inputs, and/or Negating the output. Cut
//! rewriting and Boolean matching both work on NPN classes: the rewriting
//! database stores one optimized structure per class, and a matched cut is
//! mapped through the recorded transform.
//!
//! Canonization here is exact (exhaustive over all transforms), which is
//! practical up to 6 variables — 4-variable cuts (the rewriting default)
//! need at most 24·16·2 = 768 candidate transforms.

use crate::TruthTable;

/// A recorded NPN transform: `canon = output_flip ⊕ f(perm, input_flips)`.
///
/// Applying the transform maps the *original* function onto its canonical
/// representative; [`NpnTransform::apply`] and [`NpnTransform::invert_apply`]
/// convert between the two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NpnTransform {
    /// `perm[i]` is the original variable that canonical variable `i` reads.
    pub perm: Vec<usize>,
    /// Bit `i` set ⇒ original variable `i` is complemented before use.
    pub input_flips: u32,
    /// Whether the output is complemented.
    pub output_flip: bool,
}

impl NpnTransform {
    /// Identity transform over `n` variables.
    pub fn identity(n: usize) -> Self {
        NpnTransform {
            perm: (0..n).collect(),
            input_flips: 0,
            output_flip: false,
        }
    }

    /// Applies this transform to `f`, producing the canonical function.
    pub fn apply(&self, f: &TruthTable) -> TruthTable {
        let mut t = f.clone();
        for v in 0..f.num_vars() {
            if (self.input_flips >> v) & 1 == 1 {
                t = t.flip_var(v);
            }
        }
        t = t.permute(&self.perm);
        if self.output_flip {
            t = t.not();
        }
        t
    }

    /// Applies the inverse transform: maps the canonical function back onto
    /// the original function.
    pub fn invert_apply(&self, canon: &TruthTable) -> TruthTable {
        let mut t = canon.clone();
        if self.output_flip {
            t = t.not();
        }
        // Invert the permutation.
        let n = self.perm.len();
        let mut inv = vec![0usize; n];
        for (i, &p) in self.perm.iter().enumerate() {
            inv[p] = i;
        }
        t = t.permute(&inv);
        for v in 0..n {
            if (self.input_flips >> v) & 1 == 1 {
                t = t.flip_var(v);
            }
        }
        t
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut result = vec![vec![]];
    for _ in 0..n {
        let mut next = Vec::new();
        for p in &result {
            for v in 0..n {
                if !p.contains(&v) {
                    let mut q = p.clone();
                    q.push(v);
                    next.push(q);
                }
            }
        }
        result = next;
    }
    result
}

/// Computes the NPN-canonical representative of `f` and the transform that
/// produces it.
///
/// The canonical representative is the lexicographically smallest truth
/// table reachable by any NPN transform. Exhaustive search: intended for
/// functions of at most 6 variables (cut functions).
///
/// # Panics
///
/// Panics if `f` has more than 6 variables.
///
/// # Example
///
/// ```
/// use mig_tt::{npn_canonize, TruthTable};
///
/// let a = TruthTable::var(0, 2);
/// let b = TruthTable::var(1, 2);
/// let (c1, _) = npn_canonize(&a.and(&b));
/// let (c2, _) = npn_canonize(&a.not().or(&b.not())); // NAND — same class
/// assert_eq!(c1, c2);
/// ```
pub fn npn_canonize(f: &TruthTable) -> (TruthTable, NpnTransform) {
    let n = f.num_vars();
    assert!(n <= 6, "exact NPN canonization limited to 6 vars");
    let mut best: Option<(TruthTable, NpnTransform)> = None;
    for perm in permutations(n) {
        for flips in 0..(1u32 << n) {
            let mut t = f.clone();
            for v in 0..n {
                if (flips >> v) & 1 == 1 {
                    t = t.flip_var(v);
                }
            }
            let t = t.permute(&perm);
            for &out in &[false, true] {
                let cand = if out { t.not() } else { t.clone() };
                let transform = NpnTransform {
                    perm: perm.clone(),
                    input_flips: flips,
                    output_flip: out,
                };
                match &best {
                    Some((b, _)) if *b <= cand => {}
                    _ => best = Some((cand, transform)),
                }
            }
        }
    }
    best.expect("at least the identity transform exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_roundtrip() {
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        let f = a.and(&b).or(&c);
        let (canon, tr) = npn_canonize(&f);
        assert_eq!(tr.apply(&f), canon);
        assert_eq!(tr.invert_apply(&canon), f);
    }

    #[test]
    fn and_class_members_agree() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let variants = [
            a.and(&b),
            a.not().and(&b),
            a.and(&b.not()),
            a.not().and(&b.not()),
            a.or(&b),
            a.not().or(&b.not()),
        ];
        let (canon, _) = npn_canonize(&variants[0]);
        for v in &variants {
            assert_eq!(npn_canonize(v).0, canon, "variant {v}");
        }
    }

    #[test]
    fn xor_is_its_own_class() {
        let a = TruthTable::var(0, 2);
        let b = TruthTable::var(1, 2);
        let (cx, _) = npn_canonize(&a.xor(&b));
        let (cnx, _) = npn_canonize(&a.xor(&b).not());
        assert_eq!(cx, cnx);
        let (cand, _) = npn_canonize(&a.and(&b));
        assert_ne!(cx, cand);
    }

    #[test]
    fn constants_canonize_to_zero() {
        let (c, _) = npn_canonize(&TruthTable::ones(3));
        assert!(c.is_zero());
        let (c, _) = npn_canonize(&TruthTable::zeros(3));
        assert!(c.is_zero());
    }

    #[test]
    fn count_2var_npn_classes() {
        // There are exactly 4 NPN classes of 2-variable functions:
        // const, single-var, AND-like, XOR-like.
        let mut classes = std::collections::HashSet::new();
        for bits in 0u64..16 {
            let f = TruthTable::from_u64(2, bits);
            classes.insert(npn_canonize(&f).0);
        }
        assert_eq!(classes.len(), 4);
    }

    #[test]
    fn count_3var_npn_classes() {
        // Known result: 14 NPN classes of 3-variable functions.
        let mut classes = std::collections::HashSet::new();
        for bits in 0u64..256 {
            let f = TruthTable::from_u64(3, bits);
            classes.insert(npn_canonize(&f).0);
        }
        assert_eq!(classes.len(), 14);
    }

    #[test]
    fn maj_class_contains_min() {
        let a = TruthTable::var(0, 3);
        let b = TruthTable::var(1, 3);
        let c = TruthTable::var(2, 3);
        let maj = TruthTable::maj(&a, &b, &c);
        let min = maj.not();
        assert_eq!(npn_canonize(&maj).0, npn_canonize(&min).0);
    }
}
