//! NPN-canonical database of small majority structures for 4-variable
//! functions — the lookup side of cut-based MIG rewriting.
//!
//! Cut rewriting matches the function of a ≤ 4-input cut against a
//! precomputed table: the cut's truth table is NPN-canonized (see
//! [`npn4_canonize`]), the canonical class is looked up in
//! [`MigDatabase`], and the stored [`MigProgram`] — a small
//! majority-gate netlist over the cut leaves — is replayed through the
//! MIG's hashing constructor as the replacement structure.
//!
//! The database is generated once per process ([`MigDatabase::global`])
//! by a two-stage search:
//!
//! 1. **Exhaustive enumeration** of all majority *trees* up to
//!    [`EXACT_TREE_COST`] gates (bottom-up dynamic programming over all
//!    2¹⁶ truth tables, complementation free as in an MIG). Every
//!    function reached here gets a tree-size-optimal structure.
//! 2. **Shannon recombination** for the classes the enumeration does not
//!    reach: `f = ⟨x·f₁ + x'·f₀⟩` built as `M(M(x,f₁,0), M(x',f₀,0), 1)`
//!    on the best splitting variable, with the cofactors resolved
//!    recursively against the same table.
//!
//! Identical subtrees fuse when a program is replayed through structural
//! hashing, so the effective replacement cost is DAG size, which the
//! rewriter measures against the graph at replacement time rather than
//! trusting the table's tree costs. There are exactly
//! [`NUM_NPN4_CLASSES`] = 222 NPN classes of 4-variable functions; the
//! database stores one program per class.

use std::collections::HashMap;
use std::sync::OnceLock;

/// Number of NPN equivalence classes of 4-variable Boolean functions.
pub const NUM_NPN4_CLASSES: usize = 222;

/// Gate bound for the exhaustive (tree-size-optimal) enumeration stage.
pub const EXACT_TREE_COST: u8 = 4;

/// Truth table of variable `v` over 4 variables, as a packed `u16`.
pub const VAR4_TT: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];

/// A recorded NPN transform over exactly 4 variables, specialized to
/// packed `u16` truth tables (the cut-rewriting hot path).
///
/// Same semantics as [`NpnTransform`](crate::NpnTransform):
/// `canon(y) = output_flip ⊕ f(x ⊕ input_flips)` where `x[perm[j]] = y[j]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Npn4Transform {
    /// `perm[j]` is the original variable that canonical variable `j` reads.
    pub perm: [u8; 4],
    /// Bit `v` set ⇒ original variable `v` is complemented before use.
    pub input_flips: u8,
    /// Whether the output is complemented.
    pub output_flip: bool,
}

impl Npn4Transform {
    /// The identity transform.
    pub fn identity() -> Self {
        Npn4Transform {
            perm: [0, 1, 2, 3],
            input_flips: 0,
            output_flip: false,
        }
    }

    /// The inverse transform: `npn4_apply(npn4_apply(tt, t), t.invert())`
    /// is `tt` for every table (and symmetrically with the order
    /// swapped).
    pub fn invert(&self) -> Self {
        // apply(f, T)[y] = of ⊕ f[P(y) ^ ifl] with (P y)[perm[j]] = y[j],
        // so the inverse uses the inverse permutation and carries the
        // flips through it: P⁻¹(x ^ ifl) = P⁻¹(x) ^ P⁻¹(ifl).
        let mut perm = [0u8; 4];
        let mut input_flips = 0u8;
        for (j, &p) in self.perm.iter().enumerate() {
            perm[p as usize] = j as u8;
            if (self.input_flips >> p) & 1 == 1 {
                input_flips |= 1 << j;
            }
        }
        Npn4Transform {
            perm,
            input_flips,
            output_flip: self.output_flip,
        }
    }

    /// Sequential composition: the transform that applies `self` first
    /// and `next` second — `npn4_apply(tt, &a.then(&b))` equals
    /// `npn4_apply(npn4_apply(tt, &a), &b)`.
    pub fn then(&self, next: &Npn4Transform) -> Self {
        // Composing apply(·, self) then apply(·, next): the index chain
        // is f[P₁(P₂(y) ^ ifl₂) ^ ifl₁] = f[P₁(P₂(y)) ^ P₁(ifl₂) ^ ifl₁].
        let mut perm = [0u8; 4];
        let mut input_flips = self.input_flips;
        for (j, &p2) in next.perm.iter().enumerate() {
            perm[j] = self.perm[p2 as usize];
        }
        for v in 0..4u8 {
            if (next.input_flips >> v) & 1 == 1 {
                input_flips ^= 1 << self.perm[v as usize];
            }
        }
        Npn4Transform {
            perm,
            input_flips,
            output_flip: self.output_flip ^ next.output_flip,
        }
    }
}

/// Applies `t` to a 4-variable truth table, producing the transformed
/// function (the canonical representative when `t` came from
/// [`npn4_canonize`] on the same `tt`).
pub fn npn4_apply(tt: u16, t: &Npn4Transform) -> u16 {
    let mut out = 0u16;
    for y in 0..16u32 {
        let mut x = 0u32;
        for (j, &p) in t.perm.iter().enumerate() {
            if (y >> j) & 1 == 1 {
                x |= 1 << p;
            }
        }
        let idx = (x ^ t.input_flips as u32) & 15;
        let mut bit = (tt >> idx) & 1;
        if t.output_flip {
            bit ^= 1;
        }
        out |= bit << y;
    }
    out
}

/// All 24 permutations of `[0, 1, 2, 3]`.
fn perms4() -> [[u8; 4]; 24] {
    let mut out = [[0u8; 4]; 24];
    let mut n = 0;
    for a in 0..4u8 {
        for b in 0..4u8 {
            for c in 0..4u8 {
                for d in 0..4u8 {
                    if a != b && a != c && a != d && b != c && b != d && c != d {
                        out[n] = [a, b, c, d];
                        n += 1;
                    }
                }
            }
        }
    }
    out
}

/// Exact NPN canonization of a 4-variable truth table: returns the
/// numerically smallest member of the NPN orbit (identical to the
/// canonical form [`npn_canonize`](crate::npn_canonize) computes for the
/// same function) and a transform that produces it.
///
/// Exhaustive over all 24·2⁴·2 = 768 transforms, but `u16`-specialized:
/// roughly two orders of magnitude faster than the generic
/// [`TruthTable`](crate::TruthTable) path, which matters because the
/// rewriter canonizes one function per enumerated cut.
pub fn npn4_canonize(tt: u16) -> (u16, Npn4Transform) {
    let mut best = tt;
    let mut best_t = Npn4Transform::identity();
    for perm in perms4() {
        for input_flips in 0..16u8 {
            for output_flip in [false, true] {
                let t = Npn4Transform {
                    perm,
                    input_flips,
                    output_flip,
                };
                let cand = npn4_apply(tt, &t);
                if cand < best {
                    best = cand;
                    best_t = t;
                }
            }
        }
    }
    (best, best_t)
}

/// Enumerates the canonical representative of every 4-variable NPN class
/// in ascending numeric order (always [`NUM_NPN4_CLASSES`] of them).
pub fn npn4_class_representatives() -> Vec<u16> {
    let perms = perms4();
    let mut seen = vec![false; 1 << 16];
    let mut reps = Vec::new();
    for tt in 0..=u16::MAX {
        if seen[tt as usize] {
            continue;
        }
        // Scanning in ascending order, the first unseen table is the
        // numeric minimum of its orbit — i.e. the canonical form.
        reps.push(tt);
        for perm in perms {
            for input_flips in 0..16u8 {
                for output_flip in [false, true] {
                    let t = Npn4Transform {
                        perm,
                        input_flips,
                        output_flip,
                    };
                    seen[npn4_apply(tt, &t) as usize] = true;
                }
            }
        }
    }
    reps
}

/// One operand of a majority instruction in a [`MigProgram`]: a packed
/// reference (constant, cut variable, or earlier step) plus a complement
/// bit — the program-level analogue of an MIG signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigLit(u8);

impl MigLit {
    /// The constant-0 literal.
    pub const FALSE: MigLit = MigLit(0);
    /// The constant-1 literal.
    pub const TRUE: MigLit = MigLit(1);

    /// Literal reading cut variable `v` (0-based, `v < 4`).
    pub fn var(v: usize) -> Self {
        assert!(v < 4);
        MigLit((v as u8 + 1) << 1)
    }

    /// Literal reading the result of program step `i`.
    pub fn step(i: usize) -> Self {
        let v = u8::try_from(i + 5).expect("program too long");
        assert!(v < 128, "program too long");
        MigLit(v << 1)
    }

    /// The complemented version of this literal.
    #[must_use]
    pub fn complement(self) -> Self {
        MigLit(self.0 ^ 1)
    }

    /// Complements the literal iff `c` is true.
    #[must_use]
    pub fn complement_if(self, c: bool) -> Self {
        MigLit(self.0 ^ c as u8)
    }

    /// Whether the literal carries a complement.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The cut variable this literal reads, if any.
    pub fn var_index(self) -> Option<usize> {
        match self.0 >> 1 {
            v @ 1..=4 => Some(v as usize - 1),
            _ => None,
        }
    }

    /// The program step this literal reads, if any.
    pub fn step_index(self) -> Option<usize> {
        match self.0 >> 1 {
            v @ 5.. => Some(v as usize - 5),
            _ => None,
        }
    }

    /// True if this literal references the constant node.
    pub fn is_constant(self) -> bool {
        self.0 >> 1 == 0
    }
}

/// A straight-line majority netlist over at most 4 cut variables: each
/// step is one majority gate over earlier literals, and `out` selects
/// (and possibly complements) the result.
///
/// Replaying a program through a strashing constructor merges repeated
/// subtrees, so the realized DAG can be smaller than `steps.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigProgram {
    /// Majority instructions in topological order.
    pub steps: Vec<[MigLit; 3]>,
    /// The program output.
    pub out: MigLit,
}

impl MigProgram {
    /// Number of majority instructions (tree size of the structure).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the program contains no majority instruction (the output
    /// is a constant or a single literal).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Evaluates the program over truth-table inputs (word-parallel over
    /// all 16 rows); used by the database self-checks and tests.
    pub fn eval(&self, inputs: [u16; 4]) -> u16 {
        let mut vals = Vec::with_capacity(self.steps.len());
        let lit = |vals: &[u16], l: MigLit| -> u16 {
            let v = match l.0 >> 1 {
                0 => 0,
                v @ 1..=4 => inputs[v as usize - 1],
                v => vals[v as usize - 5],
            };
            if l.is_complemented() {
                !v
            } else {
                v
            }
        };
        for step in &self.steps {
            let a = lit(&vals, step[0]);
            let b = lit(&vals, step[1]);
            let c = lit(&vals, step[2]);
            vals.push((a & b) | (a & c) | (b & c));
        }
        lit(&vals, self.out)
    }
}

const UNKNOWN: u8 = u8::MAX;

/// How a truth table is realized during database construction.
#[derive(Debug, Clone, Copy)]
enum Def {
    Unknown,
    /// The constant-0 function.
    Const0,
    /// Projection of variable `v`.
    Var(u8),
    /// Complement of another defined table (free in an MIG).
    Not(u16),
    /// Majority of three defined tables.
    Maj([u16; 3]),
}

struct Builder {
    cost: Vec<u8>,
    def: Vec<Def>,
    by_cost: Vec<Vec<u16>>,
}

fn maj16(a: u16, b: u16, c: u16) -> u16 {
    (a & b) | (a & c) | (b & c)
}

fn cof1_16(f: u16, v: usize) -> u16 {
    let hi = f & VAR4_TT[v];
    hi | (hi >> (1 << v))
}

fn cof0_16(f: u16, v: usize) -> u16 {
    let lo = f & !VAR4_TT[v];
    lo | (lo << (1 << v))
}

impl Builder {
    fn new() -> Self {
        let mut b = Builder {
            cost: vec![UNKNOWN; 1 << 16],
            def: vec![Def::Unknown; 1 << 16],
            by_cost: vec![Vec::new(); EXACT_TREE_COST as usize + 1],
        };
        b.record(0x0000, 0, Def::Const0);
        b.record(0xFFFF, 0, Def::Not(0x0000));
        for (v, &tt) in VAR4_TT.iter().enumerate() {
            b.record(tt, 0, Def::Var(v as u8));
            b.record(!tt, 0, Def::Not(tt));
        }
        b
    }

    /// Records `f` at cost `c` if that improves on what is known.
    fn record(&mut self, f: u16, c: u8, def: Def) -> bool {
        if self.cost[f as usize] <= c {
            return false;
        }
        self.cost[f as usize] = c;
        self.def[f as usize] = def;
        if let Some(list) = self.by_cost.get_mut(c as usize) {
            list.push(f);
        }
        true
    }

    /// Stage 1: bottom-up enumeration of all majority trees of at most
    /// `EXACT_TREE_COST` gates. Within that bound the recorded cost is
    /// exactly the minimal tree size (complementation free).
    fn enumerate_exact(&mut self) {
        for c in 1..=EXACT_TREE_COST {
            // Partition the child budget c-1 as ca ≥ cb ≥ cc; iterating
            // ordered partitions (with index ordering inside equal-cost
            // lists) visits each child multiset exactly once — majority
            // is fully symmetric.
            for ca in 0..c {
                for cb in 0..=ca {
                    let Some(cc) = (c - 1).checked_sub(ca + cb) else {
                        continue;
                    };
                    if cc > cb {
                        continue;
                    }
                    let la = std::mem::take(&mut self.by_cost[ca as usize]);
                    let lb = if cb == ca {
                        Vec::new()
                    } else {
                        std::mem::take(&mut self.by_cost[cb as usize])
                    };
                    let lc = if cc == ca || cc == cb {
                        Vec::new()
                    } else {
                        std::mem::take(&mut self.by_cost[cc as usize])
                    };
                    let aa: &[u16] = &la;
                    let bb: &[u16] = if cb == ca { &la } else { &lb };
                    let ccs: &[u16] = if cc == ca {
                        &la
                    } else if cc == cb {
                        bb
                    } else {
                        &lc
                    };
                    for (i, &fa) in aa.iter().enumerate() {
                        let j_hi = if cb == ca { i + 1 } else { bb.len() };
                        for (j, &fb) in bb.iter().take(j_hi).enumerate() {
                            let k_hi = if cc == cb { j + 1 } else { ccs.len() };
                            for &fc in ccs.iter().take(k_hi) {
                                let m = maj16(fa, fb, fc);
                                if self.record(m, c, Def::Maj([fa, fb, fc])) {
                                    self.record(!m, c, Def::Not(m));
                                }
                            }
                        }
                    }
                    // Put the lists back where they came from.
                    self.by_cost[ca as usize] = la;
                    if cb != ca {
                        self.by_cost[cb as usize] = lb;
                    }
                    if cc != ca && cc != cb {
                        self.by_cost[cc as usize] = lc;
                    }
                }
            }
        }
    }

    /// Stage 2: guarantees a structure for `f` via Shannon recombination
    /// on the cheapest splitting variable. Terminates because cofactors
    /// have strictly smaller support and every function of support ≤ 2
    /// is covered by stage 1.
    fn ensure(&mut self, f: u16) -> u8 {
        if self.cost[f as usize] != UNKNOWN {
            return self.cost[f as usize];
        }
        let mut best: Option<(u8, usize, u16, u16)> = None;
        for v in 0..4 {
            let f0 = cof0_16(f, v);
            let f1 = cof1_16(f, v);
            if f0 == f1 {
                continue; // f does not depend on v
            }
            let c = 3 + self.ensure(f0) + self.ensure(f1);
            if best.is_none_or(|(bc, ..)| c < bc) {
                best = Some((c, v, f0, f1));
            }
        }
        let (_, v, f0, f1) = best.expect("non-constant function depends on a variable");
        let xv = VAR4_TT[v];
        let t1 = xv & f1; // M(x, f1, 0)
        let t0 = !xv & f0; // M(x', f0, 0)
        debug_assert_eq!(t1 | t0, f);
        let c1 = self.cost[f1 as usize] + 1;
        if self.record(t1, c1, Def::Maj([xv, f1, 0x0000])) {
            self.record(!t1, c1, Def::Not(t1));
        }
        let c0 = self.cost[f0 as usize] + 1;
        if self.record(t0, c0, Def::Maj([!xv, f0, 0x0000])) {
            self.record(!t0, c0, Def::Not(t0));
        }
        // M(t1, t0, 1) = t1 | t0 = f.
        let cf = self.cost[t1 as usize] + self.cost[t0 as usize] + 1;
        if self.record(f, cf, Def::Maj([t1, t0, 0xFFFF])) {
            self.record(!f, cf, Def::Not(f));
        }
        self.cost[f as usize]
    }

    /// Extracts the straight-line program realizing `f`.
    fn emit(&self, f: u16) -> MigProgram {
        let mut steps = Vec::new();
        let mut memo: HashMap<u16, MigLit> = HashMap::new();
        let out = self.resolve(f, &mut steps, &mut memo);
        MigProgram { steps, out }
    }

    fn resolve(
        &self,
        f: u16,
        steps: &mut Vec<[MigLit; 3]>,
        memo: &mut HashMap<u16, MigLit>,
    ) -> MigLit {
        if let Some(&l) = memo.get(&f) {
            return l;
        }
        let lit = match self.def[f as usize] {
            Def::Const0 => MigLit::FALSE,
            Def::Var(v) => MigLit::var(v as usize),
            Def::Not(g) => self.resolve(g, steps, memo).complement(),
            Def::Maj([a, b, c]) => {
                let la = self.resolve(a, steps, memo);
                let lb = self.resolve(b, steps, memo);
                let lc = self.resolve(c, steps, memo);
                steps.push([la, lb, lc]);
                MigLit::step(steps.len() - 1)
            }
            Def::Unknown => unreachable!("emit() called on an undefined table"),
        };
        memo.insert(f, lit);
        lit
    }
}

/// The NPN-class → optimal-majority-structure database.
///
/// One [`MigProgram`] per canonical representative of each of the 222
/// NPN classes of 4-variable functions. Build it once with
/// [`MigDatabase::global`] and look structures up by the canonical truth
/// table [`npn4_canonize`] returns.
#[derive(Debug)]
pub struct MigDatabase {
    classes: Vec<u16>,
    programs: HashMap<u16, MigProgram>,
}

impl MigDatabase {
    /// Builds the database from scratch (exhaustive enumeration plus
    /// Shannon recombination; see the module docs). Prefer
    /// [`MigDatabase::global`], which builds once and caches.
    pub fn build() -> Self {
        let mut b = Builder::new();
        b.enumerate_exact();
        let classes = npn4_class_representatives();
        let mut programs = HashMap::with_capacity(classes.len());
        for &rep in &classes {
            b.ensure(rep);
            let prog = b.emit(rep);
            debug_assert_eq!(prog.eval(VAR4_TT), rep, "database self-check");
            programs.insert(rep, prog);
        }
        MigDatabase { classes, programs }
    }

    /// The process-wide database, built on first use.
    pub fn global() -> &'static MigDatabase {
        static DB: OnceLock<MigDatabase> = OnceLock::new();
        DB.get_or_init(MigDatabase::build)
    }

    /// Canonical representatives of all 222 classes, ascending.
    pub fn classes(&self) -> &[u16] {
        &self.classes
    }

    /// The stored structure for a canonical truth table, or `None` if
    /// `canon` is not a canonical representative.
    pub fn program(&self, canon: u16) -> Option<&MigProgram> {
        self.programs.get(&canon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{npn_canonize, TruthTable};

    #[test]
    fn class_count_is_222() {
        let reps = npn4_class_representatives();
        assert_eq!(reps.len(), NUM_NPN4_CLASSES);
        // Ascending and unique by construction.
        assert!(reps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn invert_and_then_compose_correctly() {
        // invert() must undo any transform in either order, and then()
        // must match sequential application — over a PRNG sample of
        // tables against a PRNG sample of the 768-transform group.
        let mut x = 0xD1B5_4A32_D192_ED03u64;
        let rand_t = |x: &mut u64| {
            *x ^= *x << 13;
            *x ^= *x >> 7;
            *x ^= *x << 17;
            let perms = perms4();
            Npn4Transform {
                perm: perms[(*x % 24) as usize],
                input_flips: ((*x >> 8) & 15) as u8,
                output_flip: (*x >> 16) & 1 == 1,
            }
        };
        for _ in 0..50 {
            let a = rand_t(&mut x);
            let b = rand_t(&mut x);
            let tt = ((x >> 20) & 0xFFFF) as u16;
            assert_eq!(npn4_apply(npn4_apply(tt, &a), &a.invert()), tt);
            assert_eq!(npn4_apply(npn4_apply(tt, &a.invert()), &a), tt);
            assert_eq!(
                npn4_apply(tt, &a.then(&b)),
                npn4_apply(npn4_apply(tt, &a), &b)
            );
        }
        let id = Npn4Transform::identity();
        assert_eq!(id.invert(), id);
        assert_eq!(id.then(&id), id);
    }

    #[test]
    fn canonize_agrees_with_generic_npn() {
        // The u16 fast path and the generic TruthTable path must agree on
        // the canonical form (both pick the numerically smallest orbit
        // member).
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..40 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let tt = (x & 0xFFFF) as u16;
            let (fast, _) = npn4_canonize(tt);
            let (generic, _) = npn_canonize(&TruthTable::from_u64(4, tt as u64));
            assert_eq!(fast as u64, generic.as_u64(), "tt {tt:#06x}");
        }
    }

    #[test]
    fn canonize_transform_reproduces_canon() {
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for _ in 0..100 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let tt = (x & 0xFFFF) as u16;
            let (canon, t) = npn4_canonize(tt);
            assert_eq!(npn4_apply(tt, &t), canon, "tt {tt:#06x}");
        }
    }

    #[test]
    fn database_covers_every_class_correctly() {
        let db = MigDatabase::global();
        assert_eq!(db.classes().len(), NUM_NPN4_CLASSES);
        for &rep in db.classes() {
            let prog = db.program(rep).expect("program for every class");
            assert_eq!(prog.eval(VAR4_TT), rep, "class {rep:#06x}");
        }
    }

    #[test]
    fn known_structures_are_optimal() {
        let db = MigDatabase::global();
        // Constants and projections: no gate at all.
        let (c0, _) = npn4_canonize(0x0000);
        assert_eq!(db.program(c0).unwrap().len(), 0);
        let (cv, _) = npn4_canonize(VAR4_TT[2]);
        assert_eq!(db.program(cv).unwrap().len(), 0);
        // AND2 and MAJ3 are single gates.
        let (cand, _) = npn4_canonize(VAR4_TT[0] & VAR4_TT[1]);
        assert_eq!(db.program(cand).unwrap().len(), 1);
        let maj3 = maj16(VAR4_TT[0], VAR4_TT[1], VAR4_TT[2]);
        let (cmaj, _) = npn4_canonize(maj3);
        assert_eq!(db.program(cmaj).unwrap().len(), 1);
        // XOR2 and XOR3 take three majority gates in an MIG (paper
        // Fig. 2(b) for the 3-input case).
        let (cx2, _) = npn4_canonize(VAR4_TT[0] ^ VAR4_TT[1]);
        assert_eq!(db.program(cx2).unwrap().len(), 3);
        let (cx3, _) = npn4_canonize(VAR4_TT[0] ^ VAR4_TT[1] ^ VAR4_TT[2]);
        assert_eq!(db.program(cx3).unwrap().len(), 3);
    }

    #[test]
    fn replay_mapping_reconstructs_original() {
        // The exact recipe the rewriter uses: canonical variable j reads
        // original variable perm[j], complemented per input_flips, and
        // the program output is complemented per output_flip.
        let db = MigDatabase::global();
        let mut x = 0xDEAD_BEEF_CAFE_F00Du64;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let tt = (x & 0xFFFF) as u16;
            let (canon, t) = npn4_canonize(tt);
            let prog = db.program(canon).expect("canon is a class rep");
            let mut inputs = [0u16; 4];
            for (j, inp) in inputs.iter_mut().enumerate() {
                let orig = t.perm[j] as usize;
                let mut v = VAR4_TT[orig];
                if (t.input_flips >> orig) & 1 == 1 {
                    v = !v;
                }
                *inp = v;
            }
            let mut got = prog.eval(inputs);
            if t.output_flip {
                got = !got;
            }
            assert_eq!(got, tt, "tt {tt:#06x}");
        }
    }

    #[test]
    fn programs_stay_small() {
        // Tree-size bound: exhaustive stage caps at EXACT_TREE_COST and
        // Shannon recombination at 3 + cost(f0) + cost(f1); nothing in
        // the database should exceed the worst-case recursion depth.
        let db = MigDatabase::global();
        let worst = db
            .classes()
            .iter()
            .map(|&r| db.program(r).unwrap().len())
            .max()
            .unwrap();
        assert!(worst <= 21, "worst program has {worst} gates");
    }

    #[test]
    fn lit_encoding_roundtrips() {
        assert!(MigLit::FALSE.is_constant());
        assert_eq!(MigLit::TRUE, MigLit::FALSE.complement());
        let v = MigLit::var(3);
        assert_eq!(v.var_index(), Some(3));
        assert_eq!(v.step_index(), None);
        assert!(!v.is_complemented());
        let s = MigLit::step(7).complement();
        assert_eq!(s.step_index(), Some(7));
        assert!(s.is_complemented());
        assert_eq!(s.complement_if(true), MigLit::step(7));
        assert_eq!(s.complement_if(false), s);
    }
}
