//! Algebraic factoring of sum-of-products covers.
//!
//! Turns a flat [`Sop`] into a nested AND/OR [`FactoredForm`] with fewer
//! literals, in the style of the "quick factor" procedures of MIS/SIS:
//! common-cube division first, then recursive division by the most frequent
//! literal. Refactoring passes rebuild logic from the factored form, so
//! fewer literals translates directly into fewer gates.

use crate::isop::{Cube, Sop};
use crate::TruthTable;

/// A factored Boolean formula over AND/OR/literal/constant operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactoredForm {
    /// Constant 0 or 1.
    Const(bool),
    /// A possibly-complemented variable.
    Literal {
        /// Variable index.
        var: usize,
        /// `true` for the positive literal.
        positive: bool,
    },
    /// Conjunction of sub-forms (never empty).
    And(Vec<FactoredForm>),
    /// Disjunction of sub-forms (never empty).
    Or(Vec<FactoredForm>),
}

impl FactoredForm {
    /// Number of literal leaves in the form.
    pub fn num_literals(&self) -> usize {
        match self {
            FactoredForm::Const(_) => 0,
            FactoredForm::Literal { .. } => 1,
            FactoredForm::And(parts) | FactoredForm::Or(parts) => {
                parts.iter().map(FactoredForm::num_literals).sum()
            }
        }
    }

    /// Evaluates the form as a truth table over `num_vars` variables.
    pub fn to_truth_table(&self, num_vars: usize) -> TruthTable {
        match self {
            FactoredForm::Const(false) => TruthTable::zeros(num_vars),
            FactoredForm::Const(true) => TruthTable::ones(num_vars),
            FactoredForm::Literal { var, positive } => {
                let v = TruthTable::var(*var, num_vars);
                if *positive {
                    v
                } else {
                    v.not()
                }
            }
            FactoredForm::And(parts) => parts.iter().fold(TruthTable::ones(num_vars), |acc, p| {
                acc.and(&p.to_truth_table(num_vars))
            }),
            FactoredForm::Or(parts) => parts.iter().fold(TruthTable::zeros(num_vars), |acc, p| {
                acc.or(&p.to_truth_table(num_vars))
            }),
        }
    }

    fn flatten_and(self, out: &mut Vec<FactoredForm>) {
        match self {
            FactoredForm::And(parts) => {
                for p in parts {
                    p.flatten_and(out);
                }
            }
            other => out.push(other),
        }
    }

    /// Builds a conjunction, flattening nested ANDs and dropping constants.
    pub fn and(parts: Vec<FactoredForm>) -> FactoredForm {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                FactoredForm::Const(true) => {}
                FactoredForm::Const(false) => return FactoredForm::Const(false),
                other => other.flatten_and(&mut flat),
            }
        }
        match flat.len() {
            0 => FactoredForm::Const(true),
            1 => flat.pop().expect("len checked"),
            _ => FactoredForm::And(flat),
        }
    }

    /// Builds a disjunction, flattening nested ORs and dropping constants.
    pub fn or(parts: Vec<FactoredForm>) -> FactoredForm {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                FactoredForm::Const(false) => {}
                FactoredForm::Const(true) => return FactoredForm::Const(true),
                FactoredForm::Or(sub) => flat.extend(sub),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => FactoredForm::Const(false),
            1 => flat.pop().expect("len checked"),
            _ => FactoredForm::Or(flat),
        }
    }
}

/// Literal occurrence counts: `(var, polarity) → count`.
fn literal_counts(cubes: &[Cube], num_vars: usize) -> Vec<[u32; 2]> {
    let mut counts = vec![[0u32; 2]; num_vars];
    for c in cubes {
        for (v, count) in counts.iter_mut().enumerate() {
            if (c.mask >> v) & 1 == 1 {
                let pol = ((c.polarity >> v) & 1) as usize;
                count[pol] += 1;
            }
        }
    }
    counts
}

/// Factors an SOP cover into a nested AND/OR form.
///
/// The result computes the same function as `sop.to_truth_table()` and
/// usually has substantially fewer literals than the flat cover.
///
/// # Example
///
/// ```
/// use mig_tt::{factor_sop, isop, TruthTable};
///
/// // f = ab + ac  factors as  a(b + c)
/// let a = TruthTable::var(0, 3);
/// let b = TruthTable::var(1, 3);
/// let c = TruthTable::var(2, 3);
/// let f = a.and(&b).or(&a.and(&c));
/// let ff = factor_sop(&isop(&f));
/// assert_eq!(ff.to_truth_table(3), f);
/// assert_eq!(ff.num_literals(), 3);
/// ```
pub fn factor_sop(sop: &Sop) -> FactoredForm {
    factor_cubes(&sop.cubes, sop.num_vars)
}

fn cube_to_form(cube: &Cube, num_vars: usize) -> FactoredForm {
    let lits: Vec<FactoredForm> = (0..num_vars)
        .filter(|v| (cube.mask >> v) & 1 == 1)
        .map(|var| FactoredForm::Literal {
            var,
            positive: (cube.polarity >> var) & 1 == 1,
        })
        .collect();
    FactoredForm::and(lits)
}

fn factor_cubes(cubes: &[Cube], num_vars: usize) -> FactoredForm {
    if cubes.is_empty() {
        return FactoredForm::Const(false);
    }
    if cubes.len() == 1 {
        return cube_to_form(&cubes[0], num_vars);
    }

    // 1. Divide out the largest common cube, if any.
    let mut common_mask = u32::MAX;
    let mut common_pol_and = u32::MAX;
    let mut common_pol_or = 0u32;
    for c in cubes {
        common_mask &= c.mask;
        common_pol_and &= c.polarity | !c.mask;
        common_pol_or |= c.polarity & c.mask;
    }
    // A variable is a common literal when present everywhere with one polarity.
    let same_pol = common_pol_and & common_mask | !common_pol_or & common_mask;
    let common = common_mask & (common_pol_and | !common_pol_or) & same_pol;
    if common != 0 {
        let pol = common_pol_or; // polarity where positive everywhere
        let mut parts: Vec<FactoredForm> = (0..num_vars)
            .filter(|v| (common >> v) & 1 == 1)
            .map(|var| FactoredForm::Literal {
                var,
                positive: (pol >> var) & 1 == 1,
            })
            .collect();
        let quotient: Vec<Cube> = cubes
            .iter()
            .map(|c| Cube {
                mask: c.mask & !common,
                polarity: c.polarity & !common,
            })
            .collect();
        parts.push(factor_cubes(&quotient, num_vars));
        return FactoredForm::and(parts);
    }

    // 2. Divide by the most frequent literal.
    let counts = literal_counts(cubes, num_vars);
    let mut best: Option<(usize, usize, u32)> = None; // (var, pol, count)
    for (v, c) in counts.iter().enumerate() {
        for (pol, &cnt) in c.iter().enumerate() {
            if cnt >= 2 {
                match best {
                    Some((_, _, bc)) if bc >= cnt => {}
                    _ => best = Some((v, pol, cnt)),
                }
            }
        }
    }
    let Some((var, pol, _)) = best else {
        // No sharing at all: emit the flat OR of cube forms.
        return FactoredForm::or(cubes.iter().map(|c| cube_to_form(c, num_vars)).collect());
    };

    let bit = 1u32 << var;
    let want = if pol == 1 { bit } else { 0 };
    let mut quotient = Vec::new();
    let mut remainder = Vec::new();
    for c in cubes {
        if c.mask & bit != 0 && c.polarity & bit == want {
            quotient.push(Cube {
                mask: c.mask & !bit,
                polarity: c.polarity & !bit,
            });
        } else {
            remainder.push(*c);
        }
    }
    let lit = FactoredForm::Literal {
        var,
        positive: pol == 1,
    };
    let divided = FactoredForm::and(vec![lit, factor_cubes(&quotient, num_vars)]);
    if remainder.is_empty() {
        divided
    } else {
        FactoredForm::or(vec![divided, factor_cubes(&remainder, num_vars)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isop::isop;

    #[test]
    fn factor_preserves_function_exhaustive_3vars() {
        for bits in 0u64..256 {
            let f = TruthTable::from_u64(3, bits);
            let ff = factor_sop(&isop(&f));
            assert_eq!(ff.to_truth_table(3), f, "bits {bits:02x}");
        }
    }

    #[test]
    fn factor_preserves_function_sampled_4vars() {
        for seed in 0u64..64 {
            let bits = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let f = TruthTable::from_u64(4, bits & 0xFFFF);
            let ff = factor_sop(&isop(&f));
            assert_eq!(ff.to_truth_table(4), f, "bits {bits:04x}");
        }
    }

    #[test]
    fn factor_reduces_literals() {
        // f = ab + ac + ad : flat cover has 6 literals, factored a(b+c+d) has 4.
        let a = TruthTable::var(0, 4);
        let f = a
            .and(&TruthTable::var(1, 4))
            .or(&a.and(&TruthTable::var(2, 4)))
            .or(&a.and(&TruthTable::var(3, 4)));
        let cover = isop(&f);
        let ff = factor_sop(&cover);
        assert!(ff.num_literals() < cover.num_literals() as usize);
        assert_eq!(ff.num_literals(), 4);
    }

    #[test]
    fn factor_constants() {
        assert_eq!(factor_sop(&Sop::zero(3)), FactoredForm::Const(false));
        let one = isop(&TruthTable::ones(3));
        assert_eq!(factor_sop(&one), FactoredForm::Const(true));
    }

    #[test]
    fn smart_constructors_simplify() {
        let lit = FactoredForm::Literal {
            var: 0,
            positive: true,
        };
        assert_eq!(
            FactoredForm::and(vec![FactoredForm::Const(true), lit.clone()]),
            lit
        );
        assert_eq!(
            FactoredForm::and(vec![FactoredForm::Const(false), lit.clone()]),
            FactoredForm::Const(false)
        );
        assert_eq!(
            FactoredForm::or(vec![FactoredForm::Const(false), lit.clone()]),
            lit
        );
        assert_eq!(
            FactoredForm::or(vec![FactoredForm::Const(true), lit]),
            FactoredForm::Const(true)
        );
    }

    #[test]
    fn common_cube_extracted() {
        // f = abc + abd = ab(c + d)
        let a = TruthTable::var(0, 4);
        let b = TruthTable::var(1, 4);
        let c = TruthTable::var(2, 4);
        let d = TruthTable::var(3, 4);
        let f = a.and(&b).and(&c).or(&a.and(&b).and(&d));
        let ff = factor_sop(&isop(&f));
        assert_eq!(ff.to_truth_table(4), f);
        assert_eq!(ff.num_literals(), 4);
    }
}
