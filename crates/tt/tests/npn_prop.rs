//! Property test: NPN canonization is a true canonical form.
//!
//! Two functions are NPN-equivalent iff they share an orbit under input
//! negation, input permutation, and output negation. A canonizer is a
//! canonical form exactly when every member of an orbit maps to the same
//! representative — so for random 4-input truth tables we apply **all**
//! 2·4!·2⁴ = 768 transforms and require identical canonization, through
//! both the generic [`mig_tt::npn_canonize`] and the `u16`-specialized
//! [`mig_tt::npn4_canonize`] used by cut rewriting.

use mig_tt::{npn4_apply, npn4_canonize, npn_canonize, Npn4Transform, TruthTable};

/// Deterministic xorshift so the sampled functions are stable across
/// runs and platforms.
struct XorShift(u64);

impl XorShift {
    fn next_u16(&mut self) -> u16 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 & 0xFFFF) as u16
    }
}

/// Every transform in the 4-variable NPN group, all 768 of them.
fn all_transforms() -> Vec<Npn4Transform> {
    let mut perms = Vec::new();
    for a in 0..4u8 {
        for b in 0..4u8 {
            for c in 0..4u8 {
                for d in 0..4u8 {
                    if a != b && a != c && a != d && b != c && b != d && c != d {
                        perms.push([a, b, c, d]);
                    }
                }
            }
        }
    }
    let mut out = Vec::with_capacity(768);
    for perm in perms {
        for input_flips in 0..16u8 {
            for output_flip in [false, true] {
                out.push(Npn4Transform {
                    perm,
                    input_flips,
                    output_flip,
                });
            }
        }
    }
    assert_eq!(out.len(), 768);
    out
}

#[test]
fn fast_canonizer_is_constant_on_orbits() {
    // The cheap u16 path can afford many samples: every transform of
    // every sampled function must canonize to the same representative,
    // and that representative must itself be a fixed point.
    let transforms = all_transforms();
    let mut rng = XorShift(0x243F_6A88_85A3_08D3);
    for _ in 0..25 {
        let f = rng.next_u16();
        let (canon, _) = npn4_canonize(f);
        assert_eq!(npn4_canonize(canon).0, canon, "canon is a fixed point");
        for t in &transforms {
            let g = npn4_apply(f, t);
            assert_eq!(
                npn4_canonize(g).0,
                canon,
                "f {f:#06x}, transform {t:?} broke canonicity"
            );
        }
    }
}

#[test]
fn generic_canonizer_is_constant_on_orbits() {
    // The generic TruthTable canonizer over the full orbit of a few
    // random functions (it is ~100× slower per call, so fewer samples),
    // plus agreement with the fast path on every orbit member.
    let transforms = all_transforms();
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    for _ in 0..1 {
        let f = rng.next_u16();
        let (canon, _) = npn_canonize(&TruthTable::from_u64(4, f as u64));
        for t in &transforms {
            let g = npn4_apply(f, t);
            let (got, tr) = npn_canonize(&TruthTable::from_u64(4, g as u64));
            assert_eq!(got, canon, "f {f:#06x}, transform {t:?}");
            // The recorded transform actually produces the canonical form.
            assert_eq!(tr.apply(&TruthTable::from_u64(4, g as u64)), got);
            // And the fast path agrees on this orbit member.
            assert_eq!(npn4_canonize(g).0 as u64, got.as_u64());
        }
    }
}

#[test]
fn structured_functions_canonize_consistently() {
    // XOR4, MAJ-of-3, AND4, MUX — functions the rewriting pass actually
    // meets — across their full orbits.
    let var = |v: usize| [0xAAAAu16, 0xCCCC, 0xF0F0, 0xFF00][v];
    let maj = |a: u16, b: u16, c: u16| (a & b) | (a & c) | (b & c);
    let cases = [
        var(0) ^ var(1) ^ var(2) ^ var(3),
        maj(var(0), var(1), var(2)),
        var(0) & var(1) & var(2) & var(3),
        (var(3) & var(0)) | (!var(3) & var(1)),
    ];
    let transforms = all_transforms();
    for f in cases {
        let (canon, _) = npn4_canonize(f);
        for t in &transforms {
            assert_eq!(npn4_canonize(npn4_apply(f, t)).0, canon, "f {f:#06x}");
        }
    }
}
