//! # Simulation, equivalence checking and switching activity
//!
//! Bit-parallel simulation of gate-level [`Network`]s, simulation-based
//! equivalence checking (exhaustive for small input counts, seeded random
//! otherwise), and the signal-probability / switching-activity model used
//! by the paper's "Activity" metric and the power estimator.
//!
//! # Example
//!
//! ```
//! use mig_netlist::Network;
//! use mig_sim::{simulate, equivalent};
//!
//! let mut net = Network::new("t");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let g = net.xor(a, b);
//! net.set_output("y", g);
//! assert!(equivalent(&net, &net.sweep(), 8));
//! let out = simulate(&net, &[0b01u64, 0b10u64]);
//! assert_eq!(out[0] & 0b11, 0b11);
//! ```

#![warn(missing_docs)]

mod activity;
mod equiv;
mod simulate;

pub use activity::{empirical_activity, signal_probabilities, switching_activity};
pub use equiv::{
    equivalent, equivalent_exhaustive, equivalent_random, equivalent_seeded, output_truth_tables,
};
pub use simulate::{simulate, simulate_all, simulate_batch};

// Re-exported for doc examples and downstream convenience.
pub use mig_netlist::Network;
