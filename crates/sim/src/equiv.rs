//! Simulation-based equivalence checking.

use crate::simulate::simulate;
use mig_netlist::{Network, SplitMix64};
use mig_tt::TruthTable;

/// Exact truth tables of every output (inputs ≤ 16).
///
/// # Panics
///
/// Panics if the network has more than 16 inputs.
pub fn output_truth_tables(net: &Network) -> Vec<TruthTable> {
    let n = net.num_inputs();
    assert!(n <= 16, "exhaustive simulation limited to 16 inputs");
    let total = 1usize << n;
    let mut tables = vec![TruthTable::zeros(n); net.num_outputs()];
    for base in (0..total).step_by(64) {
        let chunk = 64.min(total - base);
        let words: Vec<u64> = (0..n)
            .map(|v| {
                let mut w = 0u64;
                for b in 0..chunk {
                    if ((base + b) >> v) & 1 == 1 {
                        w |= 1 << b;
                    }
                }
                w
            })
            .collect();
        let outs = simulate(net, &words);
        for (o, &w) in outs.iter().enumerate() {
            for b in 0..chunk {
                if (w >> b) & 1 == 1 {
                    tables[o].set_bit(base + b, true);
                }
            }
        }
    }
    tables
}

/// Exhaustive equivalence check (inputs ≤ 16). Exact.
///
/// # Panics
///
/// Panics if interfaces differ or either network has more than 16 inputs.
pub fn equivalent_exhaustive(a: &Network, b: &Network) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    output_truth_tables(a) == output_truth_tables(b)
}

/// Random equivalence check with `64 × rounds` patterns (seeded,
/// deterministic). Can only disprove equivalence.
///
/// # Panics
///
/// Panics if interfaces differ.
pub fn equivalent_random(a: &Network, b: &Network, rounds: usize) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let mut rng = SplitMix64::seed_from_u64(0x5EED_CAFE);
    for _ in 0..rounds {
        let words: Vec<u64> = (0..a.num_inputs()).map(|_| rng.next_u64()).collect();
        if simulate(a, &words) != simulate(b, &words) {
            return false;
        }
    }
    true
}

/// Equivalence check: exhaustive when feasible, random otherwise.
pub fn equivalent(a: &Network, b: &Network, rounds: usize) -> bool {
    if a.num_inputs() <= 16 {
        equivalent_exhaustive(a, b)
    } else {
        equivalent_random(a, b, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig_netlist::parse_verilog;

    #[test]
    fn truth_tables_match_eval() {
        let net = parse_verilog(
            "module t(a,b,c,y); input a,b,c; output y;\n\
             assign y = maj(a, b, c); endmodule",
        )
        .expect("parses");
        let tts = output_truth_tables(&net);
        assert_eq!(tts[0].as_u64(), 0xE8);
    }

    #[test]
    fn exhaustive_catches_single_minterm_difference() {
        let a = parse_verilog(
            "module t(x0,x1,x2,x3,y); input x0,x1,x2,x3; output y;\n\
             assign y = x0 & x1 & x2 & x3; endmodule",
        )
        .expect("parses");
        let b = parse_verilog(
            "module t(x0,x1,x2,x3,y); input x0,x1,x2,x3; output y;\n\
             assign y = x0 & x1 & x2 & x3 & (x0 | x1); endmodule",
        )
        .expect("parses");
        assert!(equivalent_exhaustive(&a, &b), "actually equal functions");
        let c = parse_verilog(
            "module t(x0,x1,x2,x3,y); input x0,x1,x2,x3; output y;\n\
             assign y = x0 & x1 & x2; endmodule",
        )
        .expect("parses");
        assert!(!equivalent_exhaustive(&a, &c));
    }

    #[test]
    fn random_check_on_wide_circuit() {
        // 20 inputs exercise the random path through `equivalent`.
        let mut src = String::from("module t(");
        for i in 0..20 {
            src.push_str(&format!("x{i},"));
        }
        src.push_str("y); input ");
        for i in 0..20 {
            src.push_str(&format!("x{i}{}", if i == 19 { ";" } else { "," }));
        }
        src.push_str(" output y; assign y = x0");
        for i in 1..20 {
            src.push_str(&format!(" ^ x{i}"));
        }
        src.push_str("; endmodule");
        let net = parse_verilog(&src).expect("parses");
        assert!(equivalent(&net, &net.sweep(), 8));
    }
}
