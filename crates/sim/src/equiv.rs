//! Simulation-based equivalence checking.

use crate::simulate::simulate_batch;
use mig_netlist::{Network, SplitMix64};
use mig_tt::TruthTable;

/// Words per simulation pass: both the exhaustive and the random checks
/// evaluate 8 × 64 = 512 patterns per topological traversal, so the
/// per-gate dispatch cost is amortized across the batch. Runs whose
/// pattern count is not a multiple of the batch width pass the tail as
/// a smaller batch.
const BATCH_WORDS: usize = 8;

/// Exact truth tables of every output (inputs ≤ 16).
///
/// # Panics
///
/// Panics if the network has more than 16 inputs.
pub fn output_truth_tables(net: &Network) -> Vec<TruthTable> {
    let n = net.num_inputs();
    assert!(n <= 16, "exhaustive simulation limited to 16 inputs");
    let total = 1usize << n;
    let total_words = total.div_ceil(64);
    let mut tables = vec![TruthTable::zeros(n); net.num_outputs()];
    let mut buf = Vec::new();
    for wbase in (0..total_words).step_by(BATCH_WORDS) {
        let w = BATCH_WORDS.min(total_words - wbase);
        buf.clear();
        for v in 0..n {
            for j in 0..w {
                let base = (wbase + j) * 64;
                let chunk = 64.min(total - base);
                let mut word = 0u64;
                for b in 0..chunk {
                    if ((base + b) >> v) & 1 == 1 {
                        word |= 1 << b;
                    }
                }
                buf.push(word);
            }
        }
        let outs = simulate_batch(net, &buf, w);
        for o in 0..net.num_outputs() {
            for j in 0..w {
                let base = (wbase + j) * 64;
                let chunk = 64.min(total - base);
                let word = outs[o * w + j];
                for b in 0..chunk {
                    if (word >> b) & 1 == 1 {
                        tables[o].set_bit(base + b, true);
                    }
                }
            }
        }
    }
    tables
}

/// Exhaustive equivalence check (inputs ≤ 16). Exact.
///
/// # Panics
///
/// Panics if interfaces differ or either network has more than 16 inputs.
pub fn equivalent_exhaustive(a: &Network, b: &Network) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    output_truth_tables(a) == output_truth_tables(b)
}

/// Random equivalence check with `64 × rounds` patterns (seeded,
/// deterministic). Can only disprove equivalence.
///
/// # Panics
///
/// Panics if interfaces differ.
pub fn equivalent_random(a: &Network, b: &Network, rounds: usize) -> bool {
    equivalent_seeded(a, b, rounds, 0x5EED_CAFE)
}

/// [`equivalent_random`] with a caller-chosen SplitMix64 seed, so
/// repeated spot checks of the same pair (e.g. the pass manager's
/// post-pass `--selfcheck`) can draw fresh pattern sets instead of
/// re-testing the identical 64 × `rounds` vectors.
///
/// # Panics
///
/// Panics if interfaces differ.
pub fn equivalent_seeded(a: &Network, b: &Network, rounds: usize, seed: u64) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let n = a.num_inputs();
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut buf = vec![0u64; n * BATCH_WORDS];
    let mut done = 0usize;
    while done < rounds {
        let w = BATCH_WORDS.min(rounds - done);
        // Keep the historical stream order (round-major: each round
        // draws one word per input), so the patterns tested are exactly
        // those of the old one-round-per-pass implementation.
        for j in 0..w {
            for i in 0..n {
                buf[i * w + j] = rng.next_u64();
            }
        }
        if simulate_batch(a, &buf[..n * w], w) != simulate_batch(b, &buf[..n * w], w) {
            return false;
        }
        done += w;
    }
    true
}

/// Equivalence check: exhaustive when feasible, random otherwise.
pub fn equivalent(a: &Network, b: &Network, rounds: usize) -> bool {
    if a.num_inputs() <= 16 {
        equivalent_exhaustive(a, b)
    } else {
        equivalent_random(a, b, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig_netlist::parse_verilog;

    #[test]
    fn truth_tables_match_eval() {
        let net = parse_verilog(
            "module t(a,b,c,y); input a,b,c; output y;\n\
             assign y = maj(a, b, c); endmodule",
        )
        .expect("parses");
        let tts = output_truth_tables(&net);
        assert_eq!(tts[0].as_u64(), 0xE8);
    }

    #[test]
    fn exhaustive_catches_single_minterm_difference() {
        let a = parse_verilog(
            "module t(x0,x1,x2,x3,y); input x0,x1,x2,x3; output y;\n\
             assign y = x0 & x1 & x2 & x3; endmodule",
        )
        .expect("parses");
        let b = parse_verilog(
            "module t(x0,x1,x2,x3,y); input x0,x1,x2,x3; output y;\n\
             assign y = x0 & x1 & x2 & x3 & (x0 | x1); endmodule",
        )
        .expect("parses");
        assert!(equivalent_exhaustive(&a, &b), "actually equal functions");
        let c = parse_verilog(
            "module t(x0,x1,x2,x3,y); input x0,x1,x2,x3; output y;\n\
             assign y = x0 & x1 & x2; endmodule",
        )
        .expect("parses");
        assert!(!equivalent_exhaustive(&a, &c));
    }

    /// The pre-batching implementation: one 64-pattern word per input
    /// per round, one topological pass per round.
    fn reference_random(a: &Network, b: &Network, rounds: usize) -> bool {
        let mut rng = SplitMix64::seed_from_u64(0x5EED_CAFE);
        for _ in 0..rounds {
            let words: Vec<u64> = (0..a.num_inputs()).map(|_| rng.next_u64()).collect();
            if crate::simulate(a, &words) != crate::simulate(b, &words) {
                return false;
            }
        }
        true
    }

    #[test]
    fn batched_random_check_matches_reference_incl_tails() {
        // 18 inputs keep `equivalent` on the random path; the pair
        // below is NOT equivalent (an 18-input AND vs one missing a
        // fanin), and a same-network pair is.
        let mut decl = String::new();
        for i in 0..18 {
            decl.push_str(&format!("x{i}{}", if i == 17 { "" } else { "," }));
        }
        let full = parse_verilog(&format!(
            "module t({decl},y); input {decl}; output y;\n\
             assign y = x0 {}; endmodule",
            (1..18).map(|i| format!("& x{i}")).collect::<String>()
        ))
        .expect("parses");
        let partial = parse_verilog(&format!(
            "module t({decl},y); input {decl}; output y;\n\
             assign y = x0 {}; endmodule",
            (1..17).map(|i| format!("& x{i}")).collect::<String>()
        ))
        .expect("parses");
        // Round counts straddling the 8-word batch width: below it, at
        // it, and with 3- and 1-word tails.
        for rounds in [1, 3, 8, 11, 17] {
            assert_eq!(
                equivalent_random(&full, &full.sweep(), rounds),
                reference_random(&full, &full.sweep(), rounds),
                "equal pair, rounds={rounds}"
            );
            assert_eq!(
                equivalent_random(&full, &partial, rounds),
                reference_random(&full, &partial, rounds),
                "unequal pair, rounds={rounds}"
            );
        }
    }

    #[test]
    fn exhaustive_small_inputs_use_the_tail_batch() {
        // 3 inputs = 8 patterns: a single sub-64-bit word, the smallest
        // tail the 512-pattern batching must still handle exactly.
        let net = parse_verilog(
            "module t(a,b,c,y); input a,b,c; output y;\n\
             assign y = (a & b) | c; endmodule",
        )
        .expect("parses");
        let tts = output_truth_tables(&net);
        for row in 0..8usize {
            let (a, b, c) = (row & 1 == 1, row & 2 == 2, row & 4 == 4);
            assert_eq!(tts[0].get_bit(row), (a && b) || c, "row {row}");
        }
    }

    #[test]
    fn random_check_on_wide_circuit() {
        // 20 inputs exercise the random path through `equivalent`.
        let mut src = String::from("module t(");
        for i in 0..20 {
            src.push_str(&format!("x{i},"));
        }
        src.push_str("y); input ");
        for i in 0..20 {
            src.push_str(&format!("x{i}{}", if i == 19 { ";" } else { "," }));
        }
        src.push_str(" output y; assign y = x0");
        for i in 1..20 {
            src.push_str(&format!(" ^ x{i}"));
        }
        src.push_str("; endmodule");
        let net = parse_verilog(&src).expect("parses");
        assert!(equivalent(&net, &net.sweep(), 8));
    }
}
