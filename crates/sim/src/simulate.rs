//! Bit-parallel network simulation.

use mig_netlist::{GateKind, Network};

/// Simulates 64 input patterns at once and returns one word per output.
///
/// `input_words[i]` carries 64 values of input `i` (bit `p` = pattern
/// `p`).
///
/// # Panics
///
/// Panics if `input_words.len() != net.num_inputs()`.
pub fn simulate(net: &Network, input_words: &[u64]) -> Vec<u64> {
    simulate_all(net, input_words).1
}

/// Simulates `w` 64-pattern words per input (`64·w` patterns total) in a
/// single topological pass over the network.
///
/// The equivalence checker batches 8 words (512 patterns) per pass, so
/// the per-gate bookkeeping — fanin lookups, dispatch on the gate kind —
/// is amortized over the whole batch instead of being paid once per
/// word. `input_words` is input-major: input `i`'s words occupy
/// `input_words[i*w .. (i+1)*w]`, and the result uses the same layout
/// per output. `w` may be anything from 1 up: a run whose pattern count
/// is not a multiple of the batch width simply passes the tail as a
/// smaller `w`.
///
/// # Panics
///
/// Panics if `w == 0` or `input_words.len() != net.num_inputs() * w`.
pub fn simulate_batch(net: &Network, input_words: &[u64], w: usize) -> Vec<u64> {
    assert!(w > 0, "batch width must be at least one word");
    assert_eq!(input_words.len(), net.num_inputs() * w);
    let mut values = vec![0u64; net.num_gates() * w];
    let mut next_input = 0usize;
    // Fanin words are staged through a fixed-size stack buffer so the
    // evaluation loop performs no per-gate heap allocation; the rare
    // wider-than-8 variadic gate falls back to a reusable spill vector
    // (allocated at most once per call).
    let mut inline = [0u64; 8];
    let mut spill: Vec<u64> = Vec::new();
    for (id, gate) in net.iter() {
        match gate.kind() {
            GateKind::Input => {
                values[id.index() * w..(id.index() + 1) * w]
                    .copy_from_slice(&input_words[next_input * w..(next_input + 1) * w]);
                next_input += 1;
            }
            kind => {
                let fanins = gate.fanins();
                for j in 0..w {
                    let vals: &[u64] = if fanins.len() <= inline.len() {
                        for (slot, f) in inline.iter_mut().zip(fanins) {
                            *slot = values[f.index() * w + j];
                        }
                        &inline[..fanins.len()]
                    } else {
                        spill.clear();
                        spill.extend(fanins.iter().map(|f| values[f.index() * w + j]));
                        &spill
                    };
                    values[id.index() * w + j] = kind.eval_words(vals);
                }
            }
        }
    }
    let mut outs = Vec::with_capacity(net.num_outputs() * w);
    for &(_, g) in net.outputs() {
        outs.extend_from_slice(&values[g.index() * w..(g.index() + 1) * w]);
    }
    outs
}

/// Simulates 64 patterns and returns `(per-gate words, per-output words)`.
///
/// The per-gate vector is indexed by [`GateId::index`](mig_netlist::GateId);
/// it is what activity estimation consumes.
///
/// # Panics
///
/// Panics if `input_words.len() != net.num_inputs()`.
pub fn simulate_all(net: &Network, input_words: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert_eq!(input_words.len(), net.num_inputs());
    let mut values = vec![0u64; net.num_gates()];
    let mut next_input = 0usize;
    // Fanin words are staged through a fixed-size stack buffer so the
    // 64-way evaluation loop performs no per-gate heap allocation; the
    // rare wider-than-8 variadic gate falls back to a reusable spill
    // vector (allocated at most once per call).
    let mut inline = [0u64; 8];
    let mut spill: Vec<u64> = Vec::new();
    for (id, gate) in net.iter() {
        values[id.index()] = match gate.kind() {
            GateKind::Input => {
                let w = input_words[next_input];
                next_input += 1;
                w
            }
            kind => {
                let fanins = gate.fanins();
                let vals: &[u64] = if fanins.len() <= inline.len() {
                    for (slot, f) in inline.iter_mut().zip(fanins) {
                        *slot = values[f.index()];
                    }
                    &inline[..fanins.len()]
                } else {
                    spill.clear();
                    spill.extend(fanins.iter().map(|f| values[f.index()]));
                    &spill
                };
                kind.eval_words(vals)
            }
        };
    }
    let outs = net
        .outputs()
        .iter()
        .map(|&(_, g)| values[g.index()])
        .collect();
    (values, outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig_netlist::Network;

    #[test]
    fn word_simulation_matches_scalar() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let x = net.xor(a, b);
        let m = net.maj(a, b, c);
        let g = net.and(x, m);
        net.set_output("y", g);
        // Exhaustive 8 patterns packed in one word.
        let words: Vec<u64> = (0..3)
            .map(|v| {
                let mut w = 0u64;
                for p in 0..8 {
                    if (p >> v) & 1 == 1 {
                        w |= 1 << p;
                    }
                }
                w
            })
            .collect();
        let out = simulate(&net, &words);
        for p in 0..8usize {
            let assign = [p & 1 == 1, p & 2 == 2, p & 4 == 4];
            assert_eq!((out[0] >> p) & 1 == 1, net.eval(&assign)[0], "pattern {p}");
        }
    }

    #[test]
    fn wide_variadic_gates_use_spill_path() {
        // 12 fanins exceed the 8-slot inline buffer, exercising the spill
        // vector; the result must match a manual word-wise fold.
        let mut net = Network::new("wide");
        let ins: Vec<_> = (0..12).map(|i| net.add_input(format!("x{i}"))).collect();
        let g_and = net.add_gate(mig_netlist::GateKind::And, ins.clone());
        let g_xor = net.add_gate(mig_netlist::GateKind::Xor, ins.clone());
        net.set_output("and", g_and);
        net.set_output("xor", g_xor);
        let words: Vec<u64> = (0..12)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left(i))
            .collect();
        let out = simulate(&net, &words);
        assert_eq!(out[0], words.iter().fold(u64::MAX, |acc, &w| acc & w));
        assert_eq!(out[1], words.iter().fold(0u64, |acc, &w| acc ^ w));
    }

    #[test]
    fn batch_matches_per_word_simulation() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let x = net.xor(a, b);
        let m = net.maj(a, b, c);
        let g = net.and(x, m);
        net.set_output("y", g);
        net.set_output("m", m);
        // 5 words per input: not a multiple of the 8-word batch width
        // the equivalence checker uses, exercising a short batch.
        let w = 5;
        let words: Vec<u64> = (0..3 * w as u64)
            .map(|i| 0xA5A5_5A5A_0F0F_F0F0u64.rotate_left(7 * i as u32) ^ i)
            .collect();
        let batched = simulate_batch(&net, &words, w);
        for j in 0..w {
            let per_word: Vec<u64> = (0..3).map(|i| words[i * w + j]).collect();
            let outs = simulate(&net, &per_word);
            for (o, &expect) in outs.iter().enumerate() {
                assert_eq!(batched[o * w + j], expect, "output {o}, word {j}");
            }
        }
    }

    #[test]
    fn batch_spill_path_matches_on_wide_gates() {
        // 12 fanins exceed the 8-slot inline buffer: the batched loop
        // must hit the spill vector and still match the word-wise fold.
        let mut net = Network::new("wide");
        let ins: Vec<_> = (0..12).map(|i| net.add_input(format!("x{i}"))).collect();
        let g_and = net.add_gate(mig_netlist::GateKind::And, ins.clone());
        let g_xor = net.add_gate(mig_netlist::GateKind::Xor, ins);
        net.set_output("and", g_and);
        net.set_output("xor", g_xor);
        let w = 3;
        let words: Vec<u64> = (0..12 * w as u64)
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.rotate_left(i as u32) ^ (i * i))
            .collect();
        let batched = simulate_batch(&net, &words, w);
        for j in 0..w {
            let and = (0..12).fold(u64::MAX, |acc, i| acc & words[i * w + j]);
            let xor = (0..12).fold(0u64, |acc, i| acc ^ words[i * w + j]);
            assert_eq!(batched[j], and, "AND word {j}");
            assert_eq!(batched[w + j], xor, "XOR word {j}");
        }
    }

    #[test]
    #[should_panic(expected = "batch width must be at least one word")]
    fn zero_width_batch_is_rejected() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        net.set_output("y", a);
        let _ = simulate_batch(&net, &[], 0);
    }

    #[test]
    fn gate_values_exposed() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let n = net.not(a);
        net.set_output("y", n);
        let (gates, outs) = simulate_all(&net, &[0b01]);
        assert_eq!(gates[a.index()], 0b01);
        assert_eq!(outs[0] & 0b11, 0b10);
    }
}
