//! Signal probability and switching-activity estimation.
//!
//! The paper's "Activity" metric (Table I) is `Σ p(1−p)` over logic
//! gates, where `p` is each gate's probability of evaluating to 1 under
//! independent inputs. [`signal_probabilities`] propagates probabilities
//! through every primitive; [`empirical_activity`] cross-checks the model
//! with sampled simulation (useful on reconvergent logic where the
//! independence approximation drifts).

use crate::simulate::simulate_all;
use mig_netlist::{GateKind, Network, SplitMix64};

/// Probability of logic 1 for every gate, assuming independent fanins.
///
/// # Panics
///
/// Panics if `input_probs.len() != net.num_inputs()`.
pub fn signal_probabilities(net: &Network, input_probs: &[f64]) -> Vec<f64> {
    assert_eq!(input_probs.len(), net.num_inputs());
    let mut p = vec![0.0f64; net.num_gates()];
    let mut next_input = 0usize;
    for (id, gate) in net.iter() {
        let f = |i: usize| p[gate.fanins()[i].index()];
        p[id.index()] = match gate.kind() {
            GateKind::Const0 => 0.0,
            GateKind::Const1 => 1.0,
            GateKind::Input => {
                let q = input_probs[next_input];
                next_input += 1;
                q
            }
            GateKind::Buf => f(0),
            GateKind::Not => 1.0 - f(0),
            GateKind::And => gate.fanins().iter().map(|g| p[g.index()]).product(),
            GateKind::Nand => 1.0 - gate.fanins().iter().map(|g| p[g.index()]).product::<f64>(),
            GateKind::Or => {
                1.0 - gate
                    .fanins()
                    .iter()
                    .map(|g| 1.0 - p[g.index()])
                    .product::<f64>()
            }
            GateKind::Nor => gate
                .fanins()
                .iter()
                .map(|g| 1.0 - p[g.index()])
                .product::<f64>(),
            GateKind::Xor => gate
                .fanins()
                .iter()
                .map(|g| p[g.index()])
                .fold(0.0, |acc, q| acc * (1.0 - q) + (1.0 - acc) * q),
            GateKind::Xnor => {
                let x = f(0) * (1.0 - f(1)) + (1.0 - f(0)) * f(1);
                1.0 - x
            }
            GateKind::Mux => f(0) * f(1) + (1.0 - f(0)) * f(2),
            GateKind::Maj => {
                let (a, b, c) = (f(0), f(1), f(2));
                a * b + a * c + b * c - 2.0 * a * b * c
            }
        };
    }
    p
}

/// The paper's switching-activity metric: `Σ p(1−p)` over reachable
/// logic gates (inverters and buffers excluded — they are edge
/// attributes in MIG/AIG form).
pub fn switching_activity(net: &Network, input_probs: &[f64]) -> f64 {
    let p = signal_probabilities(net, input_probs);
    let reach = net.reachable();
    net.iter()
        .filter(|(id, g)| reach[id.index()] && g.kind().is_logic() && g.kind() != GateKind::Not)
        .map(|(id, _)| p[id.index()] * (1.0 - p[id.index()]))
        .sum()
}

/// Empirical switching activity from `64 × rounds` sampled patterns:
/// for each gate, `p̂(1−p̂)` with `p̂` the sampled probability of 1.
pub fn empirical_activity(net: &Network, rounds: usize, seed: u64) -> f64 {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut ones = vec![0u64; net.num_gates()];
    let mut total = 0u64;
    for _ in 0..rounds {
        let words: Vec<u64> = (0..net.num_inputs()).map(|_| rng.next_u64()).collect();
        let (gates, _) = simulate_all(net, &words);
        for (o, w) in ones.iter_mut().zip(&gates) {
            *o += w.count_ones() as u64;
        }
        total += 64;
    }
    let reach = net.reachable();
    net.iter()
        .filter(|(id, g)| reach[id.index()] && g.kind().is_logic() && g.kind() != GateKind::Not)
        .map(|(id, _)| {
            let p = ones[id.index()] as f64 / total as f64;
            p * (1.0 - p)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig_netlist::Network;

    #[test]
    fn and_or_probabilities() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g_and = net.and(a, b);
        let g_or = net.or(a, b);
        net.set_output("x", g_and);
        net.set_output("y", g_or);
        let p = signal_probabilities(&net, &[0.5, 0.5]);
        assert!((p[g_and.index()] - 0.25).abs() < 1e-12);
        assert!((p[g_or.index()] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn xor_probability_is_half_under_uniform() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let x = net.xor(a, b);
        net.set_output("y", x);
        let p = signal_probabilities(&net, &[0.5, 0.5]);
        assert!((p[x.index()] - 0.5).abs() < 1e-12);
        let act = switching_activity(&net, &[0.5, 0.5]);
        assert!((act - 0.25).abs() < 1e-12);
    }

    #[test]
    fn maj_probability_matches_paper_model() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let m = net.maj(a, b, c);
        net.set_output("y", m);
        let p = signal_probabilities(&net, &[0.5, 0.1, 0.1]);
        // 0.5·0.1 + 0.5·0.1 + 0.01 − 2·0.5·0.1·0.1 = 0.1
        assert!((p[m.index()] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empirical_close_to_analytic_on_tree() {
        // On a fanout-free tree the independence model is exact.
        let mut net = Network::new("t");
        let ins: Vec<_> = (0..8).map(|i| net.add_input(format!("x{i}"))).collect();
        let mut layer = ins;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    net.and(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        net.set_output("y", layer[0]);
        let analytic = switching_activity(&net, &[0.5; 8]);
        let empirical = empirical_activity(&net, 256, 42);
        assert!(
            (analytic - empirical).abs() < 0.05,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn inverters_do_not_count() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let n = net.not(a);
        let g = net.and(n, a);
        net.set_output("y", g);
        let act = switching_activity(&net, &[0.5]);
        // Only the AND counts; its p is 0 (a & !a)… the model sees
        // p = 0.25 because it assumes independence — this drift is the
        // documented limitation of the analytic model.
        assert!((act - 0.1875).abs() < 1e-12);
        let emp = empirical_activity(&net, 64, 7);
        assert!(emp.abs() < 1e-12, "empirically the gate never switches");
    }
}
