//! # Majority-Inverter Graphs
//!
//! A from-scratch implementation of the Majority-Inverter Graph (MIG)
//! logic representation and its Boolean algebra, after *"Majority-Inverter
//! Graph: A Novel Data-Structure and Algorithms for Efficient Logic
//! Optimization"* (Amarù, Gaillardon, De Micheli — DAC 2014).
//!
//! An MIG ([`Mig`]) is a DAG of three-input majority nodes connected by
//! regular or complemented edges ([`Signal`]). MIGs strictly contain
//! AND/OR/Inverter graphs: `AND(a,b) = M(a,b,0)` and `OR(a,b) = M(a,b,1)`
//! (Theorem 3.1), so any Boolean network imports losslessly via
//! [`Mig::from_network`].
//!
//! The paper's axiomatic system `Ω` (commutativity, majority,
//! associativity, distributivity, inverter propagation) and the derived
//! rules `Ψ` (relevance, complementary associativity, substitution) are
//! implemented as executable rewrites on [`Mig`], and drive three
//! optimizers:
//!
//! * [`optimize_size`] — Algorithm 1 (node count),
//! * [`optimize_depth`] — Algorithm 2 (logic levels),
//! * [`optimize_activity`] — Section IV-C (switching activity),
//! * [`optimize_rewrite`] — cut-based Boolean rewriting against the NPN
//!   database, in size- and depth-oriented acceptance modes.
//!
//! The optimizers compose through the [`opt::pipeline`] pass manager: a
//! [`Pass`] trait, a shared [`OptContext`] (arena pool, rewrite caches,
//! wall-time ledger), and parsed [`Flow`] scripts like
//! `"size*2; rewrite; depth_rewrite; activity"`.
//!
//! # Example
//!
//! ```
//! use mig_core::{Mig, optimize_depth, DepthOptConfig};
//!
//! // f = x ⊕ y ⊕ z from its AOIG (depth 4) optimizes to depth ≤ 3.
//! let mut mig = Mig::new("xor3");
//! let x = mig.add_input("x");
//! let y = mig.add_input("y");
//! let z = mig.add_input("z");
//! let t = mig.xor(x, y);
//! let f = mig.xor(t, z);
//! mig.add_output("f", f);
//! let opt = optimize_depth(&mig, &DepthOptConfig::default());
//! assert!(opt.equiv(&mig, 4));
//! assert!(opt.depth() < mig.depth());
//! ```

#![warn(missing_docs)]

mod algebra;
mod convert;
#[cfg(feature = "faultpoints")]
pub mod faultpoint;
pub mod level;
mod mig;
pub mod opt;
pub(crate) mod scratch;
mod signal;
mod simulate;
pub(crate) mod strash;

pub use crate::level::{LevelMap, LevelStats};
pub use crate::mig::Mig;
pub use opt::{
    enumerate_cuts, optimize_activity, optimize_depth, optimize_rewrite, optimize_size,
    ActivityOptConfig, ActivityPass, Budget, Cost, CutSet, DepthOptConfig, DepthPass, EGraph, ELit,
    EnumeratedCut, EsatConfig, EsatPass, EsatRule, EsatStats, Flow, FlowStep, MapPass,
    MappedMetrics, Objective, OptContext, Pass, PassKind, PassMetrics, PassOutcome, PassReport,
    Repeat, RewriteConfig, RewritePass, SimSpotCheck, SizeOptConfig, SizePass, SpotCheck,
    StopReason, TechModel,
};
pub use signal::{NodeId, Signal};

/// Record an arrival at a named fault site.
///
/// Expands to a call into `faultpoint::hit` when the **expanding**
/// crate is compiled with its `faultpoints` feature (which forwards to
/// `mig_core/faultpoints`), and to nothing otherwise — the default
/// build contains no fault-point code.
#[macro_export]
macro_rules! faultpoint {
    ($site:expr) => {
        #[cfg(feature = "faultpoints")]
        $crate::faultpoint::hit($site);
    };
}

/// Pass a `u16` through a named corruption fault site.
///
/// Evaluates to `faultpoint::corrupt_u16($site, $value)` when the
/// expanding crate enables its `faultpoints` feature, and to `$value`
/// unchanged otherwise.
#[macro_export]
macro_rules! faultpoint_corrupt {
    ($site:expr, $value:expr) => {{
        #[cfg(feature = "faultpoints")]
        {
            $crate::faultpoint::corrupt_u16($site, $value)
        }
        #[cfg(not(feature = "faultpoints"))]
        {
            $value
        }
    }};
}
