//! The Majority-Inverter Graph arena.

use crate::{NodeId, Signal};
use std::collections::HashMap;

/// A Majority-Inverter Graph: a DAG whose internal nodes all compute the
/// three-input majority function and whose edges carry an optional
/// complement attribute (the paper's Section III-A definition).
///
/// Node 0 is the constant 0; nodes `1..=num_inputs` are the primary
/// inputs; every later node is a majority gate. The constructor
/// [`Mig::maj`] structurally hashes nodes after applying the trivial
/// `Ω.M` simplifications and an `Ω.I`-based inverter normalization (a
/// stored node has at most one complemented fanin), so structurally
/// equivalent subgraphs are shared automatically.
///
/// # Example
///
/// ```
/// use mig_core::Mig;
///
/// let mut mig = Mig::new("maj3");
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let c = mig.add_input("c");
/// let m = mig.maj(a, b, c);
/// mig.add_output("y", m);
/// assert_eq!(mig.size(), 1);
/// assert_eq!(mig.depth(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mig {
    name: String,
    children: Vec<[Signal; 3]>,
    level: Vec<u32>,
    num_inputs: usize,
    input_names: Vec<String>,
    outputs: Vec<(String, Signal)>,
    strash: HashMap<[Signal; 3], NodeId>,
}

impl Mig {
    /// Creates an empty MIG containing only the constant node.
    pub fn new(name: impl Into<String>) -> Self {
        Mig {
            name: name.into(),
            children: vec![[Signal::FALSE; 3]],
            level: vec![0],
            num_inputs: 0,
            input_names: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a primary input and returns its signal.
    ///
    /// # Panics
    ///
    /// Panics if any majority gate was already created: inputs occupy the
    /// contiguous arena range `1..=num_inputs`.
    pub fn add_input(&mut self, name: impl Into<String>) -> Signal {
        assert_eq!(
            self.children.len(),
            self.num_inputs + 1,
            "all inputs must be added before gates"
        );
        self.children.push([Signal::FALSE; 3]);
        self.level.push(0);
        self.num_inputs += 1;
        self.input_names.push(name.into());
        Signal::new(NodeId::from_index(self.num_inputs), false)
    }

    /// The signal of primary input `i` (0-based).
    pub fn input(&self, i: usize) -> Signal {
        assert!(i < self.num_inputs, "input index out of range");
        Signal::new(NodeId::from_index(i + 1), false)
    }

    /// The name of primary input `i`.
    pub fn input_name(&self, i: usize) -> &str {
        &self.input_names[i]
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Declares `signal` as primary output `name`.
    pub fn add_output(&mut self, name: impl Into<String>, signal: Signal) {
        assert!(signal.node().index() < self.children.len());
        self.outputs.push((name.into(), signal));
    }

    /// The primary outputs as `(name, signal)` pairs.
    pub fn outputs(&self) -> &[(String, Signal)] {
        &self.outputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Redirects output `i` to a new signal (used by optimization passes).
    pub fn set_output(&mut self, i: usize, signal: Signal) {
        assert!(signal.node().index() < self.children.len());
        self.outputs[i].1 = signal;
    }

    /// True if `node` is a majority gate (not the constant, not an input).
    pub fn is_gate(&self, node: NodeId) -> bool {
        node.index() > self.num_inputs
    }

    /// True if `node` is a primary input.
    pub fn is_input(&self, node: NodeId) -> bool {
        node.index() >= 1 && node.index() <= self.num_inputs
    }

    /// The three stored fanins of a gate node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a gate.
    pub fn children(&self, node: NodeId) -> [Signal; 3] {
        assert!(self.is_gate(node), "{node} is not a majority gate");
        self.children[node.index()]
    }

    /// Functional view of `signal` as a majority: if its node is a gate,
    /// returns fanins adjusted for the edge's complement attribute using
    /// `Ω.I` (`M'(x,y,z) = M(x',y',z')`). Returns `None` for inputs and
    /// constants.
    pub fn as_maj(&self, signal: Signal) -> Option<[Signal; 3]> {
        if !self.is_gate(signal.node()) {
            return None;
        }
        let [a, b, c] = self.children[signal.node().index()];
        let f = signal.is_complemented();
        Some([a.complement_if(f), b.complement_if(f), c.complement_if(f)])
    }

    /// Total number of arena nodes (constant + inputs + gates, dead or not).
    pub fn num_nodes(&self) -> usize {
        self.children.len()
    }

    /// Number of gate nodes in the arena (alive or dead).
    pub fn num_gates(&self) -> usize {
        self.children.len() - self.num_inputs - 1
    }

    /// Logic level of a node: 0 for inputs/constants, 1 + deepest fanin
    /// for gates.
    pub fn level_of(&self, node: NodeId) -> u32 {
        self.level[node.index()]
    }

    /// Logic level of the node a signal points at.
    pub fn level_of_signal(&self, signal: Signal) -> u32 {
        self.level[signal.node().index()]
    }

    /// Creates (or finds) the majority node `M(a, b, c)`.
    ///
    /// Applies the trivial `Ω.M` rules (`M(x,x,z) = x`, `M(x,x',z) = z`),
    /// normalizes inverters with `Ω.I`, sorts fanins (`Ω.C`), and
    /// structurally hashes the result.
    pub fn maj(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        // Ω.M: two equal or complementary fanins decide the output.
        if a == b {
            return a;
        }
        if a == !b {
            return c;
        }
        if a == c {
            return a;
        }
        if a == !c {
            return b;
        }
        if b == c {
            return b;
        }
        if b == !c {
            return a;
        }
        // Ω.I: keep at most one complemented fanin in the stored node.
        let n_compl =
            a.is_complemented() as u8 + b.is_complemented() as u8 + c.is_complemented() as u8;
        if n_compl >= 2 {
            return !self.maj_canonical(!a, !b, !c);
        }
        self.maj_canonical(a, b, c)
    }

    /// Checks whether `M(a, b, c)` already exists (or folds to an existing
    /// signal) without allocating a node. Returns the signal it would
    /// evaluate to, or `None` if constructing it would allocate.
    ///
    /// Optimization passes use this to detect sharing opportunities before
    /// committing to a rewrite.
    pub fn lookup_maj(&self, a: Signal, b: Signal, c: Signal) -> Option<Signal> {
        if a == b || a == c {
            return Some(a);
        }
        if b == c {
            return Some(b);
        }
        if a == !b {
            return Some(c);
        }
        if a == !c {
            return Some(b);
        }
        if b == !c {
            return Some(a);
        }
        let n_compl =
            a.is_complemented() as u8 + b.is_complemented() as u8 + c.is_complemented() as u8;
        let (mut key, flip) = if n_compl >= 2 {
            ([!a, !b, !c], true)
        } else {
            ([a, b, c], false)
        };
        key.sort_unstable();
        self.strash.get(&key).map(|&node| Signal::new(node, flip))
    }

    fn maj_canonical(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        let mut key = [a, b, c];
        key.sort_unstable();
        if let Some(&node) = self.strash.get(&key) {
            return Signal::new(node, false);
        }
        let node = NodeId::from_index(self.children.len());
        let lvl = 1 + key
            .iter()
            .map(|s| self.level[s.node().index()])
            .max()
            .expect("three children");
        self.children.push(key);
        self.level.push(lvl);
        self.strash.insert(key, node);
        Signal::new(node, false)
    }

    /// Conjunction, encoded as `M(a, b, 0)`.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        self.maj(a, b, Signal::FALSE)
    }

    /// Disjunction, encoded as `M(a, b, 1)`.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        self.maj(a, b, Signal::TRUE)
    }

    /// Exclusive-or, built from two ANDs and an OR.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        let t = self.and(a, !b);
        let e = self.and(!a, b);
        self.or(t, e)
    }

    /// If-then-else `sel ? t : e`.
    pub fn mux(&mut self, sel: Signal, t: Signal, e: Signal) -> Signal {
        let p = self.and(sel, t);
        let q = self.and(!sel, e);
        self.or(p, q)
    }

    /// Marks every node reachable from the outputs.
    pub fn reachable(&self) -> Vec<bool> {
        let mut mark = vec![false; self.children.len()];
        mark[..=self.num_inputs].fill(true);
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|&(_, s)| s.node()).collect();
        while let Some(n) = stack.pop() {
            if mark[n.index()] {
                continue;
            }
            mark[n.index()] = true;
            for child in self.children[n.index()] {
                stack.push(child.node());
            }
        }
        mark
    }

    /// Size: the number of majority gates reachable from the outputs (the
    /// paper's "size" metric — inverters are free edge attributes).
    pub fn size(&self) -> usize {
        let mark = self.reachable();
        (self.num_inputs + 1..self.children.len())
            .filter(|&i| mark[i])
            .count()
    }

    /// Depth: the maximum logic level over all outputs (the paper's number
    /// of logic levels).
    pub fn depth(&self) -> u32 {
        self.outputs
            .iter()
            .map(|&(_, s)| self.level[s.node().index()])
            .max()
            .unwrap_or(0)
    }

    /// Fanout count per node: how many gate fanins and outputs reference
    /// it (complemented or not), counting only reachable gates.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mark = self.reachable();
        let mut counts = vec![0u32; self.children.len()];
        for (i, kids) in self.children.iter().enumerate().skip(self.num_inputs + 1) {
            if !mark[i] {
                continue;
            }
            for child in kids {
                counts[child.node().index()] += 1;
            }
        }
        for &(_, s) in &self.outputs {
            counts[s.node().index()] += 1;
        }
        counts
    }

    /// Returns a compacted copy without dead nodes. Signals are remapped;
    /// outputs, input order and names are preserved.
    pub fn cleanup(&self) -> Mig {
        let mut out = Mig::new(self.name.clone());
        for name in &self.input_names {
            out.add_input(name.clone());
        }
        let mark = self.reachable();
        let mut map: Vec<Signal> = vec![Signal::FALSE; self.children.len()];
        for (i, m) in map.iter_mut().enumerate().take(self.num_inputs + 1) {
            *m = Signal::new(NodeId::from_index(i), false);
        }
        for i in self.num_inputs + 1..self.children.len() {
            if !mark[i] {
                continue;
            }
            let [a, b, c] = self.children[i];
            let a = map[a.node().index()].complement_if(a.is_complemented());
            let b = map[b.node().index()].complement_if(b.is_complemented());
            let c = map[c.node().index()].complement_if(c.is_complemented());
            map[i] = out.maj(a, b, c);
        }
        for (name, s) in &self.outputs {
            let m = map[s.node().index()].complement_if(s.is_complemented());
            out.add_output(name.clone(), m);
        }
        out
    }

    /// Iterates over gate node ids in topological (arena) order.
    pub fn gate_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.num_inputs + 1..self.children.len()).map(NodeId::from_index)
    }

    /// Signal probabilities under an input-independence model: the
    /// probability that each node evaluates to 1, given per-input
    /// probabilities (use 0.5 everywhere for the uniform model).
    ///
    /// # Panics
    ///
    /// Panics if `input_probs.len() != num_inputs()`.
    pub fn signal_probabilities(&self, input_probs: &[f64]) -> Vec<f64> {
        assert_eq!(input_probs.len(), self.num_inputs);
        let mut p = vec![0.0f64; self.children.len()];
        p[1..=self.num_inputs].copy_from_slice(input_probs);
        let prob_of = |p: &[f64], s: Signal| {
            let q = p[s.node().index()];
            if s.is_complemented() {
                1.0 - q
            } else {
                q
            }
        };
        for i in self.num_inputs + 1..self.children.len() {
            let [a, b, c] = self.children[i];
            let (pa, pb, pc) = (prob_of(&p, a), prob_of(&p, b), prob_of(&p, c));
            p[i] = pa * pb + pa * pc + pb * pc - 2.0 * pa * pb * pc;
        }
        p
    }

    /// The paper's switching-activity metric: `Σ p(1−p)` over all
    /// reachable majority gates, with `p` the node's probability of being
    /// logic 1 (Section IV-C / Table I "Activity").
    pub fn switching_activity(&self, input_probs: &[f64]) -> f64 {
        let p = self.signal_probabilities(input_probs);
        let mark = self.reachable();
        (self.num_inputs + 1..self.children.len())
            .filter(|&i| mark[i])
            .map(|i| p[i] * (1.0 - p[i]))
            .sum()
    }

    /// Switching activity under the uniform (p = 0.5) input model.
    pub fn switching_activity_uniform(&self) -> f64 {
        self.switching_activity(&vec![0.5; self.num_inputs])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_inputs() -> (Mig, Signal, Signal, Signal) {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        (mig, a, b, c)
    }

    #[test]
    fn trivial_majority_rules() {
        let (mut mig, a, b, c) = three_inputs();
        assert_eq!(mig.maj(a, a, c), a);
        assert_eq!(mig.maj(a, !a, c), c);
        assert_eq!(mig.maj(b, c, c), c);
        assert_eq!(mig.maj(c, b, !c), b);
        assert_eq!(mig.num_gates(), 0, "no node allocated");
    }

    #[test]
    fn constants_fold() {
        let (mut mig, a, _, _) = three_inputs();
        // M(a, 0, 1) = a by the complementary-pair rule.
        assert_eq!(mig.maj(a, Signal::FALSE, Signal::TRUE), a);
        assert_eq!(mig.and(a, Signal::FALSE), Signal::FALSE);
        assert_eq!(mig.and(a, Signal::TRUE), a);
        assert_eq!(mig.or(a, Signal::TRUE), Signal::TRUE);
        assert_eq!(mig.or(a, Signal::FALSE), a);
    }

    #[test]
    fn strashing_shares_structure() {
        let (mut mig, a, b, c) = three_inputs();
        let m1 = mig.maj(a, b, c);
        let m2 = mig.maj(c, a, b); // Ω.C: same node
        assert_eq!(m1, m2);
        assert_eq!(mig.num_gates(), 1);
    }

    #[test]
    fn inverter_normalization() {
        let (mut mig, a, b, c) = three_inputs();
        // M(a', b', c) should be stored as !M(a, b, c') — one node either way,
        // and creating the Ω.I-dual must not allocate a second node.
        let m1 = mig.maj(!a, !b, c);
        let m2 = mig.maj(a, b, !c);
        assert_eq!(m1, !m2);
        assert_eq!(mig.num_gates(), 1);
    }

    #[test]
    fn size_and_depth() {
        let (mut mig, a, b, c) = three_inputs();
        let x = mig.xor(a, b);
        let y = mig.xor(x, c);
        mig.add_output("y", y);
        assert_eq!(mig.size(), 6, "two XORs at 3 nodes each");
        assert_eq!(mig.depth(), 4);
    }

    #[test]
    fn dead_nodes_not_counted() {
        let (mut mig, a, b, c) = three_inputs();
        let keep = mig.maj(a, b, c);
        let _dead = mig.and(a, b);
        mig.add_output("y", keep);
        assert_eq!(mig.num_gates(), 2);
        assert_eq!(mig.size(), 1);
        let clean = mig.cleanup();
        assert_eq!(clean.num_gates(), 1);
        assert_eq!(clean.outputs().len(), 1);
    }

    #[test]
    fn cleanup_preserves_complemented_outputs() {
        let (mut mig, a, b, c) = three_inputs();
        let m = mig.maj(a, b, c);
        mig.add_output("y", !m);
        let clean = mig.cleanup();
        assert!(clean.outputs()[0].1.is_complemented());
        assert_eq!(clean.size(), 1);
    }

    #[test]
    fn as_maj_functional_view() {
        let (mut mig, a, b, c) = three_inputs();
        let m = mig.maj(a, b, c);
        assert_eq!(mig.as_maj(m), Some([a, b, c]));
        // Complemented view pushes inversion to the fanins (Ω.I).
        assert_eq!(mig.as_maj(!m), Some([!a, !b, !c]));
        assert_eq!(mig.as_maj(a), None);
        assert_eq!(mig.as_maj(Signal::TRUE), None);
    }

    #[test]
    fn fanout_counting() {
        let (mut mig, a, b, c) = three_inputs();
        let m = mig.maj(a, b, c);
        let n = mig.and(m, c);
        mig.add_output("y", n);
        mig.add_output("z", m);
        let fo = mig.fanout_counts();
        assert_eq!(fo[m.node().index()], 2);
        assert_eq!(fo[a.node().index()], 1);
        assert_eq!(fo[c.node().index()], 2);
    }

    #[test]
    fn probabilities_match_paper_example() {
        // Fig. 2(d): k = M(x, y, M(x', z, w)) with px=0.5, py=pz=pw=0.1
        // has node switching activities 0.09 / 0.09.
        let mut mig = Mig::new("act");
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let z = mig.add_input("z");
        let w = mig.add_input("w");
        let inner = mig.maj(!x, z, w);
        let k = mig.maj(x, y, inner);
        mig.add_output("k", k);
        let p = mig.signal_probabilities(&[0.5, 0.1, 0.1, 0.1]);
        let sw_inner = p[inner.node().index()] * (1.0 - p[inner.node().index()]);
        let sw_top = p[k.node().index()] * (1.0 - p[k.node().index()]);
        assert!((sw_inner - 0.09).abs() < 1e-9, "inner SW = {sw_inner}");
        assert!((sw_top - 0.09).abs() < 1e-9, "top SW = {sw_top}");
        let total = mig.switching_activity(&[0.5, 0.1, 0.1, 0.1]);
        assert!((total - 0.18).abs() < 1e-9);
    }

    #[test]
    fn optimized_activity_matches_paper_example() {
        // Fig. 2(d) after Ψ.R: k = M(x, y, M(y, z, w)) has SW 0.06 + 0.03.
        let mut mig = Mig::new("act2");
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let z = mig.add_input("z");
        let w = mig.add_input("w");
        let inner = mig.maj(y, z, w);
        let k = mig.maj(x, y, inner);
        mig.add_output("k", k);
        let total = mig.switching_activity(&[0.5, 0.1, 0.1, 0.1]);
        // Exact: 0.0272 + 0.0599 ≈ 0.087 (the paper rounds to 0.03 + 0.06).
        assert!((total - 0.087).abs() < 1e-2, "total = {total}");
    }

    #[test]
    #[should_panic(expected = "all inputs must be added before gates")]
    fn inputs_before_gates() {
        let mut mig = Mig::new("bad");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let _ = mig.and(a, b);
        let c = mig.add_input("c");
        let _ = c;
    }
}
