//! The Majority-Inverter Graph arena.

use crate::scratch::{SubstScratch, TravScratch};
use crate::strash::StrashTable;
use crate::{NodeId, Signal};
use std::cell::{Cell, Ref, RefCell, RefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone source for [`Mig::rewrite_stamp`] values: every structural
/// mutation of any arena draws a fresh, globally unique stamp, so a
/// `(stamp, num_nodes)` pair identifies one exact graph state. Caches
/// keyed on a stamp (the rewrite engine's cut cache) can therefore prove
/// they still describe the graph they were built for.
static STAMP_SOURCE: AtomicU64 = AtomicU64::new(1);

/// A Majority-Inverter Graph: a DAG whose internal nodes all compute the
/// three-input majority function and whose edges carry an optional
/// complement attribute (the paper's Section III-A definition).
///
/// Node 0 is the constant 0; nodes `1..=num_inputs` are the primary
/// inputs; every later node is a majority gate. The constructor
/// [`Mig::maj`] structurally hashes nodes after applying the trivial
/// `Ω.M` simplifications and an `Ω.I`-based inverter normalization (a
/// stored node has at most one complemented fanin), so structurally
/// equivalent subgraphs are shared automatically.
///
/// Structural hashing runs on an in-repo open-addressing table
/// (`StrashTable`) and every traversal-style query (reachability, cone
/// sizes, substitution) runs on epoch-marked scratchpads
/// (`TravScratch`/`SubstScratch`) so the optimization inner loops do
/// not touch the allocator; see `DESIGN.md` §6.
///
/// # Example
///
/// ```
/// use mig_core::Mig;
///
/// let mut mig = Mig::new("maj3");
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let c = mig.add_input("c");
/// let m = mig.maj(a, b, c);
/// mig.add_output("y", m);
/// assert_eq!(mig.size(), 1);
/// assert_eq!(mig.depth(), 1);
/// ```
#[derive(Debug)]
pub struct Mig {
    name: String,
    children: Vec<[Signal; 3]>,
    level: Vec<u32>,
    num_inputs: usize,
    input_names: Vec<String>,
    outputs: Vec<(String, Signal)>,
    strash: StrashTable,
    /// Epoch-marked scratch for `&self` traversals (cone queries,
    /// reachability). Interior-mutable: scratch state is not logical
    /// state.
    trav: RefCell<TravScratch>,
    /// Scratch map for [`Mig::substitute`]; taken out while the rebuild
    /// runs so `&mut self` construction can proceed alongside it.
    subst: RefCell<SubstScratch>,
    /// Cached reachability marks and reachable-gate count, invalidated on
    /// any mutation.
    reach: RefCell<ReachCache>,
    /// Globally unique stamp of the last structural mutation (drawn from
    /// [`STAMP_SOURCE`] inside the same invalidation hook that drops the
    /// reachability cache).
    stamp: u64,
    /// Globally unique id of this arena *lifetime*: drawn at construction
    /// and re-drawn by [`Mig::reset_for_rebuild`]. Unlike `stamp` (which
    /// advances per mutation), the generation only changes when the arena
    /// is truncated and restarted, so an external mirror (`LevelMap`) can
    /// distinguish "same graph, more nodes appended" — catch-up is bounded
    /// by the appended suffix — from "different graph entirely".
    generation: u64,
    /// Memoized [`Mig::depth`] keyed on the mutation stamp (stamps start
    /// at 1, so a stored stamp of 0 means "no value cached").
    depth_memo: Cell<(u64, u32)>,
}

/// A read-only, thread-shareable snapshot of a [`Mig`]'s structure.
///
/// `Mig` itself is `!Sync` (it carries `RefCell` scratchpads for its
/// traversal queries), but everything the rewriting evaluators need —
/// fanins, levels, structural-hash probes — lives in plain storage.
/// `MigView` borrows exactly that storage, so `std::thread::scope`
/// workers can share one immutable graph snapshot while the main thread
/// keeps the `Mig` alive.
#[derive(Clone, Copy)]
pub(crate) struct MigView<'a> {
    children: &'a [[Signal; 3]],
    level: &'a [u32],
    num_inputs: usize,
    strash: &'a StrashTable,
}

impl MigView<'_> {
    /// True if `node` is a majority gate.
    pub fn is_gate(&self, node: NodeId) -> bool {
        node.index() > self.num_inputs
    }

    /// The three stored fanins of a gate node.
    pub fn children(&self, node: NodeId) -> [Signal; 3] {
        debug_assert!(node.index() > self.num_inputs, "{node} is not a gate");
        self.children[node.index()]
    }

    /// Logic level of a node.
    pub fn level_of(&self, node: NodeId) -> u32 {
        self.level[node.index()]
    }

    /// Logic level of the node a signal points at.
    pub fn level_of_signal(&self, signal: Signal) -> u32 {
        self.level[signal.node().index()]
    }

    /// Snapshot equivalent of [`Mig::lookup_maj`]: resolves `M(a, b, c)`
    /// to an existing signal (trivial fold or strash hit) without
    /// mutating anything.
    pub fn lookup_maj(&self, a: Signal, b: Signal, c: Signal) -> Option<Signal> {
        if a == b || a == c {
            return Some(a);
        }
        if b == c {
            return Some(b);
        }
        if a == !b {
            return Some(c);
        }
        if a == !c {
            return Some(b);
        }
        if b == !c {
            return Some(a);
        }
        let n_compl =
            a.is_complemented() as u8 + b.is_complemented() as u8 + c.is_complemented() as u8;
        let (mut key, flip) = if n_compl >= 2 {
            ([!a, !b, !c], true)
        } else {
            ([a, b, c], false)
        };
        key.sort_unstable();
        self.strash.get(key).map(|node| Signal::new(node, flip))
    }
}

#[derive(Debug, Clone, Default)]
struct ReachCache {
    valid: bool,
    mark: Vec<bool>,
    size: usize,
}

impl Clone for Mig {
    /// Clones the graph with a *fresh* generation id: a clone may mutate
    /// independently of its source, so it must not look like an
    /// append-only continuation of the same arena lifetime to a
    /// [`crate::LevelMap`] mirror (which would otherwise trust the shared
    /// prefix after the two diverge at the same length).
    fn clone(&self) -> Self {
        Mig {
            name: self.name.clone(),
            children: self.children.clone(),
            level: self.level.clone(),
            num_inputs: self.num_inputs,
            input_names: self.input_names.clone(),
            outputs: self.outputs.clone(),
            strash: self.strash.clone(),
            trav: RefCell::new(TravScratch::default()),
            subst: RefCell::new(SubstScratch::default()),
            reach: RefCell::new(self.reach.borrow().clone()),
            stamp: self.stamp,
            generation: STAMP_SOURCE.fetch_add(1, Ordering::Relaxed),
            depth_memo: self.depth_memo.clone(),
        }
    }
}

impl Mig {
    /// Creates an empty MIG containing only the constant node.
    pub fn new(name: impl Into<String>) -> Self {
        Mig {
            name: name.into(),
            children: vec![[Signal::FALSE; 3]],
            level: vec![0],
            num_inputs: 0,
            input_names: Vec::new(),
            outputs: Vec::new(),
            strash: StrashTable::default(),
            trav: RefCell::new(TravScratch::default()),
            subst: RefCell::new(SubstScratch::default()),
            reach: RefCell::new(ReachCache::default()),
            stamp: STAMP_SOURCE.fetch_add(1, Ordering::Relaxed),
            generation: STAMP_SOURCE.fetch_add(1, Ordering::Relaxed),
            depth_memo: Cell::new((0, 0)),
        }
    }

    /// Creates an empty MIG pre-sized for `inputs` primary inputs and
    /// roughly `gates_hint` majority gates: the node arrays and the
    /// structural-hash table are allocated up front, so million-node
    /// imports do not pay repeated regrow/rehash storms.
    pub fn with_capacity(name: impl Into<String>, inputs: usize, gates_hint: usize) -> Self {
        let mut mig = Mig::new(name);
        mig.children.reserve(inputs + gates_hint + 1);
        mig.level.reserve(inputs + gates_hint + 1);
        mig.input_names.reserve(inputs);
        mig.strash.reserve(gates_hint);
        mig
    }

    /// Pre-sizes the arena and strash table for `additional` more gates
    /// beyond the current node count.
    pub fn reserve_gates(&mut self, additional: usize) {
        self.children.reserve(additional);
        self.level.reserve(additional);
        self.strash.reserve(additional);
    }

    /// A thread-shareable snapshot of the graph's plain storage (fanins,
    /// levels, strash). Valid until the next mutation.
    pub(crate) fn view(&self) -> MigView<'_> {
        MigView {
            children: &self.children,
            level: &self.level,
            num_inputs: self.num_inputs,
            strash: &self.strash,
        }
    }

    /// The globally unique stamp of this graph's last structural
    /// mutation. Two reads returning the same stamp (on the same arena
    /// length) prove the structure has not changed in between; caches
    /// keyed on it (the rewrite engine's cut cache) use that proof.
    pub(crate) fn rewrite_stamp(&self) -> u64 {
        self.stamp
    }

    /// Public alias of the mutation stamp, for external caches
    /// (`LevelMap`, bench instrumentation) that key on graph state.
    pub fn mutation_stamp(&self) -> u64 {
        self.stamp
    }

    /// The arena-lifetime id: stable across in-place mutations, re-drawn
    /// when the arena is truncated for a rebuild. See the field docs.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    #[inline]
    fn invalidate_cache(&mut self) {
        self.reach.get_mut().valid = false;
        self.stamp = STAMP_SOURCE.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds a primary input and returns its signal.
    ///
    /// # Panics
    ///
    /// Panics if any majority gate was already created: inputs occupy the
    /// contiguous arena range `1..=num_inputs`.
    pub fn add_input(&mut self, name: impl Into<String>) -> Signal {
        assert_eq!(
            self.children.len(),
            self.num_inputs + 1,
            "all inputs must be added before gates"
        );
        self.children.push([Signal::FALSE; 3]);
        self.level.push(0);
        self.num_inputs += 1;
        self.input_names.push(name.into());
        self.invalidate_cache();
        Signal::new(NodeId::from_index(self.num_inputs), false)
    }

    /// The signal of primary input `i` (0-based).
    pub fn input(&self, i: usize) -> Signal {
        assert!(i < self.num_inputs, "input index out of range");
        Signal::new(NodeId::from_index(i + 1), false)
    }

    /// The name of primary input `i`.
    pub fn input_name(&self, i: usize) -> &str {
        &self.input_names[i]
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Declares `signal` as primary output `name`.
    pub fn add_output(&mut self, name: impl Into<String>, signal: Signal) {
        assert!(signal.node().index() < self.children.len());
        self.outputs.push((name.into(), signal));
        self.invalidate_cache();
    }

    /// The primary outputs as `(name, signal)` pairs.
    pub fn outputs(&self) -> &[(String, Signal)] {
        &self.outputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Redirects output `i` to a new signal (used by optimization passes).
    pub fn set_output(&mut self, i: usize, signal: Signal) {
        assert!(signal.node().index() < self.children.len());
        self.outputs[i].1 = signal;
        self.invalidate_cache();
    }

    /// True if `node` is a majority gate (not the constant, not an input).
    pub fn is_gate(&self, node: NodeId) -> bool {
        node.index() > self.num_inputs
    }

    /// True if `node` is a primary input.
    pub fn is_input(&self, node: NodeId) -> bool {
        node.index() >= 1 && node.index() <= self.num_inputs
    }

    /// The three stored fanins of a gate node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a gate.
    pub fn children(&self, node: NodeId) -> [Signal; 3] {
        assert!(self.is_gate(node), "{node} is not a majority gate");
        self.children[node.index()]
    }

    /// Functional view of `signal` as a majority: if its node is a gate,
    /// returns fanins adjusted for the edge's complement attribute using
    /// `Ω.I` (`M'(x,y,z) = M(x',y',z')`). Returns `None` for inputs and
    /// constants.
    pub fn as_maj(&self, signal: Signal) -> Option<[Signal; 3]> {
        if !self.is_gate(signal.node()) {
            return None;
        }
        let [a, b, c] = self.children[signal.node().index()];
        let f = signal.is_complemented();
        Some([a.complement_if(f), b.complement_if(f), c.complement_if(f)])
    }

    /// Total number of arena nodes (constant + inputs + gates, dead or not).
    pub fn num_nodes(&self) -> usize {
        self.children.len()
    }

    /// Number of gate nodes in the arena (alive or dead).
    pub fn num_gates(&self) -> usize {
        self.children.len() - self.num_inputs - 1
    }

    /// Logic level of a node: 0 for inputs/constants, 1 + deepest fanin
    /// for gates.
    pub fn level_of(&self, node: NodeId) -> u32 {
        self.level[node.index()]
    }

    /// Logic level of the node a signal points at.
    pub fn level_of_signal(&self, signal: Signal) -> u32 {
        self.level[signal.node().index()]
    }

    /// The full per-node level array (index = arena node index), for
    /// bulk consumers like the `LevelMap` global resync.
    pub(crate) fn node_levels(&self) -> &[u32] {
        &self.level
    }

    /// Creates (or finds) the majority node `M(a, b, c)`.
    ///
    /// Applies the trivial `Ω.M` rules (`M(x,x,z) = x`, `M(x,x',z) = z`),
    /// normalizes inverters with `Ω.I`, sorts fanins (`Ω.C`), and
    /// structurally hashes the result.
    pub fn maj(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        // Ω.M: two equal or complementary fanins decide the output.
        if a == b {
            return a;
        }
        if a == !b {
            return c;
        }
        if a == c {
            return a;
        }
        if a == !c {
            return b;
        }
        if b == c {
            return b;
        }
        if b == !c {
            return a;
        }
        // Ω.I: keep at most one complemented fanin in the stored node.
        let n_compl =
            a.is_complemented() as u8 + b.is_complemented() as u8 + c.is_complemented() as u8;
        if n_compl >= 2 {
            return !self.maj_canonical(!a, !b, !c);
        }
        self.maj_canonical(a, b, c)
    }

    /// Checks whether `M(a, b, c)` already exists (or folds to an existing
    /// signal) without allocating a node. Returns the signal it would
    /// evaluate to, or `None` if constructing it would allocate.
    ///
    /// Optimization passes use this to detect sharing opportunities before
    /// committing to a rewrite.
    pub fn lookup_maj(&self, a: Signal, b: Signal, c: Signal) -> Option<Signal> {
        self.view().lookup_maj(a, b, c)
    }

    fn maj_canonical(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        let mut key = [a, b, c];
        key.sort_unstable();
        if let Some(node) = self.strash.get(key) {
            return Signal::new(node, false);
        }
        let node = NodeId::from_index(self.children.len());
        let lvl = 1 + key
            .iter()
            .map(|s| self.level[s.node().index()])
            .max()
            .expect("three children");
        self.children.push(key);
        self.level.push(lvl);
        self.strash.insert(key, node);
        self.invalidate_cache();
        Signal::new(node, false)
    }

    /// Conjunction, encoded as `M(a, b, 0)`.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        self.maj(a, b, Signal::FALSE)
    }

    /// Disjunction, encoded as `M(a, b, 1)`.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        self.maj(a, b, Signal::TRUE)
    }

    /// Exclusive-or, built from two ANDs and an OR.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        let t = self.and(a, !b);
        let e = self.and(!a, b);
        self.or(t, e)
    }

    /// If-then-else `sel ? t : e`.
    pub fn mux(&mut self, sel: Signal, t: Signal, e: Signal) -> Signal {
        let p = self.and(sel, t);
        let q = self.and(!sel, e);
        self.or(p, q)
    }

    /// Exclusive borrow of the traversal scratchpad. Crate-internal:
    /// holders must release it before handing control to code that may
    /// start another traversal on the same MIG.
    pub(crate) fn trav_scratch(&self) -> RefMut<'_, TravScratch> {
        self.trav.borrow_mut()
    }

    /// Takes the substitution scratch out of the MIG (leaving a fresh
    /// default) so `&mut self` construction can run while it is in use;
    /// return it with [`Mig::put_subst_scratch`].
    pub(crate) fn take_subst_scratch(&self) -> SubstScratch {
        self.subst.take()
    }

    /// Returns the substitution scratch taken by
    /// [`Mig::take_subst_scratch`].
    pub(crate) fn put_subst_scratch(&self, scratch: SubstScratch) {
        self.subst.replace(scratch);
    }

    fn ensure_reach(&self) {
        if self.reach.borrow().valid {
            return;
        }
        let mut cache = self.reach.borrow_mut();
        let cache = &mut *cache;
        cache.mark.clear();
        cache.mark.resize(self.children.len(), false);
        for m in cache.mark[..=self.num_inputs].iter_mut() {
            *m = true;
        }
        let mut trav = self.trav.borrow_mut();
        trav.stack.clear();
        trav.stack
            .extend(self.outputs.iter().map(|&(_, s)| s.node()));
        while let Some(n) = trav.stack.pop() {
            if cache.mark[n.index()] {
                continue;
            }
            cache.mark[n.index()] = true;
            for child in self.children[n.index()] {
                trav.stack.push(child.node());
            }
        }
        cache.size = (self.num_inputs + 1..self.children.len())
            .filter(|&i| cache.mark[i])
            .count();
        cache.valid = true;
    }

    /// Borrowed reachability marks (computed once, cached until the next
    /// mutation). Crate-internal so passes can index without copying.
    pub(crate) fn reach_ref(&self) -> Ref<'_, [bool]> {
        self.ensure_reach();
        Ref::map(self.reach.borrow(), |c| c.mark.as_slice())
    }

    /// Marks every node reachable from the outputs.
    ///
    /// The marks are cached between mutations; this copies them out. Hot
    /// paths inside the crate use the cached borrow directly.
    pub fn reachable(&self) -> Vec<bool> {
        self.reach_ref().to_vec()
    }

    /// Size: the number of majority gates reachable from the outputs (the
    /// paper's "size" metric — inverters are free edge attributes).
    ///
    /// Cached: repeated calls between mutations are O(1).
    pub fn size(&self) -> usize {
        self.ensure_reach();
        self.reach.borrow().size
    }

    /// Depth: the maximum logic level over all outputs (the paper's number
    /// of logic levels).
    ///
    /// Memoized on the mutation stamp: repeated calls between mutations
    /// (ledger reporting, `mighty stats`, pass acceptance checks) are
    /// O(1) instead of O(outputs).
    pub fn depth(&self) -> u32 {
        let (memo_stamp, memo_depth) = self.depth_memo.get();
        if memo_stamp == self.stamp {
            return memo_depth;
        }
        let d = self
            .outputs
            .iter()
            .map(|&(_, s)| self.level[s.node().index()])
            .max()
            .unwrap_or(0);
        self.depth_memo.set((self.stamp, d));
        d
    }

    /// Bytes held by the node arena (fanin and level arrays), counting
    /// capacity, for memory-footprint reporting.
    pub fn arena_bytes(&self) -> usize {
        self.children.capacity() * std::mem::size_of::<[Signal; 3]>()
            + self.level.capacity() * std::mem::size_of::<u32>()
    }

    /// Number of slots in the structural-hash table (occupied or empty),
    /// for memory-footprint reporting.
    pub fn strash_slots(&self) -> usize {
        self.strash.num_slots()
    }

    /// Bytes held by the structural-hash table, counting capacity, for
    /// memory-footprint reporting.
    pub fn strash_bytes(&self) -> usize {
        self.strash.slot_bytes()
    }

    /// Fanout count per node: how many gate fanins and outputs reference
    /// it (complemented or not), counting only reachable gates.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = Vec::new();
        self.fanout_counts_into(&mut counts);
        counts
    }

    /// [`Mig::fanout_counts`] into a caller-owned buffer, so per-pass
    /// callers can reuse the allocation.
    pub fn fanout_counts_into(&self, counts: &mut Vec<u32>) {
        let mark = self.reach_ref();
        counts.clear();
        counts.resize(self.children.len(), 0);
        for (i, kids) in self.children.iter().enumerate().skip(self.num_inputs + 1) {
            if !mark[i] {
                continue;
            }
            for child in kids {
                counts[child.node().index()] += 1;
            }
        }
        for &(_, s) in &self.outputs {
            counts[s.node().index()] += 1;
        }
    }

    /// Clears this arena and re-declares `proto`'s inputs so a rebuild
    /// pass can construct into it. Keeps every buffer allocation
    /// (children, levels, strash slots) from the arena's previous life.
    pub(crate) fn reset_for_rebuild(&mut self, proto: &Mig) {
        self.name.clear();
        self.name.push_str(proto.name());
        self.children.truncate(1);
        self.level.truncate(1);
        self.num_inputs = 0;
        self.input_names.clear();
        self.outputs.clear();
        self.strash.clear();
        self.generation = STAMP_SOURCE.fetch_add(1, Ordering::Relaxed);
        self.invalidate_cache();
        for i in 0..proto.num_inputs() {
            self.children.push([Signal::FALSE; 3]);
            self.level.push(0);
            self.num_inputs += 1;
            self.input_names.push(proto.input_name(i).to_string());
        }
    }

    /// Returns a compacted copy without dead nodes. Signals are remapped;
    /// outputs, input order and names are preserved.
    pub fn cleanup(&self) -> Mig {
        let mut out = Mig::new(self.name.clone());
        for name in &self.input_names {
            out.add_input(name.clone());
        }
        let mark = self.reach_ref();
        let mut map: Vec<Signal> = vec![Signal::FALSE; self.children.len()];
        for (i, m) in map.iter_mut().enumerate().take(self.num_inputs + 1) {
            *m = Signal::new(NodeId::from_index(i), false);
        }
        for i in self.num_inputs + 1..self.children.len() {
            if !mark[i] {
                continue;
            }
            let [a, b, c] = self.children[i];
            let a = map[a.node().index()].complement_if(a.is_complemented());
            let b = map[b.node().index()].complement_if(b.is_complemented());
            let c = map[c.node().index()].complement_if(c.is_complemented());
            map[i] = out.maj(a, b, c);
        }
        for (name, s) in &self.outputs {
            let m = map[s.node().index()].complement_if(s.is_complemented());
            out.add_output(name.clone(), m);
        }
        out
    }

    /// Iterates over gate node ids in topological (arena) order.
    pub fn gate_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.num_inputs + 1..self.children.len()).map(NodeId::from_index)
    }

    /// Signal probabilities under an input-independence model: the
    /// probability that each node evaluates to 1, given per-input
    /// probabilities (use 0.5 everywhere for the uniform model).
    ///
    /// # Panics
    ///
    /// Panics if `input_probs.len() != num_inputs()`.
    pub fn signal_probabilities(&self, input_probs: &[f64]) -> Vec<f64> {
        let mut p = Vec::new();
        self.signal_probabilities_into(input_probs, &mut p);
        p
    }

    /// [`Mig::signal_probabilities`] into a caller-owned buffer, so the
    /// activity optimizer can recompute per candidate without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `input_probs.len() != num_inputs()`.
    pub fn signal_probabilities_into(&self, input_probs: &[f64], p: &mut Vec<f64>) {
        assert_eq!(input_probs.len(), self.num_inputs);
        p.clear();
        p.resize(self.children.len(), 0.0);
        p[1..=self.num_inputs].copy_from_slice(input_probs);
        let prob_of = |p: &[f64], s: Signal| {
            let q = p[s.node().index()];
            if s.is_complemented() {
                1.0 - q
            } else {
                q
            }
        };
        for i in self.num_inputs + 1..self.children.len() {
            let [a, b, c] = self.children[i];
            let (pa, pb, pc) = (prob_of(p, a), prob_of(p, b), prob_of(p, c));
            p[i] = pa * pb + pa * pc + pb * pc - 2.0 * pa * pb * pc;
        }
    }

    /// The paper's switching-activity metric: `Σ p(1−p)` over all
    /// reachable majority gates, with `p` the node's probability of being
    /// logic 1 (Section IV-C / Table I "Activity").
    pub fn switching_activity(&self, input_probs: &[f64]) -> f64 {
        let p = self.signal_probabilities(input_probs);
        let mark = self.reach_ref();
        (self.num_inputs + 1..self.children.len())
            .filter(|&i| mark[i])
            .map(|i| p[i] * (1.0 - p[i]))
            .sum()
    }

    /// Switching activity under the uniform (p = 0.5) input model.
    pub fn switching_activity_uniform(&self) -> f64 {
        self.switching_activity(&vec![0.5; self.num_inputs])
    }

    /// A stable 64-bit structural fingerprint of the reachable graph,
    /// built from the same splitmix64 primitives as
    /// [`mig_netlist::Network::content_hash`].
    ///
    /// Majority fanins fold commutatively (majority is symmetric and
    /// fanin storage order depends on arena node ids, which depend on
    /// insertion history), primary inputs hash from their declared
    /// names, outputs fold commutatively over (name, cone) pairs, and
    /// dead nodes never contribute — so `mig.content_hash()` equals
    /// `mig.cleanup().content_hash()` and is independent of the order
    /// in which an equivalent graph was constructed. The module name is
    /// excluded (renaming a design does not change its content).
    pub fn content_hash(&self) -> u64 {
        use mig_netlist::content_hash::{hash_str, mix64};
        const SEED_CONST: u64 = 0x1234_5678_9ABC_DEF1;
        const SEED_INPUT: u64 = 0x9E37_79B9_7F4A_7C15;
        const SEED_GATE: u64 = 0xC2B2_AE3D_27D4_EB4F;
        const SEED_OUTPUT: u64 = 0x1656_67B1_9E37_79F9;
        const SEED_COMPL: u64 = 0x0DD0_0DD0_0DD0_0DD0;

        let mut node_hash: Vec<u64> = Vec::with_capacity(self.children.len());
        node_hash.push(mix64(SEED_CONST));
        for name in &self.input_names {
            node_hash.push(mix64(SEED_INPUT ^ hash_str(name)));
        }
        let signal_hash = |node_hash: &[u64], s: Signal| {
            let compl_seed = if s.is_complemented() { SEED_COMPL } else { 0 };
            mix64(node_hash[s.node().index()] ^ compl_seed)
        };
        for kids in self.children.iter().skip(self.num_inputs + 1) {
            let folded = kids
                .iter()
                .fold(0u64, |acc, &s| acc.wrapping_add(signal_hash(&node_hash, s)));
            node_hash.push(mix64(SEED_GATE ^ folded));
        }
        let mut acc: u64 = 0;
        for name in &self.input_names {
            acc = acc.wrapping_add(mix64(SEED_INPUT ^ hash_str(name)));
        }
        for (name, s) in &self.outputs {
            acc = acc.wrapping_add(mix64(
                SEED_OUTPUT ^ hash_str(name) ^ signal_hash(&node_hash, *s).rotate_left(17),
            ));
        }
        mix64(acc ^ mix64(self.num_inputs as u64) ^ self.outputs.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_inputs() -> (Mig, Signal, Signal, Signal) {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        (mig, a, b, c)
    }

    #[test]
    fn trivial_majority_rules() {
        let (mut mig, a, b, c) = three_inputs();
        assert_eq!(mig.maj(a, a, c), a);
        assert_eq!(mig.maj(a, !a, c), c);
        assert_eq!(mig.maj(b, c, c), c);
        assert_eq!(mig.maj(c, b, !c), b);
        assert_eq!(mig.num_gates(), 0, "no node allocated");
    }

    #[test]
    fn constants_fold() {
        let (mut mig, a, _, _) = three_inputs();
        // M(a, 0, 1) = a by the complementary-pair rule.
        assert_eq!(mig.maj(a, Signal::FALSE, Signal::TRUE), a);
        assert_eq!(mig.and(a, Signal::FALSE), Signal::FALSE);
        assert_eq!(mig.and(a, Signal::TRUE), a);
        assert_eq!(mig.or(a, Signal::TRUE), Signal::TRUE);
        assert_eq!(mig.or(a, Signal::FALSE), a);
    }

    #[test]
    fn strashing_shares_structure() {
        let (mut mig, a, b, c) = three_inputs();
        let m1 = mig.maj(a, b, c);
        let m2 = mig.maj(c, a, b); // Ω.C: same node
        assert_eq!(m1, m2);
        assert_eq!(mig.num_gates(), 1);
    }

    #[test]
    fn inverter_normalization() {
        let (mut mig, a, b, c) = three_inputs();
        // M(a', b', c) should be stored as !M(a, b, c') — one node either way,
        // and creating the Ω.I-dual must not allocate a second node.
        let m1 = mig.maj(!a, !b, c);
        let m2 = mig.maj(a, b, !c);
        assert_eq!(m1, !m2);
        assert_eq!(mig.num_gates(), 1);
    }

    #[test]
    fn size_and_depth() {
        let (mut mig, a, b, c) = three_inputs();
        let x = mig.xor(a, b);
        let y = mig.xor(x, c);
        mig.add_output("y", y);
        assert_eq!(mig.size(), 6, "two XORs at 3 nodes each");
        assert_eq!(mig.depth(), 4);
    }

    #[test]
    fn dead_nodes_not_counted() {
        let (mut mig, a, b, c) = three_inputs();
        let keep = mig.maj(a, b, c);
        let _dead = mig.and(a, b);
        mig.add_output("y", keep);
        assert_eq!(mig.num_gates(), 2);
        assert_eq!(mig.size(), 1);
        let clean = mig.cleanup();
        assert_eq!(clean.num_gates(), 1);
        assert_eq!(clean.outputs().len(), 1);
    }

    #[test]
    fn size_cache_invalidates_on_mutation() {
        let (mut mig, a, b, c) = three_inputs();
        let m = mig.maj(a, b, c);
        mig.add_output("y", m);
        assert_eq!(mig.size(), 1);
        assert_eq!(mig.size(), 1, "cached second read");
        let n = mig.and(m, c);
        assert_eq!(mig.size(), 1, "new node is dead until referenced");
        mig.add_output("z", n);
        assert_eq!(mig.size(), 2, "add_output invalidates the cache");
        mig.set_output(1, m);
        assert_eq!(mig.size(), 1, "set_output invalidates the cache");
    }

    #[test]
    fn cleanup_preserves_complemented_outputs() {
        let (mut mig, a, b, c) = three_inputs();
        let m = mig.maj(a, b, c);
        mig.add_output("y", !m);
        let clean = mig.cleanup();
        assert!(clean.outputs()[0].1.is_complemented());
        assert_eq!(clean.size(), 1);
    }

    #[test]
    fn as_maj_functional_view() {
        let (mut mig, a, b, c) = three_inputs();
        let m = mig.maj(a, b, c);
        assert_eq!(mig.as_maj(m), Some([a, b, c]));
        // Complemented view pushes inversion to the fanins (Ω.I).
        assert_eq!(mig.as_maj(!m), Some([!a, !b, !c]));
        assert_eq!(mig.as_maj(a), None);
        assert_eq!(mig.as_maj(Signal::TRUE), None);
    }

    #[test]
    fn fanout_counting() {
        let (mut mig, a, b, c) = three_inputs();
        let m = mig.maj(a, b, c);
        let n = mig.and(m, c);
        mig.add_output("y", n);
        mig.add_output("z", m);
        let fo = mig.fanout_counts();
        assert_eq!(fo[m.node().index()], 2);
        assert_eq!(fo[a.node().index()], 1);
        assert_eq!(fo[c.node().index()], 2);
    }

    #[test]
    fn probabilities_match_paper_example() {
        // Fig. 2(d): k = M(x, y, M(x', z, w)) with px=0.5, py=pz=pw=0.1
        // has node switching activities 0.09 / 0.09.
        let mut mig = Mig::new("act");
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let z = mig.add_input("z");
        let w = mig.add_input("w");
        let inner = mig.maj(!x, z, w);
        let k = mig.maj(x, y, inner);
        mig.add_output("k", k);
        let p = mig.signal_probabilities(&[0.5, 0.1, 0.1, 0.1]);
        let sw_inner = p[inner.node().index()] * (1.0 - p[inner.node().index()]);
        let sw_top = p[k.node().index()] * (1.0 - p[k.node().index()]);
        assert!((sw_inner - 0.09).abs() < 1e-9, "inner SW = {sw_inner}");
        assert!((sw_top - 0.09).abs() < 1e-9, "top SW = {sw_top}");
        let total = mig.switching_activity(&[0.5, 0.1, 0.1, 0.1]);
        assert!((total - 0.18).abs() < 1e-9);
    }

    #[test]
    fn optimized_activity_matches_paper_example() {
        // Fig. 2(d) after Ψ.R: k = M(x, y, M(y, z, w)) has SW 0.06 + 0.03.
        let mut mig = Mig::new("act2");
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let z = mig.add_input("z");
        let w = mig.add_input("w");
        let inner = mig.maj(y, z, w);
        let k = mig.maj(x, y, inner);
        mig.add_output("k", k);
        let total = mig.switching_activity(&[0.5, 0.1, 0.1, 0.1]);
        // Exact: 0.0272 + 0.0599 ≈ 0.087 (the paper rounds to 0.03 + 0.06).
        assert!((total - 0.087).abs() < 1e-2, "total = {total}");
    }

    #[test]
    fn content_hash_is_structural() {
        let (mut mig, a, b, c) = three_inputs();
        let m = mig.maj(a, b, c);
        let n = mig.and(m, c);
        mig.add_output("y", n);
        let base = mig.content_hash();

        // Same circuit built in a different construction order (the AND's
        // strash key folds in before the top majority exists).
        let mut other = Mig::new("renamed");
        let a2 = other.add_input("a");
        let b2 = other.add_input("b");
        let c2 = other.add_input("c");
        let _dead = other.and(a2, c2);
        let m2 = other.maj(a2, b2, c2);
        let n2 = other.and(m2, c2);
        other.add_output("y", n2);
        assert_eq!(base, other.content_hash(), "order/name/dead-node blind");
        assert_eq!(base, other.cleanup().content_hash(), "cleanup-stable");

        // Mutations move the hash.
        let mut flipped = mig.clone();
        flipped.set_output(0, !n);
        assert_ne!(base, flipped.content_hash(), "output polarity counts");
        let mut rewired = Mig::new("t");
        let a3 = rewired.add_input("a");
        let b3 = rewired.add_input("b");
        let c3 = rewired.add_input("c");
        let m3 = rewired.maj(a3, b3, c3);
        let n3 = rewired.and(m3, b3);
        rewired.add_output("y", n3);
        assert_ne!(base, rewired.content_hash(), "rewired fanin counts");
    }

    #[test]
    #[should_panic(expected = "all inputs must be added before gates")]
    fn inputs_before_gates() {
        let mut mig = Mig::new("bad");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let _ = mig.and(a, b);
        let c = mig.add_input("c");
        let _ = c;
    }

    #[test]
    fn traversals_survive_epoch_rollover() {
        // Force the shared scratch generation counter to the wraparound
        // boundary and check that every traversal-backed query stays
        // correct while the counter rolls over u32::MAX.
        let (mut mig, a, b, c) = three_inputs();
        let p = mig.and(a, b);
        let q = mig.or(p, c);
        let r = mig.maj(q, p, a);
        mig.add_output("y", r);
        let expect_sizes: Vec<Option<usize>> = [p, q, r]
            .iter()
            .map(|&s| mig.cone_size_within(s, 10))
            .collect();
        let expect_gates = mig.cone_gates(r);
        mig.trav_scratch().force_epoch(u32::MAX - 3);
        for round in 0..8 {
            let got: Vec<Option<usize>> = [p, q, r]
                .iter()
                .map(|&s| mig.cone_size_within(s, 10))
                .collect();
            assert_eq!(got, expect_sizes, "round {round}");
            assert_eq!(mig.cone_gates(r), expect_gates, "round {round}");
            assert_eq!(
                mig.cone_contains(r, a.node(), 10),
                Some(true),
                "round {round}"
            );
            assert_eq!(
                mig.cone_contains(p, c.node(), 10),
                Some(false),
                "round {round}"
            );
        }
        assert!(
            mig.trav_scratch().epoch() < 100,
            "the counter must have wrapped"
        );
    }

    #[test]
    fn substitute_survives_epoch_rollover() {
        let (mut mig, a, b, c) = three_inputs();
        let p = mig.and(a, b);
        let r = mig.maj(p, c, a);
        let expect = mig.substitute(r, b.node(), c);
        {
            let mut ss = mig.take_subst_scratch();
            ss.force_epoch(u32::MAX - 2);
            mig.put_subst_scratch(ss);
        }
        mig.trav_scratch().force_epoch(u32::MAX - 2);
        for round in 0..6 {
            assert_eq!(mig.substitute(r, b.node(), c), expect, "round {round}");
        }
    }

    #[test]
    fn reset_for_rebuild_reuses_arena() {
        let (mut mig, a, b, c) = three_inputs();
        let m = mig.maj(a, b, c);
        mig.add_output("y", m);
        let mut other = Mig::new("other");
        let x = other.add_input("x");
        let y = other.add_input("y");
        let g = other.and(x, y);
        other.add_output("g", g);
        other.reset_for_rebuild(&mig);
        assert_eq!(other.name(), "t");
        assert_eq!(other.num_inputs(), 3);
        assert_eq!(other.num_gates(), 0);
        assert_eq!(other.num_outputs(), 0);
        assert_eq!(other.input_name(2), "c");
        // The recycled arena behaves exactly like a fresh one.
        let a2 = other.input(0);
        let b2 = other.input(1);
        let c2 = other.input(2);
        let m2 = other.maj(a2, b2, c2);
        other.add_output("y", m2);
        assert_eq!(other.size(), 1);
        assert_eq!(
            other.lookup_maj(a2, b2, c2),
            Some(m2),
            "strash cleared and repopulated"
        );
    }
}
