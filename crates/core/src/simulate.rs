//! Simulation of MIGs: scalar, 64-way word-parallel, and exact truth
//! tables for small input counts.

use crate::{Mig, Signal};
use mig_tt::TruthTable;

impl Mig {
    /// Evaluates all outputs under one boolean input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_inputs()`.
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = assignment
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        self.simulate_words(&words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }

    /// Simulates 64 input patterns at once: `input_words[i]` carries 64
    /// values of input `i`; the result carries 64 values per output.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != num_inputs()`.
    pub fn simulate_words(&self, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(input_words.len(), self.num_inputs());
        let n = self.num_nodes();
        let mut values = vec![0u64; n];
        for (i, &w) in input_words.iter().enumerate() {
            values[i + 1] = w;
        }
        let val = |values: &[u64], s: Signal| {
            let v = values[s.node().index()];
            if s.is_complemented() {
                !v
            } else {
                v
            }
        };
        for node in self.gate_ids() {
            let [a, b, c] = self.children(node);
            let (va, vb, vc) = (val(&values, a), val(&values, b), val(&values, c));
            values[node.index()] = (va & vb) | (va & vc) | (vb & vc);
        }
        self.outputs()
            .iter()
            .map(|&(_, s)| val(&values, s))
            .collect()
    }

    /// Computes the exact truth table of every output.
    ///
    /// # Panics
    ///
    /// Panics if the MIG has more than 16 inputs.
    pub fn truth_tables(&self) -> Vec<TruthTable> {
        let nv = self.num_inputs();
        assert!(nv <= 16, "exact simulation limited to 16 inputs");
        let mut tables = vec![TruthTable::zeros(nv); self.num_nodes()];
        for i in 0..nv {
            tables[i + 1] = TruthTable::var(i, nv);
        }
        let get = |tables: &[TruthTable], s: Signal| {
            let t = tables[s.node().index()].clone();
            if s.is_complemented() {
                t.not()
            } else {
                t
            }
        };
        for node in self.gate_ids() {
            let [a, b, c] = self.children(node);
            let (ta, tb, tc) = (get(&tables, a), get(&tables, b), get(&tables, c));
            tables[node.index()] = TruthTable::maj(&ta, &tb, &tc);
        }
        self.outputs()
            .iter()
            .map(|&(_, s)| get(&tables, s))
            .collect()
    }

    /// Checks functional equivalence with another MIG over the same
    /// inputs: exhaustive for ≤ 16 inputs, otherwise pseudo-random
    /// word-parallel simulation with `64 * rounds` patterns.
    ///
    /// Random simulation can only disprove equivalence; for the exhaustive
    /// case the answer is exact.
    ///
    /// # Panics
    ///
    /// Panics if input or output counts differ.
    pub fn equiv(&self, other: &Mig, rounds: usize) -> bool {
        assert_eq!(self.num_inputs(), other.num_inputs());
        assert_eq!(self.num_outputs(), other.num_outputs());
        if self.num_inputs() <= 16 {
            return self.truth_tables() == other.truth_tables();
        }
        // Deterministic xorshift pattern generator.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..rounds {
            let words: Vec<u64> = (0..self.num_inputs()).map(|_| next()).collect();
            if self.simulate_words(&words) != other.simulate_words(&words) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maj_gate_truth() {
        let mut mig = Mig::new("m");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, b, c);
        mig.add_output("y", m);
        let tts = mig.truth_tables();
        assert_eq!(tts[0].as_u64(), 0xE8);
    }

    #[test]
    fn xor_and_mux_simulate_correctly() {
        let mut mig = Mig::new("x");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let x = mig.xor(a, b);
        let m = mig.mux(c, a, b);
        mig.add_output("x", x);
        mig.add_output("m", m);
        for bits in 0..8u32 {
            let assign = [(bits & 1) == 1, (bits >> 1) & 1 == 1, (bits >> 2) & 1 == 1];
            let out = mig.eval(&assign);
            assert_eq!(out[0], assign[0] ^ assign[1]);
            assert_eq!(out[1], if assign[2] { assign[0] } else { assign[1] });
        }
    }

    #[test]
    fn complemented_output() {
        let mut mig = Mig::new("c");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let g = mig.and(a, b);
        mig.add_output("nand", !g);
        assert_eq!(mig.eval(&[true, true]), vec![false]);
        assert_eq!(mig.eval(&[true, false]), vec![true]);
    }

    #[test]
    fn equiv_detects_difference() {
        let mut m1 = Mig::new("a");
        let a = m1.add_input("a");
        let b = m1.add_input("b");
        let g = m1.and(a, b);
        m1.add_output("y", g);

        let mut m2 = Mig::new("b");
        let a2 = m2.add_input("a");
        let b2 = m2.add_input("b");
        let g2 = m2.or(a2, b2);
        m2.add_output("y", g2);

        assert!(!m1.equiv(&m2, 4));
        assert!(m1.equiv(&m1.clone(), 4));
    }

    #[test]
    fn equiv_large_random() {
        // 20 inputs forces the random-simulation path.
        let mut m1 = Mig::new("big");
        let sigs: Vec<Signal> = (0..20).map(|i| m1.add_input(format!("x{i}"))).collect();
        let mut acc = sigs[0];
        for &s in &sigs[1..] {
            acc = m1.xor(acc, s);
        }
        m1.add_output("y", acc);

        let mut m2 = Mig::new("big2");
        let sigs2: Vec<Signal> = (0..20).map(|i| m2.add_input(format!("x{i}"))).collect();
        let mut acc2 = sigs2[19];
        for &s in sigs2[..19].iter().rev() {
            acc2 = m2.xor(acc2, s);
        }
        m2.add_output("y", acc2);
        assert!(m1.equiv(&m2, 8), "xor chain order is irrelevant");

        let mut m3 = m2.clone();
        let flipped = !m3.outputs()[0].1;
        m3.set_output(0, flipped);
        assert!(!m1.equiv(&m3, 8));
    }
}
