//! Structural-hashing table for majority nodes.
//!
//! The strash used to be a `HashMap<[Signal; 3], NodeId>`: every lookup
//! paid SipHash over 12 key bytes plus the std hashtable's control-byte
//! dance, and every pass rebuilt the map from scratch. This replacement is
//! a purpose-built open-addressing table that exploits two invariants of
//! the [`Mig`](crate::Mig) arena:
//!
//! * a stored node's sorted fanin triple **is** its key, so slots hold
//!   only the `NodeId` (4 bytes) and lookups compare against the arena's
//!   `children` array directly — no keys are duplicated into the table;
//! * nodes are never deleted from the arena, so the table needs no
//!   tombstones, and `clear` (used when an arena is recycled between
//!   optimization passes) just wipes the slot words while keeping the
//!   allocation.
//!
//! The hash is a splitmix64-style finalizer over the three packed signal
//! words (the same mixer as `mig_netlist::SplitMix64`, matching the PR-1
//! zero-third-party-deps PRNG policy), with linear probing and growth at
//! ~70 % load.

use crate::{NodeId, Signal};

const EMPTY: u32 = u32::MAX;
/// Smallest non-empty capacity; always a power of two.
const MIN_CAPACITY: usize = 16;

/// Open-addressing structural-hashing table: maps a sorted fanin triple to
/// the arena node that holds it, storing only node ids.
#[derive(Debug, Clone, Default)]
pub(crate) struct StrashTable {
    /// Slot array; `EMPTY` marks a free slot, anything else is a raw
    /// `NodeId` index. Length is always zero or a power of two.
    slots: Vec<u32>,
    /// Number of occupied slots.
    len: usize,
}

/// Splitmix64-style mix of the three packed signal words.
#[inline]
fn hash_key(key: [Signal; 3]) -> u64 {
    let lo = key[0].raw() as u64 | ((key[1].raw() as u64) << 32);
    let mut z = lo ^ (key[2].raw() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StrashTable {
    /// Looks up the node whose stored fanins equal `key` (which must be
    /// sorted, as produced by the `maj` canonicalization).
    #[inline]
    pub fn get(&self, key: [Signal; 3], children: &[[Signal; 3]]) -> Option<NodeId> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = hash_key(key) as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY {
                return None;
            }
            if children[slot as usize] == key {
                return Some(NodeId::from_index(slot as usize));
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `node` under `key`. The node's fanins must already be
    /// stored in `children` (the table re-derives keys from the arena when
    /// it grows). The caller guarantees the key is absent.
    pub fn insert(&mut self, key: [Signal; 3], node: NodeId, children: &[[Signal; 3]]) {
        // Grow at ~70 % load (len + 1 > 0.7 · capacity).
        if (self.len + 1) * 10 > self.slots.len() * 7 {
            self.grow(children);
        }
        let mask = self.slots.len() - 1;
        let mut i = hash_key(key) as usize & mask;
        while self.slots[i] != EMPTY {
            debug_assert_ne!(
                children[self.slots[i] as usize], key,
                "duplicate strash key"
            );
            i = (i + 1) & mask;
        }
        self.slots[i] = node.index() as u32;
        self.len += 1;
    }

    /// Empties the table, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
    }

    /// Number of hashed nodes (exposed for tests).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    fn grow(&mut self, children: &[[Signal; 3]]) {
        let new_cap = (self.slots.len() * 2).max(MIN_CAPACITY);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        let mask = new_cap - 1;
        for slot in old {
            if slot == EMPTY {
                continue;
            }
            let key = children[slot as usize];
            let mut i = hash_key(key) as usize & mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(i: usize, c: bool) -> Signal {
        Signal::new(NodeId::from_index(i), c)
    }

    #[test]
    fn get_on_empty_is_none() {
        let t = StrashTable::default();
        assert_eq!(t.get([sig(1, false); 3], &[]), None);
    }

    #[test]
    fn insert_then_get_through_growth() {
        // Simulate an arena: children[i] is node i's sorted key.
        let mut children: Vec<[Signal; 3]> = vec![[Signal::FALSE; 3]; 4]; // const + 3 inputs
        let mut table = StrashTable::default();
        // 200 distinct keys force several growth/rehash rounds.
        for n in 0..200usize {
            let mut key = [
                sig(1 + n % 3, n % 2 == 0),
                sig(1 + (n / 3) % 3, false),
                sig(4 + n, false),
            ];
            key.sort_unstable();
            let node = NodeId::from_index(children.len());
            children.push(key);
            assert_eq!(table.get(key, &children), None, "key {n} absent before");
            table.insert(key, node, &children);
            assert_eq!(table.get(key, &children), Some(node), "key {n} found after");
        }
        assert_eq!(table.len(), 200);
        // Every key still resolves after all rehashes.
        for i in 4..children.len() {
            assert_eq!(
                table.get(children[i], &children),
                Some(NodeId::from_index(i))
            );
        }
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut children: Vec<[Signal; 3]> = vec![[Signal::FALSE; 3]];
        let mut table = StrashTable::default();
        for n in 0..50usize {
            let key = [sig(n + 1, false), sig(n + 2, false), sig(n + 3, true)];
            let node = NodeId::from_index(children.len());
            children.push(key);
            table.insert(key, node, &children);
        }
        let cap = table.slots.len();
        table.clear();
        assert_eq!(table.len(), 0);
        assert_eq!(table.slots.len(), cap, "clear keeps the allocation");
        for i in 1..children.len() {
            assert_eq!(table.get(children[i], &children), None);
        }
    }

    #[test]
    fn colliding_keys_coexist() {
        // Craft many keys landing in a tiny table to force probe chains.
        let mut children: Vec<[Signal; 3]> = vec![[Signal::FALSE; 3]];
        let mut table = StrashTable::default();
        for n in 0..MIN_CAPACITY {
            let key = [sig(1, false), sig(2, false), sig(10 + n, false)];
            let node = NodeId::from_index(children.len());
            children.push(key);
            table.insert(key, node, &children);
        }
        for i in 1..children.len() {
            assert_eq!(
                table.get(children[i], &children),
                Some(NodeId::from_index(i))
            );
        }
    }
}
