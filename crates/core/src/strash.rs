//! Structural-hashing table for majority nodes.
//!
//! The strash used to be a `HashMap<[Signal; 3], NodeId>`: every lookup
//! paid SipHash over 12 key bytes plus the std hashtable's control-byte
//! dance, and every pass rebuilt the map from scratch. This replacement is
//! a purpose-built open-addressing table that exploits two invariants of
//! the [`Mig`](crate::Mig) arena:
//!
//! * nodes are never deleted from the arena, so the table needs no
//!   tombstones, and `clear` (used when an arena is recycled between
//!   optimization passes) just wipes the slot words while keeping the
//!   allocation;
//! * a slot stores its sorted fanin triple *inline* next to the node id
//!   (16 bytes, power-of-two stride), so a probe compares against memory
//!   it already loaded. The previous layout held only the `NodeId` and
//!   compared against the arena's `children` array — one extra dependent
//!   cache miss per probe, which on million-node rebuilds made `maj`
//!   construction memory-bound.
//!
//! The hash is a splitmix64-style finalizer over the three packed signal
//! words (the same mixer as `mig_netlist::SplitMix64`, matching the PR-1
//! zero-third-party-deps PRNG policy), with linear probing and growth at
//! ~70 % load.

use crate::{NodeId, Signal};

const EMPTY: u32 = u32::MAX;
/// Smallest non-empty capacity; always a power of two.
const MIN_CAPACITY: usize = 16;

/// One table slot: the sorted fanin triple plus the arena node that
/// holds it. 16 bytes, so slots pack four per cache line.
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: [Signal; 3],
    node: u32,
}

const FREE: Slot = Slot {
    key: [Signal::FALSE; 3],
    node: EMPTY,
};

/// Open-addressing structural-hashing table: maps a sorted fanin triple to
/// the arena node that holds it.
#[derive(Debug, Clone, Default)]
pub(crate) struct StrashTable {
    /// Slot array; `node == EMPTY` marks a free slot. Length is always
    /// zero or a power of two.
    slots: Vec<Slot>,
    /// Number of occupied slots.
    len: usize,
}

/// Splitmix64-style mix of the three packed signal words.
#[inline]
fn hash_key(key: [Signal; 3]) -> u64 {
    let lo = key[0].raw() as u64 | ((key[1].raw() as u64) << 32);
    let mut z = lo ^ (key[2].raw() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StrashTable {
    /// Looks up the node whose stored fanins equal `key` (which must be
    /// sorted, as produced by the `maj` canonicalization).
    #[inline]
    pub fn get(&self, key: [Signal; 3]) -> Option<NodeId> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = hash_key(key) as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot.node == EMPTY {
                return None;
            }
            if slot.key == key {
                return Some(NodeId::from_index(slot.node as usize));
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `node` under `key`. The caller guarantees the key is
    /// absent.
    pub fn insert(&mut self, key: [Signal; 3], node: NodeId) {
        // Grow at ~70 % load (len + 1 > 0.7 · capacity).
        if (self.len + 1) * 10 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = hash_key(key) as usize & mask;
        while self.slots[i].node != EMPTY {
            debug_assert_ne!(self.slots[i].key, key, "duplicate strash key");
            i = (i + 1) & mask;
        }
        self.slots[i] = Slot {
            key,
            node: node.index() as u32,
        };
        self.len += 1;
    }

    /// Empties the table, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.slots.fill(FREE);
        self.len = 0;
    }

    /// Pre-sizes the table for `additional` more entries beyond the
    /// current population, growing (and rehashing once) to the smallest
    /// power of two that keeps the projected load under ~70 %. A single
    /// up-front rehash replaces the O(log n) doubling storm a million-node
    /// import would otherwise pay.
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.len + additional;
        if needed * 10 <= self.slots.len() * 7 {
            return;
        }
        let mut new_cap = self.slots.len().max(MIN_CAPACITY);
        while needed * 10 > new_cap * 7 {
            new_cap *= 2;
        }
        self.grow_to(new_cap);
    }

    /// Number of allocated slots (occupied or empty), for
    /// memory-footprint reporting.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Bytes held by the slot array, for memory-footprint reporting.
    pub fn slot_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>()
    }

    /// Number of hashed nodes (exposed for tests).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(MIN_CAPACITY);
        self.grow_to(new_cap);
    }

    fn grow_to(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two());
        let old = std::mem::replace(&mut self.slots, vec![FREE; new_cap]);
        let mask = new_cap - 1;
        for slot in old {
            if slot.node == EMPTY {
                continue;
            }
            let mut i = hash_key(slot.key) as usize & mask;
            while self.slots[i].node != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(i: usize, c: bool) -> Signal {
        Signal::new(NodeId::from_index(i), c)
    }

    #[test]
    fn get_on_empty_is_none() {
        let t = StrashTable::default();
        assert_eq!(t.get([sig(1, false); 3]), None);
    }

    #[test]
    fn insert_then_get_through_growth() {
        let mut table = StrashTable::default();
        let mut keys: Vec<[Signal; 3]> = Vec::new();
        // 200 distinct keys force several growth/rehash rounds.
        for n in 0..200usize {
            let mut key = [
                sig(1 + n % 3, n % 2 == 0),
                sig(1 + (n / 3) % 3, false),
                sig(4 + n, false),
            ];
            key.sort_unstable();
            let node = NodeId::from_index(4 + keys.len());
            assert_eq!(table.get(key), None, "key {n} absent before");
            table.insert(key, node);
            keys.push(key);
            assert_eq!(table.get(key), Some(node), "key {n} found after");
        }
        assert_eq!(table.len(), 200);
        // Every key still resolves after all rehashes.
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(table.get(key), Some(NodeId::from_index(4 + i)));
        }
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut table = StrashTable::default();
        let mut keys: Vec<[Signal; 3]> = Vec::new();
        for n in 0..50usize {
            let key = [sig(n + 1, false), sig(n + 2, false), sig(n + 3, true)];
            table.insert(key, NodeId::from_index(1 + n));
            keys.push(key);
        }
        let cap = table.slots.len();
        table.clear();
        assert_eq!(table.len(), 0);
        assert_eq!(table.slots.len(), cap, "clear keeps the allocation");
        for &key in &keys {
            assert_eq!(table.get(key), None);
        }
    }

    #[test]
    fn colliding_keys_coexist() {
        // Craft many keys landing in a tiny table to force probe chains.
        let mut table = StrashTable::default();
        let mut keys: Vec<[Signal; 3]> = Vec::new();
        for n in 0..MIN_CAPACITY {
            let key = [sig(1, false), sig(2, false), sig(10 + n, false)];
            table.insert(key, NodeId::from_index(1 + n));
            keys.push(key);
        }
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(table.get(key), Some(NodeId::from_index(1 + i)));
        }
    }

    #[test]
    fn reserve_prevents_rehash_storms() {
        let mut table = StrashTable::default();
        table.reserve(1000);
        let cap = table.num_slots();
        // reserve(1000) must leave the table under the ~70% grow
        // threshold: 1000 entries fit in cap slots at <= 0.7 load.
        assert!(1000 * 10 <= cap * 7, "reserve left the table too full");
        for n in 0..1000usize {
            let key = [sig(1, false), sig(2, n % 2 == 0), sig(10 + n, false)];
            table.insert(key, NodeId::from_index(1 + n));
        }
        assert_eq!(table.num_slots(), cap, "no growth after reserve");
    }
}
