//! MIG optimization algorithms (paper Section IV).
//!
//! * [`size`] — Algorithm 1: node-count reduction through `Ω.M` and
//!   `Ω.D` (R→L) elimination, interleaved with `Ω.A`/`Ψ.C`/`Ψ.R`/`Ψ.S`
//!   reshaping.
//! * [`depth`] — Algorithm 2: critical-path reduction by pushing late
//!   signals toward the outputs with `Ω.D` (L→R), `Ω.A` and `Ψ.C`.
//! * [`activity`] — Section IV-C: switching-activity reduction through
//!   probability-aware `Ψ.R` exchanges plus size recovery.
//! * [`rewrite`] — cut-based Boolean rewriting against the NPN database,
//!   in a size-oriented and a depth-oriented acceptance mode.
//! * [`esat`] — equality-saturation rewriting: the axioms as
//!   bidirectional rules over an e-graph, with cost-based extraction.
//! * [`pipeline`] — the composable pass manager: the [`Pass`] trait, the
//!   shared [`OptContext`], and the flow-script language that sequences
//!   the passes above.

pub mod activity;
pub mod depth;
pub mod esat;
pub mod pipeline;
pub mod rewrite;
pub mod size;

pub use activity::{optimize_activity, ActivityOptConfig};
pub use depth::{optimize_depth, DepthOptConfig};
pub use esat::{EGraph, ELit, EsatConfig, EsatPass, EsatRule, EsatStats, StopReason};
pub use pipeline::{
    ActivityPass, Budget, DepthPass, Flow, FlowStep, MapPass, MappedMetrics, OptContext, Pass,
    PassKind, PassMetrics, PassOutcome, PassReport, Repeat, RewritePass, SimSpotCheck, SizePass,
    SpotCheck, TechModel,
};
pub use rewrite::{enumerate_cuts, optimize_rewrite, CutSet, EnumeratedCut, RewriteConfig};
pub use size::{optimize_size, SizeOptConfig};

use crate::{Mig, NodeId, Signal};

/// Reusable buffers for the rebuild-style optimization passes.
///
/// The eliminate → reshape → eliminate → cleanup cycle used to allocate a
/// fresh [`Mig`] (children, levels, strash) plus a signal map and a fanout
/// vector *per pass, per cycle*. This engine keeps a pool of retired
/// arenas and the side buffers alive across passes: a pass takes a spare
/// arena, `reset_for_rebuild`s it (O(1), keeps allocations), and
/// when its input MIG is no longer needed the caller
/// [`recycle`](OptBuffers::recycle)s it back into the pool. In steady
/// state an `effort`-cycle optimization run performs no arena allocations
/// after the first cycle.
#[derive(Debug, Default)]
pub struct OptBuffers {
    spares: Vec<Mig>,
    map: Vec<Signal>,
    /// Scratch fanout-count buffer for the passes that need one.
    pub(crate) fanout: Vec<u32>,
}

impl OptBuffers {
    /// Creates an empty buffer pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a retired MIG's buffers to the pool for the next pass.
    pub fn recycle(&mut self, used: Mig) {
        // A tiny pool is plenty: the pipeline is at most three deep.
        if self.spares.len() < 4 {
            self.spares.push(used);
        }
    }

    /// Rebuilds `old` into a (possibly recycled) destination MIG, calling
    /// `make` once per reachable gate in topological order with the gate's
    /// fanins already mapped into the new graph. `make` returns the signal
    /// that represents the old gate.
    ///
    /// This is the backbone of every pass: passes are pure functions from
    /// MIG to MIG, so arena order always stays topological and strashing
    /// keeps the result canonical.
    pub(crate) fn rebuild<F>(&mut self, old: &Mig, mut make: F) -> Mig
    where
        F: FnMut(&mut Mig, [Signal; 3], NodeId) -> Signal,
    {
        let mut new = self.fresh_arena(old);
        self.map.clear();
        self.map.resize(old.num_nodes(), Signal::FALSE);
        for (i, m) in self.map.iter_mut().enumerate().take(old.num_inputs() + 1) {
            *m = Signal::new(NodeId::from_index(i), false);
        }
        {
            let mark = old.reach_ref();
            for node in old.gate_ids() {
                if !mark[node.index()] {
                    continue;
                }
                let kids = old
                    .children(node)
                    .map(|s| self.map[s.node().index()].complement_if(s.is_complemented()));
                self.map[node.index()] = make(&mut new, kids, node);
            }
        }
        for (name, s) in old.outputs() {
            let mapped = self.map[s.node().index()].complement_if(s.is_complemented());
            new.add_output(name.clone(), mapped);
        }
        new
    }

    /// Takes a destination arena for a rebuild-style pass: a recycled
    /// spare reset to `old`'s inputs when one is pooled, a fresh arena
    /// otherwise.
    pub(crate) fn fresh_arena(&mut self, old: &Mig) -> Mig {
        let mut m = match self.spares.pop() {
            Some(mut m) => {
                m.reset_for_rebuild(old);
                m
            }
            None => {
                let mut m = Mig::new(old.name().to_string());
                for i in 0..old.num_inputs() {
                    m.add_input(old.input_name(i).to_string());
                }
                m
            }
        };
        // A rebuild of `old` lands within a few percent of its size:
        // pre-sizing the destination (arena and strash in one shot)
        // replaces the O(log n) reallocation/rehash storm a cold or
        // undersized spare would pay on million-node graphs.
        m.reserve_gates(old.size());
        m
    }

    /// Dead-node sweep through the engine: a rebuild that recreates every
    /// reachable gate verbatim (the buffer-reusing equivalent of
    /// [`Mig::cleanup`]).
    pub(crate) fn cleanup(&mut self, old: &Mig) -> Mig {
        self.rebuild(old, |new, [a, b, c], _| new.maj(a, b, c))
    }
}

/// One-shot rebuild without buffer reuse (kept for tests and callers
/// outside the optimization pipeline).
#[cfg(test)]
pub(crate) fn rebuild<F>(old: &Mig, make: F) -> Mig
where
    F: FnMut(&mut Mig, [Signal; 3], NodeId) -> Signal,
{
    OptBuffers::new().rebuild(old, make)
}

/// A lexicographic optimization cost: `primary` is compared first,
/// `tiebreak` second (derived `Ord` gives exactly that order). Every
/// acceptance test in the optimizer stack — pass-level "keep the best
/// graph seen" guards and the rewrite engine's per-candidate scoring —
/// goes through this one type, constructed via an [`Objective`], so
/// size-oriented and depth-oriented passes share their comparison logic
/// instead of each owning a private `(usize, u32)` helper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Cost {
    /// The metric the pass minimizes.
    pub primary: i64,
    /// Broken ties go to the secondary metric.
    pub tiebreak: i64,
}

/// Which lexicographic [`Cost`] a pass minimizes.
///
/// The two structural objectives are the paper's: node count and logic
/// depth. The two *mapped* objectives score a graph by its
/// technology-mapped cost instead ([`MappedMetrics`] measured through
/// the context's [`TechModel`]); passes that only
/// understand structural metrics fall back to the
/// [`structural`](Objective::structural) proxy, which is also what
/// [`Objective::of`]/[`Objective::cost`] report when no mapped
/// measurement is at hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Node count first, logic depth as the tiebreak (Algorithm 1 and
    /// size-oriented Boolean rewriting).
    SizeThenDepth,
    /// Logic depth first, node count as the tiebreak (Algorithm 2 and
    /// the depth-oriented rewrite mode).
    DepthThenSize,
    /// Mapped cell area first, mapped delay as the tiebreak (the
    /// `map_area` recovery pass). Structural proxy:
    /// [`SizeThenDepth`](Objective::SizeThenDepth).
    MappedArea,
    /// Mapped critical-path delay first, mapped area as the tiebreak
    /// (the `map_delay` recovery pass). Structural proxy:
    /// [`DepthThenSize`](Objective::DepthThenSize).
    MappedDelay,
}

impl Objective {
    /// The structural objective a pass should use when it has no
    /// technology model to measure mapped cost with: the mapped-area
    /// objective degrades to size-then-depth (cell area tracks node
    /// count), the mapped-delay objective to depth-then-size (mapped
    /// delay tracks logic depth). The structural objectives map to
    /// themselves.
    pub fn structural(self) -> Objective {
        match self {
            Objective::SizeThenDepth | Objective::MappedArea => Objective::SizeThenDepth,
            Objective::DepthThenSize | Objective::MappedDelay => Objective::DepthThenSize,
        }
    }

    /// Graph-level cost of `mig` under this objective (the structural
    /// proxy for the mapped objectives — measuring true mapped cost
    /// needs a [`TechModel`], see
    /// [`Objective::mapped_cost`]).
    pub fn of(self, mig: &Mig) -> Cost {
        self.cost(mig.size(), mig.depth())
    }

    /// The cost of a graph with the given node count and depth under
    /// this objective (for callers holding metrics, not the graph).
    /// Mapped objectives score with their structural proxy here.
    pub fn cost(self, size: usize, depth: u32) -> Cost {
        match self.structural() {
            Objective::SizeThenDepth => Cost {
                primary: size as i64,
                tiebreak: depth as i64,
            },
            _ => Cost {
                primary: depth as i64,
                tiebreak: size as i64,
            },
        }
    }

    /// The cost of a technology-mapped graph under this objective:
    /// mapped area (µm²) and delay (ns) are scaled to integers (pm² /
    /// zeptoseconds-scale fixed point, far below any library's
    /// resolution) so they fit the lexicographic [`Cost`]. The
    /// structural objectives ignore the measurement and keep their
    /// structural meaning — callers can pass any objective through.
    pub fn mapped_cost(self, m: &pipeline::MappedMetrics) -> Cost {
        let area = (m.area * 1e6).round() as i64;
        let delay = (m.delay * 1e6).round() as i64;
        match self {
            Objective::MappedArea => Cost {
                primary: area,
                tiebreak: delay,
            },
            Objective::MappedDelay => Cost {
                primary: delay,
                tiebreak: area,
            },
            structural => structural.cost(m.cells, 0),
        }
    }

    /// Candidate-level cost of one local replacement during rewriting:
    /// it saves `gain` nodes net and its root lands at `level`. Lower is
    /// better under the same derived order as [`Objective::of`] — the
    /// size objective ranks by `(-gain, level)`, the depth objective by
    /// `(level, -gain)`; mapped objectives use their structural proxy.
    pub(crate) fn local(self, gain: isize, level: u32) -> Cost {
        match self.structural() {
            Objective::SizeThenDepth => Cost {
                primary: -(gain as i64),
                tiebreak: level as i64,
            },
            _ => Cost {
                primary: level as i64,
                tiebreak: -(gain as i64),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuild_identity_preserves_everything() {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, !b, c);
        let x = mig.xor(m, a);
        mig.add_output("y", !x);
        let copy = rebuild(&mig, |new, [a, b, c], _| new.maj(a, b, c));
        assert!(mig.equiv(&copy, 4));
        assert_eq!(copy.size(), mig.size());
        assert_eq!(copy.depth(), mig.depth());
        assert_eq!(copy.outputs()[0].0, "y");
    }

    #[test]
    fn rebuild_drops_dead_nodes() {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let keep = mig.and(a, b);
        let _dead = mig.or(a, b);
        mig.add_output("y", keep);
        let copy = rebuild(&mig, |new, [a, b, c], _| new.maj(a, b, c));
        assert_eq!(copy.num_gates(), 1);
    }
}
