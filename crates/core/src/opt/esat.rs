//! Equality-saturation rewriting over MIGs (the `esat` pass).
//!
//! Greedy rewriting (Algorithm 1/2 and the cut-based engine) applies the
//! paper's axioms in a fixed order and keeps only the current best graph,
//! so it plateaus in local minima on functionally-redundant circuits. This
//! module takes the orthogonal route explored by the equality-saturation
//! line of work (E-Syn et al.): build an *e-graph* — a congruence-closed
//! union-find over classes of equivalent majority expressions — saturate
//! it by applying the axioms Ω/Ψ as **bidirectional** rules (every rewrite
//! adds nodes, none removes), and afterwards *extract* the cheapest
//! representative under a cost objective. Because all intermediate shapes
//! coexist in the e-graph, rule ordering stops mattering.
//!
//! # Representation
//!
//! An e-class is identified by a `u32` id; an [`ELit`] is a class id plus
//! a complement bit, exactly like [`Signal`] at the graph
//! level, so inverters stay free edge attributes inside the e-graph too.
//! An e-node is a complement-normalized majority gate `[ELit; 3]`:
//!
//! * children sorted (Ω.C commutativity is structural, not a rule),
//! * at most one complemented child — a node with two or three
//!   complemented children is replaced by its complement with all
//!   children flipped (Ω.I inverter propagation, `M'(x,y,z) =
//!   M(x',y',z')`), the complement moving into the referring [`ELit`],
//! * the Ω.M majority folds (`M(x,x,z) = x`, `M(x,x',z) = z`) are applied
//!   eagerly on insertion, so trivially-reducible nodes never exist.
//!
//! The union-find tracks a parity bit per edge (a class may be proven
//! equal to the *complement* of another), and congruence closure is
//! restored after merges by re-canonicalizing every node against the
//! union-find and hash-consing it again until a fixpoint (see
//! `EGraph::rebuild`).
//!
//! # Rule set
//!
//! The matcher implements the remaining axioms of §III-B as generative
//! rules (each fires on matches in *both* orientations because the
//! reverse instance is itself a match once the forward instance has been
//! added):
//!
//! * `Ω.A` associativity — `M(x,u,M(y,u,z)) = M(z,u,M(y,u,x))`,
//! * M-associativity — `M(x,u,M(y,u,z)) = M(M(x,u,y),u,z)`,
//! * `Ω.D` distributivity, both directions —
//!   `M(x,y,M(u,v,z)) = M(M(x,y,u),M(x,y,v),z)`,
//! * `Ψ.C` complementary associativity —
//!   `M(x,u,M(y,u',z)) = M(x,u,M(y,x,z))`,
//! * `Ψ.R` relevance (one-level instance) — in `M(x,y,M(…x…))` the inner
//!   occurrence of `x` may be replaced by `y'`.
//!
//! [`EsatRule`] enumerates the full axiom list (structural rules
//! included) with paper references and executable instantiations; the
//! axiom-soundness test harness simulates every rule in both directions
//! over random graphs.
//!
//! # Budgets and extraction
//!
//! Saturation is budgeted — an iteration cap (from the pass `effort`), an
//! e-node cap, and an optional wall-clock deadline, the latter two riding
//! the pipeline's [`Budget`] (`max_nodes` bounds
//! the e-graph, `pass_ms` bounds saturation time). Extraction picks, per
//! e-class, the representative minimizing the objective ([`Objective`]),
//! by a bottom-up cost fixpoint, then rebuilds a strashed [`Mig`]; the
//! [`EsatPass`] keeps the extraction only when it beats its input
//! (monotone guard), so the pass can never regress a flow.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use super::depth::DepthOptConfig;
use super::pipeline::{Budget, OptContext, Pass, TechModel};
use super::rewrite::{optimize_rewrite_with, RewriteCache, RewriteConfig};
use super::size::SizeOptConfig;
use super::{Objective, OptBuffers};
use crate::{Mig, Signal};

/// A reference to an e-class with a complement attribute — the e-graph's
/// equivalent of [`Signal`]. The low bit is the
/// complement flag, the upper bits the e-class id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ELit(u32);

impl ELit {
    /// Constant false (class 0, uncomplemented).
    pub const FALSE: ELit = ELit(0);
    /// Constant true (class 0, complemented).
    pub const TRUE: ELit = ELit(1);

    fn new(class: u32, complemented: bool) -> ELit {
        ELit(class << 1 | complemented as u32)
    }

    /// The e-class this literal refers to.
    pub fn class(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> ELit {
        ELit(self.0 ^ 1)
    }

    /// Complemented iff `c` (parity composition).
    pub fn complement_if(self, c: bool) -> ELit {
        ELit(self.0 ^ c as u32)
    }
}

/// A complement-normalized majority e-node: three sorted children with
/// at most one complement among them.
type ENode = [ELit; 3];

/// What a class bottoms out as, when it contains a primary input or the
/// constant (extraction leaves).
#[derive(Debug, Clone, Copy)]
enum Leaf {
    /// The constant-false class.
    Const,
    /// Primary input by index.
    Input(u32),
}

/// Why saturation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A full iteration produced no new nodes or merges (true fixpoint).
    Saturated,
    /// The iteration budget ran out.
    IterLimit,
    /// The e-node budget ran out.
    NodeLimit,
    /// The wall-clock deadline passed.
    Deadline,
}

/// Counters reported by one [`EGraph::saturate`] run.
#[derive(Debug, Clone, Copy)]
pub struct EsatStats {
    /// Rule-application iterations performed.
    pub iterations: usize,
    /// Total e-nodes at the end of the run.
    pub enodes: usize,
    /// Total e-classes (including absorbed ones) allocated.
    pub classes: usize,
    /// Successful merges performed by rules and congruence repair.
    pub merges: usize,
    /// Why the run stopped.
    pub stopped: StopReason,
}

/// Saturation budget and matcher tuning for one `esat` run.
///
/// The defaults are deterministic (no wall-clock limit); the
/// [`EsatPass`] derives a config from the pipeline
/// [`Budget`] so `max_nodes` caps the e-graph
/// and `pass_ms` installs a deadline.
#[derive(Debug, Clone)]
pub struct EsatConfig {
    /// Rule-application iterations (each applies every rule to every
    /// match of the current e-graph, then restores congruence).
    pub iters: usize,
    /// Stop growing once the e-graph holds this many e-nodes
    /// (`0` = automatic: `128 × seed + 2048`, clamped to `seed + 500_000`).
    pub enode_cap: usize,
    /// Optional wall-clock deadline for saturation. **Results become
    /// machine-dependent when set** (like every wall-clock budget in the
    /// pipeline); leave `None` for deterministic runs.
    pub time_ms: Option<u64>,
    /// Matcher cap: how many e-nodes per child class the nested-pattern
    /// rules examine (bounds the quadratic `Ω.D` right-to-left match).
    pub scan_cap: usize,
}

impl Default for EsatConfig {
    fn default() -> Self {
        EsatConfig {
            iters: 16,
            enode_cap: 0,
            time_ms: None,
            scan_cap: 12,
        }
    }
}

impl EsatConfig {
    /// The effective e-node cap for a graph seeded with `seed` e-nodes.
    /// The automatic cap grants generous multiplicative room — the
    /// MCNC sweep showed saturation is budget-bound, with wins still
    /// appearing past 64× the seed — while a constant ceiling keeps the
    /// largest circuits from exploding the arena.
    fn cap(&self, seed: usize) -> usize {
        if self.enode_cap == 0 {
            (seed * 128 + 2048).min(seed + 500_000)
        } else {
            self.enode_cap
        }
    }
}

/// A deferred rule application: `target` has been proven equal to the
/// right-hand-side expression, which is one of two shapes (every axiom's
/// RHS is at most a two-level majority nest).
#[derive(Debug, Clone, Copy)]
enum Action {
    /// `target ≡ M(outer[0], outer[1], M(inner))`.
    Nest {
        outer: [ELit; 2],
        inner: ENode,
        target: ELit,
    },
    /// `target ≡ M(M(ab[0],ab[1],pair[0]), M(ab[0],ab[1],pair[1]), z)`.
    Dist {
        ab: [ELit; 2],
        pair: [ELit; 2],
        z: ELit,
        target: ELit,
    },
}

/// An e-graph over complement-normalized majority nodes: union-find with
/// per-edge complement parity, hash-cons congruence closure, the Ω/Ψ
/// rule matcher, and cost-based extraction.
#[derive(Debug, Default)]
pub struct EGraph {
    /// Union-find: `uf[c]` is the literal class `c` (uncomplemented)
    /// equals. A root satisfies `uf[c] == ELit::new(c, false)`.
    uf: Vec<ELit>,
    /// Per root class: its e-nodes with their output parity — entry
    /// `(n, oc)` means node `n` equals `ELit::new(class, oc)`.
    nodes: Vec<Vec<(ENode, bool)>>,
    /// Per root class: the primary input / constant it contains, with
    /// the parity relating leaf to root.
    leaf: Vec<Option<(Leaf, bool)>>,
    /// Hash-cons: canonical node → the literal it evaluates to.
    memo: HashMap<ENode, ELit>,
    /// Live e-node count (absorbed duplicates excluded).
    num_enodes: usize,
    /// Successful merges since construction.
    merges: usize,
}

impl EGraph {
    /// An e-graph primed with the constant class and `num_inputs` input
    /// classes, mirroring the [`Mig`] arena layout (class 0 = constant
    /// false, classes `1..=num_inputs` = primary inputs).
    pub fn with_inputs(num_inputs: usize) -> EGraph {
        let mut g = EGraph::default();
        g.fresh_class();
        g.leaf[0] = Some((Leaf::Const, false));
        for i in 0..num_inputs {
            let c = g.fresh_class();
            g.leaf[c as usize] = Some((Leaf::Input(i as u32), false));
        }
        g
    }

    /// The constant-false literal.
    pub fn constant(&self) -> ELit {
        ELit::FALSE
    }

    /// The literal of primary input `i` (panics if out of range for the
    /// construction-time input count).
    pub fn input(&self, i: usize) -> ELit {
        assert!(
            self.leaf.len() > i + 1,
            "input {i} outside the seeded input range"
        );
        ELit::new(i as u32 + 1, false)
    }

    /// Live e-node count.
    pub fn num_enodes(&self) -> usize {
        self.num_enodes
    }

    /// Allocated e-class count (absorbed classes included).
    pub fn num_classes(&self) -> usize {
        self.uf.len()
    }

    fn fresh_class(&mut self) -> u32 {
        let id = self.uf.len() as u32;
        self.uf.push(ELit::new(id, false));
        self.nodes.push(Vec::new());
        self.leaf.push(None);
        id
    }

    /// Canonicalizes a literal against the union-find (path-compressing,
    /// parity-aware): two literals denote the same Boolean function
    /// exactly when their canonical forms are equal.
    pub fn find(&mut self, lit: ELit) -> ELit {
        // Pass 1: locate the root and the total parity from the start
        // class to it.
        let mut c = lit.class();
        let mut total = false;
        loop {
            let p = self.uf[c as usize];
            if p.class() == c {
                break;
            }
            total ^= p.is_complemented();
            c = p.class();
        }
        let root = c;
        // Pass 2: point every visited class straight at the root with
        // its accumulated parity.
        let mut c = lit.class();
        let mut prefix = false;
        while c != root {
            let p = self.uf[c as usize];
            self.uf[c as usize] = ELit::new(root, total ^ prefix);
            prefix ^= p.is_complemented();
            c = p.class();
        }
        ELit::new(root, total ^ lit.is_complemented())
    }

    /// Whether two literals are known equal (same class, same parity).
    pub fn same(&mut self, a: ELit, b: ELit) -> bool {
        self.find(a) == self.find(b)
    }

    /// [`find`](Self::find) without path compression, for read-only
    /// walks holding shared borrows of the class lists.
    fn find_nc(&self, lit: ELit) -> ELit {
        let mut c = lit.class();
        let mut total = lit.is_complemented();
        loop {
            let p = self.uf[c as usize];
            if p.class() == c {
                return ELit::new(c, total);
            }
            total ^= p.is_complemented();
            c = p.class();
        }
    }

    /// The canonical form of a prospective node over already-canonical
    /// children: either an Ω.M fold to an existing literal, or the
    /// normalized node plus the output parity absorbed by Ω.I.
    fn canon(kids: [ELit; 3]) -> Result<(ENode, bool), ELit> {
        let [a, b, c] = kids;
        // Ω.M majority folds.
        if a == b || a == c {
            return Err(a);
        }
        if b == c {
            return Err(b);
        }
        if a == b.not() {
            return Err(c);
        }
        if a == c.not() {
            return Err(b);
        }
        if b == c.not() {
            return Err(a);
        }
        // Ω.I: at most one complemented child.
        let mut kids = [a, b, c];
        let flipped = kids.iter().filter(|k| k.is_complemented()).count() >= 2;
        if flipped {
            for k in &mut kids {
                *k = k.not();
            }
        }
        kids.sort();
        Ok((kids, flipped))
    }

    /// Adds (or finds) the majority of three literals, applying the Ω.M
    /// folds and Ω.I normalization eagerly. This is the e-graph analogue
    /// of [`Mig::maj`].
    pub fn maj(&mut self, a: ELit, b: ELit, c: ELit) -> ELit {
        let kids = [self.find(a), self.find(b), self.find(c)];
        match Self::canon(kids) {
            Err(folded) => folded,
            Ok((node, out)) => {
                if let Some(&lit) = self.memo.get(&node) {
                    let lit = self.find(lit);
                    return lit.complement_if(out);
                }
                let id = self.fresh_class();
                self.nodes[id as usize].push((node, false));
                self.memo.insert(node, ELit::new(id, false));
                self.num_enodes += 1;
                ELit::new(id, out)
            }
        }
    }

    /// Records that `a` and `b` compute the same function. Returns true
    /// when the union-find changed. (A contradictory merge — a class
    /// against its own complement — is ignored; sound rules never
    /// produce one.)
    fn merge(&mut self, a: ELit, b: ELit) -> bool {
        let fa = self.find(a);
        let fb = self.find(b);
        if fa.class() == fb.class() {
            return false;
        }
        crate::faultpoint!("esat.merge");
        // Absorb the class with fewer nodes into the other.
        let (r, s) =
            if self.nodes[fa.class() as usize].len() >= self.nodes[fb.class() as usize].len() {
                (fa, fb)
            } else {
                (fb, fa)
            };
        let q = r.is_complemented() ^ s.is_complemented();
        self.uf[s.class() as usize] = ELit::new(r.class(), q);
        let moved = std::mem::take(&mut self.nodes[s.class() as usize]);
        for (n, oc) in moved {
            self.nodes[r.class() as usize].push((n, oc ^ q));
        }
        if let Some((l, p)) = self.leaf[s.class() as usize].take() {
            if self.leaf[r.class() as usize].is_none() {
                self.leaf[r.class() as usize] = Some((l, p ^ q));
            }
        }
        self.merges += 1;
        true
    }

    /// Restores the congruence invariant after merges: every node is
    /// re-canonicalized against the union-find and re-hash-consed;
    /// colliding nodes merge their classes. Runs sweeps until a sweep
    /// performs no merge.
    fn rebuild(&mut self) {
        loop {
            // Gather every (literal, node) pair, then rebuild the class
            // lists and the memo from scratch.
            let mut entries: Vec<(ELit, ENode)> = Vec::with_capacity(self.num_enodes);
            for c in 0..self.uf.len() {
                if self.uf[c].class() != c as u32 {
                    continue;
                }
                for &(n, oc) in &self.nodes[c] {
                    entries.push((ELit::new(c as u32, oc), n));
                }
            }
            for list in &mut self.nodes {
                list.clear();
            }
            self.memo.clear();
            self.num_enodes = 0;
            let mut changed = false;
            for (lit, node) in entries {
                let lit = self.find(lit);
                let kids = [self.find(node[0]), self.find(node[1]), self.find(node[2])];
                match Self::canon(kids) {
                    Err(folded) => {
                        changed |= self.merge(lit, folded);
                    }
                    Ok((n, flip)) => {
                        // `n` computes `lit` up to `flip`.
                        let nlit = lit.complement_if(flip);
                        match self.memo.get(&n) {
                            Some(&prev) => {
                                let prev = self.find(prev);
                                if prev != nlit {
                                    changed |= self.merge(prev, nlit);
                                }
                            }
                            None => {
                                self.memo.insert(n, nlit);
                                let root = self.find(nlit);
                                self.nodes[root.class() as usize].push((n, root.is_complemented()));
                                self.num_enodes += 1;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Whether the majority of three (canonical) literals folds or is
    /// already hash-consed — a read-only membership probe used to gate
    /// the inflationary rules.
    fn node_exists(&self, kids: [ELit; 3]) -> bool {
        match Self::canon(kids) {
            Err(_) => true,
            Ok((node, _)) => self.memo.contains_key(&node),
        }
    }

    /// One rule-matching sweep: collects the deferred applications of
    /// every axiom against every current node (deterministic order:
    /// class id, then node list order).
    fn matches(&mut self, scan_cap: usize) -> Vec<Action> {
        // Snapshot the nodes so rule application never observes a
        // half-updated class list.
        let mut snapshot: Vec<(ELit, ENode)> = Vec::with_capacity(self.num_enodes);
        for c in 0..self.uf.len() {
            if self.uf[c].class() != c as u32 {
                continue;
            }
            for &(n, oc) in &self.nodes[c] {
                snapshot.push((ELit::new(c as u32, oc), n));
            }
        }
        let mut buckets: Vec<Vec<Action>> = Vec::with_capacity(snapshot.len());
        for &(target, n) in &snapshot {
            let mut actions = Vec::new();
            for i in 0..3 {
                let child = n[i];
                let x = n[(i + 1) % 3];
                let u = n[(i + 2) % 3];
                let inner_class = child.class() as usize;
                let inner_nodes: Vec<(ENode, bool)> = self.nodes[inner_class]
                    .iter()
                    .take(scan_cap)
                    .copied()
                    .collect();
                for (m, moc) in inner_nodes {
                    let flip = child.is_complemented() ^ moc;
                    let ik = if flip {
                        [m[0].not(), m[1].not(), m[2].not()]
                    } else {
                        m
                    };
                    // target ≡ M(x, u, M(ik)) — match the nested rules
                    // with both (x,u) and (u,x) in the outer role.
                    for (x, u) in [(x, u), (u, x)] {
                        for j in 0..3 {
                            let yj = ik[j];
                            let ya = ik[(j + 1) % 3];
                            let yb = ik[(j + 2) % 3];
                            if yj == u {
                                // Ω.A: M(x,u,M(ya,u,yb)) = M(yb,u,M(ya,u,x))
                                actions.push(Action::Nest {
                                    outer: [yb, u],
                                    inner: [ya, u, x],
                                    target,
                                });
                                // M-assoc: … = M(M(x,u,ya),u,yb)
                                actions.push(Action::Nest {
                                    outer: [u, yb],
                                    inner: [x, u, ya],
                                    target,
                                });
                            }
                            if yj == u.not() {
                                // Ψ.C: M(x,u,M(ya,u',yb)) = M(x,u,M(ya,x,yb))
                                actions.push(Action::Nest {
                                    outer: [x, u],
                                    inner: [ya, x, yb],
                                    target,
                                });
                            }
                            if yj == x {
                                // Ψ.R (one level): M(x,u,M(…x…)) =
                                // M(x,u,M(…u'…))
                                let mut inner = ik;
                                inner[j] = u.not();
                                actions.push(Action::Nest {
                                    outer: [x, u],
                                    inner,
                                    target,
                                });
                            }
                        }
                    }
                    // Ω.D left-to-right: M(x,u,M(a,b,c)) =
                    // M(M(x,u,a),M(x,u,b),c) for each choice of the
                    // child kept outside. Unconditionally this rule is
                    // explosive (it always adds up to three nodes and
                    // matches every nested pair), so it only fires when
                    // at least one of the distributed products already
                    // exists in the e-graph — then the rewrite creates
                    // sharing instead of inflation.
                    for j in 0..3 {
                        let p0 = [x, u, ik[(j + 1) % 3]];
                        let p1 = [x, u, ik[(j + 2) % 3]];
                        if self.node_exists(p0) || self.node_exists(p1) {
                            actions.push(Action::Dist {
                                ab: [x, u],
                                pair: [ik[(j + 1) % 3], ik[(j + 2) % 3]],
                                z: ik[j],
                                target,
                            });
                        }
                    }
                }
            }
            // Ω.D right-to-left: two children that are majority nodes
            // sharing two operands factor out —
            // M(M(x,y,u),M(x,y,v),z) = M(x,y,M(u,v,z)).
            for i in 0..3 {
                let a = n[i];
                let b = n[(i + 1) % 3];
                let z = n[(i + 2) % 3];
                let an: Vec<(ENode, bool)> = self.nodes[a.class() as usize]
                    .iter()
                    .take(scan_cap)
                    .copied()
                    .collect();
                let bn: Vec<(ENode, bool)> = self.nodes[b.class() as usize]
                    .iter()
                    .take(scan_cap)
                    .copied()
                    .collect();
                for &(ma, aoc) in &an {
                    let ka = if a.is_complemented() ^ aoc {
                        [ma[0].not(), ma[1].not(), ma[2].not()]
                    } else {
                        ma
                    };
                    for &(mb, boc) in &bn {
                        let kb = if b.is_complemented() ^ boc {
                            [mb[0].not(), mb[1].not(), mb[2].not()]
                        } else {
                            mb
                        };
                        // Find two shared operands x,y with leftovers u,v.
                        for p in 0..3 {
                            for q in 0..3 {
                                if q == p {
                                    continue;
                                }
                                let (x, y) = (ka[p], ka[q]);
                                let mut used = [false; 3];
                                let mut ok = true;
                                for want in [x, y] {
                                    let found = (0..3).find(|&t| !used[t] && kb[t] == want);
                                    match found {
                                        Some(t) => used[t] = true,
                                        None => {
                                            ok = false;
                                            break;
                                        }
                                    }
                                }
                                if !ok {
                                    continue;
                                }
                                let u = ka[3 - p - q];
                                let v = kb[(0..3).find(|&t| !used[t]).expect("one left")];
                                actions.push(Action::Nest {
                                    outer: [x, y],
                                    inner: [u, v, z],
                                    target,
                                });
                            }
                        }
                    }
                }
            }
            buckets.push(actions);
        }
        // Interleave round-robin across target nodes: when the apply
        // loop runs out of node budget mid-list, exploration has been
        // spread over the whole graph instead of a prefix of it.
        let total: usize = buckets.iter().map(Vec::len).sum();
        let mut interleaved = Vec::with_capacity(total);
        let mut round = 0;
        while interleaved.len() < total {
            for bucket in &buckets {
                if let Some(&a) = bucket.get(round) {
                    interleaved.push(a);
                }
            }
            round += 1;
        }
        interleaved
    }

    /// Saturates under the config's budgets; see the module docs for the
    /// rule set. Deterministic unless `config.time_ms` is set.
    pub fn saturate(&mut self, config: &EsatConfig) -> EsatStats {
        let cap = config.cap(self.num_enodes);
        let deadline = config
            .time_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let merges_before = self.merges;
        let mut stopped = StopReason::IterLimit;
        let mut iterations = 0;
        'outer: for _ in 0..config.iters.max(1) {
            if self.num_enodes >= cap {
                stopped = StopReason::NodeLimit;
                break;
            }
            let actions = self.matches(config.scan_cap.max(1));
            iterations += 1;
            let nodes_before = self.num_enodes;
            let merges_at = self.merges;
            for (k, action) in actions.iter().enumerate() {
                if self.num_enodes >= cap {
                    stopped = StopReason::NodeLimit;
                    self.rebuild();
                    break 'outer;
                }
                // Deadline polling is batched: cheap enough to keep the
                // zero-budget path free of clock reads.
                if k % 512 == 0 {
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            stopped = StopReason::Deadline;
                            self.rebuild();
                            break 'outer;
                        }
                    }
                }
                match *action {
                    Action::Nest {
                        outer,
                        inner,
                        target,
                    } => {
                        let im = self.maj(inner[0], inner[1], inner[2]);
                        let om = self.maj(outer[0], outer[1], im);
                        self.merge(om, target);
                    }
                    Action::Dist {
                        ab,
                        pair,
                        z,
                        target,
                    } => {
                        let l = self.maj(ab[0], ab[1], pair[0]);
                        let r = self.maj(ab[0], ab[1], pair[1]);
                        let om = self.maj(l, r, z);
                        self.merge(om, target);
                    }
                }
            }
            self.rebuild();
            if self.num_enodes == nodes_before && self.merges == merges_at {
                stopped = StopReason::Saturated;
                break;
            }
        }
        EsatStats {
            iterations,
            enodes: self.num_enodes,
            classes: self.uf.len(),
            merges: self.merges - merges_before,
            stopped,
        }
    }

    /// The set of root classes an extraction choice actually
    /// materializes: everything reachable from `out_classes` through
    /// the chosen node of each class (`usize::MAX` = leaf, terminal).
    fn used_classes(&self, choice: &[Option<usize>], out_classes: &[usize]) -> Option<Vec<bool>> {
        let mut used = vec![false; choice.len()];
        let mut stack: Vec<usize> = out_classes.to_vec();
        while let Some(c) = stack.pop() {
            if used[c] {
                continue;
            }
            used[c] = true;
            let idx = choice[c]?;
            if idx == usize::MAX {
                continue;
            }
            for kid in self.nodes[c][idx].0 {
                stack.push(self.find_nc(kid).class() as usize);
            }
        }
        Some(used)
    }

    /// How many majority gates an extraction choice emits: one per used
    /// non-leaf class.
    fn count_gates(used: &[bool], choice: &[Option<usize>]) -> usize {
        used.iter()
            .zip(choice)
            .filter(|(&u, &ch)| u && ch != Some(usize::MAX))
            .count()
    }

    /// Cost-based extraction: rebuilds the cheapest representative of
    /// every literal in `outputs` into `arena` (which must carry the
    /// same primary inputs the e-graph was seeded with) and returns the
    /// chosen signals, or `None` if some output class has no finite-cost
    /// representative (cannot happen for a graph seeded from a [`Mig`]).
    fn extract_into(
        &mut self,
        objective: Objective,
        outputs: &[ELit],
        arena: &mut Mig,
    ) -> Option<Vec<Signal>> {
        const SWEEP_CAP: usize = 10_000;
        let n = self.uf.len();
        // Per root class: (primary, secondary, chosen node index;
        // usize::MAX = leaf).
        let mut best: Vec<Option<(u64, u64, usize)>> = vec![None; n];
        for (c, slot) in best.iter_mut().enumerate() {
            if self.uf[c].class() == c as u32 && self.leaf[c].is_some() {
                *slot = Some((0, 0, usize::MAX));
            }
        }
        let structural = objective.structural();
        // Bottom-up fixpoint: a node's size cost is 1 + Σ child costs,
        // its depth cost 1 + max child depth; rounds repeat until no
        // class improves. Chosen structures are acyclic because the
        // primary metric strictly decreases child-ward.
        //
        // Dirty-frontier scheduling: a class is only re-evaluated when a
        // child class's cost changed since its last evaluation (the
        // union-find is frozen during extraction, so the parent lists
        // are stable). Re-evaluating with unchanged children reproduces
        // candidate costs that already lost the strict `<` comparison,
        // so skipping them cannot change any assignment — and because
        // costs fall monotonically as children fall, every class
        // converges to the min over its candidates' final costs, with
        // the same `idx` tiebreak the full sweep produces. In-round
        // visibility matches the full sweep exactly: classes are visited
        // in ascending order, so a parent above the changed child joins
        // the current round and a parent at or below it waits for the
        // next. On depth extractions of near-converged e-graphs this
        // turns O(rounds · classes) rescans into work proportional to
        // the cone that actually changed.
        let mut parents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for c in 0..n {
            if self.uf[c].class() != c as u32 {
                continue;
            }
            for &(node, _) in &self.nodes[c] {
                for kid in node {
                    let kc = self.find_nc(kid).class() as usize;
                    parents[kc].push(c as u32);
                }
            }
        }
        for list in &mut parents {
            list.sort_unstable();
            list.dedup();
        }
        let mut dirty_now = vec![true; n];
        let mut dirty_next = vec![false; n];
        for _ in 0..SWEEP_CAP {
            for c in 0..n {
                if !dirty_now[c] || self.uf[c].class() != c as u32 {
                    continue;
                }
                let mut improved = false;
                for (idx, &(node, _)) in self.nodes[c].iter().enumerate() {
                    let mut size: u64 = 1;
                    let mut depth: u64 = 0;
                    let mut viable = true;
                    for kid in node {
                        let kc = self.find_nc(kid).class() as usize;
                        match best[kc] {
                            Some((s, d, _)) => {
                                let (ks, kd) = match structural {
                                    Objective::SizeThenDepth => (s, d),
                                    _ => (d, s),
                                };
                                size = size.saturating_add(ks);
                                depth = depth.max(kd + 1);
                            }
                            None => {
                                viable = false;
                                break;
                            }
                        }
                    }
                    if !viable {
                        continue;
                    }
                    let cand = match structural {
                        Objective::SizeThenDepth => (size, depth, idx),
                        _ => (depth, size, idx),
                    };
                    if best[c].is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                        best[c] = Some(cand);
                        improved = true;
                    }
                }
                if improved {
                    for &p in &parents[c] {
                        if (p as usize) > c {
                            dirty_now[p as usize] = true;
                        } else {
                            dirty_next[p as usize] = true;
                        }
                    }
                }
            }
            if !dirty_next.iter().any(|&d| d) {
                break;
            }
            std::mem::swap(&mut dirty_now, &mut dirty_next);
            dirty_next.fill(false);
        }
        // The tree-cost fixpoint ignores sharing: a class used by many
        // chosen parents is paid for once in the DAG but Σ-counted once
        // per use, so extraction can prefer a "cheap tree" over a
        // smaller shared graph. Refine the size-objective choice with
        // marginal recosting: children already in the extracted set are
        // free, candidate switches are accepted only when the realized
        // class count (== emitted gate count before strashing) drops.
        // Acyclicity is kept by restricting every switch to nodes whose
        // children have strictly smaller converged tree cost than their
        // class — any mix of such choices terminates child-ward.
        let mut choice: Vec<Option<usize>> = best.iter().map(|b| b.map(|(_, _, i)| i)).collect();
        if structural == Objective::SizeThenDepth {
            let out_classes: Vec<usize> = outputs
                .iter()
                .map(|&o| self.find_nc(o).class() as usize)
                .collect();
            let mut used = self.used_classes(&choice, &out_classes)?;
            let mut gates = Self::count_gates(&used, &choice);
            for _ in 0..4 {
                let mut cand = choice.clone();
                let mut mcost: Vec<Option<u64>> = vec![None; n];
                for c in 0..n {
                    if cand[c] == Some(usize::MAX) {
                        mcost[c] = Some(0);
                    }
                }
                for _ in 0..SWEEP_CAP {
                    let mut changed = false;
                    for c in 0..n {
                        if self.uf[c].class() != c as u32 || self.leaf[c].is_some() {
                            continue;
                        }
                        let Some((tp, _, _)) = best[c] else { continue };
                        let mut class_best: Option<(u64, usize)> = None;
                        for (idx, &(node, _)) in self.nodes[c].iter().enumerate() {
                            let mut cost: u64 = 1;
                            let mut safe = true;
                            for kid in node {
                                let kc = self.find_nc(kid).class() as usize;
                                match best[kc] {
                                    Some((kp, _, _)) if kp < tp => {
                                        if !used[kc] {
                                            match mcost[kc] {
                                                Some(m) => cost = cost.saturating_add(m),
                                                None => {
                                                    safe = false;
                                                    break;
                                                }
                                            }
                                        }
                                    }
                                    _ => {
                                        safe = false;
                                        break;
                                    }
                                }
                            }
                            if safe && class_best.is_none_or(|(bc, _)| cost < bc) {
                                class_best = Some((cost, idx));
                            }
                        }
                        if let Some((cost, idx)) = class_best {
                            if mcost[c].is_none_or(|m| cost < m) {
                                mcost[c] = Some(cost);
                                cand[c] = Some(idx);
                                changed = true;
                            }
                        }
                    }
                    if !changed {
                        break;
                    }
                }
                let new_used = self.used_classes(&cand, &out_classes)?;
                let new_gates = Self::count_gates(&new_used, &cand);
                if new_gates < gates {
                    choice = cand;
                    used = new_used;
                    gates = new_gates;
                } else {
                    break;
                }
            }
        }
        // Emit the chosen representatives bottom-up with an explicit
        // stack (e-graph depth is unbounded by the input's depth).
        let mut built: Vec<Option<Signal>> = vec![None; n];
        let mut stack: Vec<u32> = Vec::new();
        for &out in outputs {
            stack.push(self.find(out).class());
            while let Some(&c) = stack.last() {
                let c = c as usize;
                if built[c].is_some() {
                    stack.pop();
                    continue;
                }
                let idx = choice[c]?;
                if idx == usize::MAX {
                    let (leaf, p) = self.leaf[c].expect("leaf-marked class");
                    let sig = match leaf {
                        Leaf::Const => Signal::FALSE,
                        Leaf::Input(i) => arena.input(i as usize),
                    };
                    // leaf ≡ ELit(c, p), so ELit(c, 0) = leaf ⊕ p.
                    built[c] = Some(sig.complement_if(p));
                    stack.pop();
                    continue;
                }
                let (node, oc) = self.nodes[c][idx];
                let mut kids = [Signal::FALSE; 3];
                let mut ready = true;
                for (k, kid) in node.iter().enumerate() {
                    let klit = self.find(*kid);
                    match built[klit.class() as usize] {
                        Some(sig) => kids[k] = sig.complement_if(klit.is_complemented()),
                        None => {
                            stack.push(klit.class());
                            ready = false;
                        }
                    }
                }
                if !ready {
                    continue;
                }
                let m = arena.maj(kids[0], kids[1], kids[2]);
                built[c] = Some(m.complement_if(oc));
                stack.pop();
            }
        }
        outputs
            .iter()
            .map(|&out| {
                let lit = self.find(out);
                built[lit.class() as usize].map(|s| s.complement_if(lit.is_complemented()))
            })
            .collect()
    }
}

/// The paper's axiom set as executable, simulation-testable rules. The
/// saturation engine implements the structural rules (`Ω.C`, `Ω.M`,
/// `Ω.I`) in its normal form and the rest in its matcher; this enum is
/// the single list the axiom-soundness harness iterates so every rule is
/// covered bidirectionally by batched simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EsatRule {
    /// `Ω.C` commutativity: `M(x,y,z) = M(y,x,z)` (structural: children
    /// are kept sorted).
    OmegaC,
    /// `Ω.M` majority: `M(x,x,z) = x` and `M(x,x',z) = z` (folded on
    /// insertion).
    OmegaM,
    /// `Ω.A` associativity: `M(x,u,M(y,u,z)) = M(z,u,M(y,u,x))`.
    OmegaA,
    /// `Ω.D` distributivity: `M(x,y,M(u,v,z)) = M(M(x,y,u),M(x,y,v),z)`.
    OmegaD,
    /// `Ω.I` inverter propagation: `M'(x,y,z) = M(x',y',z')`
    /// (structural: complement normalization).
    OmegaI,
    /// `Ψ.R` relevance, one-level instance:
    /// `M(x,y,M(z,x,w)) = M(x,y,M(z,y',w))`.
    PsiR,
    /// `Ψ.C` complementary associativity:
    /// `M(x,u,M(y,u',z)) = M(x,u,M(y,x,z))`.
    PsiC,
    /// M-associativity: `M(x,u,M(y,u,z)) = M(M(x,u,y),u,z)`.
    MAssoc,
}

impl EsatRule {
    /// Every rule, in paper order.
    pub const ALL: [EsatRule; 8] = [
        EsatRule::OmegaC,
        EsatRule::OmegaM,
        EsatRule::OmegaA,
        EsatRule::OmegaD,
        EsatRule::OmegaI,
        EsatRule::PsiR,
        EsatRule::PsiC,
        EsatRule::MAssoc,
    ];

    /// Short display name with the paper reference.
    pub fn name(self) -> &'static str {
        match self {
            EsatRule::OmegaC => "Ω.C commutativity",
            EsatRule::OmegaM => "Ω.M majority",
            EsatRule::OmegaA => "Ω.A associativity",
            EsatRule::OmegaD => "Ω.D distributivity",
            EsatRule::OmegaI => "Ω.I inverter propagation",
            EsatRule::PsiR => "Ψ.R relevance",
            EsatRule::PsiC => "Ψ.C complementary associativity",
            EsatRule::MAssoc => "M-associativity",
        }
    }

    /// Builds this rule's left/right-hand sides over the environment
    /// `[x, u, y, z, w]` inside `mig`, returning one `(lhs, rhs)` signal
    /// pair per instance (some rules have two). Each pair is functionally
    /// equal for *any* choice of environment signals — that is exactly
    /// what the soundness harness verifies by simulation.
    pub fn instances(self, mig: &mut Mig, env: [Signal; 5]) -> Vec<(Signal, Signal)> {
        let [x, u, y, z, w] = env;
        match self {
            EsatRule::OmegaC => {
                let lhs = mig.maj(x, u, y);
                let rhs = mig.maj(u, y, x);
                vec![(lhs, rhs)]
            }
            EsatRule::OmegaM => {
                let a = mig.maj(x, x, z);
                let b = mig.maj(x, !x, z);
                vec![(a, x), (b, z)]
            }
            EsatRule::OmegaA => {
                let li = mig.maj(y, u, z);
                let lhs = mig.maj(x, u, li);
                let ri = mig.maj(y, u, x);
                let rhs = mig.maj(z, u, ri);
                vec![(lhs, rhs)]
            }
            EsatRule::OmegaD => {
                let li = mig.maj(y, z, w);
                let lhs = mig.maj(x, u, li);
                let ra = mig.maj(x, u, y);
                let rb = mig.maj(x, u, z);
                let rhs = mig.maj(ra, rb, w);
                vec![(lhs, rhs)]
            }
            EsatRule::OmegaI => {
                let lhs = !mig.maj(x, u, y);
                let rhs = mig.maj(!x, !u, !y);
                vec![(lhs, rhs)]
            }
            EsatRule::PsiR => {
                let li = mig.maj(z, x, w);
                let lhs = mig.maj(x, u, li);
                let ri = mig.maj(z, !u, w);
                let rhs = mig.maj(x, u, ri);
                vec![(lhs, rhs)]
            }
            EsatRule::PsiC => {
                let li = mig.maj(y, !u, z);
                let lhs = mig.maj(x, u, li);
                let ri = mig.maj(y, x, z);
                let rhs = mig.maj(x, u, ri);
                vec![(lhs, rhs)]
            }
            EsatRule::MAssoc => {
                let li = mig.maj(y, u, z);
                let lhs = mig.maj(x, u, li);
                let ri = mig.maj(x, u, y);
                let rhs = mig.maj(ri, u, z);
                vec![(lhs, rhs)]
            }
        }
    }

    /// Builds the two sides as e-graph expressions over literal
    /// environment `[x, u, y, z, w]` — the engine-level twin of
    /// [`instances`](EsatRule::instances), used by the bidirectional
    /// saturation tests.
    pub fn elit_instances(self, g: &mut EGraph, env: [ELit; 5]) -> Vec<(ELit, ELit)> {
        let [x, u, y, z, w] = env;
        match self {
            EsatRule::OmegaC => {
                let lhs = g.maj(x, u, y);
                let rhs = g.maj(u, y, x);
                vec![(lhs, rhs)]
            }
            EsatRule::OmegaM => {
                let a = g.maj(x, x, z);
                let b = g.maj(x, x.not(), z);
                vec![(a, x), (b, z)]
            }
            EsatRule::OmegaA => {
                let li = g.maj(y, u, z);
                let lhs = g.maj(x, u, li);
                let ri = g.maj(y, u, x);
                let rhs = g.maj(z, u, ri);
                vec![(lhs, rhs)]
            }
            EsatRule::OmegaD => {
                let li = g.maj(y, z, w);
                let lhs = g.maj(x, u, li);
                let ra = g.maj(x, u, y);
                let rb = g.maj(x, u, z);
                let rhs = g.maj(ra, rb, w);
                vec![(lhs, rhs)]
            }
            EsatRule::OmegaI => {
                let lhs = g.maj(x, u, y).not();
                let rhs = g.maj(x.not(), u.not(), y.not());
                vec![(lhs, rhs)]
            }
            EsatRule::PsiR => {
                let li = g.maj(z, x, w);
                let lhs = g.maj(x, u, li);
                let ri = g.maj(z, u.not(), w);
                let rhs = g.maj(x, u, ri);
                vec![(lhs, rhs)]
            }
            EsatRule::PsiC => {
                let li = g.maj(y, u.not(), z);
                let lhs = g.maj(x, u, li);
                let ri = g.maj(y, x, z);
                let rhs = g.maj(x, u, ri);
                vec![(lhs, rhs)]
            }
            EsatRule::MAssoc => {
                let li = g.maj(y, u, z);
                let lhs = g.maj(x, u, li);
                let ri = g.maj(x, u, y);
                let rhs = g.maj(ri, u, z);
                vec![(lhs, rhs)]
            }
        }
    }
}

/// Inserts every reachable gate of `mig` into `g` (which must have been
/// primed with the same input count) and returns the output literals in
/// output order.
fn seed_one(g: &mut EGraph, mig: &Mig) -> Vec<ELit> {
    let mut map: Vec<ELit> = vec![ELit::FALSE; mig.num_nodes()];
    for i in 0..mig.num_inputs() {
        map[i + 1] = g.input(i);
    }
    {
        let mark = mig.reach_ref();
        for node in mig.gate_ids() {
            if !mark[node.index()] {
                continue;
            }
            let [a, b, c] = mig
                .children(node)
                .map(|s| map[s.node().index()].complement_if(s.is_complemented()));
            map[node.index()] = g.maj(a, b, c);
        }
    }
    mig.outputs()
        .iter()
        .map(|(_, s)| map[s.node().index()].complement_if(s.is_complemented()))
        .collect()
}

/// Seeds an e-graph from `mig` plus any number of functionally
/// equivalent structural `variants` (same inputs, same output order):
/// each variant's outputs are merged with `mig`'s, so congruence
/// closure relates the alternative structures and extraction can pick
/// the cheapest mix of all of them. Returns the graph plus `mig`'s
/// output literals.
fn seed(mig: &Mig, variants: &[Mig]) -> (EGraph, Vec<ELit>) {
    let mut g = EGraph::with_inputs(mig.num_inputs());
    let outs = seed_one(&mut g, mig);
    for v in variants {
        debug_assert_eq!(v.num_inputs(), mig.num_inputs());
        let vouts = seed_one(&mut g, v);
        for (&a, &b) in outs.iter().zip(&vouts) {
            g.merge(a, b);
        }
        g.rebuild();
    }
    (g, outs)
}

/// Saturates `mig`'s e-graph under `config` and extracts one candidate
/// per requested structural objective (deduplicated request order is the
/// caller's concern). Shared saturation, per-objective extraction.
fn saturate_and_extract(
    mig: &Mig,
    variants: &[Mig],
    config: &EsatConfig,
    objectives: &[Objective],
    bufs: &mut OptBuffers,
) -> Vec<Mig> {
    let (mut g, outs) = seed(mig, variants);
    g.saturate(config);
    objectives
        .iter()
        .map(|&obj| {
            let mut arena = bufs.fresh_arena(mig);
            match g.extract_into(obj, &outs, &mut arena) {
                Some(sigs) => {
                    for ((name, _), sig) in mig.outputs().iter().zip(sigs) {
                        arena.add_output(name.clone(), sig);
                    }
                    arena
                }
                None => {
                    // Unreachable for seeded graphs; fall back to a
                    // verbatim copy so the pass stays total.
                    bufs.recycle(arena);
                    bufs.cleanup(mig)
                }
            }
        })
        .collect()
}

/// Equality-saturation rewriting as a [`Pass`] — the `esat` flow step.
///
/// Seeds an e-graph from the input, saturates the Ω/Ψ rule set under the
/// pipeline budget (`effort` drives the iteration count,
/// [`Budget::max_nodes`] caps the e-graph, [`Budget::pass_ms`] installs
/// a saturation deadline), then extracts the cheapest representative
/// under the pass objective. The extraction is kept only when it
/// strictly beats the input under that objective — the pass is monotone
/// by construction and can never regress a flow.
///
/// With a mapped objective ([`Objective::MappedArea`] /
/// [`Objective::MappedDelay`]) and a [`TechModel`] installed on the
/// context, both structural extractions are measured through the model
/// and the best *mapped* cost wins (the input included); without a
/// model, mapped goals degrade to their structural proxy.
#[derive(Debug, Clone)]
pub struct EsatPass {
    /// The objective extraction minimizes.
    pub goal: Objective,
    /// Iteration budget (the flow's uniform effort): saturation runs at
    /// most `effort` rule sweeps (clamped to `1..=8`).
    pub effort: usize,
    /// Saturation tuning; `None` uses [`EsatConfig::default`] with the
    /// iteration count derived from `effort` and the caps derived from
    /// the pipeline [`Budget`].
    pub config: Option<EsatConfig>,
}

impl Default for EsatPass {
    fn default() -> Self {
        EsatPass {
            goal: Objective::SizeThenDepth,
            effort: 2,
            config: None,
        }
    }
}

impl EsatPass {
    /// The effective saturation config under the pipeline `budget`.
    fn resolve(&self, budget: &Budget) -> EsatConfig {
        match &self.config {
            Some(c) => c.clone(),
            None => EsatConfig {
                iters: (self.effort * 4).clamp(1, 32),
                enode_cap: budget.max_nodes.unwrap_or(0),
                time_ms: budget.pass_ms,
                ..EsatConfig::default()
            },
        }
    }

    /// Structurally different but equivalent restructurings of `mig`
    /// used as extra e-graph seeds: the algebraic depth optimizer
    /// reshapes aggressively (Ω.D L→R pushes), a size recovery of that
    /// reshape lands in yet another basin, and the NPN-database
    /// depth-rewriter contributes structures the algebraic rules never
    /// produce. Their outputs merge with the input's, so extraction
    /// chooses the cheapest mix of all the structures plus everything
    /// saturation derives between them.
    fn variants(&self, bufs: &mut OptBuffers, rc: &mut RewriteCache, mig: &Mig) -> Vec<Mig> {
        let deep = super::depth::optimize_depth_with(
            mig,
            &DepthOptConfig::default(),
            bufs,
            &mut crate::level::LevelMap::new(),
        );
        let recovered = super::size::optimize_size_with(&deep, &SizeOptConfig::default(), bufs);
        let rw_deep = optimize_rewrite_with(
            mig,
            &RewriteConfig {
                goal: Objective::DepthThenSize,
                ..RewriteConfig::default()
            },
            bufs,
            rc,
            &mut crate::level::LevelMap::new(),
        );
        vec![deep, recovered, rw_deep]
    }

    /// Structural search: saturate over the input plus its variant
    /// seeds, extract under the structural goal, keep the winner.
    fn run_structural(
        &self,
        config: &EsatConfig,
        bufs: &mut OptBuffers,
        rc: &mut RewriteCache,
        mig: Mig,
    ) -> Mig {
        let obj = self.goal.structural();
        let variants = self.variants(bufs, rc, &mig);
        let mut cands = saturate_and_extract(&mig, &variants, config, &[obj], bufs);
        for v in variants {
            bufs.recycle(v);
        }
        let cand = cands.pop().expect("one objective in, one candidate out");
        // `<=` rather than `<`: an equal-cost extraction is still a
        // *restructuring* (the extractor picks per-class representatives
        // afresh), and downstream greedy passes regularly escape their
        // local minimum on the reshaped graph. Strictly worse
        // extractions are discarded, so the pass stays monotone.
        if obj.of(&cand) <= obj.of(&mig) {
            bufs.recycle(mig);
            cand
        } else {
            bufs.recycle(cand);
            mig
        }
    }

    /// Mapped search: extract under both structural proxies, measure
    /// everything (input included) through the tech model, keep the best
    /// mapped cost.
    fn run_mapped(
        &self,
        config: &EsatConfig,
        bufs: &mut OptBuffers,
        rc: &mut RewriteCache,
        tech: &dyn TechModel,
        mig: Mig,
    ) -> Mig {
        let variants = self.variants(bufs, rc, &mig);
        let cands = saturate_and_extract(
            &mig,
            &variants,
            config,
            &[Objective::SizeThenDepth, Objective::DepthThenSize],
            bufs,
        );
        for v in variants {
            bufs.recycle(v);
        }
        let mut best = mig;
        let mut best_cost = self.goal.mapped_cost(&tech.measure(&best));
        for cand in cands {
            let cost = self.goal.mapped_cost(&tech.measure(&cand));
            if cost < best_cost {
                bufs.recycle(std::mem::replace(&mut best, cand));
                best_cost = cost;
            } else {
                bufs.recycle(cand);
            }
        }
        best
    }
}

impl Pass for EsatPass {
    fn name(&self) -> &'static str {
        "esat"
    }

    fn objective(&self) -> Objective {
        self.goal
    }

    fn run(&self, ctx: &mut OptContext, mig: Mig) -> Mig {
        let config = self.resolve(&ctx.budget());
        let mapped_goal = matches!(self.goal, Objective::MappedArea | Objective::MappedDelay);
        if mapped_goal {
            if let Some(tech) = ctx.tech.take() {
                let out =
                    self.run_mapped(&config, &mut ctx.bufs, &mut ctx.rewrite, tech.as_ref(), mig);
                ctx.set_tech(tech);
                return out;
            }
        }
        self.run_structural(&config, &mut ctx.bufs, &mut ctx.rewrite, mig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::pipeline::Flow;
    use crate::OptContext;

    fn fresh_env(g: &mut EGraph) -> [ELit; 5] {
        [g.input(0), g.input(1), g.input(2), g.input(3), g.input(4)]
    }

    #[test]
    fn elit_packs_like_signal() {
        let l = ELit::new(7, true);
        assert_eq!(l.class(), 7);
        assert!(l.is_complemented());
        assert_eq!(l.not().not(), l);
        assert_eq!(ELit::FALSE.not(), ELit::TRUE);
        assert_eq!(l.complement_if(true), l.not());
        assert_eq!(l.complement_if(false), l);
    }

    #[test]
    fn maj_folds_and_normalizes() {
        let mut g = EGraph::with_inputs(3);
        let [a, b, c] = [g.input(0), g.input(1), g.input(2)];
        // Ω.M folds never create nodes.
        assert_eq!(g.maj(a, a, c), a);
        assert_eq!(g.maj(a, a.not(), c), c);
        assert_eq!(g.maj(ELit::FALSE, ELit::TRUE, b), b);
        assert_eq!(g.num_enodes(), 0);
        // Ω.C: operand order is irrelevant.
        let m1 = g.maj(a, b, c);
        let m2 = g.maj(c, a, b);
        assert_eq!(m1, m2);
        assert_eq!(g.num_enodes(), 1);
        // Ω.I: the all-complemented node is the complement literal.
        let m3 = g.maj(a.not(), b.not(), c.not());
        assert_eq!(m3, m1.not());
        assert_eq!(g.num_enodes(), 1);
    }

    #[test]
    fn merge_with_parity_propagates() {
        let mut g = EGraph::with_inputs(4);
        let [a, b, c, d] = [g.input(0), g.input(1), g.input(2), g.input(3)];
        let m1 = g.maj(a, b, c);
        let m2 = g.maj(a, b, d);
        assert!(g.merge(m1, m2.not()));
        assert!(g.same(m1, m2.not()));
        assert!(g.same(m1.not(), m2));
        assert!(!g.same(m1, m2));
        // Congruence: parents of merged classes collapse after rebuild.
        let p1 = g.maj(m1, c, d);
        let p2 = g.maj(m2.not(), c, d);
        g.rebuild();
        assert!(g.same(p1, p2));
    }

    #[test]
    fn every_rule_saturates_bidirectionally() {
        for rule in EsatRule::ALL {
            // Left-to-right: seed the LHS, saturate, the RHS must land
            // in the same class…
            let mut g = EGraph::with_inputs(5);
            let env = fresh_env(&mut g);
            for (i, (lhs, rhs)) in rule.elit_instances(&mut g, env).into_iter().enumerate() {
                g.saturate(&EsatConfig::default());
                assert!(g.same(lhs, rhs), "{} instance {i} (L→R)", rule.name());
            }
            // …and right-to-left with the sides created in the opposite
            // order (the generative direction flipped).
            let mut g = EGraph::with_inputs(5);
            let env = fresh_env(&mut g);
            let pairs: Vec<(ELit, ELit)> = rule
                .elit_instances(&mut g, env)
                .into_iter()
                .map(|(l, r)| (r, l))
                .collect();
            for (i, (lhs, rhs)) in pairs.into_iter().enumerate() {
                g.saturate(&EsatConfig::default());
                assert!(g.same(lhs, rhs), "{} instance {i} (R→L)", rule.name());
            }
        }
    }

    #[test]
    fn rules_hold_under_complemented_environments() {
        // Complement-edge cases: every rule must also saturate when the
        // environment literals arrive complemented or repeated.
        let mut g = EGraph::with_inputs(5);
        let base = fresh_env(&mut g);
        let envs = [
            [base[0].not(), base[1], base[2], base[3].not(), base[4]],
            [base[0], base[1].not(), base[2].not(), base[3], base[4]],
            [base[0].not(), base[0], base[2], base[3], base[4].not()],
        ];
        for rule in EsatRule::ALL {
            for env in envs {
                let mut g = EGraph::with_inputs(5);
                let env = {
                    let f = fresh_env(&mut g);
                    [
                        f[env[0].class() as usize - 1].complement_if(env[0].is_complemented()),
                        f[env[1].class() as usize - 1].complement_if(env[1].is_complemented()),
                        f[env[2].class() as usize - 1].complement_if(env[2].is_complemented()),
                        f[env[3].class() as usize - 1].complement_if(env[3].is_complemented()),
                        f[env[4].class() as usize - 1].complement_if(env[4].is_complemented()),
                    ]
                };
                for (i, (lhs, rhs)) in rule.elit_instances(&mut g, env).into_iter().enumerate() {
                    g.saturate(&EsatConfig::default());
                    assert!(g.same(lhs, rhs), "{} env case instance {i}", rule.name());
                }
            }
        }
    }

    #[test]
    fn saturation_respects_the_node_cap() {
        let mut g = EGraph::with_inputs(6);
        let ins: Vec<ELit> = (0..6).map(|i| g.input(i)).collect();
        let mut acc = ins[0];
        for &x in &ins[1..] {
            let m = g.maj(acc, x, ELit::FALSE);
            acc = g.maj(m, acc.not(), x);
        }
        let seeded = g.num_enodes();
        let stats = g.saturate(&EsatConfig {
            iters: 8,
            enode_cap: seeded + 5,
            ..EsatConfig::default()
        });
        assert_eq!(stats.stopped, StopReason::NodeLimit);
        // The cap is a growth stop, not a hard invariant mid-action, but
        // it can only be overshot by the final action's few nodes.
        assert!(g.num_enodes() <= seeded + 5 + 4, "{}", g.num_enodes());
    }

    #[test]
    fn esat_pass_is_monotone_and_equivalent() {
        let mut mig = Mig::new("redundant");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let d = mig.add_input("d");
        // Deliberately un-factored: M(a,b,c) and M(a,b,d) then a layer
        // that Ω.D can shrink.
        let m1 = mig.maj(a, b, c);
        let m2 = mig.maj(a, b, d);
        let top = mig.maj(m1, m2, c);
        let x = mig.xor(top, d);
        mig.add_output("y", x);
        let mut ctx = OptContext::with_jobs(1);
        let out = Flow::parse("esat").unwrap().run(mig.clone(), 2, &mut ctx);
        assert!(out.equiv(&mig, 4));
        assert!(out.size() <= mig.size(), "{} > {}", out.size(), mig.size());
        assert!(
            out.size() < mig.size(),
            "Ω.D factoring must shrink this graph ({} vs {})",
            out.size(),
            mig.size()
        );
    }

    #[test]
    fn esat_finds_the_distributivity_factoring() {
        // M(M(x,y,u), M(x,y,v), z) = M(x,y,M(u,v,z)): 3 nodes → 2.
        let mut mig = Mig::new("dist");
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let u = mig.add_input("u");
        let v = mig.add_input("v");
        let z = mig.add_input("z");
        let a = mig.maj(x, y, u);
        let b = mig.maj(x, y, v);
        let t = mig.maj(a, b, z);
        mig.add_output("f", t);
        let pass = EsatPass::default();
        let mut ctx = OptContext::with_jobs(1);
        let out = ctx.run_pass(&pass, mig.clone());
        assert!(out.equiv(&mig, 4));
        assert_eq!(out.size(), 2, "factored form is two nodes");
    }

    #[test]
    fn depth_goal_extracts_shallower_structures() {
        // An XOR chain has a log-depth restructuring reachable through
        // associativity.
        let mut mig = Mig::new("chain");
        let ins: Vec<Signal> = (0..4).map(|i| mig.add_input(format!("x{i}"))).collect();
        let mut acc = ins[0];
        for &s in &ins[1..] {
            acc = mig.and(acc, s);
        }
        mig.add_output("y", acc);
        let pass = EsatPass {
            goal: Objective::DepthThenSize,
            effort: 4,
            config: None,
        };
        let mut ctx = OptContext::with_jobs(1);
        let out = ctx.run_pass(&pass, mig.clone());
        assert!(out.equiv(&mig, 4));
        assert!(
            out.depth() < mig.depth(),
            "{} !< {}",
            out.depth(),
            mig.depth()
        );
    }

    #[test]
    fn extraction_reuses_shared_classes() {
        // Two outputs sharing structure must share extracted nodes (the
        // per-class memo makes extraction DAG-aware).
        let mut mig = Mig::new("share");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, b, c);
        let o1 = mig.and(m, a);
        let o2 = mig.or(m, b);
        mig.add_output("p", o1);
        mig.add_output("q", o2);
        let (mut g, outs) = seed(&mig, &[]);
        let mut bufs = OptBuffers::new();
        let mut arena = bufs.fresh_arena(&mig);
        let sigs = g
            .extract_into(Objective::SizeThenDepth, &outs, &mut arena)
            .expect("seeded graph extracts");
        for ((name, _), sig) in mig.outputs().iter().zip(sigs) {
            arena.add_output(name.clone(), sig);
        }
        assert!(arena.equiv(&mig, 4));
        assert_eq!(arena.size(), mig.size(), "verbatim extraction round-trips");
    }
}
