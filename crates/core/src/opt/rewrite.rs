//! Cut-based Boolean rewriting against the NPN-canonical majority
//! database (`mig_tt::mig_db`), organized as **parallel-evaluate /
//! serial-commit** sweeps with **incremental cut invalidation**.
//!
//! The algebraic passes (Algorithms 1–2) only reshape what is
//! structurally visible; this pass works on local *functions* instead.
//! For every reachable gate it enumerates k-feasible priority cuts
//! (k ≤ 4, a bounded number per node), computes each cut's truth table,
//! NPN-canonizes it, and looks the class up in the precomputed
//! optimal-structure database. A match is replayed through the hashing
//! constructor on the cut leaves and accepted only when MFFC accounting
//! proves a strict size gain (or, optionally, an equal-size depth gain).
//!
//! Each sweep is split into two phases (`DESIGN.md` §9):
//!
//! 1. **Evaluate (parallel, read-only).** The expensive *preparation* —
//!    priority-cut enumeration, truth-table computation, NPN
//!    canonization and database matching — runs against an immutable
//!    snapshot of the source graph (`MigView`): level wavefronts of
//!    nodes are chunked across `std::thread::scope` workers, each
//!    owning its scratch state (a `ScratchPool` entry). The phase
//!    emits, per node, an ordered list of candidate cuts whose function
//!    has a database structure.
//! 2. **Commit (serial, deterministic).** A single topological rebuild
//!    through the one strash table scores each node's candidates
//!    against the *destination* graph — MFFC accounting for the nodes
//!    saved, a dry run through the evolving strash for the nodes added
//!    (so sharing created by earlier commits of the same sweep,
//!    including nested cascades, is priced in) — and replays the best
//!    profitable structure. Candidates arrive in ascending node order
//!    whatever the worker count and the commit is single-threaded, so
//!    results are **bit-identical for every `jobs` setting**.
//!
//! Sweeps are *incremental*: per-node cut sets and candidate slots live
//! in a `RewriteCache` keyed to the graph's mutation stamp and
//! survive the rewrite ⇄ eliminate ⇄ cleanup rebuilds — after every
//! rebuild the cache is *translated* through the old→new signal map,
//! and only nodes whose structure actually changed (or whose
//! translation would be degenerate) are marked dirty. On the next sweep
//! the dirty region grows only through *damped* propagation: a node is
//! re-enumerated when a fanin's cut set **actually changed**, so a
//! re-enumeration that reproduces the previous cuts stops the wave
//! instead of dirtying the whole transitive fanout. In steady state a
//! sweep re-enumerates a small fraction of the graph, which is where
//! the pass's round-to-round speedup comes from.
//!
//! The per-node gain is an estimate, not a proof: `saved` comes from the
//! *source* graph's fanout counts, while sharing materializes in the
//! destination graph. The pass-level guard in [`optimize_rewrite`] —
//! keep a sweep only if the cleaned result strictly improves
//! `(size, depth)` — is what makes the optimization monotone end to end.

use std::cmp::Reverse;
use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use super::size::eliminate_pass;
use super::{Cost, Objective, OptBuffers};
use crate::level::LevelMap;
use crate::mig::MigView;
use crate::scratch::ScratchPool;
use crate::{Mig, NodeId, Signal};
use mig_tt::{npn4_canonize, MigDatabase, MigProgram, Npn4Transform};

/// Hard cap on evaluate-phase worker threads.
const MAX_JOBS: usize = 16;

/// Minimum number of nodes in a wavefront before fanning work out to
/// threads pays for the spawn overhead.
const PAR_THRESHOLD: usize = 128;

/// Incremental sweeps budgeted per `effort` unit: cheap (mostly-cached)
/// sweeps replace the full sweeps of the old engine, so each unit buys
/// several of them. The pass still stops at the first non-improving
/// round.
const ROUNDS_PER_EFFORT: usize = 4;

/// Candidate-slot storage width per node. With the default `max_cuts`
/// of 8 this holds every non-unit cut, so the commit-side scoring sees
/// the full candidate space (quality is never traded for cache hits).
const MAX_NODE_CANDS: usize = 8;

/// Tuning knobs for [`optimize_rewrite`].
#[derive(Debug, Clone)]
pub struct RewriteConfig {
    /// Maximum cut width (clamped to 2..=4; truth tables are 16-bit).
    pub cut_size: usize,
    /// Priority-cut bound: how many cuts are kept per node (plus the
    /// unit cut). Clamped to 1..=8 — the candidate-slot width — so the
    /// commit phase always scores every stored cut.
    pub max_cuts: usize,
    /// Rewrite → eliminate round budget (each unit buys
    /// several incremental sweeps; the pass stops early at a fixpoint).
    pub effort: usize,
    /// Accept zero-gain replacements that strictly reduce the local
    /// logic level (size-then-depth acceptance).
    pub depth_tiebreak: bool,
    /// Evaluate-phase worker threads (`0` = available parallelism,
    /// capped at 16). The thread count never changes the result:
    /// evaluation is read-only and commits are serialized
    /// deterministically.
    pub jobs: usize,
    /// Acceptance objective. [`Objective::SizeThenDepth`] (the default)
    /// is classic size rewriting: a replacement must save nodes, with
    /// local depth as the tiebreak. [`Objective::DepthThenSize`] is the
    /// depth-aware mode (the `depth_rewrite` flow pass): a replacement
    /// must land its root at a strictly lower level — never adding nodes
    /// — with the node gain as the tiebreak, and the sweep-level guard
    /// keeps the best `(depth, size)` graph instead of `(size, depth)`.
    pub goal: Objective,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            cut_size: 4,
            max_cuts: 8,
            effort: 2,
            depth_tiebreak: true,
            jobs: 0,
            goal: Objective::SizeThenDepth,
        }
    }
}

impl RewriteConfig {
    /// The concrete worker count this configuration resolves to: `jobs`
    /// itself, or the machine's available parallelism when it is 0, in
    /// both cases capped at 16. Exposed so harnesses (`mighty bench`)
    /// can record the thread count a run actually used.
    pub fn resolved_jobs(&self) -> usize {
        let n = if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.jobs
        };
        n.clamp(1, MAX_JOBS)
    }
}

/// Resolves a `jobs` knob to a concrete worker count.
fn resolve_jobs(jobs: usize) -> usize {
    RewriteConfig {
        jobs,
        ..RewriteConfig::default()
    }
    .resolved_jobs()
}

/// Deterministic contiguous chunk `i` of `jobs` over `len` items.
fn chunk_range(len: usize, jobs: usize, i: usize) -> Range<usize> {
    let per = len / jobs;
    let rem = len % jobs;
    let start = i * per + i.min(rem);
    start..start + per + usize::from(i < rem)
}

/// A k-feasible cut: sorted leaf nodes plus the root's function over
/// them (leaf `i` is truth-table variable `i`; the low `2^len` bits of
/// `tt` are valid). `sign` is a 32-bit Bloom signature of the leaf set
/// (one bit per `leaf mod 32`), letting the hot duplicate/dominance
/// filters reject most pairs on a single word op. Fixed-size — cut sets
/// live in one flat buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cut {
    leaves: [u32; 4],
    len: u8,
    tt: u16,
    sign: u32,
}

/// The Bloom signature of one leaf.
fn leaf_sign(leaf: u32) -> u32 {
    1 << (leaf & 31)
}

impl Cut {
    fn unit(node: usize) -> Self {
        Cut {
            leaves: [node as u32, 0, 0, 0],
            len: 1,
            tt: 0b10,
            sign: leaf_sign(node as u32),
        }
    }

    fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// True if this cut's leaves are a subset of `other`'s (making
    /// `other` redundant).
    fn dominates(&self, other: &Cut) -> bool {
        self.len <= other.len
            && self.sign & !other.sign == 0
            && self.leaves().iter().all(|l| other.leaves().contains(l))
    }

    /// True if both cuts have exactly the same leaf set.
    fn same_leaves(&self, other: &Cut) -> bool {
        self.len == other.len && self.sign == other.sign && self.leaves == other.leaves
    }
}

fn tt_mask(len: usize) -> u16 {
    if len >= 4 {
        0xFFFF
    } else {
        ((1u32 << (1 << len)) - 1) as u16
    }
}

/// Expands `tt` over the `from` leaves onto the superset `to` leaves.
fn expand_tt(tt: u16, from: &[u32], to: &[u32]) -> u16 {
    let mut pos = [0usize; 4];
    for (i, l) in from.iter().enumerate() {
        pos[i] = to.iter().position(|t| t == l).expect("from ⊆ to");
    }
    let mut out = 0u16;
    for i in 0..(1u32 << to.len()) {
        let mut j = 0usize;
        for (bit, &p) in pos[..from.len()].iter().enumerate() {
            if (i >> p) & 1 == 1 {
                j |= 1 << bit;
            }
        }
        if (tt >> j) & 1 == 1 {
            out |= 1 << i;
        }
    }
    out
}

/// Repeats a `len`-variable table up to the full 4-variable width (the
/// added variables are don't-cares).
fn extend4(tt: u16, len: usize) -> u16 {
    let mut t = tt & tt_mask(len);
    for k in len..4 {
        t |= t << (1u32 << k);
    }
    t
}

/// Outcome of simulating one database instruction against the snapshot
/// without building anything.
#[derive(Debug, Clone, Copy)]
enum DryVal {
    /// The node already exists (strash hit or trivial fold): free.
    Known(Signal),
    /// A node would have to be allocated; carries its level estimate.
    New(u32),
}

impl DryVal {
    fn complement_if(self, c: bool) -> Self {
        match self {
            DryVal::Known(s) => DryVal::Known(s.complement_if(c)),
            DryVal::New(l) => DryVal::New(l),
        }
    }

    fn level(self, view: &MigView) -> u32 {
        match self {
            DryVal::Known(s) => view.level_of_signal(s),
            DryVal::New(l) => l,
        }
    }
}

/// Per-worker scratch: everything an evaluate-phase thread mutates.
/// Pooled in [`RewriteCache`] so steady-state sweeps do not allocate.
#[derive(Debug, Default)]
struct WorkerScratch {
    /// Truth table → canonization memo (graph-independent, lives
    /// forever).
    canon_cache: HashMap<u16, (u16, Npn4Transform)>,
    /// Cut-candidate buffer for enumeration.
    cand: Vec<Cut>,
    /// Enumeration results: flat cuts plus `(node, count, changed)`
    /// records (`changed` drives the dirty damping).
    out_cuts: Vec<Cut>,
    out_meta: Vec<(u32, u8, bool)>,
    /// Evaluation results: `(node, count, slot list)` in ascending node
    /// order.
    out_slots: Vec<(u32, u8, [u8; MAX_NODE_CANDS])>,
    /// Set when this worker's last parallel stint panicked (the unwind
    /// is caught at the thread boundary): its partial results are still
    /// well-formed — both phases push whole per-node records — so the
    /// drain keeps the survivors and only the in-flight node and the
    /// unvisited tail are forfeited for this sweep.
    panicked: bool,
}

impl WorkerScratch {
    fn canonize(&mut self, tt: u16) -> (u16, Npn4Transform) {
        memo_canonize(&mut self.canon_cache, tt)
    }
}

/// Memoized NPN canonization (pure, so caching per caller is sound).
fn memo_canonize(memo: &mut HashMap<u16, (u16, Npn4Transform)>, tt: u16) -> (u16, Npn4Transform) {
    *memo.entry(tt).or_insert_with(|| npn4_canonize(tt))
}

/// Persistent state of the rewriting engine: per-node priority-cut sets
/// with dirty bits, the worker scratch pool, and the per-sweep side
/// buffers. One instance serves any number of passes; between the
/// rewrite ⇄ eliminate ⇄ cleanup rebuilds of one pass the cut sets are
/// carried across via [`RewriteCache::translate`] instead of being
/// recomputed, keyed to the graph's mutation stamp so a stale cache can
/// never be misread.
#[derive(Debug, Default)]
pub(crate) struct RewriteCache {
    stride: usize,
    cuts: Vec<Cut>,
    ncuts: Vec<u8>,
    dirty: Vec<bool>,
    /// Prefiltered candidate slots per node: cut indices in rank order
    /// (`MAX_NODE_CANDS` slots per node), re-scored only when the node's
    /// cut set or local fanout context changes — the commit phase
    /// re-validates every slot against the live destination anyway.
    ncands: Vec<u8>,
    slots: Vec<u8>,
    /// Fanout counts the slots were last scored under (`u32::MAX` =
    /// never scored), used to spot nodes whose gain context moved.
    prev_fanout: Vec<u32>,
    /// `(mutation stamp, node count)` of the graph the cut arrays
    /// describe; `None` when the cache holds nothing.
    key: Option<(u64, usize)>,
    /// Translation double buffers.
    t_cuts: Vec<Cut>,
    t_ncuts: Vec<u8>,
    t_dirty: Vec<bool>,
    t_ncands: Vec<u8>,
    t_slots: Vec<u8>,
    t_prev_fanout: Vec<u32>,
    /// Per-thread evaluator scratch, recycled across sweeps and passes.
    workers: ScratchPool<WorkerScratch>,
    /// Per-sweep shared read-only buffers.
    fanout: Vec<u32>,
    reach: Vec<bool>,
    /// Reachable gates sorted into level wavefronts.
    worklist: Vec<u32>,
    /// Per-sweep result of the damping: whose cut set actually changed.
    changed: Vec<bool>,
    /// Scratch list of the nodes one wavefront must re-enumerate.
    batch: Vec<u32>,
    /// Nodes whose candidate slots must be re-scored this sweep.
    eval_list: Vec<u32>,
    /// Commit-side canonization memo (the workers each have their own).
    canon_memo: HashMap<u16, (u16, Npn4Transform)>,
    /// Commit state: a fanout-count copy for the MFFC walks, a dry-run
    /// stack, the old→new signal map and the replay stack.
    refs: Vec<u32>,
    dry: Vec<DryVal>,
    map: Vec<Signal>,
    replay: Vec<Signal>,
    /// Counting-sort scratch for the level-wavefront worklist (per-level
    /// bucket offsets and the sorted output double buffer).
    lvl_counts: Vec<u32>,
    lvl_sorted: Vec<u32>,
}

impl RewriteCache {
    /// Points the cache at `mig`: a no-op when the cache already
    /// describes exactly this graph state (the incremental path),
    /// otherwise a full reset with every gate marked dirty.
    fn bind(&mut self, mig: &Mig, stride: usize) {
        if self.stride == stride && self.key == Some((mig.rewrite_stamp(), mig.num_nodes())) {
            return;
        }
        self.stride = stride;
        let n = mig.num_nodes();
        // Like `translate`: `cuts`/`slots` entries beyond `ncuts[i]` /
        // `ncands[i]` are unreachable, so only lengths are adjusted —
        // every node starts at `ncuts = 0`, making all bulk storage
        // logically empty without the O(n · stride) memset.
        self.cuts.resize(n * stride, Cut::default());
        self.slots.resize(n * MAX_NODE_CANDS, 0);
        self.ncuts.clear();
        self.ncuts.resize(n, 0);
        self.dirty.clear();
        self.dirty.resize(n, true);
        self.ncands.clear();
        self.ncands.resize(n, 0);
        self.prev_fanout.clear();
        self.prev_fanout.resize(n, u32::MAX);
        base_cuts(
            &mut self.cuts,
            &mut self.ncuts,
            &mut self.dirty,
            stride,
            mig.num_inputs(),
        );
        self.key = Some((mig.rewrite_stamp(), n));
    }

    /// Forgets which graph the cut arrays describe, forcing the next
    /// [`bind`](RewriteCache::bind) to fully reset. The pipeline calls
    /// this when it rolls a pass back: an abandoned pass may have left
    /// the incremental state half-updated, and the restored checkpoint
    /// shares the old graph's mutation stamp, so the stamp key alone
    /// cannot tell the difference.
    pub(crate) fn invalidate(&mut self) {
        self.key = None;
    }

    /// Number of stored cut entries (for memory-footprint reporting).
    pub(crate) fn cut_entries(&self) -> usize {
        self.cuts.len()
    }

    /// Carries the cut sets across a rebuild `old → new` described by
    /// `map` (each old node's signal in the new graph). A node keeps its
    /// cuts — leaves renamed, truth tables rewired for leaf/root
    /// complements — only when it was preserved verbatim (its mapped
    /// fanins resolve to exactly the node the map points at) and every
    /// translated cut stays well-formed; everything else stays dirty, so
    /// the next sweep re-enumerates precisely the TFO of the changes.
    fn translate(&mut self, old: &Mig, new: &Mig, map: &[Signal]) {
        if self.key != Some((old.rewrite_stamp(), old.num_nodes())) {
            // The cache does not describe `old`: nothing to carry over.
            self.key = None;
            return;
        }
        let stride = self.stride;
        let n_new = new.num_nodes();
        // `t_cuts` and `t_slots` are never read beyond `t_ncuts[i]` /
        // `t_ncands[i]` entries, so stale contents are unreachable and
        // only the *length* needs adjusting — clearing them would memset
        // hundreds of megabytes per sweep on million-node graphs.
        self.t_cuts.resize(n_new * stride, Cut::default());
        self.t_slots.resize(n_new * MAX_NODE_CANDS, 0);
        self.t_ncuts.clear();
        self.t_ncuts.resize(n_new, 0);
        self.t_dirty.clear();
        self.t_dirty.resize(n_new, true);
        self.t_ncands.clear();
        self.t_ncands.resize(n_new, 0);
        self.t_prev_fanout.clear();
        self.t_prev_fanout.resize(n_new, u32::MAX);
        base_cuts(
            &mut self.t_cuts,
            &mut self.t_ncuts,
            &mut self.t_dirty,
            stride,
            new.num_inputs(),
        );
        for node in old.gate_ids() {
            let idx = node.index();
            if self.dirty[idx] || self.ncuts[idx] == 0 {
                continue;
            }
            let s = map[idx];
            let t = s.node().index();
            if !new.is_gate(s.node()) || self.t_ncuts[t] != 0 {
                continue;
            }
            // Only a verbatim-preserved node keeps its cuts: the mapped
            // fanins must resolve to exactly the signal the map records.
            let kids = old
                .children(node)
                .map(|c| map[c.node().index()].complement_if(c.is_complemented()));
            if new.lookup_maj(kids[0], kids[1], kids[2]) != Some(s) {
                continue;
            }
            let nc = self.ncuts[idx] as usize;
            let src = idx * stride;
            let dst = t * stride;
            let mut ok = true;
            for ci in 0..nc - 1 {
                match translate_cut(&self.cuts[src + ci], map, s.is_complemented(), t) {
                    Some(tc) => self.t_cuts[dst + ci] = tc,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            self.t_cuts[dst + nc - 1] = Cut::unit(t);
            self.t_ncuts[t] = nc as u8;
            self.t_dirty[t] = false;
            // The candidate slots reference cut indices, which the loop
            // above preserved — carry them (and the fanout context they
            // were scored under) across unchanged.
            self.t_ncands[t] = self.ncands[idx];
            self.t_slots[t * MAX_NODE_CANDS..(t + 1) * MAX_NODE_CANDS]
                .copy_from_slice(&self.slots[idx * MAX_NODE_CANDS..(idx + 1) * MAX_NODE_CANDS]);
            self.t_prev_fanout[t] = self.prev_fanout[idx];
        }
        std::mem::swap(&mut self.cuts, &mut self.t_cuts);
        std::mem::swap(&mut self.ncuts, &mut self.t_ncuts);
        std::mem::swap(&mut self.dirty, &mut self.t_dirty);
        std::mem::swap(&mut self.ncands, &mut self.t_ncands);
        std::mem::swap(&mut self.slots, &mut self.t_slots);
        std::mem::swap(&mut self.prev_fanout, &mut self.t_prev_fanout);
        self.key = Some((new.rewrite_stamp(), n_new));
    }
}

/// Installs the constant node's empty cut and one unit cut per input.
fn base_cuts(cuts: &mut [Cut], ncuts: &mut [u8], dirty: &mut [bool], stride: usize, inputs: usize) {
    cuts[0] = Cut {
        leaves: [0; 4],
        len: 0,
        tt: 0,
        sign: 0,
    };
    ncuts[0] = 1;
    dirty[0] = false;
    for i in 1..=inputs {
        cuts[i * stride] = Cut::unit(i);
        ncuts[i] = 1;
        dirty[i] = false;
    }
}

/// Carries one cut across a rebuild: renames the leaves through `map`,
/// re-sorts them, and rewires the truth table for the renaming, the leaf
/// complements and the root complement. Returns `None` when the
/// translated cut would be degenerate — a leaf folded to a constant or
/// onto another leaf, or a leaf no longer strictly below `target` (which
/// would break the commit invariant that replay only reads already-built
/// signals) — in which case the caller leaves the node dirty.
fn translate_cut(cut: &Cut, map: &[Signal], out_flip: bool, target: usize) -> Option<Cut> {
    let len = cut.len as usize;
    let mut pairs = [(0u32, 0usize, false); 4];
    let mut plain = true;
    for (v, &l) in cut.leaves().iter().enumerate() {
        let s = map[l as usize];
        let t = s.node().index();
        if t == 0 || t >= target {
            return None;
        }
        plain &= !s.is_complemented();
        pairs[v] = (t as u32, v, s.is_complemented());
    }
    let pairs = &mut pairs[..len];
    let sorted = pairs.windows(2).all(|w| w[0].0 < w[1].0);
    if !sorted {
        pairs.sort_unstable();
        if pairs.windows(2).any(|w| w[0].0 == w[1].0) {
            return None;
        }
    }
    let mut out = Cut {
        leaves: [0; 4],
        len: cut.len,
        tt: cut.tt,
        sign: 0,
    };
    for (nv, p) in pairs.iter().enumerate() {
        out.leaves[nv] = p.0;
        out.sign |= leaf_sign(p.0);
    }
    if !(plain && sorted) {
        // Slow path: re-tabulate through the variable renaming/flips.
        out.tt = 0;
        for i in 0..(1u32 << len) {
            let mut j = 0usize;
            for (nv, &(_, ov, flip)) in pairs.iter().enumerate() {
                if (((i >> nv) & 1) == 1) != flip {
                    j |= 1 << ov;
                }
            }
            if (cut.tt >> j) & 1 == 1 {
                out.tt |= 1 << i;
            }
        }
    }
    if out_flip {
        out.tt ^= tt_mask(len);
    }
    Some(out)
}

/// Boolean rewriting: repeatedly rewrites cuts against the database and
/// recovers size with `Ω.D` elimination, keeping the best graph seen
/// under `config.goal` — `(size, depth)` in the default size mode,
/// `(depth, size)` in the depth-aware mode. The result is functionally
/// equivalent to the input, never larger, and bit-identical for every
/// `jobs` setting.
///
/// # Example
///
/// ```
/// use mig_core::{Mig, optimize_rewrite, RewriteConfig};
///
/// // XOR3 built from two cascaded 3-node XOR2s: 6 nodes. The database
/// // holds the paper's optimal 3-node XOR3 structure (Fig. 2(b)).
/// let mut mig = Mig::new("xor3");
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let c = mig.add_input("c");
/// let t = mig.xor(a, b);
/// let f = mig.xor(t, c);
/// mig.add_output("f", f);
/// assert_eq!(mig.size(), 6);
/// let opt = optimize_rewrite(&mig, &RewriteConfig::default());
/// assert!(opt.equiv(&mig, 4));
/// assert_eq!(opt.size(), 3);
/// ```
pub fn optimize_rewrite(mig: &Mig, config: &RewriteConfig) -> Mig {
    optimize_rewrite_with(
        mig,
        config,
        &mut OptBuffers::new(),
        &mut RewriteCache::default(),
        &mut LevelMap::new(),
    )
}

/// [`optimize_rewrite`] with caller-provided buffers, so composite flows
/// share one arena pool, one cut/canonization cache, and one level
/// mirror.
pub(crate) fn optimize_rewrite_with(
    mig: &Mig,
    config: &RewriteConfig,
    bufs: &mut OptBuffers,
    rc: &mut RewriteCache,
    lm: &mut LevelMap,
) -> Mig {
    let mut best = mig.cleanup();
    let rounds = config.effort.max(1) * ROUNDS_PER_EFFORT;
    for round in 0..rounds {
        let swept = rewrite_sweep(&best, config, bufs, rc, lm);
        if swept.is_none() && round > 0 {
            break;
        }
        let e = match swept {
            Some(r) => {
                let e = eliminate_pass(&r, bufs);
                rc.translate(&r, &e, &bufs.map);
                bufs.recycle(r);
                e
            }
            // Nothing to rewrite on the very first round: still give
            // elimination one chance before concluding.
            None => {
                let e = eliminate_pass(&best, bufs);
                rc.translate(&best, &e, &bufs.map);
                e
            }
        };
        let cur = bufs.cleanup(&e);
        rc.translate(&e, &cur, &bufs.map);
        bufs.recycle(e);
        if std::env::var_os("MIG_REWRITE_TRACE").is_some() {
            eprintln!(
                "round {round}: cur=({}, {}) best=({}, {})",
                cur.size(),
                cur.depth(),
                best.size(),
                best.depth()
            );
        }
        if config.goal.of(&cur) < config.goal.of(&best) {
            bufs.recycle(std::mem::replace(&mut best, cur));
        } else {
            bufs.recycle(cur);
            break;
        }
    }
    best
}

/// Stable counting sort of the worklist into level buckets: ties keep
/// arena (push) order, so the result is bit-identical to the stable
/// comparison sort it replaced — at O(n + levels) instead of
/// O(n log n), which is material on million-node worklists.
fn sort_worklist_by_level(rc: &mut RewriteCache, lm: &LevelMap) {
    let list = &mut rc.worklist;
    let counts = &mut rc.lvl_counts;
    let out = &mut rc.lvl_sorted;
    let max_level = list
        .iter()
        .map(|&i| lm.level_of(NodeId::from_index(i as usize)))
        .max()
        .unwrap_or(0) as usize;
    // counts[l] accumulates the population of level l, shifted by one so
    // the prefix sum turns it into the bucket start offsets.
    counts.clear();
    counts.resize(max_level + 2, 0);
    for &i in list.iter() {
        counts[lm.level_of(NodeId::from_index(i as usize)) as usize + 1] += 1;
    }
    for l in 1..counts.len() {
        counts[l] += counts[l - 1];
    }
    out.clear();
    out.resize(list.len(), 0);
    for &i in list.iter() {
        let l = lm.level_of(NodeId::from_index(i as usize)) as usize;
        out[counts[l] as usize] = i;
        counts[l] += 1;
    }
    std::mem::swap(list, out);
}

/// Shared read-only context of the evaluate phase, handed to every
/// worker.
struct EvalCtx<'a> {
    cuts: &'a [Cut],
    ncuts: &'a [u8],
    reach: &'a [bool],
    stride: usize,
    db: &'static MigDatabase,
}

/// One evaluate → select → commit sweep. Returns the rebuilt graph, or
/// `None` when no candidate was selected (the graph is at a rewriting
/// fixpoint; the cache still describes `old`).
fn rewrite_sweep(
    old: &Mig,
    config: &RewriteConfig,
    bufs: &mut OptBuffers,
    rc: &mut RewriteCache,
    lm: &mut LevelMap,
) -> Option<Mig> {
    let k = config.cut_size.clamp(2, 4);
    // The upper bound matches the candidate-slot width, so every stored
    // cut has a slot and the commit phase scores the full cut set.
    let max_cuts = config.max_cuts.clamp(1, MAX_NODE_CANDS);
    let jobs = resolve_jobs(config.jobs);
    let db = MigDatabase::global();
    rc.bind(old, max_cuts + 1);

    {
        let mark = old.reach_ref();
        rc.reach.clear();
        rc.reach.extend_from_slice(&mark);
    }
    old.fanout_counts_into(&mut rc.fanout);

    // Level wavefronts over every reachable gate: nodes of one level
    // never feed each other, so a wavefront can be enumerated
    // concurrently. The level mirror schedules the wavefronts; the
    // counting sort keeps ties in arena order, exactly like the stable
    // comparison sort it replaced, at O(n + levels).
    lm.bind(old);
    rc.worklist.clear();
    for node in old.gate_ids() {
        if rc.reach[node.index()] {
            rc.worklist.push(node.index() as u32);
        }
    }
    sort_worklist_by_level(rc, lm);

    let trace = std::env::var_os("MIG_REWRITE_TRACE").is_some();
    let t0 = std::time::Instant::now();
    let mut workers = rc.workers.take_n(jobs);
    let n_enum = enumerate_changed(old, rc, k, max_cuts, jobs, &mut workers);
    let t1 = std::time::Instant::now();
    let n_eval = evaluate(old, rc, db, jobs, &mut workers);
    let t2 = std::time::Instant::now();
    rc.workers.put_all(workers);
    let have_cands = rc.worklist.iter().any(|&i| rc.ncands[i as usize] != 0);
    if !have_cands {
        if trace {
            eprintln!(
                "  sweep: enum={n_enum}/{} in {:.2}ms eval={n_eval} in {:.2}ms cands=0",
                rc.worklist.len(),
                (t1 - t0).as_secs_f64() * 1e3,
                (t2 - t1).as_secs_f64() * 1e3
            );
        }
        return None;
    }

    let (new, committed) = commit(old, rc, bufs, db, config.goal, config.depth_tiebreak, lm);
    if trace {
        eprintln!(
            "  sweep: enum={n_enum}/{} in {:.2}ms eval={n_eval} in {:.2}ms commit={} in {:.2}ms",
            rc.worklist.len(),
            (t1 - t0).as_secs_f64() * 1e3,
            (t2 - t1).as_secs_f64() * 1e3,
            committed,
            t2.elapsed().as_secs_f64() * 1e3
        );
    }
    if committed == 0 {
        // Every candidate was rejected by the destination-side
        // re-validation: the rebuild is a verbatim copy, drop it.
        bufs.recycle(new);
        return None;
    }
    let map = std::mem::take(&mut rc.map);
    rc.translate(old, &new, &map);
    rc.map = map;
    Some(new)
}

/// Phase 1: re-enumerates the cuts of every gate that needs it, one
/// level wavefront at a time (parallel within a wavefront when it is
/// large enough). A gate needs re-enumeration when it is dirty (its
/// structure changed) or when a fanin's cut set *actually changed* this
/// sweep — re-enumerations that reproduce the previous cut set do not
/// propagate (change damping), which is what keeps the dirty region a
/// thin cone instead of the whole TFO. Returns the number of gates
/// re-enumerated.
fn enumerate_changed(
    old: &Mig,
    rc: &mut RewriteCache,
    k: usize,
    max_cuts: usize,
    jobs: usize,
    workers: &mut [WorkerScratch],
) -> usize {
    let view = old.view();
    let stride = rc.stride;
    let worklist = std::mem::take(&mut rc.worklist);
    let mut batch = std::mem::take(&mut rc.batch);
    rc.changed.clear();
    rc.changed.resize(old.num_nodes(), false);
    let mut n_enum = 0usize;
    let mut pos = 0;
    while pos < worklist.len() {
        let lvl = view.level_of(NodeId::from_index(worklist[pos] as usize));
        let mut end = pos + 1;
        while end < worklist.len()
            && view.level_of(NodeId::from_index(worklist[end] as usize)) == lvl
        {
            end += 1;
        }
        // The wavefront's work set: dirty nodes plus nodes fed by a
        // changed cut set (children settled in earlier wavefronts).
        batch.clear();
        for &idx in &worklist[pos..end] {
            let i = idx as usize;
            let need = rc.dirty[i]
                || view
                    .children(NodeId::from_index(i))
                    .iter()
                    .any(|s| rc.changed[s.node().index()]);
            if need {
                batch.push(idx);
            }
        }
        n_enum += batch.len();
        if jobs == 1 || batch.len() < PAR_THRESHOLD {
            let w = &mut workers[0];
            for &idx in &batch {
                let idx = idx as usize;
                {
                    let ctx = EnumCtx {
                        view,
                        cuts: &rc.cuts,
                        ncuts: &rc.ncuts,
                        stride,
                    };
                    enumerate_node(&ctx, idx, k, max_cuts, &mut w.cand);
                }
                let n = w.cand.len();
                let old_cuts = &rc.cuts[idx * stride..idx * stride + n];
                if rc.ncuts[idx] as usize != n || old_cuts != &w.cand[..] {
                    rc.changed[idx] = true;
                    rc.cuts[idx * stride..idx * stride + n].copy_from_slice(&w.cand);
                    rc.ncuts[idx] = n as u8;
                }
            }
            // Serial enumeration has no isolation boundary: a panic
            // here propagates to the pass-level checkpoint rollback.
            for &idx in &batch {
                rc.dirty[idx as usize] = false;
            }
        } else {
            let ctx = EnumCtx {
                view,
                cuts: &rc.cuts,
                ncuts: &rc.ncuts,
                stride,
            };
            let ctx = &ctx;
            let batch_ref = &batch[..];
            std::thread::scope(|s| {
                for (ci, w) in workers.iter_mut().enumerate() {
                    let nodes = &batch_ref[chunk_range(batch_ref.len(), jobs, ci)];
                    s.spawn(move || {
                        w.out_meta.clear();
                        w.out_cuts.clear();
                        // The worker's isolation boundary: a panic
                        // (e.g. an injected fault) forfeits only this
                        // worker's unfinished nodes — the per-node
                        // records already pushed stay well-formed and
                        // are drained normally. Left to propagate it
                        // would abort the whole `thread::scope` join.
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            for &idx in nodes {
                                let i = idx as usize;
                                enumerate_node(ctx, i, k, max_cuts, &mut w.cand);
                                let n = w.cand.len();
                                let same = ctx.ncuts[i] as usize == n
                                    && ctx.cuts[i * ctx.stride..i * ctx.stride + n] == w.cand[..];
                                w.out_meta.push((idx, n as u8, !same));
                                if !same {
                                    w.out_cuts.extend_from_slice(&w.cand);
                                }
                            }
                        }));
                        w.panicked = result.is_err();
                    });
                }
            });
            for w in workers.iter_mut() {
                let mut off = 0usize;
                for &(idx, n, changed) in &w.out_meta {
                    // Only drained nodes count as enumerated: a
                    // panicked worker's unvisited nodes keep their
                    // dirty bit and re-enumerate next sweep.
                    rc.dirty[idx as usize] = false;
                    if !changed {
                        continue;
                    }
                    let (idx, n) = (idx as usize, n as usize);
                    rc.cuts[idx * stride..idx * stride + n]
                        .copy_from_slice(&w.out_cuts[off..off + n]);
                    rc.ncuts[idx] = n as u8;
                    rc.changed[idx] = true;
                    off += n;
                }
            }
        }
        pos = end;
    }
    rc.worklist = worklist;
    rc.batch = batch;
    n_enum
}

/// Read-only inputs of cut enumeration (shared across worker threads).
struct EnumCtx<'a> {
    view: MigView<'a>,
    cuts: &'a [Cut],
    ncuts: &'a [u8],
    stride: usize,
}

/// Enumerates the priority cuts of one node into `cand` (wider cuts
/// first, subset-dominated cuts removed, unit cut last). Reads only the
/// cut sets of strictly earlier wavefronts, so workers can run it
/// concurrently against one shared cut arena.
fn enumerate_node(ctx: &EnumCtx, idx: usize, k: usize, max_cuts: usize, cand: &mut Vec<Cut>) {
    crate::faultpoint!("rewrite.enumerate");
    let stride = ctx.stride;
    let [a, b, c] = ctx.view.children(NodeId::from_index(idx));
    let (ia, ib, ic) = (a.node().index(), b.node().index(), c.node().index());
    cand.clear();
    for ca in 0..ctx.ncuts[ia] as usize {
        let cut_a = ctx.cuts[ia * stride + ca];
        for cb in 0..ctx.ncuts[ib] as usize {
            let cut_b = ctx.cuts[ib * stride + cb];
            for cc in 0..ctx.ncuts[ic] as usize {
                let cut_c = ctx.cuts[ic * stride + cc];
                let Some(mut cut) = merge3(&cut_a, &cut_b, &cut_c, k) else {
                    continue;
                };
                // Filter on the leaf set alone before paying for the
                // truth table: most merges duplicate or are dominated
                // by an existing candidate.
                if cand
                    .iter()
                    .any(|e| e.same_leaves(&cut) || e.dominates(&cut))
                {
                    continue;
                }
                cand.retain(|e| !cut.dominates(e));
                let ta = expand_tt(cut_a.tt, cut_a.leaves(), cut.leaves())
                    ^ if a.is_complemented() { 0xFFFF } else { 0 };
                let tb = expand_tt(cut_b.tt, cut_b.leaves(), cut.leaves())
                    ^ if b.is_complemented() { 0xFFFF } else { 0 };
                let tc = expand_tt(cut_c.tt, cut_c.leaves(), cut.leaves())
                    ^ if c.is_complemented() { 0xFFFF } else { 0 };
                cut.tt = ((ta & tb) | (ta & tc) | (tb & tc)) & tt_mask(cut.len as usize);
                cand.push(cut);
            }
        }
    }
    // Wider cuts first; stable so earlier (smaller-index) leaves win
    // ties deterministically.
    cand.sort_by_key(|c| Reverse(c.len));
    cand.truncate(max_cuts);
    cand.push(Cut::unit(idx));
}

/// Phase 1b: refreshes candidate slots. Only nodes whose cut set
/// changed this sweep, or whose local fanout context moved since they
/// were last filtered, are revisited — every other node keeps its
/// (translated) slots. Returns the number of nodes refreshed.
fn evaluate(
    old: &Mig,
    rc: &mut RewriteCache,
    db: &'static MigDatabase,
    jobs: usize,
    workers: &mut [WorkerScratch],
) -> usize {
    let first = old.num_inputs() + 1;
    rc.eval_list.clear();
    {
        let view = old.view();
        for &idx in &rc.worklist {
            let i = idx as usize;
            let need = rc.changed[i]
                || rc.prev_fanout[i] == u32::MAX
                || view.children(NodeId::from_index(i)).iter().any(|s| {
                    let c = s.node().index();
                    c >= first && rc.fanout[c] != rc.prev_fanout[c]
                });
            if need {
                rc.eval_list.push(idx);
            }
        }
    }
    // Snapshot the fanout context the refreshed scores are valid under.
    rc.prev_fanout.clear();
    rc.prev_fanout.extend_from_slice(&rc.fanout);
    let n_eval = rc.eval_list.len();
    let ctx = EvalCtx {
        cuts: &rc.cuts,
        ncuts: &rc.ncuts,
        reach: &rc.reach,
        stride: rc.stride,
        db,
    };
    for w in workers.iter_mut() {
        w.out_slots.clear();
        w.panicked = false;
    }
    if jobs == 1 || n_eval < PAR_THRESHOLD {
        // Serial evaluation: a panic propagates to the pass-level
        // checkpoint rollback.
        eval_nodes(&ctx, &rc.eval_list, &mut workers[0]);
    } else {
        let ctx = &ctx;
        let list = &rc.eval_list[..];
        std::thread::scope(|s| {
            for (ci, w) in workers.iter_mut().enumerate() {
                let nodes = &list[chunk_range(list.len(), jobs, ci)];
                s.spawn(move || {
                    // Isolation boundary: a panicking worker forfeits
                    // its unfinished slot refreshes; records already in
                    // `out_slots` are whole and drained normally.
                    let result = catch_unwind(AssertUnwindSafe(|| eval_nodes(ctx, nodes, &mut *w)));
                    w.panicked = result.is_err();
                });
            }
        });
        // Put the nodes a panicked worker never refreshed back on the
        // eval list of the next sweep ("never scored" sentinel); their
        // current slots stay valid as stale-but-safe hints meanwhile
        // (the commit re-validates every slot against the live graph).
        for (ci, w) in workers.iter().enumerate() {
            if w.panicked {
                for &idx in &rc.eval_list[chunk_range(n_eval, jobs, ci)] {
                    rc.prev_fanout[idx as usize] = u32::MAX;
                }
            }
        }
    }
    for w in workers.iter_mut() {
        for &(idx, n, slots) in &w.out_slots {
            let i = idx as usize;
            rc.ncands[i] = n;
            rc.slots[i * MAX_NODE_CANDS..(i + 1) * MAX_NODE_CANDS].copy_from_slice(&slots);
        }
    }
    n_eval
}

/// Filters one node list (the body of an evaluate worker): a cut
/// becomes a candidate slot when its function has a database structure
/// and all its leaves are committed (reachable) signals. Slots stay in
/// storage order (wider cuts first), so the commit-side scan scores the
/// full candidate space exactly like the old greedy engine — the
/// parallel phase's job is the expensive *preparation* (enumeration and
/// NPN canonization), not the decisions.
fn eval_nodes(ctx: &EvalCtx, nodes: &[u32], w: &mut WorkerScratch) {
    for &idx in nodes {
        crate::faultpoint!("rewrite.npn");
        let idx = idx as usize;
        let n_cuts = ctx.ncuts[idx] as usize;
        let mut slots = [0u8; MAX_NODE_CANDS];
        let mut n = 0usize;
        // The node's own unit cut is stored last; it is not a rewrite
        // candidate (its "replacement" would be the node itself).
        for ci in 0..n_cuts.saturating_sub(1) {
            if n == MAX_NODE_CANDS {
                break;
            }
            let cut = ctx.cuts[idx * ctx.stride + ci];
            // A leaf that is no longer reachable has no committed
            // signal to replay against (stale translated cut): skip.
            if cut.leaves().iter().any(|&l| !ctx.reach[l as usize]) {
                continue;
            }
            let full_tt = extend4(cut.tt, cut.len as usize);
            let (canon, _) = w.canonize(full_tt);
            if ctx.db.program(canon).is_none() {
                continue;
            }
            slots[n] = ci as u8;
            n += 1;
        }
        w.out_slots.push((idx as u32, n as u8, slots));
    }
}

/// Phase 3: serial commit. One topological rebuild through the strash
/// table: each surviving candidate is re-validated against the
/// *destination* graph — the dry run probes the evolving strash, so
/// sharing created by earlier commits of the same sweep (including the
/// nested cascades that dominate XOR-heavy circuits) is priced in,
/// exactly like the old greedy engine. An existing node or trivial fold
/// is free — it beats any replacement, so its candidates are dropped.
/// Candidates are scored with `goal.local(gain, level)` — `(−gain,
/// level)` for size rewriting, `(level, −gain)` for the depth-aware
/// mode — against a threshold built from the node's default
/// reconstruction, so both modes share one lexicographic comparison.
/// Deterministic: candidates arrive in ascending node order whatever
/// the worker count, and this loop is single-threaded.
fn commit(
    old: &Mig,
    rc: &mut RewriteCache,
    bufs: &mut OptBuffers,
    db: &MigDatabase,
    goal: Objective,
    tiebreak: bool,
    lm: &mut LevelMap,
) -> (Mig, usize) {
    crate::faultpoint!("rewrite.commit");
    let view = old.view();
    let mut new = bufs.fresh_arena(old);
    rc.map.clear();
    rc.map.resize(old.num_nodes(), Signal::FALSE);
    for (i, m) in rc.map.iter_mut().enumerate().take(old.num_inputs() + 1) {
        *m = Signal::new(NodeId::from_index(i), false);
    }
    rc.refs.clear();
    rc.refs.extend_from_slice(&rc.fanout);
    let mut committed = 0usize;
    for node in old.gate_ids() {
        let idx = node.index();
        if !rc.reach[idx] {
            continue;
        }
        let kids = old
            .children(node)
            .map(|s| rc.map[s.node().index()].complement_if(s.is_complemented()));
        // An existing node (or a trivial fold) is free — no replacement
        // structure can beat it, so take it and move on.
        if let Some(hit) = new.lookup_maj(kids[0], kids[1], kids[2]) {
            rc.map[idx] = hit;
            continue;
        }
        // Bounded incremental repair: each bind catches the mirror up on
        // exactly the nodes appended since the last accepted rewrite (or
        // verbatim copy), so the per-accepted-rewrite level work is the
        // size of the appended cone, not O(n).
        lm.bind(&new);
        let default_level = 1 + kids
            .iter()
            .map(|s| lm.level_of_signal(*s))
            .max()
            .expect("three children");
        // The acceptance threshold is the node's default reconstruction:
        // gain 0 at `default_level`. Without the tiebreak a candidate
        // must strictly beat the default on the primary metric alone.
        let mut threshold = goal.local(0, default_level);
        if !tiebreak {
            threshold.tiebreak = i64::MIN;
        }
        let mut plan: Option<(Cut, Npn4Transform, Cost)> = None;
        for si in 0..rc.ncands[idx] as usize {
            let ci = rc.slots[idx * MAX_NODE_CANDS + si] as usize;
            if ci + 1 > rc.ncuts[idx] as usize {
                continue; // stale slot outside the current cut set
            }
            let stored = rc.cuts[idx * rc.stride + ci];
            // Corruption fault site: flips a bit of the candidate's
            // function, so scoring AND replay below both use the wrong
            // table — a functionally wrong replacement the post-pass
            // spot check must catch and roll back.
            let cut = Cut {
                tt: crate::faultpoint_corrupt!("rewrite.commit.tt", stored.tt),
                ..stored
            };
            if cut.leaves().iter().any(|&l| !rc.reach[l as usize]) {
                continue;
            }
            let best_cost = plan.as_ref().map_or(threshold, |&(_, _, c)| c);
            let saved = mffc_size(&view, node, cut.leaves(), &mut rc.refs) as isize;
            let budget = match goal.structural() {
                // Size goal: `saved` bounds the achievable gain, so a cut
                // whose whole MFFC cannot reach the plan's gain is pruned
                // before the dry run, and the dry run itself may stop as
                // soon as the gain drops below the plan's.
                Objective::SizeThenDepth => {
                    let best_gain = -best_cost.primary as isize;
                    if saved < best_gain {
                        continue;
                    }
                    (saved - best_gain) as usize
                }
                // Depth goal: the gain is only the tiebreak, so every cut
                // gets a full dry run — but never one that adds nodes
                // (`added ≤ saved` keeps the pass monotone in size too).
                _ => saved as usize,
            };
            let full_tt = extend4(cut.tt, cut.len as usize);
            let (canon, transform) = memo_canonize(&mut rc.canon_memo, full_tt);
            let Some(prog) = db.program(canon) else {
                continue;
            };
            let ins = leaf_signals(&cut, &transform, |l| rc.map[l]);
            let nv = new.view();
            let Some((added, level)) = dry_run(&nv, prog, &ins, budget, &mut rc.dry) else {
                continue;
            };
            let gain = saved - added as isize;
            let cost = goal.local(gain, level);
            if cost < best_cost {
                plan = Some((cut, transform, cost));
            }
        }
        rc.map[idx] = match plan {
            Some((cut, transform, _)) => {
                let full_tt = extend4(cut.tt, cut.len as usize);
                let canon = memo_canonize(&mut rc.canon_memo, full_tt).0;
                let prog = db.program(canon).expect("plan came from the database");
                let ins = leaf_signals(&cut, &transform, |l| rc.map[l]);
                committed += 1;
                replay(&mut new, prog, &ins, transform.output_flip, &mut rc.replay)
            }
            None => new.maj(kids[0], kids[1], kids[2]),
        };
    }
    for (name, s) in old.outputs() {
        let mapped = rc.map[s.node().index()].complement_if(s.is_complemented());
        new.add_output(name.clone(), mapped);
    }
    (new, committed)
}

/// The signal feeding canonical variable `j` of a database program:
/// original cut variable `perm[j]`, complemented per `input_flips`, read
/// through `resolve` (identity during evaluation, the old→new map during
/// commit). Canonical variables beyond the cut width are don't-cares of
/// the canonical function and read constant 0.
fn leaf_signals(cut: &Cut, t: &Npn4Transform, resolve: impl Fn(usize) -> Signal) -> [Signal; 4] {
    let mut ins = [Signal::FALSE; 4];
    for (j, ins_j) in ins.iter_mut().enumerate() {
        let orig = t.perm[j] as usize;
        if orig < cut.len as usize {
            let flip = (t.input_flips >> orig) & 1 == 1;
            *ins_j = resolve(cut.leaves[orig] as usize).complement_if(flip);
        }
    }
    ins
}

/// Simulates replaying `prog` against the snapshot without building
/// anything: counts the nodes that would be allocated (strash hits and
/// trivial folds are free) and estimates the result's logic level.
/// Returns `None` as soon as the count exceeds `budget` — by
/// construction such a replacement cannot improve on the current plan.
/// The output complement is irrelevant here — inverters are free edge
/// attributes.
fn dry_run(
    view: &MigView,
    prog: &MigProgram,
    ins: &[Signal; 4],
    budget: usize,
    vals: &mut Vec<DryVal>,
) -> Option<(usize, u32)> {
    vals.clear();
    let mut added = 0usize;
    for step in &prog.steps {
        let [a, b, c] = step.map(|l| resolve_dry(l, ins, vals));
        let v = if let (DryVal::Known(sa), DryVal::Known(sb), DryVal::Known(sc)) = (a, b, c) {
            match view.lookup_maj(sa, sb, sc) {
                Some(s) => DryVal::Known(s),
                None => {
                    added += 1;
                    DryVal::New(1 + level3(view, a, b, c))
                }
            }
        } else {
            added += 1;
            DryVal::New(1 + level3(view, a, b, c))
        };
        if added > budget {
            return None;
        }
        vals.push(v);
    }
    let out = resolve_dry(prog.out, ins, vals);
    Some((added, out.level(view)))
}

fn level3(view: &MigView, a: DryVal, b: DryVal, c: DryVal) -> u32 {
    a.level(view).max(b.level(view)).max(c.level(view))
}

fn resolve_dry(l: mig_tt::MigLit, ins: &[Signal; 4], vals: &[DryVal]) -> DryVal {
    let base = if l.is_constant() {
        DryVal::Known(Signal::FALSE)
    } else if let Some(v) = l.var_index() {
        DryVal::Known(ins[v])
    } else {
        vals[l.step_index().expect("step literal")]
    };
    base.complement_if(l.is_complemented())
}

/// Replays `prog` for real through the hashing constructor.
fn replay(
    new: &mut Mig,
    prog: &MigProgram,
    ins: &[Signal; 4],
    output_flip: bool,
    vals: &mut Vec<Signal>,
) -> Signal {
    vals.clear();
    for step in &prog.steps {
        let [a, b, c] = step.map(|l| resolve_sig(l, ins, vals));
        let s = new.maj(a, b, c);
        vals.push(s);
    }
    resolve_sig(prog.out, ins, vals).complement_if(output_flip)
}

fn resolve_sig(l: mig_tt::MigLit, ins: &[Signal; 4], vals: &[Signal]) -> Signal {
    let base = if l.is_constant() {
        Signal::FALSE
    } else if let Some(v) = l.var_index() {
        ins[v]
    } else {
        vals[l.step_index().expect("step literal")]
    };
    base.complement_if(l.is_complemented())
}

/// Size of the node's maximum fanout-free cone with respect to the cut:
/// the gates (including the node itself) that become unreferenced when
/// the node is replaced by logic over the cut leaves. Runs the classic
/// dereference/re-reference walk on a scratch copy of the fanout counts,
/// restoring them before returning.
fn mffc_size(view: &MigView, node: NodeId, leaves: &[u32], refs: &mut [u32]) -> usize {
    let size = mffc_deref(view, node, leaves, refs);
    mffc_reref(view, node, leaves, refs);
    size
}

fn mffc_deref(view: &MigView, node: NodeId, leaves: &[u32], refs: &mut [u32]) -> usize {
    let mut size = 1;
    for s in view.children(node) {
        let m = s.node();
        if !view.is_gate(m) || leaves.contains(&(m.index() as u32)) {
            continue;
        }
        refs[m.index()] -= 1;
        if refs[m.index()] == 0 {
            size += mffc_deref(view, m, leaves, refs);
        }
    }
    size
}

fn mffc_reref(view: &MigView, node: NodeId, leaves: &[u32], refs: &mut [u32]) {
    for s in view.children(node) {
        let m = s.node();
        if !view.is_gate(m) || leaves.contains(&(m.index() as u32)) {
            continue;
        }
        if refs[m.index()] == 0 {
            mffc_reref(view, m, leaves, refs);
        }
        refs[m.index()] += 1;
    }
}

/// Merges three sorted leaf sets into one, or `None` if the union
/// exceeds `k` leaves. The merged truth table is filled in by the
/// caller.
fn merge3(a: &Cut, b: &Cut, c: &Cut, k: usize) -> Option<Cut> {
    let mut out = Cut::default();
    for src in [a, b, c] {
        for &l in src.leaves() {
            let len = out.len as usize;
            match out.leaves[..len].binary_search(&l) {
                Ok(_) => {}
                Err(pos) => {
                    if len == k {
                        return None;
                    }
                    out.leaves.copy_within(pos..len, pos + 1);
                    out.leaves[pos] = l;
                    out.len += 1;
                }
            }
        }
    }
    out.sign = out.leaves().iter().fold(0, |s, &l| s | leaf_sign(l));
    Some(out)
}

/// One k-feasible priority cut of [`enumerate_cuts`]: up to four sorted
/// leaf *node* indices plus the root's function over them.
///
/// `tt`'s low `2^len` bits are valid: bit `i` is the value of the root
/// node's **plain** (non-complemented) output when leaf `j` carries bit
/// `j` of `i` as its plain value. Constants never appear as leaves —
/// the enumerator folds them into the truth table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumeratedCut {
    /// Leaf node indices, ascending; only the first `len` are valid.
    pub leaves: [u32; 4],
    /// Number of leaves (0 only for the constant node's empty cut).
    pub len: u8,
    /// The root's function over the leaves (low `2^len` bits).
    pub tt: u16,
}

impl EnumeratedCut {
    /// The valid leaf node indices.
    pub fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }
}

/// Per-node priority-cut sets over one MIG, as produced by
/// [`enumerate_cuts`] — the rewrite engine's enumerator exposed for
/// consumers outside this module (the technology mapper matches these
/// cuts against cell libraries).
#[derive(Debug, Clone, Default)]
pub struct CutSet {
    cuts: Vec<EnumeratedCut>,
    offsets: Vec<u32>,
}

impl CutSet {
    /// The cuts of node `node` (an arena index). Reachable gates carry
    /// their priority cuts with the node's own unit cut **last**; each
    /// input carries exactly its unit cut; the constant node carries one
    /// empty cut; unreachable gates carry none.
    pub fn cuts_of(&self, node: usize) -> &[EnumeratedCut] {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        &self.cuts[lo..hi]
    }

    /// Number of nodes the set describes (the graph's arena size).
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Runs one full priority-cut enumeration over every reachable gate of
/// `mig` and returns the per-node cut sets — exactly the enumeration the
/// Boolean rewriting engine performs on its first sweep (`cut_size`
/// clamped to 2..=4, `max_cuts` non-unit cuts kept per node, clamped to
/// 1..=8), single-threaded and deterministic.
///
/// # Example
///
/// ```
/// use mig_core::{enumerate_cuts, Mig};
///
/// let mut mig = Mig::new("xor");
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let x = mig.xor(a, b);
/// mig.add_output("f", x);
/// let cuts = enumerate_cuts(&mig, 4, 8);
/// // The XOR root has a 2-leaf cut over {a, b} computing 0b0110.
/// let root = x.node().index();
/// assert!(cuts
///     .cuts_of(root)
///     .iter()
///     .any(|c| c.len == 2 && c.tt == 0b0110));
/// ```
pub fn enumerate_cuts(mig: &Mig, cut_size: usize, max_cuts: usize) -> CutSet {
    let max_cuts = max_cuts.clamp(1, MAX_NODE_CANDS);
    let mut rc = RewriteCache::default();
    enumerate_full(mig, cut_size.clamp(2, 4), max_cuts, &mut rc);
    let stride = rc.stride;
    let mut out = CutSet {
        cuts: Vec::new(),
        offsets: Vec::with_capacity(mig.num_nodes() + 1),
    };
    out.offsets.push(0);
    for i in 0..mig.num_nodes() {
        let n = rc.ncuts[i] as usize;
        for c in &rc.cuts[i * stride..i * stride + n] {
            out.cuts.push(EnumeratedCut {
                leaves: c.leaves,
                len: c.len,
                tt: c.tt,
            });
        }
        out.offsets.push(out.cuts.len() as u32);
    }
    out
}

/// One full (non-incremental, single-threaded) enumeration over `mig`
/// into `rc` — the body shared by [`enumerate_cuts`] and the test
/// helpers.
fn enumerate_full(mig: &Mig, k: usize, max_cuts: usize, rc: &mut RewriteCache) {
    rc.bind(mig, max_cuts + 1);
    {
        let mark = mig.reach_ref();
        rc.reach.clear();
        rc.reach.extend_from_slice(&mark);
    }
    rc.worklist.clear();
    for node in mig.gate_ids() {
        if rc.reach[node.index()] {
            rc.worklist.push(node.index() as u32);
        }
    }
    let mut lm = LevelMap::new();
    lm.bind(mig);
    sort_worklist_by_level(rc, &lm);
    let mut workers = rc.workers.take_n(1);
    enumerate_changed(mig, rc, k, max_cuts, 1, &mut workers);
    rc.workers.put_all(workers);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_inputs() -> (Mig, Signal, Signal, Signal) {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        (mig, a, b, c)
    }

    /// Runs one full enumeration over `mig` into a fresh cache
    /// (single-threaded), for tests that inspect cut sets directly.
    fn enumerate_for_test(mig: &Mig, k: usize, max_cuts: usize, rc: &mut RewriteCache) {
        enumerate_full(mig, k, max_cuts, rc);
    }

    #[test]
    fn xor3_rewrites_to_database_optimum() {
        let (mut mig, a, b, c) = three_inputs();
        let t = mig.xor(a, b);
        let f = mig.xor(t, c);
        mig.add_output("f", f);
        assert_eq!(mig.size(), 6);
        let opt = optimize_rewrite(&mig, &RewriteConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.size(), 3, "database holds the 3-node XOR3");
    }

    #[test]
    fn redundant_logic_collapses_to_a_wire() {
        // f = (a ∧ b) ∨ (a ∧ b') ≡ a: the cut function over {a, b} is the
        // projection of a, so the whole cone is replaced by a wire.
        let (mut mig, a, b, _) = three_inputs();
        let p = mig.and(a, b);
        let q = mig.and(a, !b);
        let f = mig.or(p, q);
        mig.add_output("f", f);
        assert_eq!(mig.size(), 3);
        let opt = optimize_rewrite(&mig, &RewriteConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.size(), 0);
        assert_eq!(opt.outputs()[0].1, opt.input(0));
    }

    #[test]
    fn constant_cone_folds_to_constant() {
        // f = (a ∧ b) ∧ (a' ∨ b') ≡ 0 needs the Boolean view to vanish.
        let (mut mig, a, b, _) = three_inputs();
        let p = mig.and(a, b);
        let q = mig.or(!a, !b);
        let f = mig.and(p, q);
        mig.add_output("f", f);
        let opt = optimize_rewrite(&mig, &RewriteConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.size(), 0);
        assert!(opt.outputs()[0].1.is_constant());
    }

    #[test]
    fn rewrite_is_monotone_and_equivalent() {
        let mut mig = Mig::new("misc");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let d = mig.add_input("d");
        let m1 = mig.maj(a, b, c);
        let m2 = mig.mux(d, m1, a);
        let m3 = mig.xor(m2, b);
        let m4 = mig.or(m3, m1);
        mig.add_output("y", m4);
        mig.add_output("z", m2);
        let before = mig.size();
        let opt = optimize_rewrite(&mig, &RewriteConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert!(opt.size() <= before, "{} > {}", opt.size(), before);
    }

    #[test]
    fn shared_fanout_is_respected() {
        // The MFFC accounting must not claim nodes that other outputs
        // still reference: rewriting here must keep both outputs correct.
        let (mut mig, a, b, c) = three_inputs();
        let t = mig.xor(a, b);
        let f = mig.xor(t, c);
        mig.add_output("f", f);
        mig.add_output("t", t); // t has external fanout
        let opt = optimize_rewrite(&mig, &RewriteConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert!(opt.size() <= mig.size());
    }

    #[test]
    fn results_are_identical_for_any_job_count() {
        // The determinism contract: evaluation is read-only and commits
        // are serialized, so jobs must never change the structure.
        let mut mig = Mig::new("det");
        let ins: Vec<Signal> = (0..6).map(|i| mig.add_input(format!("x{i}"))).collect();
        let mut acc = ins[0];
        // A deterministic tangle of mixed gates.
        for (i, &x) in ins.iter().enumerate().skip(1) {
            acc = match i % 3 {
                0 => mig.xor(acc, x),
                1 => mig.maj(acc, x, ins[(i + 2) % 6]),
                _ => mig.mux(x, acc, ins[(i + 4) % 6]),
            };
        }
        mig.add_output("y", acc);
        let run = |jobs: usize| {
            optimize_rewrite(
                &mig,
                &RewriteConfig {
                    jobs,
                    ..RewriteConfig::default()
                },
            )
        };
        let base = run(1);
        for jobs in [2, 4, 8] {
            let other = run(jobs);
            assert_eq!(base.num_nodes(), other.num_nodes(), "jobs={jobs}");
            for node in base.gate_ids() {
                assert_eq!(
                    base.children(node),
                    other.children(node),
                    "jobs={jobs}, {node}"
                );
            }
            assert_eq!(base.outputs(), other.outputs(), "jobs={jobs}");
        }
    }

    #[test]
    fn cached_sweeps_match_cold_sweeps() {
        // Running the pass twice through one cache (the second run binds
        // to a graph the cache does not describe, then rebuilds it) must
        // behave exactly like fresh runs.
        let (mut mig, a, b, c) = three_inputs();
        let t = mig.xor(a, b);
        let f = mig.xor(t, c);
        mig.add_output("f", f);
        let mut bufs = OptBuffers::new();
        let mut rc = RewriteCache::default();
        let config = RewriteConfig::default();
        let mut lm = LevelMap::new();
        let first = optimize_rewrite_with(&mig, &config, &mut bufs, &mut rc, &mut lm);
        let second = optimize_rewrite_with(&mig, &config, &mut bufs, &mut rc, &mut lm);
        let fresh = optimize_rewrite(&mig, &config);
        for out in [&first, &second] {
            assert_eq!(out.size(), fresh.size());
            assert_eq!(out.depth(), fresh.depth());
            assert!(out.equiv(&mig, 4));
        }
    }

    #[test]
    fn translation_preserves_cut_functions() {
        // Enumerate on a graph, rebuild it verbatim through the engine,
        // translate the cache across, and check every carried cut's
        // truth table against exhaustive simulation on the new graph.
        let mut mig = Mig::new("t4");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let d = mig.add_input("d");
        let x = mig.xor(a, b);
        let g = mig.mux(c, x, d);
        mig.add_output("y", g);
        let mut rc = RewriteCache::default();
        enumerate_for_test(&mig, 4, 8, &mut rc);
        let mut bufs = OptBuffers::new();
        let copy = bufs.cleanup(&mig);
        rc.translate(&mig, &copy, &bufs.map);
        assert_eq!(rc.key, Some((copy.rewrite_stamp(), copy.num_nodes())));
        let mut carried = 0;
        for node in copy.gate_ids() {
            if rc.dirty[node.index()] {
                continue;
            }
            carried += 1;
            check_cuts_against_simulation(&copy, &rc, node);
        }
        assert!(carried > 0, "a verbatim rebuild must carry cuts over");
    }

    /// Asserts every stored cut of `node` matches exhaustive simulation.
    fn check_cuts_against_simulation(mig: &Mig, rc: &RewriteCache, node: NodeId) {
        let stride = rc.stride;
        for ci in 0..rc.ncuts[node.index()] as usize {
            let cut = rc.cuts[node.index() * stride + ci];
            // Probe the node and its leaves.
            let mut probe = mig.clone();
            probe.add_output("probe", Signal::new(node, false));
            for (i, &leaf) in cut.leaves().iter().enumerate() {
                probe.add_output(
                    format!("leaf{i}"),
                    Signal::new(NodeId::from_index(leaf as usize), false),
                );
            }
            let tts = probe.truth_tables();
            let base = tts.len() - cut.leaves().len();
            for row in 0..16usize {
                let mut idx = 0usize;
                for i in 0..cut.leaves().len() {
                    if tts[base + i].get_bit(row) {
                        idx |= 1 << i;
                    }
                }
                assert_eq!(
                    (cut.tt >> idx) & 1 == 1,
                    tts[base - 1].get_bit(row),
                    "node {node}, cut {cut:?}, row {row}"
                );
            }
        }
    }

    #[test]
    fn cut_enumeration_truth_tables_are_exact() {
        // Check every enumerated cut function against exhaustive
        // simulation through probe outputs.
        let mut mig = Mig::new("t4");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let d = mig.add_input("d");
        let x = mig.xor(a, b);
        let g = mig.mux(c, x, d);
        mig.add_output("y", g);
        let mut rc = RewriteCache::default();
        enumerate_for_test(&mig, 4, 8, &mut rc);
        let mark = mig.reach_ref();
        for node in mig.gate_ids() {
            if !mark[node.index()] {
                continue;
            }
            check_cuts_against_simulation(&mig, &rc, node);
        }
    }

    #[test]
    fn merge3_respects_bound() {
        let a = Cut::unit(1);
        let b = Cut::unit(2);
        let c = Cut {
            leaves: [3, 4, 5, 0],
            len: 3,
            tt: 0,
            sign: leaf_sign(3) | leaf_sign(4) | leaf_sign(5),
        };
        assert!(merge3(&a, &b, &c, 4).is_none(), "5 leaves > 4");
        let m = merge3(&a, &b, &b, 4).expect("2 leaves");
        assert_eq!(m.leaves(), &[1, 2]);
        let m = merge3(&c, &c, &c, 4).expect("subset");
        assert_eq!(m.leaves(), &[3, 4, 5]);
    }

    #[test]
    fn extend4_repeats_pattern() {
        assert_eq!(extend4(0b10, 1), 0xAAAA);
        assert_eq!(extend4(0b1000, 2), 0x8888);
        assert_eq!(extend4(1, 0), 0xFFFF);
    }

    #[test]
    fn translate_cut_handles_renames_flips_and_degeneracy() {
        // Cut {2, 3} with tt = AND(v0, v1).
        let cut = Cut {
            leaves: [2, 3, 0, 0],
            len: 2,
            tt: 0b1000,
            sign: leaf_sign(2) | leaf_sign(3),
        };
        let id = |n: usize, c: bool| Signal::new(NodeId::from_index(n), c);
        // Plain rename preserving order: tt untouched.
        let map = vec![id(0, false), id(0, false), id(4, false), id(7, false)];
        let t = translate_cut(&cut, &map, false, 9).expect("plain rename");
        assert_eq!((t.leaves(), t.tt), (&[4u32, 7][..], 0b1000));
        // Order-swapping rename: variables permute.
        let map = vec![id(0, false), id(0, false), id(7, false), id(4, false)];
        let t = translate_cut(&cut, &map, false, 9).expect("swapped rename");
        assert_eq!(t.leaves(), &[4, 7]);
        assert_eq!(t.tt, 0b1000, "AND is symmetric under the swap");
        // A complemented leaf flips that variable.
        let map = vec![id(0, false), id(0, false), id(4, true), id(7, false)];
        let t = translate_cut(&cut, &map, false, 9).expect("flipped leaf");
        assert_eq!(t.tt, 0b0100, "AND(v0', v1)");
        // A complemented root flips the output.
        let map = vec![id(0, false), id(0, false), id(4, false), id(7, false)];
        let t = translate_cut(&cut, &map, true, 9).expect("flipped root");
        assert_eq!(t.tt, 0b0111);
        // Degenerate: two leaves collapse onto one node.
        let map = vec![id(0, false), id(0, false), id(4, false), id(4, false)];
        assert!(translate_cut(&cut, &map, false, 9).is_none());
        // Degenerate: a leaf folded to a constant.
        let map = vec![id(0, false), id(0, false), id(0, false), id(7, false)];
        assert!(translate_cut(&cut, &map, false, 9).is_none());
        // Degenerate: a leaf not strictly below the target.
        let map = vec![id(0, false), id(0, false), id(4, false), id(9, false)];
        assert!(translate_cut(&cut, &map, false, 9).is_none());
    }
}
