//! Cut-based Boolean rewriting against the NPN-canonical majority
//! database (`mig_tt::mig_db`).
//!
//! The algebraic passes (Algorithms 1–2) only reshape what is
//! structurally visible; this pass works on local *functions* instead.
//! For every reachable gate it enumerates k-feasible priority cuts
//! (k ≤ 4, a bounded number per node), computes each cut's truth table,
//! NPN-canonizes it, and looks the class up in the precomputed
//! optimal-structure database. A match is replayed through the hashing
//! constructor on the cut leaves and accepted only when MFFC accounting
//! proves a strict size gain (or, optionally, an equal-size depth gain).
//!
//! The pass is a single topological rebuild: decisions are made node by
//! node against the *destination* graph, so `lookup_maj` probes the
//! strash table to find structure that already exists (those nodes cost
//! nothing), and replaced logic — the node's maximum fanout-free cone
//! with respect to the cut — simply becomes unreachable and is swept by
//! the closing cleanup. All per-node state (cut sets, truth-table
//! scratch, the MFFC reference counts) lives in reusable buffers, so the
//! enumeration inner loop performs no allocation in steady state.
//!
//! The per-node gain is an estimate, not a proof: `saved` comes from the
//! *source* graph's fanout counts, while sharing materializes in the
//! destination graph (e.g. duplicate cones that strash-merge during the
//! rebuild can make two rewrites claim the same dying nodes). The
//! pass-level guard in [`optimize_rewrite`] — keep a sweep only if the
//! cleaned result strictly improves `(size, depth)` — is what makes the
//! optimization monotone end to end.

use std::collections::HashMap;

use super::size::eliminate_pass;
use super::{size_depth, OptBuffers};
use crate::{Mig, NodeId, Signal};
use mig_tt::{npn4_canonize, MigDatabase, MigProgram, Npn4Transform};

/// Tuning knobs for [`optimize_rewrite`].
#[derive(Debug, Clone)]
pub struct RewriteConfig {
    /// Maximum cut width (clamped to 2..=4; truth tables are 16-bit).
    pub cut_size: usize,
    /// Priority-cut bound: how many cuts are kept per node (plus the
    /// unit cut). Clamped to 1..=64.
    pub max_cuts: usize,
    /// Number of rewrite → eliminate rounds.
    pub effort: usize,
    /// Accept zero-gain replacements that strictly reduce the local
    /// logic level (size-then-depth acceptance).
    pub depth_tiebreak: bool,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig {
            cut_size: 4,
            max_cuts: 8,
            effort: 2,
            depth_tiebreak: true,
        }
    }
}

/// A k-feasible cut: sorted leaf nodes plus the root's function over
/// them (leaf `i` is truth-table variable `i`; the low `2^len` bits of
/// `tt` are valid). Fixed-size — cut sets live in one flat buffer.
#[derive(Debug, Clone, Copy, Default)]
struct Cut {
    leaves: [u32; 4],
    len: u8,
    tt: u16,
}

impl Cut {
    fn unit(node: usize) -> Self {
        Cut {
            leaves: [node as u32, 0, 0, 0],
            len: 1,
            tt: 0b10,
        }
    }

    fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// True if this cut's leaves are a subset of `other`'s (making
    /// `other` redundant).
    fn dominates(&self, other: &Cut) -> bool {
        self.leaves().iter().all(|l| other.leaves().contains(l))
    }
}

fn tt_mask(len: usize) -> u16 {
    if len >= 4 {
        0xFFFF
    } else {
        ((1u32 << (1 << len)) - 1) as u16
    }
}

/// Expands `tt` over the `from` leaves onto the superset `to` leaves.
fn expand_tt(tt: u16, from: &[u32], to: &[u32]) -> u16 {
    let mut pos = [0usize; 4];
    for (i, l) in from.iter().enumerate() {
        pos[i] = to.iter().position(|t| t == l).expect("from ⊆ to");
    }
    let mut out = 0u16;
    for i in 0..(1u32 << to.len()) {
        let mut j = 0usize;
        for (bit, &p) in pos[..from.len()].iter().enumerate() {
            if (i >> p) & 1 == 1 {
                j |= 1 << bit;
            }
        }
        if (tt >> j) & 1 == 1 {
            out |= 1 << i;
        }
    }
    out
}

/// Repeats a `len`-variable table up to the full 4-variable width (the
/// added variables are don't-cares).
fn extend4(tt: u16, len: usize) -> u16 {
    let mut t = tt & tt_mask(len);
    for k in len..4 {
        t |= t << (1u32 << k);
    }
    t
}

/// Outcome of simulating one database instruction against the
/// destination graph without building anything.
#[derive(Debug, Clone, Copy)]
enum DryVal {
    /// The node already exists (strash hit or trivial fold): free.
    Known(Signal),
    /// A node would have to be allocated; carries its level estimate.
    New(u32),
}

impl DryVal {
    fn complement_if(self, c: bool) -> Self {
        match self {
            DryVal::Known(s) => DryVal::Known(s.complement_if(c)),
            DryVal::New(l) => DryVal::New(l),
        }
    }

    fn level(self, mig: &Mig) -> u32 {
        match self {
            DryVal::Known(s) => mig.level_of_signal(s),
            DryVal::New(l) => l,
        }
    }
}

/// Reusable buffers for the rewriting pass (cut sets, truth-table and
/// replay scratch, MFFC reference counts, and the NPN canonization
/// cache). One instance serves any number of passes.
#[derive(Debug, Default)]
pub(crate) struct RewriteBuffers {
    cuts: Vec<Cut>,
    ncuts: Vec<u8>,
    cand: Vec<Cut>,
    fanout: Vec<u32>,
    refs: Vec<u32>,
    map: Vec<Signal>,
    dry: Vec<DryVal>,
    replay: Vec<Signal>,
    canon_cache: HashMap<u16, (u16, Npn4Transform)>,
}

impl RewriteBuffers {
    fn canonize(&mut self, tt: u16) -> (u16, Npn4Transform) {
        *self
            .canon_cache
            .entry(tt)
            .or_insert_with(|| npn4_canonize(tt))
    }
}

/// A chosen replacement for one node: which program to replay and how
/// its variables map onto cut leaves.
struct Plan {
    cut: Cut,
    transform: Npn4Transform,
    gain: isize,
    level: u32,
}

/// Boolean rewriting: repeatedly rewrites cuts against the database and
/// recovers size with `Ω.D` elimination, keeping the best
/// `(size, depth)` seen. The result is functionally equivalent to the
/// input and never larger.
///
/// # Example
///
/// ```
/// use mig_core::{Mig, optimize_rewrite, RewriteConfig};
///
/// // XOR3 built from two cascaded 3-node XOR2s: 6 nodes. The database
/// // holds the paper's optimal 3-node XOR3 structure (Fig. 2(b)).
/// let mut mig = Mig::new("xor3");
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let c = mig.add_input("c");
/// let t = mig.xor(a, b);
/// let f = mig.xor(t, c);
/// mig.add_output("f", f);
/// assert_eq!(mig.size(), 6);
/// let opt = optimize_rewrite(&mig, &RewriteConfig::default());
/// assert!(opt.equiv(&mig, 4));
/// assert_eq!(opt.size(), 3);
/// ```
pub fn optimize_rewrite(mig: &Mig, config: &RewriteConfig) -> Mig {
    optimize_rewrite_with(
        mig,
        config,
        &mut OptBuffers::new(),
        &mut RewriteBuffers::default(),
    )
}

/// [`optimize_rewrite`] with caller-provided buffers, so composite flows
/// share one arena pool and one cut/canonization cache.
pub(crate) fn optimize_rewrite_with(
    mig: &Mig,
    config: &RewriteConfig,
    bufs: &mut OptBuffers,
    rb: &mut RewriteBuffers,
) -> Mig {
    let mut best = mig.cleanup();
    for _ in 0..config.effort.max(1) {
        let r = rewrite_pass(&best, config, bufs, rb);
        let e = eliminate_pass(&r, bufs);
        bufs.recycle(r);
        let cur = bufs.cleanup(&e);
        bufs.recycle(e);
        if size_depth(&cur) < size_depth(&best) {
            bufs.recycle(std::mem::replace(&mut best, cur));
        } else {
            bufs.recycle(cur);
            break;
        }
    }
    best
}

/// One rewriting sweep: enumerate cuts on `old`, rebuild into a fresh
/// arena, replacing profitable cuts with database structures.
pub(crate) fn rewrite_pass(
    old: &Mig,
    config: &RewriteConfig,
    bufs: &mut OptBuffers,
    rb: &mut RewriteBuffers,
) -> Mig {
    let k = config.cut_size.clamp(2, 4);
    // Upper bound keeps the per-node count in the `u8` cut-count buffer
    // and the flat cut storage proportional to a sane working set.
    let max_cuts = config.max_cuts.clamp(1, 64);
    let db = MigDatabase::global();

    enumerate_cuts(old, k, max_cuts, rb);
    old.fanout_counts_into(&mut rb.fanout);
    rb.refs.clone_from(&rb.fanout);

    let mut new = bufs.fresh_arena(old);
    rb.map.clear();
    rb.map.resize(old.num_nodes(), Signal::FALSE);
    for (i, m) in rb.map.iter_mut().enumerate().take(old.num_inputs() + 1) {
        *m = Signal::new(NodeId::from_index(i), false);
    }

    let stride = max_cuts + 1;
    let mark = old.reach_ref();
    for node in old.gate_ids() {
        let idx = node.index();
        if !mark[idx] {
            continue;
        }
        let kids = old
            .children(node)
            .map(|s| rb.map[s.node().index()].complement_if(s.is_complemented()));
        // An existing node (or a trivial fold) is free — no replacement
        // structure can beat it, so take it and move on.
        if let Some(hit) = new.lookup_maj(kids[0], kids[1], kids[2]) {
            rb.map[idx] = hit;
            continue;
        }
        let default_level = 1 + kids
            .iter()
            .map(|s| new.level_of_signal(*s))
            .max()
            .expect("three children");

        let mut plan: Option<Plan> = None;
        let n_cuts = rb.ncuts[idx] as usize;
        // The node's own unit cut is stored last; it is not a rewrite
        // candidate (its "replacement" would be the node itself).
        for ci in 0..n_cuts.saturating_sub(1) {
            let cut = rb.cuts[idx * stride + ci];
            let full_tt = extend4(cut.tt, cut.len as usize);
            let (canon, transform) = rb.canonize(full_tt);
            let Some(prog) = db.program(canon) else {
                continue;
            };
            let ins = leaf_signals(&cut, &transform, &rb.map);
            let (added, level) = dry_run(&new, prog, &ins, &mut rb.dry);
            let saved = mffc_size(old, node, cut.leaves(), &mut rb.refs) as isize;
            let gain = saved - added as isize;
            let better = match &plan {
                Some(p) => (gain, std::cmp::Reverse(level)) > (p.gain, std::cmp::Reverse(p.level)),
                None => gain > 0 || (config.depth_tiebreak && gain == 0 && level < default_level),
            };
            if better {
                plan = Some(Plan {
                    cut,
                    transform,
                    gain,
                    level,
                });
            }
        }

        rb.map[idx] = match plan {
            Some(p) => {
                let canon = rb.canonize(extend4(p.cut.tt, p.cut.len as usize)).0;
                let prog = db.program(canon).expect("plan came from the database");
                let ins = leaf_signals(&p.cut, &p.transform, &rb.map);
                replay(
                    &mut new,
                    prog,
                    &ins,
                    p.transform.output_flip,
                    &mut rb.replay,
                )
            }
            None => new.maj(kids[0], kids[1], kids[2]),
        };
    }
    drop(mark);
    for (name, s) in old.outputs() {
        let mapped = rb.map[s.node().index()].complement_if(s.is_complemented());
        new.add_output(name.clone(), mapped);
    }
    new
}

/// The destination-graph signal feeding canonical variable `j` of a
/// database program: original cut variable `perm[j]`, complemented per
/// `input_flips`. Canonical variables beyond the cut width are
/// don't-cares of the canonical function and read constant 0.
fn leaf_signals(cut: &Cut, t: &Npn4Transform, map: &[Signal]) -> [Signal; 4] {
    let mut ins = [Signal::FALSE; 4];
    for (j, ins_j) in ins.iter_mut().enumerate() {
        let orig = t.perm[j] as usize;
        if orig < cut.len as usize {
            let flip = (t.input_flips >> orig) & 1 == 1;
            *ins_j = map[cut.leaves[orig] as usize].complement_if(flip);
        }
    }
    ins
}

/// Simulates replaying `prog` against `new` without building anything:
/// counts the nodes that would be allocated (strash hits and trivial
/// folds are free) and estimates the result's logic level. The output
/// complement is irrelevant here — inverters are free edge attributes.
fn dry_run(
    new: &Mig,
    prog: &MigProgram,
    ins: &[Signal; 4],
    vals: &mut Vec<DryVal>,
) -> (usize, u32) {
    vals.clear();
    let mut added = 0usize;
    for step in &prog.steps {
        let [a, b, c] = step.map(|l| resolve_dry(l, ins, vals));
        let v = if let (DryVal::Known(sa), DryVal::Known(sb), DryVal::Known(sc)) = (a, b, c) {
            match new.lookup_maj(sa, sb, sc) {
                Some(s) => DryVal::Known(s),
                None => {
                    added += 1;
                    DryVal::New(1 + level3(new, a, b, c))
                }
            }
        } else {
            added += 1;
            DryVal::New(1 + level3(new, a, b, c))
        };
        vals.push(v);
    }
    let out = resolve_dry(prog.out, ins, vals);
    (added, out.level(new))
}

fn level3(mig: &Mig, a: DryVal, b: DryVal, c: DryVal) -> u32 {
    a.level(mig).max(b.level(mig)).max(c.level(mig))
}

fn resolve_dry(l: mig_tt::MigLit, ins: &[Signal; 4], vals: &[DryVal]) -> DryVal {
    let base = if l.is_constant() {
        DryVal::Known(Signal::FALSE)
    } else if let Some(v) = l.var_index() {
        DryVal::Known(ins[v])
    } else {
        vals[l.step_index().expect("step literal")]
    };
    base.complement_if(l.is_complemented())
}

/// Replays `prog` for real through the hashing constructor.
fn replay(
    new: &mut Mig,
    prog: &MigProgram,
    ins: &[Signal; 4],
    output_flip: bool,
    vals: &mut Vec<Signal>,
) -> Signal {
    vals.clear();
    for step in &prog.steps {
        let [a, b, c] = step.map(|l| resolve_sig(l, ins, vals));
        let s = new.maj(a, b, c);
        vals.push(s);
    }
    resolve_sig(prog.out, ins, vals).complement_if(output_flip)
}

fn resolve_sig(l: mig_tt::MigLit, ins: &[Signal; 4], vals: &[Signal]) -> Signal {
    let base = if l.is_constant() {
        Signal::FALSE
    } else if let Some(v) = l.var_index() {
        ins[v]
    } else {
        vals[l.step_index().expect("step literal")]
    };
    base.complement_if(l.is_complemented())
}

/// Size of the node's maximum fanout-free cone with respect to the cut:
/// the gates (including the node itself) that become unreferenced when
/// the node is replaced by logic over the cut leaves. Runs the classic
/// dereference/re-reference walk on a scratch copy of the fanout counts,
/// restoring them before returning.
fn mffc_size(mig: &Mig, node: NodeId, leaves: &[u32], refs: &mut [u32]) -> usize {
    let size = mffc_deref(mig, node, leaves, refs);
    mffc_reref(mig, node, leaves, refs);
    size
}

fn mffc_deref(mig: &Mig, node: NodeId, leaves: &[u32], refs: &mut [u32]) -> usize {
    let mut size = 1;
    for s in mig.children(node) {
        let m = s.node();
        if !mig.is_gate(m) || leaves.contains(&(m.index() as u32)) {
            continue;
        }
        refs[m.index()] -= 1;
        if refs[m.index()] == 0 {
            size += mffc_deref(mig, m, leaves, refs);
        }
    }
    size
}

fn mffc_reref(mig: &Mig, node: NodeId, leaves: &[u32], refs: &mut [u32]) {
    for s in mig.children(node) {
        let m = s.node();
        if !mig.is_gate(m) || leaves.contains(&(m.index() as u32)) {
            continue;
        }
        if refs[m.index()] == 0 {
            mffc_reref(mig, m, leaves, refs);
        }
        refs[m.index()] += 1;
    }
}

/// Enumerates up to `max_cuts` priority cuts per reachable node (plus
/// the unit cut, stored last), with subset-dominance filtering. Wider
/// cuts are preferred: they expose more replaceable logic to the
/// database match.
fn enumerate_cuts(mig: &Mig, k: usize, max_cuts: usize, rb: &mut RewriteBuffers) {
    let stride = max_cuts + 1;
    let n = mig.num_nodes();
    rb.cuts.clear();
    rb.cuts.resize(n * stride, Cut::default());
    rb.ncuts.clear();
    rb.ncuts.resize(n, 0);
    // Constant node: the empty cut (function 0).
    rb.cuts[0] = Cut {
        leaves: [0; 4],
        len: 0,
        tt: 0,
    };
    rb.ncuts[0] = 1;
    for i in 1..=mig.num_inputs() {
        rb.cuts[i * stride] = Cut::unit(i);
        rb.ncuts[i] = 1;
    }
    let mark = mig.reach_ref();
    for node in mig.gate_ids() {
        let idx = node.index();
        if !mark[idx] {
            continue;
        }
        let [a, b, c] = mig.children(node);
        let mut cand = std::mem::take(&mut rb.cand);
        cand.clear();
        for ca in 0..rb.ncuts[a.node().index()] as usize {
            for cb in 0..rb.ncuts[b.node().index()] as usize {
                for cc in 0..rb.ncuts[c.node().index()] as usize {
                    let cut_a = &rb.cuts[a.node().index() * stride + ca];
                    let cut_b = &rb.cuts[b.node().index() * stride + cb];
                    let cut_c = &rb.cuts[c.node().index() * stride + cc];
                    let Some(mut cut) = merge3(cut_a, cut_b, cut_c, k) else {
                        continue;
                    };
                    let ta = expand_tt(cut_a.tt, cut_a.leaves(), cut.leaves())
                        ^ if a.is_complemented() { 0xFFFF } else { 0 };
                    let tb = expand_tt(cut_b.tt, cut_b.leaves(), cut.leaves())
                        ^ if b.is_complemented() { 0xFFFF } else { 0 };
                    let tc = expand_tt(cut_c.tt, cut_c.leaves(), cut.leaves())
                        ^ if c.is_complemented() { 0xFFFF } else { 0 };
                    cut.tt = ((ta & tb) | (ta & tc) | (tb & tc)) & tt_mask(cut.len as usize);
                    if cand
                        .iter()
                        .any(|e| e.leaves() == cut.leaves() || e.dominates(&cut))
                    {
                        continue;
                    }
                    cand.retain(|e| !cut.dominates(e));
                    cand.push(cut);
                }
            }
        }
        // Wider cuts first; stable so earlier (smaller-index) leaves win
        // ties deterministically.
        cand.sort_by_key(|c| std::cmp::Reverse(c.len));
        cand.truncate(max_cuts);
        cand.push(Cut::unit(idx));
        let n_cand = cand.len();
        rb.cuts[idx * stride..idx * stride + n_cand].copy_from_slice(&cand);
        rb.ncuts[idx] = n_cand as u8;
        rb.cand = cand;
    }
}

/// Merges three sorted leaf sets into one, or `None` if the union
/// exceeds `k` leaves. The merged truth table is filled in by the
/// caller.
fn merge3(a: &Cut, b: &Cut, c: &Cut, k: usize) -> Option<Cut> {
    let mut out = Cut::default();
    for src in [a, b, c] {
        for &l in src.leaves() {
            let len = out.len as usize;
            match out.leaves[..len].binary_search(&l) {
                Ok(_) => {}
                Err(pos) => {
                    if len == k {
                        return None;
                    }
                    out.leaves.copy_within(pos..len, pos + 1);
                    out.leaves[pos] = l;
                    out.len += 1;
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_inputs() -> (Mig, Signal, Signal, Signal) {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        (mig, a, b, c)
    }

    #[test]
    fn xor3_rewrites_to_database_optimum() {
        let (mut mig, a, b, c) = three_inputs();
        let t = mig.xor(a, b);
        let f = mig.xor(t, c);
        mig.add_output("f", f);
        assert_eq!(mig.size(), 6);
        let opt = optimize_rewrite(&mig, &RewriteConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.size(), 3, "database holds the 3-node XOR3");
    }

    #[test]
    fn redundant_logic_collapses_to_a_wire() {
        // f = (a ∧ b) ∨ (a ∧ b') ≡ a: the cut function over {a, b} is the
        // projection of a, so the whole cone is replaced by a wire.
        let (mut mig, a, b, _) = three_inputs();
        let p = mig.and(a, b);
        let q = mig.and(a, !b);
        let f = mig.or(p, q);
        mig.add_output("f", f);
        assert_eq!(mig.size(), 3);
        let opt = optimize_rewrite(&mig, &RewriteConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.size(), 0);
        assert_eq!(opt.outputs()[0].1, opt.input(0));
    }

    #[test]
    fn constant_cone_folds_to_constant() {
        // f = (a ∧ b) ∧ (a' ∨ b') ≡ 0 needs the Boolean view to vanish.
        let (mut mig, a, b, _) = three_inputs();
        let p = mig.and(a, b);
        let q = mig.or(!a, !b);
        let f = mig.and(p, q);
        mig.add_output("f", f);
        let opt = optimize_rewrite(&mig, &RewriteConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.size(), 0);
        assert!(opt.outputs()[0].1.is_constant());
    }

    #[test]
    fn rewrite_is_monotone_and_equivalent() {
        let mut mig = Mig::new("misc");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let d = mig.add_input("d");
        let m1 = mig.maj(a, b, c);
        let m2 = mig.mux(d, m1, a);
        let m3 = mig.xor(m2, b);
        let m4 = mig.or(m3, m1);
        mig.add_output("y", m4);
        mig.add_output("z", m2);
        let before = mig.size();
        let opt = optimize_rewrite(&mig, &RewriteConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert!(opt.size() <= before, "{} > {}", opt.size(), before);
    }

    #[test]
    fn shared_fanout_is_respected() {
        // The MFFC accounting must not claim nodes that other outputs
        // still reference: rewriting here must keep both outputs correct.
        let (mut mig, a, b, c) = three_inputs();
        let t = mig.xor(a, b);
        let f = mig.xor(t, c);
        mig.add_output("f", f);
        mig.add_output("t", t); // t has external fanout
        let opt = optimize_rewrite(&mig, &RewriteConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert!(opt.size() <= mig.size());
    }

    #[test]
    fn cut_enumeration_truth_tables_are_exact() {
        // Check every enumerated cut function against exhaustive
        // simulation through probe outputs.
        let mut mig = Mig::new("t4");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let d = mig.add_input("d");
        let x = mig.xor(a, b);
        let g = mig.mux(c, x, d);
        mig.add_output("y", g);
        let mut rb = RewriteBuffers::default();
        enumerate_cuts(&mig, 4, 8, &mut rb);
        let stride = 9;
        let mark = mig.reach_ref();
        for node in mig.gate_ids() {
            if !mark[node.index()] {
                continue;
            }
            for ci in 0..rb.ncuts[node.index()] as usize {
                let cut = rb.cuts[node.index() * stride + ci];
                // Probe the node and its leaves.
                let mut probe = mig.clone();
                probe.add_output("probe", Signal::new(node, false));
                for (i, &leaf) in cut.leaves().iter().enumerate() {
                    probe.add_output(
                        format!("leaf{i}"),
                        Signal::new(NodeId::from_index(leaf as usize), false),
                    );
                }
                let tts = probe.truth_tables();
                let base = tts.len() - cut.leaves().len();
                for row in 0..16usize {
                    let mut idx = 0usize;
                    for i in 0..cut.leaves().len() {
                        if tts[base + i].get_bit(row) {
                            idx |= 1 << i;
                        }
                    }
                    assert_eq!(
                        (cut.tt >> idx) & 1 == 1,
                        tts[base - 1].get_bit(row),
                        "node {node}, cut {cut:?}, row {row}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge3_respects_bound() {
        let a = Cut::unit(1);
        let b = Cut::unit(2);
        let c = Cut {
            leaves: [3, 4, 5, 0],
            len: 3,
            tt: 0,
        };
        assert!(merge3(&a, &b, &c, 4).is_none(), "5 leaves > 4");
        let m = merge3(&a, &b, &b, 4).expect("2 leaves");
        assert_eq!(m.leaves(), &[1, 2]);
        let m = merge3(&c, &c, &c, 4).expect("subset");
        assert_eq!(m.leaves(), &[3, 4, 5]);
    }

    #[test]
    fn extend4_repeats_pattern() {
        assert_eq!(extend4(0b10, 1), 0xAAAA);
        assert_eq!(extend4(0b1000, 2), 0x8888);
        assert_eq!(extend4(1, 0), 0xFFFF);
    }
}
