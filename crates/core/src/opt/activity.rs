//! MIG switching-activity optimization (paper Section IV-C).
//!
//! Two levers reduce the total switching activity `Σ p(1−p)`:
//!
//! 1. *Size reduction* — fewer nodes switch (delegated to Algorithm 1).
//! 2. *Probability reshaping* — `Ψ.R` exchanges a reconvergent variable
//!    whose probability is close to 0.5 (maximum switching) for one whose
//!    probability is near 0 or 1 (paper Fig. 2(d)).

use super::size::{eliminate_pass, optimize_size_with, SizeOptConfig};
use super::OptBuffers;
use crate::{Mig, Signal};

/// Tuning knobs for [`optimize_activity`].
#[derive(Debug, Clone)]
pub struct ActivityOptConfig {
    /// Number of reshape/recover cycles.
    pub effort: usize,
    /// Cone bound for the relevance rewrites.
    pub cone_limit: usize,
    /// Maximum tolerated relative size growth (e.g. `0.05` = 5 %).
    pub size_slack: f64,
}

impl Default for ActivityOptConfig {
    fn default() -> Self {
        ActivityOptConfig {
            effort: 3,
            cone_limit: 40,
            size_slack: 0.05,
        }
    }
}

/// Reduces the switching activity of the MIG under the given per-input
/// signal probabilities (probability of being logic 1).
///
/// Returns a functionally equivalent MIG whose
/// [`switching_activity`](Mig::switching_activity) is less than or equal
/// to the input's, with size growth bounded by `config.size_slack`.
///
/// # Panics
///
/// Panics if `input_probs.len() != mig.num_inputs()`.
///
/// # Example
///
/// ```
/// use mig_core::{Mig, optimize_activity, ActivityOptConfig};
///
/// // Paper Fig. 2(d): k = M(x, y, M(x', z, w)) with px = 0.5 and the
/// // rest at 0.1 halves its activity by exchanging x' for y inside.
/// let mut mig = Mig::new("fig2d");
/// let x = mig.add_input("x");
/// let y = mig.add_input("y");
/// let z = mig.add_input("z");
/// let w = mig.add_input("w");
/// let inner = mig.maj(!x, z, w);
/// let k = mig.maj(x, y, inner);
/// mig.add_output("k", k);
/// let probs = [0.5, 0.1, 0.1, 0.1];
/// let opt = optimize_activity(&mig, &probs, &ActivityOptConfig::default());
/// assert!(opt.equiv(&mig, 4));
/// assert!(opt.switching_activity(&probs) < 0.51 * mig.switching_activity(&probs));
/// ```
pub fn optimize_activity(mig: &Mig, input_probs: &[f64], config: &ActivityOptConfig) -> Mig {
    optimize_activity_with(mig, input_probs, config, &mut OptBuffers::new())
}

/// [`optimize_activity`] with caller-provided rebuild buffers, so
/// composite flows share one arena pool across every pass they run.
pub(crate) fn optimize_activity_with(
    mig: &Mig,
    input_probs: &[f64],
    config: &ActivityOptConfig,
    bufs: &mut OptBuffers,
) -> Mig {
    assert_eq!(input_probs.len(), mig.num_inputs());
    let mut best = mig.cleanup();
    let mut best_cost = cost(&best, input_probs);
    for _ in 0..config.effort {
        let r = probability_reshape_pass(&best, input_probs, config.cone_limit, bufs);
        let e = eliminate_pass(&r, bufs);
        bufs.recycle(r);
        let cur = bufs.cleanup(&e);
        bufs.recycle(e);
        // Size recovery via Algorithm 1 (limited effort).
        let recovered = optimize_size_with(
            &cur,
            &SizeOptConfig {
                effort: 1,
                cone_limit: config.cone_limit,
                use_substitution: false,
            },
            bufs,
        );
        let rec_cost = cost(&recovered, input_probs);
        let cur_cost = cost(&cur, input_probs);
        let (cand, cand_cost) = if rec_cost <= cur_cost {
            bufs.recycle(cur);
            (recovered, rec_cost)
        } else {
            bufs.recycle(recovered);
            (cur, cur_cost)
        };
        let within_slack =
            cand.size() as f64 <= best.size() as f64 * (1.0 + config.size_slack) + 1.0;
        if cand_cost < best_cost && within_slack {
            bufs.recycle(std::mem::replace(&mut best, cand));
            best_cost = cand_cost;
        } else {
            break;
        }
    }
    best
}

fn cost(mig: &Mig, input_probs: &[f64]) -> f64 {
    mig.switching_activity(input_probs)
}

/// One `Ψ.R`-driven reshaping pass: at every node, if a reconvergent fanin
/// has near-0.5 probability and the exchanged variable is strongly biased,
/// try the exchange and keep it when the bounded-cone activity drops.
fn probability_reshape_pass(
    mig: &Mig,
    input_probs: &[f64],
    cone_limit: usize,
    bufs: &mut OptBuffers,
) -> Mig {
    // Probability buffers reused across every node and candidate of the
    // pass (the closure used to allocate one `Vec<f64>` per candidate).
    let mut probs: Vec<f64> = Vec::new();
    let mut cand_probs: Vec<f64> = Vec::new();
    bufs.rebuild(mig, |new, kids, _| {
        let base = new.maj(kids[0], kids[1], kids[2]);
        if new.as_maj(base).is_none() {
            return base;
        }
        // A Ψ.R exchange needs a majority fanin to rewrite through; skip
        // the O(n) probability propagation when no candidate exists.
        if !kids.iter().any(|&k| new.as_maj(k).is_some()) {
            return base;
        }
        // Probabilities in the new graph (recomputed lazily per node: the
        // graph is small enough during rebuild that a full propagation per
        // candidate would be wasteful; we use cone-local evaluation).
        new.signal_probabilities_into(input_probs, &mut probs);
        let p_of = |probs: &[f64], s: Signal| {
            let p = probs[s.node().index()];
            if s.is_complemented() {
                1.0 - p
            } else {
                p
            }
        };
        let mut best = base;
        let mut best_act = cone_activity(new, best, &probs, cone_limit);
        for zi in 0..3 {
            let z = kids[zi];
            if new.as_maj(z).is_none() {
                continue;
            }
            for (xi, yi) in [((zi + 1) % 3, (zi + 2) % 3), ((zi + 2) % 3, (zi + 1) % 3)] {
                let (x, y) = (kids[xi], kids[yi]);
                if x.is_constant() {
                    continue;
                }
                // Only exchange a "hot" variable for a biased one.
                let hot = (p_of(&probs, x) - 0.5).abs();
                let cold = ((1.0 - p_of(&probs, y)) - 0.5).abs();
                if cold <= hot {
                    continue;
                }
                if new.cone_contains(z, x.node(), cone_limit) != Some(true) {
                    continue;
                }
                let cand = new.psi_r(x, y, z);
                new.signal_probabilities_into(input_probs, &mut cand_probs);
                let act = cone_activity(new, cand, &cand_probs, cone_limit);
                if act < best_act {
                    best = cand;
                    best_act = act;
                }
            }
        }
        best
    })
}

/// Total `p(1−p)` over the bounded cone of `root` (epoch-marked, no
/// allocation).
fn cone_activity(mig: &Mig, root: Signal, probs: &[f64], limit: usize) -> f64 {
    let mut trav = mig.trav_scratch();
    trav.begin(mig.num_nodes());
    trav.stack.push(root.node());
    let mut acc = 0.0;
    let mut steps = 0;
    while let Some(n) = trav.stack.pop() {
        if !mig.is_gate(n) || !trav.mark(n) {
            continue;
        }
        steps += 1;
        if steps > limit {
            return f64::INFINITY;
        }
        let p = probs[n.index()];
        acc += p * (1.0 - p);
        for c in mig.children(n) {
            trav.stack.push(c.node());
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2d() -> (Mig, Vec<f64>) {
        let mut mig = Mig::new("fig2d");
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let z = mig.add_input("z");
        let w = mig.add_input("w");
        let inner = mig.maj(!x, z, w);
        let k = mig.maj(x, y, inner);
        mig.add_output("k", k);
        (mig, vec![0.5, 0.1, 0.1, 0.1])
    }

    #[test]
    fn fig2d_activity_halves() {
        let (mig, probs) = fig2d();
        let before = mig.switching_activity(&probs);
        assert!((before - 0.18).abs() < 1e-9);
        let opt = optimize_activity(&mig, &probs, &ActivityOptConfig::default());
        assert!(opt.equiv(&mig, 4));
        let after = opt.switching_activity(&probs);
        assert!(after < 0.10, "paper: 0.18 → ≈0.087, got {after}");
        assert_eq!(opt.size(), 2, "no size penalty");
    }

    #[test]
    fn activity_never_worsens() {
        let mut mig = Mig::new("m");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m1 = mig.maj(a, b, c);
        let m2 = mig.xor(m1, a);
        mig.add_output("y", m2);
        let probs = vec![0.5, 0.5, 0.5];
        let before = mig.switching_activity(&probs);
        let opt = optimize_activity(&mig, &probs, &ActivityOptConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert!(opt.switching_activity(&probs) <= before + 1e-12);
    }

    #[test]
    fn uniform_probabilities_still_sound() {
        let (mig, _) = fig2d();
        let probs = vec![0.5; 4];
        let opt = optimize_activity(&mig, &probs, &ActivityOptConfig::default());
        assert!(opt.equiv(&mig, 4));
    }
}
