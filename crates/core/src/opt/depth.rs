//! MIG depth optimization (paper Algorithm 2).
//!
//! Critical (late-arriving) signals are moved toward the outputs:
//! * `Ω.A` / `Ψ.C` exchange a deep grandchild with a shallow outer fanin
//!   at no size cost;
//! * `Ω.D` left-to-right pushes the critical signal one level up at the
//!   price of one duplicated node;
//! * `Ω.M` (inside the hashing constructor) collapses whatever becomes
//!   trivial, reducing both depth and size.
//!
//! When no direct push-up helps, the `Ψ.R`/`Ψ.S` reshaping of the size
//! pass is borrowed to escape local minima (paper Fig. 2(b-c)). Each
//! cycle finishes with a size-recovery elimination pass.

use super::size::{eliminate_pass, reshape_pass, substitution_kick};
use super::{Objective, OptBuffers};
use crate::level::LevelMap;

/// The lexicographic objective Algorithm 2 minimizes.
const OBJECTIVE: Objective = Objective::DepthThenSize;
use crate::{Mig, Signal};

/// Tuning knobs for [`optimize_depth`].
#[derive(Debug, Clone)]
pub struct DepthOptConfig {
    /// Number of push-up/reshape cycles (the paper's `effort`).
    pub effort: usize,
    /// Allow `Ω.D` L→R moves that add one node for one level of gain.
    pub allow_area_increase: bool,
    /// Run elimination (size recovery) at the end of each cycle.
    pub area_recovery: bool,
    /// Apply `Ψ.R`/`Ψ.S` reshaping when progress stalls.
    pub reshape: bool,
    /// Cone bound used by the relevance rewrites during reshaping.
    pub cone_limit: usize,
}

impl Default for DepthOptConfig {
    fn default() -> Self {
        DepthOptConfig {
            effort: 6,
            allow_area_increase: true,
            area_recovery: true,
            reshape: true,
            cone_limit: 40,
        }
    }
}

/// Algorithm 2: reduces the number of logic levels.
///
/// Returns the best `(depth, size)` MIG encountered; the result is always
/// functionally equivalent to the input.
///
/// # Example
///
/// ```
/// use mig_core::{Mig, optimize_depth, DepthOptConfig};
///
/// // An unbalanced AND chain: a·b·c·d at depth 3 rebalances to depth 2.
/// let mut mig = Mig::new("chain");
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let c = mig.add_input("c");
/// let d = mig.add_input("d");
/// let t1 = mig.and(a, b);
/// let t2 = mig.and(t1, c);
/// let t3 = mig.and(t2, d);
/// mig.add_output("y", t3);
/// assert_eq!(mig.depth(), 3);
/// let opt = optimize_depth(&mig, &DepthOptConfig::default());
/// assert!(opt.equiv(&mig, 4));
/// assert_eq!(opt.depth(), 2);
/// ```
pub fn optimize_depth(mig: &Mig, config: &DepthOptConfig) -> Mig {
    optimize_depth_with(mig, config, &mut OptBuffers::new(), &mut LevelMap::new())
}

/// [`optimize_depth`] with caller-provided rebuild buffers and level
/// mirror, so composite flows share one arena pool and one level-repair
/// state across every pass they run.
pub(crate) fn optimize_depth_with(
    mig: &Mig,
    config: &DepthOptConfig,
    bufs: &mut OptBuffers,
    lm: &mut LevelMap,
) -> Mig {
    let mut best = mig.cleanup();
    // Acceptance measurement through the level mirror: the best cost is
    // carried forward, so each candidate pays exactly one bind, never a
    // re-measure of `best`.
    let measure = |lm: &mut LevelMap, m: &Mig| {
        lm.bind(m);
        let depth = lm.depth(m);
        OBJECTIVE.cost(m.size(), depth)
    };
    let mut best_cost = measure(lm, &best);
    // Runs one pass and recycles its input's buffers.
    let step = |bufs: &mut OptBuffers, cur: Mig, f: &dyn Fn(&Mig, &mut OptBuffers) -> Mig| {
        let next = f(&cur, bufs);
        bufs.recycle(cur);
        next
    };
    for cycle in 0..config.effort {
        // Push-up rounds (two, as in Algorithm 2's pseudocode).
        let mut cur = push_up_pass(&best, config.allow_area_increase, bufs);
        cur = step(bufs, cur, &|m, b| {
            push_up_pass(m, config.allow_area_increase, b)
        });
        if config.reshape {
            cur = step(bufs, cur, &|m, b| reshape_pass(m, config.cone_limit, b));
        }
        cur = step(bufs, cur, &|m, b| {
            push_up_pass(m, config.allow_area_increase, b)
        });
        if config.area_recovery {
            cur = step(bufs, cur, &eliminate_pass);
        }
        cur = step(bufs, cur, &|m, b| b.cleanup(m));
        let cur_cost = measure(lm, &cur);
        if cur_cost < best_cost {
            best_cost = cur_cost;
            bufs.recycle(std::mem::replace(&mut best, cur));
            continue;
        }
        bufs.recycle(cur);
        // Local minimum: Ψ.S kick (paper Fig. 2(b)), then retry once.
        if config.reshape {
            let kicked = substitution_kick(&best, cycle);
            let mut k = push_up_pass(&kicked, config.allow_area_increase, bufs);
            bufs.recycle(kicked);
            k = step(bufs, k, &|m, b| {
                push_up_pass(m, config.allow_area_increase, b)
            });
            if config.area_recovery {
                k = step(bufs, k, &eliminate_pass);
            }
            k = step(bufs, k, &|m, b| b.cleanup(m));
            let k_cost = measure(lm, &k);
            if k_cost < best_cost {
                best_cost = k_cost;
                bufs.recycle(std::mem::replace(&mut best, k));
                continue;
            }
            bufs.recycle(k);
        }
        break;
    }
    best
}

/// Recursion budget for the depth-aware constructor: how many levels of
/// inner nodes are themselves constructed depth-aware. Two levels let a
/// critical signal sink past a balanced-looking but slack subtree (e.g.
/// rebalancing an 8-input AND chain all the way to depth 3).
const DEPTH_FUEL: u32 = 2;

/// One bottom-up push-up pass: every gate is reconstructed with the
/// depth-aware constructor below.
pub(crate) fn push_up_pass(mig: &Mig, allow_area_increase: bool, bufs: &mut OptBuffers) -> Mig {
    bufs.rebuild(mig, |new, kids, _| {
        maj_depth_aware(
            new,
            kids[0],
            kids[1],
            kids[2],
            allow_area_increase,
            DEPTH_FUEL,
        )
    })
}

/// Depth-aware constructor: builds `M(a,b,c)`, then — if one fanin is
/// strictly critical — constructs the `Ω.A` / `Ψ.C` / `Ω.D` push-up
/// variants (recursively depth-aware up to `fuel` levels) and keeps the
/// shallowest result.
pub(crate) fn maj_depth_aware(
    new: &mut Mig,
    a: Signal,
    b: Signal,
    c: Signal,
    allow_area_increase: bool,
    fuel: u32,
) -> Signal {
    let base = new.maj(a, b, c);
    if fuel == 0 || new.as_maj(base).is_none() {
        return base;
    }
    let lvl = |m: &Mig, s: Signal| m.level_of_signal(s);
    let mut best = base;
    let mut best_level = lvl(new, base);

    // Identify the strictly critical fanin z (the push-up target).
    let kids = [a, b, c];
    let zi = match (0..3).max_by_key(|&i| lvl(new, kids[i])) {
        Some(i) => i,
        None => return base,
    };
    let z = kids[zi];
    let x = kids[(zi + 1) % 3];
    let y = kids[(zi + 2) % 3];
    if lvl(new, z) <= lvl(new, x).max(lvl(new, y)) {
        return base; // no strictly critical fanin: locally balanced
    }
    let Some(g) = new.as_maj(z) else { return base };

    let consider = |new: &mut Mig, cand: Signal, best: &mut Signal, best_level: &mut u32| {
        let cl = lvl(new, cand);
        if cl < *best_level {
            *best = cand;
            *best_level = cl;
        }
    };

    // Candidate 1: Ω.A — a fanin of z equals x or y.
    // M(x, u, M(y, u, w)) = M(w, u, M(y, u, x)): hoist grandchild w out.
    for (outer_other, shared) in [(x, y), (y, x)] {
        if !g.contains(&shared) {
            continue;
        }
        for &swap_out in g.iter().filter(|&&s| s != shared) {
            let t = *g
                .iter()
                .find(|&&s| s != shared && s != swap_out)
                .expect("three distinct fanins");
            let inner = maj_depth_aware(new, t, shared, outer_other, allow_area_increase, fuel - 1);
            let cand = new.maj(swap_out, shared, inner);
            consider(new, cand, &mut best, &mut best_level);
        }
    }

    // Candidate 2: Ψ.C — a fanin of z is the complement of x or y:
    // M(x, u, M(t1, u', t2)) = M(x, u, M(t1, x, t2)).
    for (other, u) in [(x, y), (y, x)] {
        if !g.contains(&!u) {
            continue;
        }
        let mut rest = [Signal::FALSE; 2];
        let mut n_rest = 0usize;
        for &s in g.iter().filter(|&&s| s != !u) {
            if n_rest == 2 {
                n_rest = 3; // more than two leftovers: pattern mismatch
                break;
            }
            rest[n_rest] = s;
            n_rest += 1;
        }
        if n_rest != 2 {
            continue;
        }
        let inner = maj_depth_aware(new, rest[0], other, rest[1], allow_area_increase, fuel - 1);
        let cand = new.maj(other, u, inner);
        consider(new, cand, &mut best, &mut best_level);
    }

    // Candidate 3: Ω.D L→R — keep the critical grandchild w outside and
    // duplicate (x,y) around the shallow fanins:
    // M(x, y, M(u, v, w)) = M(M(x,y,u), M(x,y,v), w).
    if allow_area_increase {
        if let Some((wi, &w)) = g.iter().enumerate().max_by_key(|(_, &s)| lvl(new, s)) {
            let u = g[(wi + 1) % 3];
            let v = g[(wi + 2) % 3];
            let est = 1 + lvl(new, w)
                .max(1 + lvl(new, x).max(lvl(new, y)).max(lvl(new, u)))
                .max(1 + lvl(new, x).max(lvl(new, y)).max(lvl(new, v)));
            if est < best_level {
                let p = new.maj(x, y, u);
                let q = new.maj(x, y, v);
                let cand = maj_depth_aware(new, p, q, w, allow_area_increase, fuel - 1);
                consider(new, cand, &mut best, &mut best_level);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_chain_balances() {
        let mut mig = Mig::new("chain8");
        let ins: Vec<Signal> = (0..8).map(|i| mig.add_input(format!("x{i}"))).collect();
        let mut acc = ins[0];
        for &s in &ins[1..] {
            acc = mig.and(acc, s);
        }
        mig.add_output("y", acc);
        assert_eq!(mig.depth(), 7);
        let opt = optimize_depth(&mig, &DepthOptConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.depth(), 3, "8-input AND balances to log2");
    }

    #[test]
    fn fig2c_g_function_depth() {
        // Paper Fig. 2(c): g = x(y + uv) — AOIG-optimal depth 3,
        // MIG-optimal depth 2 via Ψ.C + Ω.A.
        let mut mig = Mig::new("fig2c");
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let u = mig.add_input("u");
        let v = mig.add_input("v");
        let uv = mig.and(u, v);
        let or = mig.or(y, uv);
        let g = mig.and(x, or);
        mig.add_output("g", g);
        assert_eq!(mig.depth(), 3);
        let opt = optimize_depth(&mig, &DepthOptConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.depth(), 2, "paper reduces g to 2 levels");
    }

    #[test]
    fn fig2b_xor3_depth() {
        // Paper Fig. 2(b): f = x ⊕ y ⊕ z — AOIG depth 4, MIG depth 2.
        let mut mig = Mig::new("fig2b");
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let z = mig.add_input("z");
        let x1 = mig.xor(x, y);
        let f = mig.xor(x1, z);
        mig.add_output("f", f);
        assert_eq!(mig.depth(), 4);
        let opt = optimize_depth(&mig, &DepthOptConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert!(opt.depth() <= 3, "got {}", opt.depth());
    }

    #[test]
    fn depth_never_increases() {
        let mut mig = Mig::new("misc");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let d = mig.add_input("d");
        let m1 = mig.maj(a, b, c);
        let m2 = mig.mux(d, m1, a);
        let m3 = mig.xor(m2, b);
        mig.add_output("y", m3);
        let before = mig.depth();
        let opt = optimize_depth(&mig, &DepthOptConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert!(opt.depth() <= before);
    }

    #[test]
    fn area_restricted_mode() {
        let mut mig = Mig::new("chain");
        let ins: Vec<Signal> = (0..6).map(|i| mig.add_input(format!("x{i}"))).collect();
        let mut acc = ins[0];
        for &s in &ins[1..] {
            acc = mig.or(acc, s);
        }
        mig.add_output("y", acc);
        let config = DepthOptConfig {
            allow_area_increase: false,
            ..DepthOptConfig::default()
        };
        let opt = optimize_depth(&mig, &config);
        assert!(opt.equiv(&mig, 4));
        assert!(opt.depth() <= mig.depth());
        assert!(opt.size() <= mig.size(), "without Ω.D size cannot grow");
    }

    #[test]
    fn push_up_single_pass_is_sound() {
        let mut mig = Mig::new("p");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let d = mig.add_input("d");
        let inner = mig.maj(c, d, a);
        let outer = mig.maj(a, b, inner);
        mig.add_output("y", outer);
        let p = push_up_pass(&mig, true, &mut OptBuffers::new());
        assert!(p.equiv(&mig, 4));
    }
}
